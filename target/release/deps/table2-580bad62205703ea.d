/root/repo/target/release/deps/table2-580bad62205703ea.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-580bad62205703ea: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
