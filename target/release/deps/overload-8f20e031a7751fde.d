/root/repo/target/release/deps/overload-8f20e031a7751fde.d: crates/bench/src/bin/overload.rs

/root/repo/target/release/deps/overload-8f20e031a7751fde: crates/bench/src/bin/overload.rs

crates/bench/src/bin/overload.rs:
