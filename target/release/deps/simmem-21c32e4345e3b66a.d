/root/repo/target/release/deps/simmem-21c32e4345e3b66a.d: crates/simmem/src/lib.rs crates/simmem/src/addr.rs crates/simmem/src/error.rs crates/simmem/src/frame.rs crates/simmem/src/heap.rs crates/simmem/src/space.rs crates/simmem/src/vma.rs

/root/repo/target/release/deps/libsimmem-21c32e4345e3b66a.rlib: crates/simmem/src/lib.rs crates/simmem/src/addr.rs crates/simmem/src/error.rs crates/simmem/src/frame.rs crates/simmem/src/heap.rs crates/simmem/src/space.rs crates/simmem/src/vma.rs

/root/repo/target/release/deps/libsimmem-21c32e4345e3b66a.rmeta: crates/simmem/src/lib.rs crates/simmem/src/addr.rs crates/simmem/src/error.rs crates/simmem/src/frame.rs crates/simmem/src/heap.rs crates/simmem/src/space.rs crates/simmem/src/vma.rs

crates/simmem/src/lib.rs:
crates/simmem/src/addr.rs:
crates/simmem/src/error.rs:
crates/simmem/src/frame.rs:
crates/simmem/src/heap.rs:
crates/simmem/src/space.rs:
crates/simmem/src/vma.rs:
