/root/repo/target/release/deps/openmx_mpi-314a008794c5f784.d: crates/mpi/src/lib.rs crates/mpi/src/collectives.rs crates/mpi/src/imb.rs crates/mpi/src/npb.rs crates/mpi/src/script.rs

/root/repo/target/release/deps/libopenmx_mpi-314a008794c5f784.rlib: crates/mpi/src/lib.rs crates/mpi/src/collectives.rs crates/mpi/src/imb.rs crates/mpi/src/npb.rs crates/mpi/src/script.rs

/root/repo/target/release/deps/libopenmx_mpi-314a008794c5f784.rmeta: crates/mpi/src/lib.rs crates/mpi/src/collectives.rs crates/mpi/src/imb.rs crates/mpi/src/npb.rs crates/mpi/src/script.rs

crates/mpi/src/lib.rs:
crates/mpi/src/collectives.rs:
crates/mpi/src/imb.rs:
crates/mpi/src/npb.rs:
crates/mpi/src/script.rs:
