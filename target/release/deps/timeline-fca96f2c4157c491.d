/root/repo/target/release/deps/timeline-fca96f2c4157c491.d: crates/bench/src/bin/timeline.rs

/root/repo/target/release/deps/timeline-fca96f2c4157c491: crates/bench/src/bin/timeline.rs

crates/bench/src/bin/timeline.rs:
