/root/repo/target/release/deps/fig7-fbe2df5c3602b1db.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-fbe2df5c3602b1db: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
