/root/repo/target/release/deps/openmx_bench-7f11c130cc245b47.d: crates/bench/src/lib.rs crates/bench/src/chaos.rs crates/bench/src/microbench.rs crates/bench/src/paper.rs crates/bench/src/pingpong.rs crates/bench/src/sweep.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libopenmx_bench-7f11c130cc245b47.rlib: crates/bench/src/lib.rs crates/bench/src/chaos.rs crates/bench/src/microbench.rs crates/bench/src/paper.rs crates/bench/src/pingpong.rs crates/bench/src/sweep.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libopenmx_bench-7f11c130cc245b47.rmeta: crates/bench/src/lib.rs crates/bench/src/chaos.rs crates/bench/src/microbench.rs crates/bench/src/paper.rs crates/bench/src/pingpong.rs crates/bench/src/sweep.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/chaos.rs:
crates/bench/src/microbench.rs:
crates/bench/src/paper.rs:
crates/bench/src/pingpong.rs:
crates/bench/src/sweep.rs:
crates/bench/src/table.rs:
