/root/repo/target/release/deps/openmx_repro-2788007b59e530bb.d: src/lib.rs

/root/repo/target/release/deps/libopenmx_repro-2788007b59e530bb.rlib: src/lib.rs

/root/repo/target/release/deps/libopenmx_repro-2788007b59e530bb.rmeta: src/lib.rs

src/lib.rs:
