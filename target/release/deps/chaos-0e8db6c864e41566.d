/root/repo/target/release/deps/chaos-0e8db6c864e41566.d: crates/bench/src/bin/chaos.rs

/root/repo/target/release/deps/chaos-0e8db6c864e41566: crates/bench/src/bin/chaos.rs

crates/bench/src/bin/chaos.rs:
