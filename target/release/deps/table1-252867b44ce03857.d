/root/repo/target/release/deps/table1-252867b44ce03857.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-252867b44ce03857: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
