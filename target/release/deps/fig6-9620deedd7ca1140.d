/root/repo/target/release/deps/fig6-9620deedd7ca1140.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-9620deedd7ca1140: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
