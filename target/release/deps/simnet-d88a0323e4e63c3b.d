/root/repo/target/release/deps/simnet-d88a0323e4e63c3b.d: crates/simnet/src/lib.rs crates/simnet/src/frame.rs crates/simnet/src/ioat.rs crates/simnet/src/net.rs

/root/repo/target/release/deps/libsimnet-d88a0323e4e63c3b.rlib: crates/simnet/src/lib.rs crates/simnet/src/frame.rs crates/simnet/src/ioat.rs crates/simnet/src/net.rs

/root/repo/target/release/deps/libsimnet-d88a0323e4e63c3b.rmeta: crates/simnet/src/lib.rs crates/simnet/src/frame.rs crates/simnet/src/ioat.rs crates/simnet/src/net.rs

crates/simnet/src/lib.rs:
crates/simnet/src/frame.rs:
crates/simnet/src/ioat.rs:
crates/simnet/src/net.rs:
