/root/repo/target/release/deps/ablation-d16b2c27b611b6a0.d: crates/bench/src/bin/ablation.rs

/root/repo/target/release/deps/ablation-d16b2c27b611b6a0: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
