/root/repo/target/release/deps/simcore-f6c7c8b41f0be765.d: crates/simcore/src/lib.rs crates/simcore/src/cpu.rs crates/simcore/src/queue.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs

/root/repo/target/release/deps/libsimcore-f6c7c8b41f0be765.rlib: crates/simcore/src/lib.rs crates/simcore/src/cpu.rs crates/simcore/src/queue.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs

/root/repo/target/release/deps/libsimcore-f6c7c8b41f0be765.rmeta: crates/simcore/src/lib.rs crates/simcore/src/cpu.rs crates/simcore/src/queue.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs

crates/simcore/src/lib.rs:
crates/simcore/src/cpu.rs:
crates/simcore/src/queue.rs:
crates/simcore/src/rng.rs:
crates/simcore/src/stats.rs:
crates/simcore/src/time.rs:
