/root/repo/target/debug/examples/collectives-6e0071d2136ce5f1.d: examples/collectives.rs

/root/repo/target/debug/examples/collectives-6e0071d2136ce5f1: examples/collectives.rs

examples/collectives.rs:
