/root/repo/target/debug/examples/overload-31355787e4b7ff72.d: examples/overload.rs Cargo.toml

/root/repo/target/debug/examples/liboverload-31355787e4b7ff72.rmeta: examples/overload.rs Cargo.toml

examples/overload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
