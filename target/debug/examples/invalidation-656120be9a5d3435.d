/root/repo/target/debug/examples/invalidation-656120be9a5d3435.d: examples/invalidation.rs Cargo.toml

/root/repo/target/debug/examples/libinvalidation-656120be9a5d3435.rmeta: examples/invalidation.rs Cargo.toml

examples/invalidation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
