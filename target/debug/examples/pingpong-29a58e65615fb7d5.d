/root/repo/target/debug/examples/pingpong-29a58e65615fb7d5.d: examples/pingpong.rs Cargo.toml

/root/repo/target/debug/examples/libpingpong-29a58e65615fb7d5.rmeta: examples/pingpong.rs Cargo.toml

examples/pingpong.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
