/root/repo/target/debug/examples/quickstart-f69421b87c41b531.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-f69421b87c41b531: examples/quickstart.rs

examples/quickstart.rs:
