/root/repo/target/debug/examples/quickstart-8f235c187a29fe4c.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-8f235c187a29fe4c.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
