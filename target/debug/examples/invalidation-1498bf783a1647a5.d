/root/repo/target/debug/examples/invalidation-1498bf783a1647a5.d: examples/invalidation.rs

/root/repo/target/debug/examples/invalidation-1498bf783a1647a5: examples/invalidation.rs

examples/invalidation.rs:
