/root/repo/target/debug/examples/overload-f2696d8fd73d546e.d: examples/overload.rs

/root/repo/target/debug/examples/overload-f2696d8fd73d546e: examples/overload.rs

examples/overload.rs:
