/root/repo/target/debug/examples/collectives-8d717c656a496904.d: examples/collectives.rs Cargo.toml

/root/repo/target/debug/examples/libcollectives-8d717c656a496904.rmeta: examples/collectives.rs Cargo.toml

examples/collectives.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
