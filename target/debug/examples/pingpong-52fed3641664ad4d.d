/root/repo/target/debug/examples/pingpong-52fed3641664ad4d.d: examples/pingpong.rs

/root/repo/target/debug/examples/pingpong-52fed3641664ad4d: examples/pingpong.rs

examples/pingpong.rs:
