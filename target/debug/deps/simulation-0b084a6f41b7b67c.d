/root/repo/target/debug/deps/simulation-0b084a6f41b7b67c.d: crates/bench/benches/simulation.rs

/root/repo/target/debug/deps/simulation-0b084a6f41b7b67c: crates/bench/benches/simulation.rs

crates/bench/benches/simulation.rs:
