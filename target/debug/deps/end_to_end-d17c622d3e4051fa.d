/root/repo/target/debug/deps/end_to_end-d17c622d3e4051fa.d: tests/end_to_end.rs tests/common/mod.rs

/root/repo/target/debug/deps/end_to_end-d17c622d3e4051fa: tests/end_to_end.rs tests/common/mod.rs

tests/end_to_end.rs:
tests/common/mod.rs:
