/root/repo/target/debug/deps/collectives_data-fe99f5f58e1182a7.d: tests/collectives_data.rs tests/common/mod.rs

/root/repo/target/debug/deps/collectives_data-fe99f5f58e1182a7: tests/collectives_data.rs tests/common/mod.rs

tests/collectives_data.rs:
tests/common/mod.rs:
