/root/repo/target/debug/deps/chaos-b1375af3a350ece3.d: crates/bench/src/bin/chaos.rs

/root/repo/target/debug/deps/chaos-b1375af3a350ece3: crates/bench/src/bin/chaos.rs

crates/bench/src/bin/chaos.rs:
