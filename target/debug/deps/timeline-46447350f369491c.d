/root/repo/target/debug/deps/timeline-46447350f369491c.d: crates/bench/src/bin/timeline.rs

/root/repo/target/debug/deps/timeline-46447350f369491c: crates/bench/src/bin/timeline.rs

crates/bench/src/bin/timeline.rs:
