/root/repo/target/debug/deps/simnet-872ad0a81ea50fee.d: crates/simnet/src/lib.rs crates/simnet/src/frame.rs crates/simnet/src/ioat.rs crates/simnet/src/net.rs

/root/repo/target/debug/deps/libsimnet-872ad0a81ea50fee.rlib: crates/simnet/src/lib.rs crates/simnet/src/frame.rs crates/simnet/src/ioat.rs crates/simnet/src/net.rs

/root/repo/target/debug/deps/libsimnet-872ad0a81ea50fee.rmeta: crates/simnet/src/lib.rs crates/simnet/src/frame.rs crates/simnet/src/ioat.rs crates/simnet/src/net.rs

crates/simnet/src/lib.rs:
crates/simnet/src/frame.rs:
crates/simnet/src/ioat.rs:
crates/simnet/src/net.rs:
