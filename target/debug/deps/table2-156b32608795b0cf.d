/root/repo/target/debug/deps/table2-156b32608795b0cf.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-156b32608795b0cf: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
