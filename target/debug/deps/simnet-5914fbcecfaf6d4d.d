/root/repo/target/debug/deps/simnet-5914fbcecfaf6d4d.d: crates/simnet/src/lib.rs crates/simnet/src/frame.rs crates/simnet/src/ioat.rs crates/simnet/src/net.rs Cargo.toml

/root/repo/target/debug/deps/libsimnet-5914fbcecfaf6d4d.rmeta: crates/simnet/src/lib.rs crates/simnet/src/frame.rs crates/simnet/src/ioat.rs crates/simnet/src/net.rs Cargo.toml

crates/simnet/src/lib.rs:
crates/simnet/src/frame.rs:
crates/simnet/src/ioat.rs:
crates/simnet/src/net.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
