/root/repo/target/debug/deps/overload-264a345022eb6ab6.d: crates/bench/src/bin/overload.rs

/root/repo/target/debug/deps/overload-264a345022eb6ab6: crates/bench/src/bin/overload.rs

crates/bench/src/bin/overload.rs:
