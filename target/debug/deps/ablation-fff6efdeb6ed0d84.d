/root/repo/target/debug/deps/ablation-fff6efdeb6ed0d84.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-fff6efdeb6ed0d84: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
