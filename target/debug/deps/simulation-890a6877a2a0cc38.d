/root/repo/target/debug/deps/simulation-890a6877a2a0cc38.d: crates/bench/benches/simulation.rs

/root/repo/target/debug/deps/simulation-890a6877a2a0cc38: crates/bench/benches/simulation.rs

crates/bench/benches/simulation.rs:
