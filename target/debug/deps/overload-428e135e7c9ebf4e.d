/root/repo/target/debug/deps/overload-428e135e7c9ebf4e.d: crates/bench/src/bin/overload.rs Cargo.toml

/root/repo/target/debug/deps/liboverload-428e135e7c9ebf4e.rmeta: crates/bench/src/bin/overload.rs Cargo.toml

crates/bench/src/bin/overload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
