/root/repo/target/debug/deps/fig6-2de2d56f286e35ed.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-2de2d56f286e35ed: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
