/root/repo/target/debug/deps/openmx_mpi-8ceb196f12a32a21.d: crates/mpi/src/lib.rs crates/mpi/src/collectives.rs crates/mpi/src/imb.rs crates/mpi/src/npb.rs crates/mpi/src/script.rs

/root/repo/target/debug/deps/libopenmx_mpi-8ceb196f12a32a21.rlib: crates/mpi/src/lib.rs crates/mpi/src/collectives.rs crates/mpi/src/imb.rs crates/mpi/src/npb.rs crates/mpi/src/script.rs

/root/repo/target/debug/deps/libopenmx_mpi-8ceb196f12a32a21.rmeta: crates/mpi/src/lib.rs crates/mpi/src/collectives.rs crates/mpi/src/imb.rs crates/mpi/src/npb.rs crates/mpi/src/script.rs

crates/mpi/src/lib.rs:
crates/mpi/src/collectives.rs:
crates/mpi/src/imb.rs:
crates/mpi/src/npb.rs:
crates/mpi/src/script.rs:
