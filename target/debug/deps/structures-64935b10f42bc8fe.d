/root/repo/target/debug/deps/structures-64935b10f42bc8fe.d: crates/bench/benches/structures.rs Cargo.toml

/root/repo/target/debug/deps/libstructures-64935b10f42bc8fe.rmeta: crates/bench/benches/structures.rs Cargo.toml

crates/bench/benches/structures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
