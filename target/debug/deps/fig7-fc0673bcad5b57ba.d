/root/repo/target/debug/deps/fig7-fc0673bcad5b57ba.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-fc0673bcad5b57ba: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
