/root/repo/target/debug/deps/hints-4f2dde6779e098e1.d: crates/core/tests/hints.rs Cargo.toml

/root/repo/target/debug/deps/libhints-4f2dde6779e098e1.rmeta: crates/core/tests/hints.rs Cargo.toml

crates/core/tests/hints.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
