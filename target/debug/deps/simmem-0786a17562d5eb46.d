/root/repo/target/debug/deps/simmem-0786a17562d5eb46.d: crates/simmem/src/lib.rs crates/simmem/src/addr.rs crates/simmem/src/error.rs crates/simmem/src/frame.rs crates/simmem/src/heap.rs crates/simmem/src/space.rs crates/simmem/src/vma.rs

/root/repo/target/debug/deps/simmem-0786a17562d5eb46: crates/simmem/src/lib.rs crates/simmem/src/addr.rs crates/simmem/src/error.rs crates/simmem/src/frame.rs crates/simmem/src/heap.rs crates/simmem/src/space.rs crates/simmem/src/vma.rs

crates/simmem/src/lib.rs:
crates/simmem/src/addr.rs:
crates/simmem/src/error.rs:
crates/simmem/src/frame.rs:
crates/simmem/src/heap.rs:
crates/simmem/src/space.rs:
crates/simmem/src/vma.rs:
