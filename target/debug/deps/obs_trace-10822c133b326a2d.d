/root/repo/target/debug/deps/obs_trace-10822c133b326a2d.d: crates/core/tests/obs_trace.rs Cargo.toml

/root/repo/target/debug/deps/libobs_trace-10822c133b326a2d.rmeta: crates/core/tests/obs_trace.rs Cargo.toml

crates/core/tests/obs_trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
