/root/repo/target/debug/deps/openmx_bench-8ad522d2a283d183.d: crates/bench/src/lib.rs crates/bench/src/chaos.rs crates/bench/src/microbench.rs crates/bench/src/paper.rs crates/bench/src/pingpong.rs crates/bench/src/sweep.rs crates/bench/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libopenmx_bench-8ad522d2a283d183.rmeta: crates/bench/src/lib.rs crates/bench/src/chaos.rs crates/bench/src/microbench.rs crates/bench/src/paper.rs crates/bench/src/pingpong.rs crates/bench/src/sweep.rs crates/bench/src/table.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/chaos.rs:
crates/bench/src/microbench.rs:
crates/bench/src/paper.rs:
crates/bench/src/pingpong.rs:
crates/bench/src/sweep.rs:
crates/bench/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
