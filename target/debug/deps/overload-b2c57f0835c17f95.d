/root/repo/target/debug/deps/overload-b2c57f0835c17f95.d: crates/bench/src/bin/overload.rs

/root/repo/target/debug/deps/overload-b2c57f0835c17f95: crates/bench/src/bin/overload.rs

crates/bench/src/bin/overload.rs:
