/root/repo/target/debug/deps/openmx_mpi-d358ea86c88afe3c.d: crates/mpi/src/lib.rs crates/mpi/src/collectives.rs crates/mpi/src/imb.rs crates/mpi/src/npb.rs crates/mpi/src/script.rs

/root/repo/target/debug/deps/openmx_mpi-d358ea86c88afe3c: crates/mpi/src/lib.rs crates/mpi/src/collectives.rs crates/mpi/src/imb.rs crates/mpi/src/npb.rs crates/mpi/src/script.rs

crates/mpi/src/lib.rs:
crates/mpi/src/collectives.rs:
crates/mpi/src/imb.rs:
crates/mpi/src/npb.rs:
crates/mpi/src/script.rs:
