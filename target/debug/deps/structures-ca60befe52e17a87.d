/root/repo/target/debug/deps/structures-ca60befe52e17a87.d: crates/bench/benches/structures.rs

/root/repo/target/debug/deps/structures-ca60befe52e17a87: crates/bench/benches/structures.rs

crates/bench/benches/structures.rs:
