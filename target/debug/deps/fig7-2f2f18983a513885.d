/root/repo/target/debug/deps/fig7-2f2f18983a513885.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-2f2f18983a513885: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
