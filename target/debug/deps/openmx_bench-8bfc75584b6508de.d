/root/repo/target/debug/deps/openmx_bench-8bfc75584b6508de.d: crates/bench/src/lib.rs crates/bench/src/chaos.rs crates/bench/src/microbench.rs crates/bench/src/paper.rs crates/bench/src/pingpong.rs crates/bench/src/sweep.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/openmx_bench-8bfc75584b6508de: crates/bench/src/lib.rs crates/bench/src/chaos.rs crates/bench/src/microbench.rs crates/bench/src/paper.rs crates/bench/src/pingpong.rs crates/bench/src/sweep.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/chaos.rs:
crates/bench/src/microbench.rs:
crates/bench/src/paper.rs:
crates/bench/src/pingpong.rs:
crates/bench/src/sweep.rs:
crates/bench/src/table.rs:
