/root/repo/target/debug/deps/openmx_core-a945480b223b71a1.d: crates/core/src/lib.rs crates/core/src/cache.rs crates/core/src/config.rs crates/core/src/driver.rs crates/core/src/endpoint.rs crates/core/src/engine/mod.rs crates/core/src/engine/ctx.rs crates/core/src/engine/handlers.rs crates/core/src/engine/rto.rs crates/core/src/engine/xfer.rs crates/core/src/obs/mod.rs crates/core/src/obs/event.rs crates/core/src/obs/export.rs crates/core/src/obs/metrics.rs crates/core/src/obs/tracer.rs crates/core/src/region.rs crates/core/src/wire.rs

/root/repo/target/debug/deps/libopenmx_core-a945480b223b71a1.rlib: crates/core/src/lib.rs crates/core/src/cache.rs crates/core/src/config.rs crates/core/src/driver.rs crates/core/src/endpoint.rs crates/core/src/engine/mod.rs crates/core/src/engine/ctx.rs crates/core/src/engine/handlers.rs crates/core/src/engine/rto.rs crates/core/src/engine/xfer.rs crates/core/src/obs/mod.rs crates/core/src/obs/event.rs crates/core/src/obs/export.rs crates/core/src/obs/metrics.rs crates/core/src/obs/tracer.rs crates/core/src/region.rs crates/core/src/wire.rs

/root/repo/target/debug/deps/libopenmx_core-a945480b223b71a1.rmeta: crates/core/src/lib.rs crates/core/src/cache.rs crates/core/src/config.rs crates/core/src/driver.rs crates/core/src/endpoint.rs crates/core/src/engine/mod.rs crates/core/src/engine/ctx.rs crates/core/src/engine/handlers.rs crates/core/src/engine/rto.rs crates/core/src/engine/xfer.rs crates/core/src/obs/mod.rs crates/core/src/obs/event.rs crates/core/src/obs/export.rs crates/core/src/obs/metrics.rs crates/core/src/obs/tracer.rs crates/core/src/region.rs crates/core/src/wire.rs

crates/core/src/lib.rs:
crates/core/src/cache.rs:
crates/core/src/config.rs:
crates/core/src/driver.rs:
crates/core/src/endpoint.rs:
crates/core/src/engine/mod.rs:
crates/core/src/engine/ctx.rs:
crates/core/src/engine/handlers.rs:
crates/core/src/engine/rto.rs:
crates/core/src/engine/xfer.rs:
crates/core/src/obs/mod.rs:
crates/core/src/obs/event.rs:
crates/core/src/obs/export.rs:
crates/core/src/obs/metrics.rs:
crates/core/src/obs/tracer.rs:
crates/core/src/region.rs:
crates/core/src/wire.rs:
