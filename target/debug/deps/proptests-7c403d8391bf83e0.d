/root/repo/target/debug/deps/proptests-7c403d8391bf83e0.d: tests/proptests.rs tests/common/mod.rs

/root/repo/target/debug/deps/proptests-7c403d8391bf83e0: tests/proptests.rs tests/common/mod.rs

tests/proptests.rs:
tests/common/mod.rs:
