/root/repo/target/debug/deps/table2-5b99ec5bd62226aa.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-5b99ec5bd62226aa: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
