/root/repo/target/debug/deps/robustness-c8a2fed4ff293d42.d: tests/robustness.rs tests/common/mod.rs

/root/repo/target/debug/deps/robustness-c8a2fed4ff293d42: tests/robustness.rs tests/common/mod.rs

tests/robustness.rs:
tests/common/mod.rs:
