/root/repo/target/debug/deps/openmx_core-688f3d44575f4a80.d: crates/core/src/lib.rs crates/core/src/cache.rs crates/core/src/config.rs crates/core/src/driver.rs crates/core/src/endpoint.rs crates/core/src/engine/mod.rs crates/core/src/engine/ctx.rs crates/core/src/engine/handlers.rs crates/core/src/engine/rto.rs crates/core/src/engine/xfer.rs crates/core/src/obs/mod.rs crates/core/src/obs/event.rs crates/core/src/obs/export.rs crates/core/src/obs/metrics.rs crates/core/src/obs/tracer.rs crates/core/src/region.rs crates/core/src/wire.rs Cargo.toml

/root/repo/target/debug/deps/libopenmx_core-688f3d44575f4a80.rmeta: crates/core/src/lib.rs crates/core/src/cache.rs crates/core/src/config.rs crates/core/src/driver.rs crates/core/src/endpoint.rs crates/core/src/engine/mod.rs crates/core/src/engine/ctx.rs crates/core/src/engine/handlers.rs crates/core/src/engine/rto.rs crates/core/src/engine/xfer.rs crates/core/src/obs/mod.rs crates/core/src/obs/event.rs crates/core/src/obs/export.rs crates/core/src/obs/metrics.rs crates/core/src/obs/tracer.rs crates/core/src/region.rs crates/core/src/wire.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/cache.rs:
crates/core/src/config.rs:
crates/core/src/driver.rs:
crates/core/src/endpoint.rs:
crates/core/src/engine/mod.rs:
crates/core/src/engine/ctx.rs:
crates/core/src/engine/handlers.rs:
crates/core/src/engine/rto.rs:
crates/core/src/engine/xfer.rs:
crates/core/src/obs/mod.rs:
crates/core/src/obs/event.rs:
crates/core/src/obs/export.rs:
crates/core/src/obs/metrics.rs:
crates/core/src/obs/tracer.rs:
crates/core/src/region.rs:
crates/core/src/wire.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
