/root/repo/target/debug/deps/simmem-a6ffac2f873934de.d: crates/simmem/src/lib.rs crates/simmem/src/addr.rs crates/simmem/src/error.rs crates/simmem/src/frame.rs crates/simmem/src/heap.rs crates/simmem/src/space.rs crates/simmem/src/vma.rs

/root/repo/target/debug/deps/libsimmem-a6ffac2f873934de.rlib: crates/simmem/src/lib.rs crates/simmem/src/addr.rs crates/simmem/src/error.rs crates/simmem/src/frame.rs crates/simmem/src/heap.rs crates/simmem/src/space.rs crates/simmem/src/vma.rs

/root/repo/target/debug/deps/libsimmem-a6ffac2f873934de.rmeta: crates/simmem/src/lib.rs crates/simmem/src/addr.rs crates/simmem/src/error.rs crates/simmem/src/frame.rs crates/simmem/src/heap.rs crates/simmem/src/space.rs crates/simmem/src/vma.rs

crates/simmem/src/lib.rs:
crates/simmem/src/addr.rs:
crates/simmem/src/error.rs:
crates/simmem/src/frame.rs:
crates/simmem/src/heap.rs:
crates/simmem/src/space.rs:
crates/simmem/src/vma.rs:
