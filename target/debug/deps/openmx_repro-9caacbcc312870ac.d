/root/repo/target/debug/deps/openmx_repro-9caacbcc312870ac.d: src/lib.rs

/root/repo/target/debug/deps/libopenmx_repro-9caacbcc312870ac.rlib: src/lib.rs

/root/repo/target/debug/deps/libopenmx_repro-9caacbcc312870ac.rmeta: src/lib.rs

src/lib.rs:
