/root/repo/target/debug/deps/hints-820a4b41ed28af5d.d: crates/core/tests/hints.rs

/root/repo/target/debug/deps/hints-820a4b41ed28af5d: crates/core/tests/hints.rs

crates/core/tests/hints.rs:
