/root/repo/target/debug/deps/simnet-d4405d59d314a758.d: crates/simnet/src/lib.rs crates/simnet/src/frame.rs crates/simnet/src/ioat.rs crates/simnet/src/net.rs

/root/repo/target/debug/deps/simnet-d4405d59d314a758: crates/simnet/src/lib.rs crates/simnet/src/frame.rs crates/simnet/src/ioat.rs crates/simnet/src/net.rs

crates/simnet/src/lib.rs:
crates/simnet/src/frame.rs:
crates/simnet/src/ioat.rs:
crates/simnet/src/net.rs:
