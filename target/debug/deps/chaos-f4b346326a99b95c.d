/root/repo/target/debug/deps/chaos-f4b346326a99b95c.d: crates/bench/src/bin/chaos.rs Cargo.toml

/root/repo/target/debug/deps/libchaos-f4b346326a99b95c.rmeta: crates/bench/src/bin/chaos.rs Cargo.toml

crates/bench/src/bin/chaos.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
