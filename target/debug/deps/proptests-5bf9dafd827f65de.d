/root/repo/target/debug/deps/proptests-5bf9dafd827f65de.d: tests/proptests.rs tests/common/mod.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-5bf9dafd827f65de.rmeta: tests/proptests.rs tests/common/mod.rs Cargo.toml

tests/proptests.rs:
tests/common/mod.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
