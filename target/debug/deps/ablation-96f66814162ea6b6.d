/root/repo/target/debug/deps/ablation-96f66814162ea6b6.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-96f66814162ea6b6: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
