/root/repo/target/debug/deps/openmx_repro-829509dd5ccd148c.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libopenmx_repro-829509dd5ccd148c.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
