/root/repo/target/debug/deps/openmx_repro-ab66d4730a85a873.d: src/lib.rs

/root/repo/target/debug/deps/openmx_repro-ab66d4730a85a873: src/lib.rs

src/lib.rs:
