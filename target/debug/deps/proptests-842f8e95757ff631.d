/root/repo/target/debug/deps/proptests-842f8e95757ff631.d: crates/simmem/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-842f8e95757ff631.rmeta: crates/simmem/tests/proptests.rs Cargo.toml

crates/simmem/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
