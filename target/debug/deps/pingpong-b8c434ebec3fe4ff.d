/root/repo/target/debug/deps/pingpong-b8c434ebec3fe4ff.d: crates/core/tests/pingpong.rs Cargo.toml

/root/repo/target/debug/deps/libpingpong-b8c434ebec3fe4ff.rmeta: crates/core/tests/pingpong.rs Cargo.toml

crates/core/tests/pingpong.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
