/root/repo/target/debug/deps/simmem-9b06c41020b811c8.d: crates/simmem/src/lib.rs crates/simmem/src/addr.rs crates/simmem/src/error.rs crates/simmem/src/frame.rs crates/simmem/src/heap.rs crates/simmem/src/space.rs crates/simmem/src/vma.rs Cargo.toml

/root/repo/target/debug/deps/libsimmem-9b06c41020b811c8.rmeta: crates/simmem/src/lib.rs crates/simmem/src/addr.rs crates/simmem/src/error.rs crates/simmem/src/frame.rs crates/simmem/src/heap.rs crates/simmem/src/space.rs crates/simmem/src/vma.rs Cargo.toml

crates/simmem/src/lib.rs:
crates/simmem/src/addr.rs:
crates/simmem/src/error.rs:
crates/simmem/src/frame.rs:
crates/simmem/src/heap.rs:
crates/simmem/src/space.rs:
crates/simmem/src/vma.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
