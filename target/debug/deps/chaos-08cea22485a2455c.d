/root/repo/target/debug/deps/chaos-08cea22485a2455c.d: crates/bench/src/bin/chaos.rs

/root/repo/target/debug/deps/chaos-08cea22485a2455c: crates/bench/src/bin/chaos.rs

crates/bench/src/bin/chaos.rs:
