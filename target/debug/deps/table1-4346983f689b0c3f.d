/root/repo/target/debug/deps/table1-4346983f689b0c3f.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-4346983f689b0c3f: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
