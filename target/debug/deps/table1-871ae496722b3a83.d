/root/repo/target/debug/deps/table1-871ae496722b3a83.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-871ae496722b3a83: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
