/root/repo/target/debug/deps/obs_trace-8cca6e5155fc365f.d: crates/core/tests/obs_trace.rs

/root/repo/target/debug/deps/obs_trace-8cca6e5155fc365f: crates/core/tests/obs_trace.rs

crates/core/tests/obs_trace.rs:
