/root/repo/target/debug/deps/simulation-ee7099d278cf3e62.d: crates/bench/benches/simulation.rs Cargo.toml

/root/repo/target/debug/deps/libsimulation-ee7099d278cf3e62.rmeta: crates/bench/benches/simulation.rs Cargo.toml

crates/bench/benches/simulation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
