/root/repo/target/debug/deps/timeline-a1d6e9d975b757bc.d: crates/bench/src/bin/timeline.rs

/root/repo/target/debug/deps/timeline-a1d6e9d975b757bc: crates/bench/src/bin/timeline.rs

crates/bench/src/bin/timeline.rs:
