/root/repo/target/debug/deps/overload-1480c88887e507ed.d: crates/bench/src/bin/overload.rs Cargo.toml

/root/repo/target/debug/deps/liboverload-1480c88887e507ed.rmeta: crates/bench/src/bin/overload.rs Cargo.toml

crates/bench/src/bin/overload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
