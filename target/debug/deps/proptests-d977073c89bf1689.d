/root/repo/target/debug/deps/proptests-d977073c89bf1689.d: crates/simmem/tests/proptests.rs

/root/repo/target/debug/deps/proptests-d977073c89bf1689: crates/simmem/tests/proptests.rs

crates/simmem/tests/proptests.rs:
