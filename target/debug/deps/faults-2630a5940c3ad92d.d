/root/repo/target/debug/deps/faults-2630a5940c3ad92d.d: tests/faults.rs tests/common/mod.rs

/root/repo/target/debug/deps/faults-2630a5940c3ad92d: tests/faults.rs tests/common/mod.rs

tests/faults.rs:
tests/common/mod.rs:
