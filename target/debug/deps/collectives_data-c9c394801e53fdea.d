/root/repo/target/debug/deps/collectives_data-c9c394801e53fdea.d: tests/collectives_data.rs tests/common/mod.rs Cargo.toml

/root/repo/target/debug/deps/libcollectives_data-c9c394801e53fdea.rmeta: tests/collectives_data.rs tests/common/mod.rs Cargo.toml

tests/collectives_data.rs:
tests/common/mod.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
