/root/repo/target/debug/deps/robustness-7406758a9887a126.d: tests/robustness.rs tests/common/mod.rs Cargo.toml

/root/repo/target/debug/deps/librobustness-7406758a9887a126.rmeta: tests/robustness.rs tests/common/mod.rs Cargo.toml

tests/robustness.rs:
tests/common/mod.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
