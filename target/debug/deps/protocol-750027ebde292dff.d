/root/repo/target/debug/deps/protocol-750027ebde292dff.d: crates/core/tests/protocol.rs Cargo.toml

/root/repo/target/debug/deps/libprotocol-750027ebde292dff.rmeta: crates/core/tests/protocol.rs Cargo.toml

crates/core/tests/protocol.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
