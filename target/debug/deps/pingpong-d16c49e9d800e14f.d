/root/repo/target/debug/deps/pingpong-d16c49e9d800e14f.d: crates/core/tests/pingpong.rs

/root/repo/target/debug/deps/pingpong-d16c49e9d800e14f: crates/core/tests/pingpong.rs

crates/core/tests/pingpong.rs:
