/root/repo/target/debug/deps/structures-53c5a53a1e271898.d: crates/bench/benches/structures.rs

/root/repo/target/debug/deps/structures-53c5a53a1e271898: crates/bench/benches/structures.rs

crates/bench/benches/structures.rs:
