/root/repo/target/debug/deps/protocol-e393d6379052ee19.d: crates/core/tests/protocol.rs

/root/repo/target/debug/deps/protocol-e393d6379052ee19: crates/core/tests/protocol.rs

crates/core/tests/protocol.rs:
