/root/repo/target/debug/deps/openmx_bench-f99ca1decda7042d.d: crates/bench/src/lib.rs crates/bench/src/chaos.rs crates/bench/src/microbench.rs crates/bench/src/paper.rs crates/bench/src/pingpong.rs crates/bench/src/sweep.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libopenmx_bench-f99ca1decda7042d.rlib: crates/bench/src/lib.rs crates/bench/src/chaos.rs crates/bench/src/microbench.rs crates/bench/src/paper.rs crates/bench/src/pingpong.rs crates/bench/src/sweep.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libopenmx_bench-f99ca1decda7042d.rmeta: crates/bench/src/lib.rs crates/bench/src/chaos.rs crates/bench/src/microbench.rs crates/bench/src/paper.rs crates/bench/src/pingpong.rs crates/bench/src/sweep.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/chaos.rs:
crates/bench/src/microbench.rs:
crates/bench/src/paper.rs:
crates/bench/src/pingpong.rs:
crates/bench/src/sweep.rs:
crates/bench/src/table.rs:
