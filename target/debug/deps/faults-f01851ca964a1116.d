/root/repo/target/debug/deps/faults-f01851ca964a1116.d: tests/faults.rs tests/common/mod.rs Cargo.toml

/root/repo/target/debug/deps/libfaults-f01851ca964a1116.rmeta: tests/faults.rs tests/common/mod.rs Cargo.toml

tests/faults.rs:
tests/common/mod.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
