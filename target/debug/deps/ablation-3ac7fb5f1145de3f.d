/root/repo/target/debug/deps/ablation-3ac7fb5f1145de3f.d: crates/bench/src/bin/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-3ac7fb5f1145de3f.rmeta: crates/bench/src/bin/ablation.rs Cargo.toml

crates/bench/src/bin/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
