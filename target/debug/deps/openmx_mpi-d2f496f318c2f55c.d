/root/repo/target/debug/deps/openmx_mpi-d2f496f318c2f55c.d: crates/mpi/src/lib.rs crates/mpi/src/collectives.rs crates/mpi/src/imb.rs crates/mpi/src/npb.rs crates/mpi/src/script.rs Cargo.toml

/root/repo/target/debug/deps/libopenmx_mpi-d2f496f318c2f55c.rmeta: crates/mpi/src/lib.rs crates/mpi/src/collectives.rs crates/mpi/src/imb.rs crates/mpi/src/npb.rs crates/mpi/src/script.rs Cargo.toml

crates/mpi/src/lib.rs:
crates/mpi/src/collectives.rs:
crates/mpi/src/imb.rs:
crates/mpi/src/npb.rs:
crates/mpi/src/script.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
