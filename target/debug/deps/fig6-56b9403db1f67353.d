/root/repo/target/debug/deps/fig6-56b9403db1f67353.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-56b9403db1f67353: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
