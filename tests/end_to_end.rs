//! Cross-crate end-to-end tests: every pinning mode moves bytes correctly
//! through the full stack (VM substrate → driver → wire protocol →
//! fabric → driver → VM substrate), including under packet loss and
//! receive-side truncation.

mod common;

use common::{cfg, verified_stream};
use openmx_core::{OpenMxConfig, PinningMode, ProcId};
use openmx_mpi::collectives::JobBuilder;
use openmx_mpi::{run_job, Op};

#[test]
fn every_mode_delivers_intact_data() {
    for mode in PinningMode::all() {
        for ioat in [false, true] {
            let mut c = cfg(mode);
            c.use_ioat = ioat;
            let (cl, _) = verified_stream(&c, 1 << 20, 3);
            assert_eq!(
                cl.counters().get("requests_failed"),
                0,
                "{mode:?} ioat={ioat}"
            );
        }
    }
}

#[test]
fn eager_and_rendezvous_boundary_sizes() {
    // Straddle the 32 kB eager threshold and the pull-block/frame edges.
    let c = cfg(PinningMode::OverlappedCached);
    for len in [
        1u64,
        4096,
        32 * 1024 - 1, // largest eager
        32 * 1024,     // smallest rendezvous
        64 * 1024,     // exactly one pull block
        64 * 1024 + 1,
        8968, // exactly one jumbo frame payload
        8969,
        128 * 1024 + 13,
    ] {
        let (cl, _) = verified_stream(&c, len, 2);
        assert_eq!(cl.counters().get("requests_failed"), 0, "len={len}");
    }
}

#[test]
fn survives_random_packet_loss() {
    let mut c = cfg(PinningMode::OverlappedCached);
    c.net.loss_probability = 0.02;
    // Shorter timeout keeps the virtual clock reasonable; recovery logic
    // is identical.
    c.retransmit_timeout = simcore::SimDuration::from_millis(50);
    let (cl, _) = verified_stream(&c, 1 << 20, 4);
    let counters = cl.counters();
    assert_eq!(counters.get("requests_failed"), 0);
    let lost = counters.get("net_frames_lost");
    assert!(lost > 0, "2% loss over ~500 frames must drop something");
    let recovered = counters.get("pull_stall_timeouts")
        + counters.get("pull_rereq_optimistic")
        + counters.get("rndv_retrans")
        + counters.get("eager_retrans")
        + counters.get("notify_retrans");
    assert!(recovered > 0, "losses must trigger recovery machinery");
}

#[test]
fn survives_loss_on_eager_traffic() {
    let mut c = cfg(PinningMode::Cached);
    c.net.loss_probability = 0.05;
    c.retransmit_timeout = simcore::SimDuration::from_millis(20);
    let (cl, _) = verified_stream(&c, 16 * 1024, 20);
    assert_eq!(cl.counters().get("requests_failed"), 0);
}

#[test]
fn receive_truncation_delivers_posted_length() {
    // Sender announces 1 MiB; receiver posts only 256 KiB. MX semantics:
    // the transfer truncates to the posted length.
    let send_len: u64 = 1 << 20;
    let recv_len: u64 = 256 * 1024;
    let mut b = JobBuilder::new(2);
    let sbuf = b.alloc(send_len, |_| Some(0x11));
    let rbuf = b.alloc(recv_len, |_| None);
    let tag = b.tag();
    b.step_all(|r| match r {
        0 => vec![Op::Send {
            to: 1,
            tag,
            buf: sbuf,
            offset: 0,
            len: send_len,
        }],
        1 => vec![Op::Recv {
            from: 0,
            tag,
            buf: rbuf,
            offset: 0,
            len: recv_len,
        }],
        _ => vec![],
    });
    let (mut cl, records) = run_job(&cfg(PinningMode::OverlappedCached), 2, 1, b.scripts);
    assert!(records.iter().all(|r| r.failures.is_empty()));
    let addr = records[1].buffer_addrs[rbuf];
    let got = cl.read_proc(ProcId(1), addr, recv_len);
    assert!(got.iter().enumerate().all(|(i, &v)| v == (i as u8) ^ 0x11));
    // Only the truncated length crossed the fabric (plus control frames).
    let delivered = cl.net_stats().payload_bytes_delivered;
    assert!(
        delivered < recv_len + 64 * 1024,
        "sender must not push the full 1 MiB: {delivered}"
    );
}

#[test]
fn pinned_pages_return_to_zero_after_runs() {
    for mode in [PinningMode::PinPerComm, PinningMode::Overlapped] {
        let (cl, _) = verified_stream(&cfg(mode), 1 << 20, 3);
        for node in 0..2 {
            assert_eq!(
                cl.node_counters(node).get("pin_pages"),
                cl.node_counters(node).get("unpin_pages"),
                "{mode:?} node {node}: pins must balance"
            );
        }
    }
}

#[test]
fn standard_mtu_fabric_works_too() {
    let mut c: OpenMxConfig = cfg(PinningMode::OverlappedCached);
    c.net = simnet::NetConfig::gige();
    c.pull_block = 16 * 1024; // keep frames/block within the 64-bit mask
    let (cl, _) = verified_stream(&c, 256 * 1024, 2);
    assert_eq!(cl.counters().get("requests_failed"), 0);
}
