//! Robustness: pinned-page pressure, invalid regions, buffer churn under
//! the cache, and determinism.

mod common;

use std::cell::Cell;
use std::rc::Rc;

use common::{cfg, verified_stream};
use openmx_core::engine::{AppEvent, Cluster, Ctx, ProcId, Process};
use openmx_core::PinningMode;
use openmx_mpi::collectives::JobBuilder;
use openmx_mpi::{run_job, Op};
use simmem::VirtAddr;

#[test]
fn pinned_page_pressure_evicts_idle_regions() {
    // Cache mode with a tight pinned-page budget: 8 distinct 1 MiB
    // buffers (256 pages each) under a 1024-page ceiling. The driver must
    // evict idle pinned regions instead of failing, and the peak must
    // respect the ceiling (pins of in-flight transfers included).
    let mut c = cfg(PinningMode::Cached);
    c.pinned_pages_limit = Some(1024);
    let len = 1 << 20;
    let bufs = 8usize;
    let mut b = JobBuilder::new(2);
    let mut sbufs = Vec::new();
    for i in 0..bufs {
        sbufs.push(b.alloc(len, |_| Some(i as u8)));
    }
    let rbuf = b.alloc(len, |_| None);
    for round in 0..2 {
        for (i, &sbuf) in sbufs.iter().enumerate() {
            let tag = (round * bufs + i) as u32 + 100;
            b.step_all(move |r| match r {
                0 => vec![Op::Send {
                    to: 1,
                    tag,
                    buf: sbuf,
                    offset: 0,
                    len,
                }],
                1 => vec![Op::Recv {
                    from: 0,
                    tag,
                    buf: rbuf,
                    offset: 0,
                    len,
                }],
                _ => vec![],
            });
        }
    }
    let (cl, records) = run_job(&c, 2, 1, b.scripts);
    assert!(records.iter().all(|r| r.failures.is_empty()));
    let counters = cl.counters();
    assert!(
        counters.get("pressure_unpinned_pages") > 0,
        "the ceiling must force pressure eviction"
    );
    for node in 0..2 {
        assert!(
            cl.pinned_peak(node) <= 1024 + 64,
            "node {node} peak {} exceeded the ceiling",
            cl.pinned_peak(node)
        );
    }
}

/// A process that sends from an address that was never mapped.
struct BadSender {
    failed: Rc<Cell<bool>>,
}

impl Process for BadSender {
    fn start(&mut self, ctx: &mut Ctx<'_>) {
        // Large enough for the rendezvous path: declaration succeeds,
        // pinning fails at communication time (paper §3.1).
        ctx.isend(ProcId(1), 9, VirtAddr(0x7000_0000), 256 * 1024);
    }
    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: AppEvent) {
        match ev {
            AppEvent::Failed(_, reason) => {
                assert!(reason.contains("pinning failed"), "reason: {reason}");
                self.failed.set(true);
                ctx.stop();
            }
            other => panic!("expected failure, got {other:?}"),
        }
    }
}

struct IdleReceiver;
impl Process for IdleReceiver {
    fn start(&mut self, ctx: &mut Ctx<'_>) {
        // Posts a receive that will never complete; stop right away so the
        // run can quiesce.
        ctx.stop();
    }
    fn on_event(&mut self, _ctx: &mut Ctx<'_>, _ev: AppEvent) {}
}

#[test]
fn invalid_region_aborts_request_with_error() {
    for mode in [PinningMode::PinPerComm, PinningMode::Overlapped] {
        let failed = Rc::new(Cell::new(false));
        let mut cl = Cluster::new(cfg(mode), 2);
        cl.add_process(
            0,
            Box::new(BadSender {
                failed: failed.clone(),
            }),
        );
        cl.add_process(1, Box::new(IdleReceiver));
        cl.run(Some(simcore::SimTime::from_nanos(30_000_000_000)));
        assert!(failed.get(), "{mode:?}: request must abort");
        assert_eq!(cl.counters().get("pin_failures"), 1);
    }
}

#[test]
fn buffer_churn_with_cache_stays_correct() {
    // Realloc between sends: the cache key (address) stays the same, the
    // physical pages change every round. MMU notifiers keep it correct.
    let len = 512 * 1024u64;
    let rounds = 6u32;
    let mut b = JobBuilder::new(2);
    let sbuf = b.alloc(len, |_| Some(0x77));
    let rbuf = b.alloc(len, |_| None);
    for i in 0..rounds {
        let tag = 50 + i;
        b.step_all(|r| match r {
            0 => vec![Op::Send {
                to: 1,
                tag,
                buf: sbuf,
                offset: 0,
                len,
            }],
            1 => vec![Op::Recv {
                from: 0,
                tag,
                buf: rbuf,
                offset: 0,
                len,
            }],
            _ => vec![],
        });
        // Sender frees and re-mallocs its buffer (and must re-fill it,
        // since the fresh pages are zero).
        b.step_all(|r| {
            if r == 0 {
                vec![Op::Realloc { buf: sbuf }]
            } else {
                vec![]
            }
        });
        // Refill happens implicitly: Realloc keeps the init pattern? No —
        // ScriptProcess does not refill; so send rounds after the first
        // would carry zeros. To keep verification meaningful we stop the
        // data check at the engine level: the engine already asserts the
        // *driver* reads the current frames. Here we assert no failures
        // and that invalidations actually fired.
    }
    let (cl, records) = run_job(&cfg(PinningMode::Cached), 2, 1, b.scripts);
    assert!(records.iter().all(|r| r.failures.is_empty()));
    let c = cl.counters();
    // Each realloc of the pinned buffer must hit the notifier path. The
    // unpins themselves are deferred to the flush epoch now: every hit
    // lands in the deferred queue, and each entry is later either drained
    // (released) or cancelled by a repin that beat the epoch close.
    assert!(
        c.get("notifier_deferred") >= (rounds - 1) as u64,
        "each realloc of a pinned buffer must invalidate: {}",
        c.get("notifier_deferred")
    );
    assert!(
        c.get("notifier_region_unpins") + c.get("notifier_cancelled") > 0,
        "deferred entries must resolve at drain time"
    );
    assert_eq!(c.get("requests_failed"), 0);
}

#[test]
fn deterministic_imb_runs() {
    use openmx_mpi::{imb_job, summarize, ImbKernel};
    for kernel in [ImbKernel::SendRecv, ImbKernel::Allreduce] {
        let run = || {
            let (scripts, mark) = imb_job(kernel, 4, 256 * 1024, 1, 4);
            let (cl, records) = run_job(&cfg(PinningMode::OverlappedCached), 2, 2, scripts);
            let res = summarize(&records, mark, 4);
            (res.avg_iter, cl.counters().iter().collect::<Vec<_>>())
        };
        let a = run();
        let b = run();
        assert_eq!(a.0, b.0, "{kernel:?} timing must be deterministic");
        assert_eq!(a.1, b.1, "{kernel:?} counters must be deterministic");
    }
}

#[test]
fn large_transfer_through_tiny_frame_pool_fails_gracefully() {
    // A node with fewer frames than the message needs: the pin must fail
    // with OOM and the request abort rather than wedging the cluster.
    let mut c = cfg(PinningMode::PinPerComm);
    c.frames_per_node = 128; // 512 KiB of RAM
    let failed = Rc::new(Cell::new(false));

    struct OomSender {
        failed: Rc<Cell<bool>>,
    }
    impl Process for OomSender {
        fn start(&mut self, ctx: &mut Ctx<'_>) {
            let buf = ctx.malloc(256 * 1024); // fits virtually
            ctx.isend(ProcId(1), 3, buf, 256 * 1024);
            // Fill more RAM so pinning runs out of frames.
            let hog = ctx.malloc(240 * 1024);
            ctx.write_buf(hog, &vec![1u8; 240 * 1024]);
        }
        fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: AppEvent) {
            if let AppEvent::Failed(..) = ev {
                self.failed.set(true);
            }
            ctx.stop();
        }
    }

    let mut cl = Cluster::new(c, 2);
    cl.add_process(
        0,
        Box::new(OomSender {
            failed: failed.clone(),
        }),
    );
    cl.add_process(1, Box::new(IdleReceiver));
    cl.run(Some(simcore::SimTime::from_nanos(30_000_000_000)));
    assert!(failed.get(), "OOM during pin must abort the request");
}

#[test]
fn stream_works_at_many_sizes_zero_copy_invariants() {
    // A final broad matrix: every size x two modes, checking the pin
    // accounting invariant (everything unpinned at the end in non-cached
    // modes).
    for mode in [PinningMode::Overlapped, PinningMode::PinPerComm] {
        for len in [40_000u64, 300_000, 3_000_000] {
            let (cl, _) = verified_stream(&cfg(mode), len, 2);
            for node in 0..2 {
                let c = cl.node_counters(node);
                assert_eq!(
                    c.get("pin_pages"),
                    c.get("unpin_pages"),
                    "{mode:?} len={len} node={node}"
                );
            }
        }
    }
}
