//! Shared helpers for the workspace integration tests.
#![allow(dead_code)] // each test binary uses a subset of these helpers

use openmx_core::{Cluster, OpenMxConfig, PinningMode, ProcId};
use openmx_mpi::collectives::JobBuilder;
use openmx_mpi::script::RankRecord;
use openmx_mpi::{run_job, Op};

/// Run a one-way stream of `msgs` messages of `len` bytes from rank 0 to
/// rank 1 (two nodes) and verify the payload arrived intact.
pub fn verified_stream(cfg: &OpenMxConfig, len: u64, msgs: u32) -> (Cluster, Vec<RankRecord>) {
    let mut b = JobBuilder::new(2);
    let sbuf = b.alloc(len, |_| Some(0x6b));
    let rbuf = b.alloc(len, |_| None);
    for _ in 0..msgs {
        let tag = b.tag();
        b.step_all(|r| match r {
            0 => vec![Op::Send {
                to: 1,
                tag,
                buf: sbuf,
                offset: 0,
                len,
            }],
            1 => vec![Op::Recv {
                from: 0,
                tag,
                buf: rbuf,
                offset: 0,
                len,
            }],
            _ => vec![],
        });
    }
    let (mut cl, records) = run_job(cfg, 2, 1, b.scripts);
    for rec in &records {
        assert!(rec.failures.is_empty(), "failures: {:?}", rec.failures);
        assert!(rec.finished.is_some());
    }
    let addr = records[1].buffer_addrs[rbuf];
    let got = cl.read_proc(ProcId(1), addr, len);
    for (i, &v) in got.iter().enumerate() {
        assert_eq!(v, (i as u8) ^ 0x6b, "byte {i} corrupted");
    }
    (cl, records)
}

/// A config for the given mode on the paper's platform.
pub fn cfg(mode: PinningMode) -> OpenMxConfig {
    OpenMxConfig::with_mode(mode)
}
