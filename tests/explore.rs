//! Simulation-test harness regression suite.
//!
//! Three layers of defense, all replayable from strings or single seeds:
//!
//! * a smoke sweep of freshly generated schedules per op-mix profile,
//! * a pinned corpus of repro strings (schedules that exercise every
//!   churn kind against in-flight transfers) replayed verbatim,
//! * mutation tests proving the invariant oracle actually catches the
//!   bug classes it claims to, and that the shrinker minimizes a failure
//!   to a handful of ops whose repro string replays deterministically.

use simtest::{
    decode, encode, explore, generate, profile_by_name, profiles, run_schedule_catching, shrink,
    Mutation, Violation,
};

#[test]
fn explore_smoke_all_profiles() {
    for p in profiles() {
        let r = explore(&p, 0, 3, 10);
        assert_eq!(r.runs, 3);
        assert!(
            r.failures.is_empty(),
            "profile {}: seed 0x{:x} violated: {:?}",
            p.name,
            r.failures[0].seed,
            r.failures[0].violations
        );
        assert!(r.xfers > 0, "profile {} posted no transfers", p.name);
        assert!(
            r.completions > 0,
            "profile {} observed no completions",
            p.name
        );
    }
}

/// Pinned corpus: hand-minimized schedules covering each churn kind
/// landing on an in-flight transfer. Replayed verbatim from the repro
/// string — exactly the path a shrunk failure report would take.
#[test]
fn pinned_repro_corpus_is_clean() {
    let corpus = [
        // Eager transfer, receive posted first.
        "EXPL1;seed=0x1;profile=churn;nodes=2;ppn=1;ops=X0.0>1.0:2048r,A10",
        // Eager transfer on the unexpected path (recv delayed).
        "EXPL1;seed=0x2;profile=churn;nodes=2;ppn=1;ops=X0.0>1.0:16384s,A10",
        // Rendezvous with the send buffer unmapped mid-flight.
        "EXPL1;seed=0x3;profile=churn;nodes=2;ppn=1;ops=X0.0>1.0:262144r,A1,U0.0,A40",
        // Rendezvous with the recv buffer unmapped and remapped mid-flight.
        "EXPL1;seed=0x4;profile=churn;nodes=2;ppn=1;ops=X0.0>1.0:262144r,A1,R1.0,A40",
        // Fork + COW write on the sender while a rendezvous is in flight.
        "EXPL1;seed=0x5;profile=churn;nodes=2;ppn=1;ops=X0.0>1.0:131072r,F0.0,A40",
        // Swap-out/in of the send buffer (content-preserving: data oracle
        // still checks the delivered bytes).
        "EXPL1;seed=0x6;profile=churn;nodes=2;ppn=1;ops=X0.0>1.0:131072r,O0.0,A2,I0.0,A40",
        // Page migration of the recv buffer mid-flight.
        "EXPL1;seed=0x7;profile=churn;nodes=2;ppn=1;ops=X0.0>1.0:131072r,A1,M1.0,A40",
        // Sender rewrites its buffer while the transfer is in flight.
        "EXPL1;seed=0x8;profile=churn;nodes=2;ppn=1;ops=X0.0>1.0:262144r,A1,W0.0,A40",
        // Crossing rendezvous transfers between two node pairs, 2 procs/node.
        "EXPL1;seed=0x9;profile=churn;nodes=2;ppn=2;ops=X0.0>3.0:262144r,X2.1>1.1:131072s,A60",
        // Rendezvous under loss, duplication and reordering.
        "EXPL1;seed=0xa;profile=lossy;nodes=2;ppn=1;ops=X0.0>1.0:262144r,A80",
        // Pin-pressure eviction: three large transfers through a 96-page
        // pin budget, with swap-out churn on an idle buffer.
        "EXPL1;seed=0xb;profile=pressure;nodes=3;ppn=1;ops=\
         X0.0>1.0:262144r,X1.1>2.0:262144r,O2.2,X2.1>0.1:131072s,A80",
        // Notifier-during-pin race: the send buffer is unmapped in the
        // same tick the rendezvous posts, so the invalidation lands while
        // the overlapped pin pass is still in flight — the generation
        // stamp must restart the pass instead of re-pinning freed pages.
        "EXPL1;seed=0xc;profile=trimstorm;nodes=2;ppn=1;ops=X0.0>1.0:262144r,U0.0,A40",
        // Trim/remap churn that cancels its own deferred unpins: the recv
        // buffer is remapped twice inside one flush epoch while the pull
        // traffic is in flight.
        "EXPL1;seed=0xd;profile=trimstorm;nodes=2;ppn=1;ops=X0.0>1.0:262144r,R1.0,A1,R1.0,A40",
    ];
    for repro in corpus {
        let s = decode(repro)
            .unwrap_or_else(|e| panic!("corpus entry failed to decode: {e}\n  {repro}"));
        assert_eq!(encode(&s), repro.replace(['\n', ' '], ""));
        let out = run_schedule_catching(&s, None);
        assert!(
            out.violations.is_empty(),
            "corpus repro violated: {:?}\n  {repro}",
            out.violations
        );
        assert!(out.xfers > 0);
    }
}

/// Acceptance mutation: a deliberately leaked page pin must be caught by
/// the pin-accounting invariant, shrink to a handful of ops, and replay
/// deterministically from the printed repro string.
#[test]
fn injected_pin_leak_is_caught_shrinks_and_replays() {
    let p = profile_by_name("churn").unwrap();
    let s = generate(7, &p);
    let m = Some(Mutation::LeakPin { after_op: 5 });

    let out = run_schedule_catching(&s, m);
    assert!(
        out.violations
            .iter()
            .any(|v| matches!(v, Violation::PinAccounting { .. })),
        "leaked pin not caught: {:?}",
        out.violations
    );

    let (small, _runs) = shrink(&s, m, 300);
    assert!(
        small.ops.len() <= 10,
        "shrunk schedule still has {} ops",
        small.ops.len()
    );

    // The repro string round-trips and two replays agree exactly.
    let repro = encode(&small);
    let replay = decode(&repro).expect("repro string must decode");
    assert_eq!(replay, small);
    let a = run_schedule_catching(&replay, m);
    let b = run_schedule_catching(&replay, m);
    assert!(!a.violations.is_empty(), "shrunk repro no longer fails");
    assert_eq!(a.violations, b.violations, "replay is not deterministic");
    assert_eq!(a.ops_executed, b.ops_executed);
}

/// A swallowed completion must surface as a conservation violation
/// (the pair never settles → Hang), not pass silently.
#[test]
fn swallowed_completion_is_caught() {
    let p = profile_by_name("churn").unwrap();
    let s = generate(3, &p);
    let m = Some(Mutation::SwallowCompletion { nth: 0 });
    let out = run_schedule_catching(&s, m);
    assert!(
        out.violations
            .iter()
            .any(|v| matches!(v, Violation::Hang { .. })),
        "swallowed completion not caught: {:?}",
        out.violations
    );
}
