//! Simulation-test harness regression suite.
//!
//! Three layers of defense, all replayable from strings or single seeds:
//!
//! * a smoke sweep of freshly generated schedules per op-mix profile,
//! * a pinned corpus of repro strings (schedules that exercise every
//!   churn kind against in-flight transfers) replayed verbatim,
//! * mutation tests proving the invariant oracle actually catches the
//!   bug classes it claims to, and that the shrinker minimizes a failure
//!   to a handful of ops whose repro string replays deterministically.

use simtest::{
    decode, encode, explore, generate, profile_by_name, profiles, run_schedule_catching, shrink,
    Mutation, Violation,
};

#[test]
fn explore_smoke_all_profiles() {
    for p in profiles() {
        let r = explore(&p, 0, 3, 10);
        assert_eq!(r.runs, 3);
        assert!(
            r.failures.is_empty(),
            "profile {}: seed 0x{:x} violated: {:?}",
            p.name,
            r.failures[0].seed,
            r.failures[0].violations
        );
        assert!(r.xfers > 0, "profile {} posted no transfers", p.name);
        assert!(
            r.completions > 0,
            "profile {} observed no completions",
            p.name
        );
    }
}

/// Pinned corpus: hand-minimized schedules covering each churn kind
/// landing on an in-flight transfer. Replayed verbatim from the repro
/// string — exactly the path a shrunk failure report would take.
#[test]
fn pinned_repro_corpus_is_clean() {
    let corpus = [
        // Eager transfer, receive posted first.
        "EXPL1;seed=0x1;profile=churn;nodes=2;ppn=1;ops=X0.0>1.0:2048r,A10",
        // Eager transfer on the unexpected path (recv delayed).
        "EXPL1;seed=0x2;profile=churn;nodes=2;ppn=1;ops=X0.0>1.0:16384s,A10",
        // Rendezvous with the send buffer unmapped mid-flight.
        "EXPL1;seed=0x3;profile=churn;nodes=2;ppn=1;ops=X0.0>1.0:262144r,A1,U0.0,A40",
        // Rendezvous with the recv buffer unmapped and remapped mid-flight.
        "EXPL1;seed=0x4;profile=churn;nodes=2;ppn=1;ops=X0.0>1.0:262144r,A1,R1.0,A40",
        // Fork + COW write on the sender while a rendezvous is in flight.
        "EXPL1;seed=0x5;profile=churn;nodes=2;ppn=1;ops=X0.0>1.0:131072r,F0.0,A40",
        // Swap-out/in of the send buffer (content-preserving: data oracle
        // still checks the delivered bytes).
        "EXPL1;seed=0x6;profile=churn;nodes=2;ppn=1;ops=X0.0>1.0:131072r,O0.0,A2,I0.0,A40",
        // Page migration of the recv buffer mid-flight.
        "EXPL1;seed=0x7;profile=churn;nodes=2;ppn=1;ops=X0.0>1.0:131072r,A1,M1.0,A40",
        // Sender rewrites its buffer while the transfer is in flight.
        "EXPL1;seed=0x8;profile=churn;nodes=2;ppn=1;ops=X0.0>1.0:262144r,A1,W0.0,A40",
        // Crossing rendezvous transfers between two node pairs, 2 procs/node.
        "EXPL1;seed=0x9;profile=churn;nodes=2;ppn=2;ops=X0.0>3.0:262144r,X2.1>1.1:131072s,A60",
        // Rendezvous under loss, duplication and reordering.
        "EXPL1;seed=0xa;profile=lossy;nodes=2;ppn=1;ops=X0.0>1.0:262144r,A80",
        // Pin-pressure eviction: three large transfers through a 96-page
        // pin budget, with swap-out churn on an idle buffer.
        "EXPL1;seed=0xb;profile=pressure;nodes=3;ppn=1;ops=\
         X0.0>1.0:262144r,X1.1>2.0:262144r,O2.2,X2.1>0.1:131072s,A80",
        // Notifier-during-pin race: the send buffer is unmapped in the
        // same tick the rendezvous posts, so the invalidation lands while
        // the overlapped pin pass is still in flight — the generation
        // stamp must restart the pass instead of re-pinning freed pages.
        "EXPL1;seed=0xc;profile=trimstorm;nodes=2;ppn=1;ops=X0.0>1.0:262144r,U0.0,A40",
        // Trim/remap churn that cancels its own deferred unpins: the recv
        // buffer is remapped twice inside one flush epoch while the pull
        // traffic is in flight.
        "EXPL1;seed=0xd;profile=trimstorm;nodes=2;ppn=1;ops=X0.0>1.0:262144r,R1.0,A1,R1.0,A40",
        // Deferred drain racing an epoch-timer close under pin-budget
        // pressure: the unmapped send buffer parks 64 stale-held pages,
        // then the next 80-page pin overruns the 96-page budget while the
        // flush timer is still armed — submit_pin_chunk must drain the
        // deferred queue early (cheapest headroom) and the later timer
        // close must tolerate finding the queue already empty.
        "EXPL1;seed=0x10;profile=pressure;nodes=2;ppn=1;ops=\
         X0.0>1.0:262144r,A10,U0.0,X0.1>1.1:327680r,A80",
        // Region undeclared while parked in the deferred-unpin queue: the
        // trimmed buffer's region sits in the driver's pending set when
        // LRU churn on the tiny descriptor cache evicts and undeclares
        // it mid-epoch — the undeclare must also drop the pending entry,
        // or the drain would touch a recycled region slot.
        "EXPL1;seed=0x11;profile=trimstorm;nodes=2;ppn=1;ops=\
         X0.0>1.0:262144r,A10,R0.0,X0.1>1.1:49152r,X0.2>1.2:49152r,\
         X0.1>1.1:131072r,X0.2>1.2:131072r,A40",
    ];
    for repro in corpus {
        let s = decode(repro)
            .unwrap_or_else(|e| panic!("corpus entry failed to decode: {e}\n  {repro}"));
        assert_eq!(encode(&s), repro.replace(['\n', ' '], ""));
        let out = run_schedule_catching(&s, None);
        assert!(
            out.violations.is_empty(),
            "corpus repro violated: {:?}\n  {repro}",
            out.violations
        );
        assert!(out.xfers > 0);
    }
}

/// The two deferred-unpin edge repros must actually reach their edge, not
/// just pass: the counter signatures below were pinned from instrumented
/// runs and distinguish the paths from an ordinary timer drain.
#[test]
fn deferred_unpin_edge_repros_hit_their_paths() {
    // Pressure-forced early drain: the deferral parks, and exactly one
    // drain batch releases it (the timer close that follows finds the
    // queue empty and counts nothing). The drain — not LRU eviction —
    // provides the headroom, so node 0 does no pressure unpinning at all.
    let s = decode(
        "EXPL1;seed=0x10;profile=pressure;nodes=2;ppn=1;ops=\
         X0.0>1.0:262144r,A10,U0.0,X0.1>1.1:327680r,A80",
    )
    .unwrap();
    let out = run_schedule_catching(&s, None);
    assert!(out.violations.is_empty(), "{:?}", out.violations);
    let n0 = &out.driver_stats[0];
    assert_eq!(n0.notifier_deferred, 1, "unmap must park a deferral");
    assert_eq!(n0.notifier_drain_batches, 1, "early drain must release it");
    assert_eq!(n0.notifier_region_unpins, 1);
    assert_eq!(
        n0.pressure_unpinned_pages, 0,
        "the deferred drain, not pressure eviction, must provide headroom"
    );

    // Undeclare-while-parked: the deferral parks, then cache churn
    // undeclares the region before any drain runs — a parked entry that
    // vanishes without ever being drained is exactly this path's
    // signature (`notifier_deferred` counted, zero drain batches).
    let s = decode(
        "EXPL1;seed=0x11;profile=trimstorm;nodes=2;ppn=1;ops=\
         X0.0>1.0:262144r,A10,R0.0,X0.1>1.1:49152r,X0.2>1.2:49152r,\
         X0.1>1.1:131072r,X0.2>1.2:131072r,A40",
    )
    .unwrap();
    let out = run_schedule_catching(&s, None);
    assert!(out.violations.is_empty(), "{:?}", out.violations);
    let n0 = &out.driver_stats[0];
    assert_eq!(n0.notifier_deferred, 1, "trim must park a deferral");
    assert_eq!(
        n0.notifier_drain_batches, 0,
        "the undeclare must beat every drain to the parked entry"
    );
    assert_eq!(n0.notifier_region_unpins, 0);
}

/// Crash-at-every-phase pinned corpus: one hand-minimized schedule per
/// protocol phase a crash can land in. Each entry must stay violation
/// free *and* reproduce its pinned counter signature, so a regression
/// that silently stops exercising the phase (or stops reaping) fails
/// loudly here rather than in a soak.
#[test]
fn crash_phase_corpus_signatures() {
    // Phase 1: eager message in flight, receiver dies before the ack
    // returns — the eager watchdog must short-circuit the sender.
    let out = run("EXPL1;seed=0x20;profile=crashstorm;nodes=2;ppn=1;ops=X0.0>1.0:16384s,C1,A40");
    assert_eq!(out.counters.get("proc_crashes"), 1);
    assert!(out.counters.get("peer_dead_aborts") >= 1, "eager watchdog");
    assert!(out.counters.get("requests_failed") >= 1);

    // Phase 2: rendezvous sent but no pull ever starts (recv never
    // posted, receiver dies) — the rndv watchdog aborts before any pull
    // traffic exists.
    let out = run("EXPL1;seed=0x21;profile=crashstorm;nodes=2;ppn=1;ops=X0.0>1.0:262144s,C1,A60");
    assert_eq!(out.counters.get("rndv_msgs_tx"), 1);
    assert_eq!(
        out.counters.get("frames_rx"),
        1,
        "only the rndv frame may ever land — no pull traffic pre-crash"
    );
    assert!(out.counters.get("peer_dead_aborts") >= 1, "rndv watchdog");
    assert!(out.counters.get("requests_failed") >= 1);

    // Phase 3: pull mid-block, sender dies — in-flight pull replies are
    // fenced at the dead endpoint and the sender's pinned region is
    // reaped by the crash, not by protocol completion.
    let out =
        run("EXPL1;seed=0x22;profile=crashstorm;nodes=2;ppn=1;ops=X0.0>1.0:262144r,A1,C0,A80");
    assert!(out.counters.get("frames_fenced") >= 1, "mid-pull fencing");
    assert_eq!(out.counters.get("crash_reaped_pages"), 64);
    assert!(out.counters.get("peer_dead_aborts") >= 1);

    // Phase 4: deferred unpin parked, owner dies — the crash teardown
    // must reap the parked entry before any drain batch runs (signature:
    // a deferral counted, zero drains, pages reaped by the crash).
    let out =
        run("EXPL1;seed=0x23;profile=trimstorm;nodes=2;ppn=1;ops=X0.0>1.0:262144r,A30,U0.0,C0,A5");
    let n0 = &out.driver_stats[0];
    assert_eq!(n0.notifier_deferred, 1, "unmap must park a deferral");
    assert_eq!(
        n0.notifier_drain_batches, 0,
        "the crash must beat every drain to the parked entry"
    );
    assert_eq!(out.counters.get("crash_reaped_pages"), 64);

    // Phase 5: pin pass racing budget pressure, owner dies — the second
    // transfer's pin self-evicts the first region (128 pages of pressure
    // unpins), then the crash reaps the survivor's 80 pinned pages and
    // the in-flight plan without tripping pin accounting.
    let out = run("EXPL1;seed=0x24;profile=pressure;nodes=2;ppn=1;ops=\
         X0.0>1.0:262144r,A10,X0.1>1.1:327680r,C0,A80");
    assert_eq!(out.counters.get("pressure_unpinned_pages"), 128);
    assert_eq!(out.counters.get("crash_reaped_pages"), 80);
    assert!(out.counters.get("frames_fenced") >= 1);
    assert!(out.counters.get("peer_dead_aborts") >= 1);

    // Phase 6: full cycle — crash, restart with a bumped incarnation,
    // and a fresh transfer through the reborn endpoint.
    let out = run("EXPL1;seed=0x25;profile=crashstorm;nodes=2;ppn=1;ops=\
         X0.0>1.0:2048r,A10,C0,A3,B0,X0.1>1.1:2048r,A20");
    assert_eq!(out.counters.get("proc_crashes"), 1);
    assert_eq!(out.counters.get("proc_restarts"), 1);
    assert_eq!(out.xfers, 2);
    assert!(
        out.completions >= 4,
        "the post-restart transfer must complete"
    );
}

fn run(repro: &str) -> simtest::RunOutcome {
    let s = decode(repro).unwrap_or_else(|e| panic!("bad corpus entry: {e}\n  {repro}"));
    assert_eq!(encode(&s), repro.replace(['\n', ' '], ""));
    let out = run_schedule_catching(&s, None);
    assert!(
        out.violations.is_empty(),
        "corpus repro violated: {:?}\n  {repro}",
        out.violations
    );
    out
}

/// A crash that leaks its pins (teardown skipped) must be caught by the
/// per-tick orphan-pin oracle and replay deterministically.
#[test]
fn leak_on_crash_is_caught_and_replays() {
    let s =
        decode("EXPL1;seed=0x26;profile=crashstorm;nodes=2;ppn=1;ops=X0.0>1.0:262144r,A30,C0,A5")
            .unwrap();
    let clean = run_schedule_catching(&s, None);
    assert!(clean.violations.is_empty(), "{:?}", clean.violations);
    let m = Some(Mutation::LeakOnCrash);
    let out = run_schedule_catching(&s, m);
    assert!(
        out.violations
            .iter()
            .any(|v| matches!(v, Violation::OrphanPins { .. })),
        "leaky crash not caught: {:?}",
        out.violations
    );
    let again = run_schedule_catching(&s, m);
    assert_eq!(out.violations, again.violations);
}

/// Acceptance mutation: a deliberately leaked page pin must be caught by
/// the pin-accounting invariant, shrink to a handful of ops, and replay
/// deterministically from the printed repro string.
#[test]
fn injected_pin_leak_is_caught_shrinks_and_replays() {
    let p = profile_by_name("churn").unwrap();
    let s = generate(7, &p);
    let m = Some(Mutation::LeakPin { after_op: 5 });

    let out = run_schedule_catching(&s, m);
    assert!(
        out.violations
            .iter()
            .any(|v| matches!(v, Violation::PinAccounting { .. })),
        "leaked pin not caught: {:?}",
        out.violations
    );

    let (small, _runs) = shrink(&s, m, 300);
    assert!(
        small.ops.len() <= 10,
        "shrunk schedule still has {} ops",
        small.ops.len()
    );

    // The repro string round-trips and two replays agree exactly.
    let repro = encode(&small);
    let replay = decode(&repro).expect("repro string must decode");
    assert_eq!(replay, small);
    let a = run_schedule_catching(&replay, m);
    let b = run_schedule_catching(&replay, m);
    assert!(!a.violations.is_empty(), "shrunk repro no longer fails");
    assert_eq!(a.violations, b.violations, "replay is not deterministic");
    assert_eq!(a.ops_executed, b.ops_executed);
}

/// A forgotten stale watermark (equivalently: a lost MMU-notifier
/// callback) must surface as a `StaleVisible` residency violation — the
/// per-tick oracle that guards the deferred-unpin path has to notice a
/// moved page the driver still exposes to the protocol.
#[test]
fn forgotten_stale_watermark_is_caught() {
    let p = profile_by_name("trimstorm").unwrap();
    let s = generate(9, &p);
    let m = Some(Mutation::ForgetStale { after_op: 4 });
    let out = run_schedule_catching(&s, m);
    assert!(
        out.violations
            .iter()
            .any(|v| matches!(v, Violation::StaleVisible { .. })),
        "forgotten watermark not caught: {:?}",
        out.violations
    );
    // Two replays of the same (schedule, mutation) agree exactly.
    let again = run_schedule_catching(&s, m);
    assert_eq!(out.violations, again.violations);
}

/// Quota enforcement switched off behind the oracle's back must surface
/// as a `QuotaExceeded` violation: the per-tick tenant oracle takes the
/// hard cap from the *profile*, so blinding the driver cannot blind it.
#[test]
fn skipped_quota_enforcement_is_caught() {
    let p = profile_by_name("tenantmix").unwrap();
    let s = generate(5, &p);
    let clean = run_schedule_catching(&s, None);
    assert!(clean.violations.is_empty(), "{:?}", clean.violations);
    let m = Some(Mutation::SkipQuota);
    let out = run_schedule_catching(&s, m);
    assert!(
        out.violations
            .iter()
            .any(|v| matches!(v, Violation::QuotaExceeded { .. })),
        "skipped quota not caught: {:?}",
        out.violations
    );
    // Two replays of the same (schedule, mutation) agree exactly.
    let again = run_schedule_catching(&s, m);
    assert_eq!(out.violations, again.violations);
}

/// A swallowed completion must surface as a conservation violation
/// (the pair never settles → Hang), not pass silently.
#[test]
fn swallowed_completion_is_caught() {
    let p = profile_by_name("churn").unwrap();
    let s = generate(3, &p);
    let m = Some(Mutation::SwallowCompletion { nth: 0 });
    let out = run_schedule_catching(&s, m);
    assert!(
        out.violations
            .iter()
            .any(|v| matches!(v, Violation::Hang { .. })),
        "swallowed completion not caught: {:?}",
        out.violations
    );
}
