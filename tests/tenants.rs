//! Multi-tenant behaviour at the engine level: pin-quota denials, per-tenant
//! attribution, and the pin-budget ledger when a pin pass fails part-way.

mod common;

use std::cell::Cell;
use std::rc::Rc;

use common::{cfg, verified_stream};
use openmx_core::engine::{AppEvent, Cluster, Ctx, ProcId, Process};
use openmx_core::{PinQuota, PinningMode};
use simmem::{VirtAddr, PAGE_SIZE};

const PAGES: u64 = 80;
const LEN: u64 = PAGES * PAGE_SIZE;

/// The per-node pin ledger: every page ever pinned is either still attached
/// to a region or was credited to one of the unpin counters.
fn assert_ledger_balances(cl: &Cluster, node: usize) {
    let c = cl.node_counters(node);
    let pinned = cl.driver(node).pinned_pages_total();
    assert_eq!(
        c.get("pin_pages"),
        c.get("unpin_pages") + c.get("pressure_unpinned_pages") + pinned,
        "node {node} pin ledger out of balance: pin_pages={} unpin_pages={} \
         pressure_unpinned_pages={} attached={pinned}",
        c.get("pin_pages"),
        c.get("unpin_pages"),
        c.get("pressure_unpinned_pages"),
    );
}

struct TailSender {
    buf: Rc<Cell<VirtAddr>>,
    failed: Rc<Cell<bool>>,
}

impl Process for TailSender {
    fn start(&mut self, ctx: &mut Ctx<'_>) {
        let buf = ctx.malloc(LEN);
        self.buf.set(buf);
        ctx.isend(ProcId(1), 7, buf, LEN);
    }
    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: AppEvent) {
        if let AppEvent::Failed(_, reason) = ev {
            assert!(reason.contains("pinning failed"), "reason: {reason}");
            self.failed.set(true);
        }
        ctx.stop();
    }
}

struct TailReceiver;
impl Process for TailReceiver {
    fn start(&mut self, ctx: &mut Ctx<'_>) {
        let buf = ctx.malloc(LEN);
        ctx.irecv(7, !0, buf, LEN);
    }
    fn on_event(&mut self, ctx: &mut Ctx<'_>, _ev: AppEvent) {
        ctx.stop();
    }
}

/// Regression: a pin pass that fails part-way (here: the last page of the
/// buffer is unmapped after the first chunk lands, so a later chunk hits an
/// invalid PTE) rolls the region's pages back via `unpin_all` inside the
/// driver. Those rolled-back pages must be credited to the unpin ledger and
/// debited from the owner's attribution, or `pin_pages` drifts away from
/// `unpin_pages + pressure_unpinned_pages + attached` forever.
#[test]
fn failed_partial_pin_keeps_the_unpin_ledger_exact() {
    let buf = Rc::new(Cell::new(VirtAddr(0)));
    let failed = Rc::new(Cell::new(false));
    let mut cl = Cluster::new(cfg(PinningMode::OverlappedCached), 2);
    cl.add_process(
        0,
        Box::new(TailSender {
            buf: buf.clone(),
            failed: failed.clone(),
        }),
    );
    cl.add_process(1, Box::new(TailReceiver));

    // Step in 1 us slices until the first pin chunk of the sender's 80-page
    // region has landed but the cursor has not yet reached the tail, then
    // unmap only the last page. The notifier range is ahead of the cursor,
    // so nothing goes stale and no generation bump aborts the pass: the
    // pass keeps running and the chunk covering page 79 fails mid-flight.
    let mut unmapped = false;
    for us in 1..200_000u64 {
        cl.step_until(simcore::SimTime::from_nanos(us * 1_000));
        let valid = cl
            .driver(0)
            .iter_regions()
            .find(|(_, r)| r.layout.total_pages() == PAGES)
            .map(|(_, r)| r.valid_pages());
        if let Some(v) = valid {
            if (1..=64).contains(&v) {
                let tail = VirtAddr(buf.get().0 + (PAGES - 1) * PAGE_SIZE);
                cl.vm_munmap(ProcId(0), tail, PAGE_SIZE).unwrap();
                unmapped = true;
                break;
            }
            assert!(v < PAGES, "pass finished before we could unmap the tail");
        }
    }
    assert!(unmapped, "never caught the pin pass mid-flight");
    cl.run(Some(simcore::SimTime::from_nanos(30_000_000_000)));

    assert!(failed.get(), "send over the torn region must abort");
    let c0 = cl.node_counters(0);
    assert!(c0.get("pin_pages") >= 32, "at least one chunk landed");
    assert!(c0.get("pin_failures") >= 1);
    // The failed pass rolled everything back: nothing stays attached and
    // nothing stays attributed to the sender.
    assert_eq!(cl.driver(0).pinned_pages_total(), 0);
    assert_eq!(cl.driver(0).pinned_pages_of(ProcId(0)), 0);
    assert_ledger_balances(&cl, 0);
}

struct QuotaSender {
    peer: ProcId,
    tag: u64,
    len: u64,
    failed: Rc<Cell<bool>>,
    sent: Rc<Cell<bool>>,
}

impl Process for QuotaSender {
    fn start(&mut self, ctx: &mut Ctx<'_>) {
        let buf = ctx.malloc(self.len);
        ctx.isend(self.peer, self.tag, buf, self.len);
    }
    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: AppEvent) {
        match ev {
            AppEvent::SendDone(_) => self.sent.set(true),
            AppEvent::Failed(_, reason) => {
                assert!(reason.contains("quota"), "reason: {reason}");
                self.failed.set(true);
            }
            other => panic!("unexpected event {other:?}"),
        }
        ctx.stop();
    }
}

struct QuotaReceiver {
    tag: u64,
    len: u64,
    got: Rc<Cell<bool>>,
}

impl Process for QuotaReceiver {
    fn start(&mut self, ctx: &mut Ctx<'_>) {
        let buf = ctx.malloc(self.len);
        ctx.irecv(self.tag, !0, buf, self.len);
    }
    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: AppEvent) {
        if let AppEvent::RecvDone(..) = ev {
            self.got.set(true);
        }
        ctx.stop();
    }
}

/// A tenant over its hard cap with no idle regions of its own to shed gets
/// a clean `Failed("pin quota exceeded")` denial — and a neighbour under
/// its cap on the same node is completely unaffected.
#[test]
fn quota_hard_cap_denies_cleanly_without_touching_neighbours() {
    let mut c = cfg(PinningMode::OverlappedCached);
    c.pinned_pages_limit = None;
    c.pin_quota = Some(PinQuota {
        soft_share: 32,
        hard_cap: 48,
    });

    let big_failed = Rc::new(Cell::new(false));
    let big_sent = Rc::new(Cell::new(false));
    let small_sent = Rc::new(Cell::new(false));
    let small_got = Rc::new(Cell::new(false));

    let mut cl = Cluster::new(c, 2);
    cl.enable_trace();
    // ProcId(0): wants 80 pages, cap is 48 -> denied at the second chunk.
    cl.add_process(
        0,
        Box::new(QuotaSender {
            peer: ProcId(2),
            tag: 1,
            len: LEN,
            failed: big_failed.clone(),
            sent: big_sent.clone(),
        }),
    );
    // ProcId(1): 32 pages, under the cap -> sails through untouched.
    cl.add_process(
        0,
        Box::new(QuotaSender {
            peer: ProcId(3),
            tag: 2,
            len: 32 * PAGE_SIZE,
            failed: Rc::new(Cell::new(false)),
            sent: small_sent.clone(),
        }),
    );
    cl.add_process(
        1,
        Box::new(QuotaReceiver {
            tag: 1,
            len: LEN,
            got: Rc::new(Cell::new(false)),
        }),
    );
    cl.add_process(
        1,
        Box::new(QuotaReceiver {
            tag: 2,
            len: 32 * PAGE_SIZE,
            got: small_got.clone(),
        }),
    );
    cl.run(Some(simcore::SimTime::from_nanos(30_000_000_000)));

    assert!(big_failed.get(), "over-cap tenant must be denied");
    assert!(!big_sent.get());
    assert!(small_sent.get(), "under-cap neighbour must complete");
    assert!(small_got.get());

    let c0 = cl.node_counters(0);
    assert_eq!(c0.get("quota_denials"), 1);
    assert!(cl.tracer().iter().any(|r| r.kind() == "pin_denied"));

    // Per-tenant attribution: the denied tenant holds nothing, the
    // neighbour's cached region stays pinned and attributed, and the
    // per-tenant sum matches the driver's global count.
    let d = cl.driver(0);
    assert_eq!(d.pinned_pages_of(ProcId(0)), 0);
    assert_eq!(d.pinned_pages_of(ProcId(1)), 32);
    let stats = d.tenant_stats();
    let big = stats.iter().find(|(p, _)| *p == ProcId(0)).unwrap().1;
    let small = stats.iter().find(|(p, _)| *p == ProcId(1)).unwrap().1;
    assert_eq!(big.quota_denials, 1);
    assert_eq!(big.pinned_pages, 0);
    assert!(big.peak_pinned_pages <= 48, "cap enforced at all times");
    assert_eq!(small.quota_denials, 0);
    assert_eq!(small.pinned_pages, 32);
    assert_eq!(small.evictions_suffered_from_others, 0);
    let sum: u64 = stats.iter().map(|(_, t)| t.pinned_pages).sum();
    assert_eq!(sum, d.pinned_pages_total());
    assert_ledger_balances(&cl, 0);
}

/// A generous quota is invisible: the stream completes byte-identical with
/// zero denials, and attribution still sums to the global pinned count.
#[test]
fn generous_quota_does_not_perturb_a_healthy_stream() {
    let mut c = cfg(PinningMode::OverlappedCached);
    c.pin_quota = Some(PinQuota {
        soft_share: 1024,
        hard_cap: 4096,
    });
    let (cl, _) = verified_stream(&c, 512 * 1024, 4);
    assert_eq!(cl.counters().get("quota_denials"), 0);
    for node in 0..2 {
        let d = cl.driver(node);
        let sum: u64 = d.tenant_stats().iter().map(|(_, t)| t.pinned_pages).sum();
        assert_eq!(sum, d.pinned_pages_total());
        assert_ledger_balances(&cl, node);
    }
}
