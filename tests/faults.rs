//! Hostile-fabric regression tests: duplication, reordering, and silent
//! link death must never corrupt data, wedge a transfer, or panic the
//! engine. Each scenario is seeded and deterministic.

mod common;

use common::{cfg, verified_stream};
use openmx_core::{OpenMxConfig, PinningMode, ProcId};
use openmx_mpi::collectives::JobBuilder;
use openmx_mpi::{run_job, Op};
use simcore::SimDuration;
use simnet::{FaultConfig, FaultProfile};

/// A config with `profile` applied to both directions of the 0 ↔ 1 link
/// and a short retry budget so exhaustion scenarios converge quickly.
fn hostile_cfg(profile: FaultProfile, max_retries: u32) -> OpenMxConfig {
    let mut c = cfg(PinningMode::OverlappedCached);
    let mut faults = FaultConfig::clean();
    faults.set_link(0, 1, profile);
    faults.set_link(1, 0, profile);
    c.net.faults = faults;
    c.max_retries = max_retries;
    c.retransmit_timeout = SimDuration::from_millis(50);
    c
}

/// One rendezvous-sized send/recv pair; returns the cluster and records
/// without asserting success (exhaustion tests expect clean failure).
fn one_transfer(c: &OpenMxConfig, len: u64) -> (openmx_core::Cluster, Vec<openmx_mpi::RankRecord>) {
    let mut b = JobBuilder::new(2);
    let sbuf = b.alloc(len, |_| Some(0x2f));
    let rbuf = b.alloc(len, |_| None);
    let tag = b.tag();
    b.step_all(|r| match r {
        0 => vec![Op::Send {
            to: 1,
            tag,
            buf: sbuf,
            offset: 0,
            len,
        }],
        1 => vec![Op::Recv {
            from: 0,
            tag,
            buf: rbuf,
            offset: 0,
            len,
        }],
        _ => vec![],
    });
    run_job(c, 2, 1, b.scripts)
}

#[test]
fn survives_total_duplication() {
    // Every frame in both directions arrives twice: duplicate rendezvous,
    // duplicate pull replies (including after the transfer completed),
    // duplicate notifies and acks. The protocol must discard every copy.
    let c = hostile_cfg(
        FaultProfile {
            duplicate: 1.0,
            ..FaultProfile::default()
        },
        16,
    );
    // Rendezvous-sized stream: covers dup Rndv / PullReply / Notify.
    let (cl, _) = verified_stream(&c, 256 * 1024, 3);
    let counters = cl.counters();
    assert_eq!(counters.get("requests_failed"), 0);
    assert!(cl.net_stats().frames_duplicated > 0);
    assert!(
        cl.metrics().dup_frames_rx() > 0,
        "protocol must have discarded duplicates"
    );
    assert!(
        counters.get("rndv_dup") > 0,
        "the duplicated rendezvous must hit the dedup path"
    );
    assert!(
        counters.get("dup_frames_rx") + counters.get("pull_reply_stale") > 0,
        "duplicated pull replies must be discarded (live or post-completion)"
    );
}

#[test]
fn survives_duplication_on_eager_traffic() {
    let c = hostile_cfg(
        FaultProfile {
            duplicate: 1.0,
            ..FaultProfile::default()
        },
        16,
    );
    let (cl, _) = verified_stream(&c, 16 * 1024, 5);
    let counters = cl.counters();
    assert_eq!(counters.get("requests_failed"), 0);
    assert!(
        counters.get("eager_dup_frags") + counters.get("eager_ack_dup") > 0,
        "duplicated eager frames/acks must be discarded"
    );
}

#[test]
fn survives_reordered_pull_frames() {
    // A third of all frames are delayed by up to 500 µs — far beyond the
    // in-order delivery slot. Pull replies land out of order across
    // blocks; payload must still verify byte-for-byte.
    let c = hostile_cfg(
        FaultProfile {
            reorder: 0.3,
            reorder_jitter: SimDuration::from_micros(500),
            ..FaultProfile::default()
        },
        16,
    );
    let (cl, _) = verified_stream(&c, 1 << 20, 3);
    assert_eq!(cl.counters().get("requests_failed"), 0);
    let stats = cl.net_stats();
    assert!(stats.frames_reordered > 0, "reordering must have happened");
    // The engine-side counter mirrors the fabric's own bookkeeping.
    assert_eq!(
        cl.counters().get("net_frames_reordered"),
        stats.frames_reordered
    );
}

#[test]
fn rendezvous_exhaustion_errors_cleanly() {
    // The link is completely dead: the rendezvous can never get through.
    // The sender must error out after its retry budget — not hang, not
    // panic, not spin forever.
    let c = hostile_cfg(
        FaultProfile {
            loss: 1.0,
            ..FaultProfile::default()
        },
        2,
    );
    let (cl, records) = one_transfer(&c, 256 * 1024);
    assert!(
        records[0].failures.contains(&"rendezvous timed out"),
        "sender failures: {:?}",
        records[0].failures
    );
    assert!(records[0].finished.is_some(), "sender must not wedge");
    assert!(cl.counters().get("requests_failed") > 0);
}

#[test]
fn eager_exhaustion_errors_cleanly() {
    // Only the ack path (1 → 0) is dead: the receiver gets the data, but
    // the sender never hears the ack and must eventually give up with a
    // late error on the handle instead of retransmitting forever.
    let mut c = cfg(PinningMode::Cached);
    let mut faults = FaultConfig::clean();
    faults.set_link(
        1,
        0,
        FaultProfile {
            loss: 1.0,
            ..FaultProfile::default()
        },
    );
    c.net.faults = faults;
    c.max_retries = 3;
    c.retransmit_timeout = SimDuration::from_millis(20);
    let len = 8 * 1024;
    // The eager SendDone fires at copy-out, long before the retry budget
    // runs dry — keep the sender alive with a compute phase so the late
    // failure still has a listener.
    let mut b = JobBuilder::new(2);
    let sbuf = b.alloc(len, |_| Some(0x2f));
    let rbuf = b.alloc(len, |_| None);
    let tag = b.tag();
    b.step_all(|r| match r {
        0 => vec![Op::Send {
            to: 1,
            tag,
            buf: sbuf,
            offset: 0,
            len,
        }],
        1 => vec![Op::Recv {
            from: 0,
            tag,
            buf: rbuf,
            offset: 0,
            len,
        }],
        _ => vec![],
    });
    b.step_all(|r| match r {
        0 => vec![Op::Compute {
            dur: SimDuration::from_secs(1),
        }],
        _ => vec![],
    });
    let (mut cl, records) = run_job(&c, 2, 1, b.scripts);
    assert!(
        records[0].failures.contains(&"eager send unacked"),
        "sender failures: {:?}",
        records[0].failures
    );
    // The data still arrived intact on the receive side.
    assert!(records[1].finished.is_some());
    let addr = records[1].buffer_addrs[1];
    let got = cl.read_proc(ProcId(1), addr, len);
    assert!(got.iter().enumerate().all(|(i, &v)| v == (i as u8) ^ 0x2f));
    assert!(cl.counters().get("eager_abandoned") > 0);
}

#[test]
fn lost_notify_trips_sender_watchdog_not_a_hang() {
    // The receiver's link back to the sender dies right after the pull
    // request gets through: the sender sees pulling start, then silence.
    // Before the completion watchdog this hung the sender forever (the
    // rendezvous timer was cancelled at the first pull request with no
    // replacement). Now the watchdog fails the send cleanly.
    let mut c = cfg(PinningMode::OverlappedCached);
    let mut faults = FaultConfig::clean();
    faults.set_link(
        1,
        0,
        FaultProfile {
            drop_after: Some(1),
            ..FaultProfile::default()
        },
    );
    c.net.faults = faults;
    c.max_retries = 3;
    c.retransmit_timeout = SimDuration::from_millis(50);
    // One pull block: a single pull request (the one frame that gets
    // through on 1 → 0), then every notify is swallowed.
    let (cl, records) = one_transfer(&c, 64 * 1024);
    assert!(
        records[0]
            .failures
            .contains(&"transfer completion timed out"),
        "sender failures: {:?}",
        records[0].failures
    );
    assert!(records[0].finished.is_some(), "sender must not wedge");
    let counters = cl.counters();
    assert!(counters.get("send_watchdog_timeouts") > 0);
    assert!(
        counters.get("notify_abandoned") > 0,
        "the receiver must stop retransmitting the notify eventually"
    );
    assert!(cl.net_stats().frames_link_down > 0);
}

#[test]
fn bursty_loss_recovers_intact() {
    use simnet::GilbertElliott;
    // 10% average loss concentrated in bursts averaging 8 frames: whole
    // blocks (and whole retransmissions) vanish at once.
    let c = hostile_cfg(
        FaultProfile {
            burst: Some(GilbertElliott::bursty(0.10, 8.0)),
            ..FaultProfile::default()
        },
        16,
    );
    let (cl, _) = verified_stream(&c, 1 << 20, 3);
    let counters = cl.counters();
    assert_eq!(counters.get("requests_failed"), 0);
    let stats = cl.net_stats();
    assert!(stats.frames_burst_lost > 0, "bursts must have fired");
    assert_eq!(
        counters.get("net_frames_burst_lost"),
        stats.frames_burst_lost
    );
    assert!(
        cl.metrics().retransmits() > 0,
        "burst losses must trigger recovery"
    );
}

#[test]
fn adaptive_and_fixed_policies_both_deliver_under_loss() {
    for adaptive in [false, true] {
        let mut c = hostile_cfg(
            FaultProfile {
                loss: 0.05,
                ..FaultProfile::default()
            },
            16,
        );
        c.adaptive_retransmit = adaptive;
        let (cl, _) = verified_stream(&c, 512 * 1024, 3);
        assert_eq!(
            cl.counters().get("requests_failed"),
            0,
            "adaptive={adaptive}"
        );
    }
}
