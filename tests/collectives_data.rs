//! Data-integrity tests for the collective algorithms across a real
//! simulated cluster (mixed shm/Ethernet paths, pinning cache active).

mod common;

use common::cfg;
use openmx_core::{PinningMode, ProcId};
use openmx_mpi::collectives::JobBuilder;
use openmx_mpi::run_job;

fn pattern(salt: u8, len: u64) -> Vec<u8> {
    (0..len).map(|i| (i as u8) ^ salt).collect()
}

#[test]
fn bcast_delivers_roots_bytes_to_everyone() {
    for ranks in [2usize, 3, 4, 5, 8] {
        let len = 512 * 1024;
        let mut b = JobBuilder::new(ranks);
        let buf = b.alloc(len, |r| Some(if r == 2 % ranks { 0xAB } else { 0x00 }));
        b.bcast(2 % ranks, buf, len);
        let (mut cl, records) = run_job(
            &cfg(PinningMode::OverlappedCached),
            2,
            ranks.div_ceil(2),
            b.scripts,
        );
        for (rank, rec) in records.iter().enumerate() {
            assert!(rec.failures.is_empty(), "rank {rank}: {:?}", rec.failures);
            let got = cl.read_proc(ProcId(rank as u32), rec.buffer_addrs[buf], len);
            assert_eq!(got, pattern(0xAB, len), "rank {rank} of {ranks}");
        }
    }
}

#[test]
fn allgatherv_assembles_all_pieces_in_order() {
    let n = 4;
    let counts = vec![100 * 1024u64, 200 * 1024, 50 * 1024, 300 * 1024];
    let total: u64 = counts.iter().sum();
    let mut b = JobBuilder::new(n);
    let sbuf = b.alloc(*counts.iter().max().unwrap(), |r| Some(0x10 + r as u8));
    let rbuf = b.alloc(total, |_| None);
    b.allgatherv(sbuf, rbuf, &counts);
    let (mut cl, records) = run_job(&cfg(PinningMode::Cached), 2, 2, b.scripts);
    for (rank, rec) in records.iter().enumerate() {
        assert!(rec.failures.is_empty());
        let got = cl.read_proc(ProcId(rank as u32), rec.buffer_addrs[rbuf], total);
        let mut off = 0usize;
        for (piece, &count) in counts.iter().enumerate() {
            let salt = 0x10 + piece as u8;
            for i in 0..count as usize {
                assert_eq!(
                    got[off + i],
                    (i as u8) ^ salt,
                    "rank {rank}, piece {piece}, byte {i}"
                );
            }
            off += count as usize;
        }
    }
}

#[test]
fn alltoallv_scatters_each_senders_segments() {
    let n = 4;
    let per_peer = 256 * 1024u64;
    let counts = vec![per_peer; n];
    let mut b = JobBuilder::new(n);
    let sbuf = b.alloc(per_peer * n as u64, |r| Some(0x40 + r as u8));
    let rbuf = b.alloc(per_peer * n as u64, |_| None);
    b.alltoallv(sbuf, rbuf, &counts);
    let (mut cl, records) = run_job(&cfg(PinningMode::OverlappedCached), 2, 2, b.scripts);
    for (rank, rec) in records.iter().enumerate() {
        assert!(rec.failures.is_empty());
        let got = cl.read_proc(
            ProcId(rank as u32),
            rec.buffer_addrs[rbuf],
            per_peer * n as u64,
        );
        // Segment from peer p sits at p*per_peer and carries the bytes of
        // p's sbuf at offset rank*per_peer.
        for p in 0..n {
            let salt = 0x40 + p as u8;
            let src_off = rank as u64 * per_peer;
            for i in 0..per_peer as usize {
                let expect = ((src_off as usize + i) as u8) ^ salt;
                assert_eq!(
                    got[p * per_peer as usize + i],
                    expect,
                    "rank {rank} peer {p} byte {i}"
                );
            }
        }
    }
}

#[test]
fn sendrecv_ring_rotates_payloads() {
    let n = 6;
    let len = 128 * 1024u64;
    let mut b = JobBuilder::new(n);
    let sbuf = b.alloc(len, |r| Some(r as u8));
    let rbuf = b.alloc(len, |_| None);
    b.sendrecv_ring(sbuf, rbuf, len);
    let (mut cl, records) = run_job(&cfg(PinningMode::Cached), 3, 2, b.scripts);
    for (rank, rec) in records.iter().enumerate() {
        assert!(rec.failures.is_empty());
        let got = cl.read_proc(ProcId(rank as u32), rec.buffer_addrs[rbuf], len);
        let left = (rank + n - 1) % n;
        assert_eq!(
            got,
            pattern(left as u8, len),
            "rank {rank} gets left's data"
        );
    }
}

#[test]
fn barrier_completes_quickly_on_many_ranks() {
    let mut b = JobBuilder::new(8);
    let _tok = b.alloc(4096, |_| Some(0));
    b.barrier();
    let (cl, records) = run_job(&cfg(PinningMode::Cached), 2, 4, b.scripts);
    assert!(records.iter().all(|r| r.failures.is_empty()));
    assert!(
        cl.now() < simcore::SimTime::from_nanos(5_000_000),
        "a barrier of tiny messages must finish in < 5 ms, took {}",
        cl.now()
    );
}

#[test]
fn recursive_doubling_allreduce_runs_and_beats_reduce_bcast() {
    let len = 1 << 20;
    let run = |rdouble: bool| {
        let mut b = JobBuilder::new(4);
        let buf = b.alloc(len, |_| Some(0x5c));
        let scratch = b.alloc(len, |_| None);
        if rdouble {
            b.allreduce_rdouble(buf, scratch, len);
        } else {
            b.allreduce(buf, scratch, len);
        }
        let (cl, records) = run_job(&cfg(PinningMode::OverlappedCached), 2, 2, b.scripts);
        assert!(records.iter().all(|r| r.failures.is_empty()));
        cl.now()
    };
    let t_rb = run(false);
    let t_rd = run(true);
    // Recursive doubling halves the critical path on 4 ranks (2 rounds vs
    // 2+2 for reduce+bcast) — it must not be slower.
    assert!(t_rd <= t_rb, "rdouble {t_rd} vs reduce+bcast {t_rb}");
}
