//! Workspace-level randomized property tests: the full stack delivers
//! arbitrary payload sizes intact under every pinning strategy, and the
//! region layer's vectorial geometry is internally consistent.
//!
//! Cases are generated from a fixed-seed [`simcore::SimRng`], so every run
//! explores the same inputs — failures reproduce by case index.

mod common;

use common::cfg;
use openmx_core::region::{DriverRegion, RegionLayout, Segment};
use openmx_core::PinningMode;
use simcore::SimRng;
use simmem::{Memory, Prot, PAGE_SIZE};

/// Any message size in [1, 2 MiB], any mode, I/OAT on or off: the bytes
/// arrive intact and nothing fails or leaks pins.
#[test]
fn stream_integrity_any_size() {
    let mut rng = SimRng::new(0x51e4_0001);
    let modes = PinningMode::all();
    for case in 0..24 {
        let len = rng.range_inclusive(1, 2 * 1024 * 1024 - 1);
        let mode = modes[rng.below(modes.len() as u64) as usize];
        let ioat = rng.chance(0.5);
        let mut c = cfg(mode);
        c.use_ioat = ioat;
        let (cl, _) = common::verified_stream(&c, len, 1);
        assert_eq!(
            cl.counters().get("requests_failed"),
            0,
            "case {case}: len={len} mode={mode:?} ioat={ioat}"
        );
        if !mode.caches() {
            for node in 0..2 {
                let nc = cl.node_counters(node);
                assert_eq!(
                    nc.get("pin_pages"),
                    nc.get("unpin_pages"),
                    "case {case}: len={len} mode={mode:?} node={node}"
                );
            }
        }
    }
}

/// Vectorial regions: chunk iteration covers exactly the requested byte
/// range, in order, and region read/write round-trips match the
/// application's view through its page tables.
#[test]
fn region_geometry_and_roundtrip() {
    let mut rng = SimRng::new(0x51e4_0002);
    for case in 0..32 {
        let nsegs = rng.range_inclusive(1, 4) as usize;
        let seg_lens: Vec<u64> = (0..nsegs)
            .map(|_| rng.range_inclusive(1, 3 * PAGE_SIZE - 1))
            .collect();
        let gaps: Vec<u64> = (0..rng.range_inclusive(1, 4))
            .map(|_| rng.below(2 * PAGE_SIZE))
            .collect();
        let offset_frac = rng.unit_f64();
        let len_frac = rng.unit_f64().max(0.01);

        let mut mem = Memory::new(256, 0);
        let space = mem.create_space();
        // Build segments with gaps between them.
        let mut segments = Vec::new();
        for (i, &sl) in seg_lens.iter().enumerate() {
            let gap = gaps[i % gaps.len()];
            let span = sl + gap + 2 * PAGE_SIZE;
            let base = mem.mmap(space, span, Prot::ReadWrite).unwrap();
            segments.push(Segment {
                addr: base.add(gap % PAGE_SIZE),
                len: sl,
            });
        }
        let layout = RegionLayout::new(&segments);
        let total = layout.total_len();
        assert_eq!(total, seg_lens.iter().sum::<u64>(), "case {case}");

        // Chunks cover [offset, offset+len) exactly, in order.
        let offset = ((total - 1) as f64 * offset_frac) as u64;
        let len = (((total - offset) as f64 * len_frac) as u64).max(1);
        let mut covered = 0u64;
        let mut last_idx = None::<u64>;
        layout.for_each_chunk(offset, len, |idx, _vpn, page_off, n| {
            assert!(page_off + n <= PAGE_SIZE, "chunk crosses a page");
            if let Some(prev) = last_idx {
                assert!(idx >= prev, "chunks out of order");
            }
            last_idx = Some(idx);
            covered += n;
        });
        assert_eq!(covered, len, "case {case}");

        // Pin everything and round-trip bytes through the driver view.
        let mut region = DriverRegion::new(space, &segments);
        region.pin_next_chunk(&mut mem, 10_000).unwrap();
        let data: Vec<u8> = (0..len).map(|i| (i % 241) as u8).collect();
        region.write(&mut mem, offset, &data).unwrap();
        let mut back = vec![0u8; len as usize];
        region.read(&mem, offset, &mut back).unwrap();
        assert_eq!(&back, &data, "case {case}");

        // The application sees the same bytes through its page tables.
        let mut cursor = offset;
        let mut checked = 0usize;
        for seg in &segments {
            if cursor >= seg.len {
                cursor -= seg.len;
                continue;
            }
            let in_seg = ((seg.len - cursor) as usize).min(data.len() - checked);
            let mut app = vec![0u8; in_seg];
            mem.read(space, seg.addr.add(cursor), &mut app).unwrap();
            assert_eq!(&app[..], &data[checked..checked + in_seg], "case {case}");
            checked += in_seg;
            cursor = 0;
            if checked == data.len() {
                break;
            }
        }
        assert_eq!(checked, data.len(), "case {case}");
        region.unpin_all(&mut mem);
        assert_eq!(mem.frames().pinned_pages(), 0, "case {case}");
    }
}
