//! Workspace-level property tests: the full stack delivers arbitrary
//! payload sizes intact under every pinning strategy, and the region
//! layer's vectorial geometry is internally consistent.

mod common;

use common::cfg;
use openmx_core::region::{DriverRegion, RegionLayout, Segment};
use openmx_core::PinningMode;
use proptest::prelude::*;
use simmem::{Memory, Prot, PAGE_SIZE};

fn any_mode() -> impl Strategy<Value = PinningMode> {
    prop_oneof![
        Just(PinningMode::PinPerComm),
        Just(PinningMode::Permanent),
        Just(PinningMode::Cached),
        Just(PinningMode::Overlapped),
        Just(PinningMode::OverlappedCached),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any message size in [1, 2 MiB], any mode, I/OAT on or off: the
    /// bytes arrive intact and nothing fails or leaks pins.
    #[test]
    fn stream_integrity_any_size(
        len in 1u64..2 * 1024 * 1024,
        mode in any_mode(),
        ioat in any::<bool>(),
    ) {
        let mut c = cfg(mode);
        c.use_ioat = ioat;
        let (cl, _) = common::verified_stream(&c, len, 1);
        prop_assert_eq!(cl.counters().get("requests_failed"), 0);
        if !mode.caches() {
            for node in 0..2 {
                let nc = cl.node_counters(node);
                prop_assert_eq!(nc.get("pin_pages"), nc.get("unpin_pages"));
            }
        }
    }

    /// Vectorial regions: chunk iteration covers exactly the requested
    /// byte range, in order, and region read/write round-trips match the
    /// application's view through its page tables.
    #[test]
    fn region_geometry_and_roundtrip(
        seg_lens in prop::collection::vec(1u64..3 * PAGE_SIZE, 1..5),
        gaps in prop::collection::vec(0u64..2 * PAGE_SIZE, 1..5),
        offset_frac in 0.0f64..1.0,
        len_frac in 0.01f64..1.0,
    ) {
        let mut mem = Memory::new(256, 0);
        let space = mem.create_space();
        // Build segments with gaps between them.
        let mut segments = Vec::new();
        for (i, &sl) in seg_lens.iter().enumerate() {
            let gap = gaps[i % gaps.len()];
            let span = sl + gap + 2 * PAGE_SIZE;
            let base = mem.mmap(space, span, Prot::ReadWrite).unwrap();
            segments.push(Segment { addr: base.add(gap % PAGE_SIZE), len: sl });
        }
        let layout = RegionLayout::new(&segments);
        let total = layout.total_len();
        prop_assert_eq!(total, seg_lens.iter().sum::<u64>());

        // Chunks cover [offset, offset+len) exactly, in order.
        let offset = ((total - 1) as f64 * offset_frac) as u64;
        let len = (((total - offset) as f64 * len_frac) as u64).max(1);
        let mut covered = 0u64;
        let mut last_idx = None::<u64>;
        layout.for_each_chunk(offset, len, |idx, _vpn, page_off, n| {
            assert!(page_off + n <= PAGE_SIZE, "chunk crosses a page");
            if let Some(prev) = last_idx {
                assert!(idx >= prev, "chunks out of order");
            }
            last_idx = Some(idx);
            covered += n;
        });
        prop_assert_eq!(covered, len);

        // Pin everything and round-trip bytes through the driver view.
        let mut region = DriverRegion::new(space, &segments);
        region.pin_next_chunk(&mut mem, 10_000).unwrap();
        let data: Vec<u8> = (0..len).map(|i| (i % 241) as u8).collect();
        region.write(&mut mem, offset, &data).unwrap();
        let mut back = vec![0u8; len as usize];
        region.read(&mem, offset, &mut back).unwrap();
        prop_assert_eq!(&back, &data);

        // The application sees the same bytes through its page tables.
        let mut cursor = offset;
        let mut checked = 0usize;
        for seg in &segments {
            if cursor >= seg.len {
                cursor -= seg.len;
                continue;
            }
            let in_seg = ((seg.len - cursor) as usize).min(data.len() - checked);
            let mut app = vec![0u8; in_seg];
            mem.read(space, seg.addr.add(cursor), &mut app).unwrap();
            prop_assert_eq!(&app[..], &data[checked..checked + in_seg]);
            checked += in_seg;
            cursor = 0;
            if checked == data.len() {
                break;
            }
        }
        prop_assert_eq!(checked, data.len());
        region.unpin_all(&mut mem);
        prop_assert_eq!(mem.frames().pinned_pages(), 0);
    }
}
