//! MPI-style collectives on the simulated cluster: broadcast, allreduce
//! and alltoallv across 4 ranks on 2 nodes, with data verification for
//! the broadcast.
//!
//! Run: `cargo run --release --example collectives`

use openmx_core::{OpenMxConfig, PinningMode};
use openmx_mpi::collectives::JobBuilder;
use openmx_mpi::{run_job, summarize};
use simcore::SimDuration;

fn time_one(build: impl Fn(&mut JobBuilder)) -> SimDuration {
    let mut b = JobBuilder::new(4);
    build(&mut b);
    let iters = 4;
    // A barrier separates setup from the timed window.
    let mut b2 = JobBuilder::new(4);
    build(&mut b2); // warmup
    b2.barrier();
    let mark = b2.mark();
    for _ in 0..iters {
        build(&mut b2);
    }
    let cfg = OpenMxConfig::with_mode(PinningMode::OverlappedCached);
    let (_cl, records) = run_job(&cfg, 2, 2, b2.scripts);
    summarize(&records, mark, iters).avg_iter
}

fn main() {
    let len: u64 = 1 << 20;
    println!("collectives on 4 ranks over 2 nodes (1 MiB payloads):\n");

    // --- broadcast with end-to-end verification -------------------------
    let mut b = JobBuilder::new(4);
    let buf = b.alloc(len, |r| if r == 0 { Some(0xC3) } else { Some(0x00) });
    b.bcast(0, buf, len);
    let cfg = OpenMxConfig::with_mode(PinningMode::OverlappedCached);
    let (mut cl, records) = run_job(&cfg, 2, 2, b.scripts);
    for (rank, rec) in records.iter().enumerate() {
        assert!(rec.failures.is_empty());
        let addr = rec.buffer_addrs[buf];
        let got = cl.read_proc(openmx_core::ProcId(rank as u32), addr, len);
        let ok = got.iter().enumerate().all(|(i, &v)| v == (i as u8) ^ 0xC3);
        assert!(ok, "rank {rank}: broadcast payload mismatch");
    }
    println!("bcast:       every rank verified the root's 1 MiB pattern");

    // --- timings ---------------------------------------------------------
    let t = time_one(|b| {
        if b.scripts[0].buffers.is_empty() {
            let buf = b.alloc(len, |_| Some(1));
            assert_eq!(buf, 0);
        }
        b.bcast(0, 0, len);
    });
    println!("bcast:       {t} per operation");

    let t = time_one(|b| {
        if b.scripts[0].buffers.is_empty() {
            b.alloc(len, |_| Some(1));
            b.alloc(len, |_| None);
        }
        b.allreduce(0, 1, len);
    });
    println!("allreduce:   {t} per operation");

    let t = time_one(|b| {
        if b.scripts[0].buffers.is_empty() {
            b.alloc(len, |_| Some(1));
            b.alloc(len, |_| None);
        }
        let counts = vec![len / 4; 4];
        b.alltoallv(0, 1, &counts);
    });
    println!("alltoallv:   {t} per operation (256 KiB per peer)");

    println!("\nIntra-node pairs used the shared-memory path; inter-node pairs the");
    println!("rendezvous/pull protocol with the overlapped pinning cache.");
}
