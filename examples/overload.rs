//! §4.3 in miniature: the overlap-miss collapse when the application is
//! pinned to the interrupt core, and the I/OAT rescue.
//!
//! Streams 16 MiB messages under overlapped pinning in three topologies
//! and prints throughput plus the miss counters.
//!
//! Run: `cargo run --release --example overload`

use openmx_core::{OpenMxConfig, PinningMode};
use openmx_mpi::collectives::JobBuilder;
use openmx_mpi::run_job;
use openmx_mpi::script::Op;
use simcore::Bandwidth;

fn stream(colocate: bool, ioat: bool) -> (f64, u64, u64) {
    let mut cfg = OpenMxConfig::with_mode(PinningMode::Overlapped);
    cfg.colocate_with_bh = colocate;
    cfg.use_ioat = ioat;

    let msg: u64 = 16 << 20;
    let msgs: u32 = 4;
    let mut b = JobBuilder::new(2);
    let sbuf = b.alloc(msg, |_| Some(0x42));
    let rbuf = b.alloc(msg, |_| None);
    for _ in 0..=msgs {
        let tag = b.tag();
        b.step_all(|r| match r {
            0 => vec![Op::Send {
                to: 1,
                tag,
                buf: sbuf,
                offset: 0,
                len: msg,
            }],
            1 => vec![Op::Recv {
                from: 0,
                tag,
                buf: rbuf,
                offset: 0,
                len: msg,
            }],
            _ => vec![],
        });
    }
    let (cl, records) = run_job(&cfg, 2, 1, b.scripts);
    let rec = &records[1];
    let start = rec.step_done[0]; // warmup message done
    let end = rec.finished.expect("finished");
    let bw = Bandwidth::measured(msg * msgs as u64, end.duration_since(start));
    let c = cl.counters();
    (
        bw.bytes_per_sec() / 1e6,
        c.get("overlap_miss_rx") + c.get("overlap_miss_tx"),
        c.get("pull_stall_timeouts"),
    )
}

fn main() {
    println!("16 MiB stream, overlapped pinning, 10G Ethernet:\n");
    for (name, colocate, ioat) in [
        ("process on its own core (normal)", false, false),
        ("process pinned to the interrupt core", true, false),
        ("interrupt core + I/OAT copy offload", true, true),
    ] {
        let (mbps, misses, stalls) = stream(colocate, ioat);
        println!("{name:<40} {mbps:>6.0} MB/s   misses: {misses:<5} 1s-stalls: {stalls}");
    }
    println!(
        "\nThe receive bottom half outranks the task that pins pages (§4.3):\n\
         when they share a core, whole windows of pull replies arrive before\n\
         their pages are pinned, get dropped, and recovery waits on the 1 s\n\
         retransmission timeout — the paper's 1 GB/s → ~50 MB/s collapse."
    );
}
