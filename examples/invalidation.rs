//! The registration-cache correctness problem, made visible — and the
//! MMU-notifier fix (paper §2.1, §3.1).
//!
//! A pinning cache keeps user buffers pinned across communications. If
//! the application frees such a buffer and the allocator later returns
//! the *same virtual address* backed by *different physical pages*, a
//! cache that never learns about the `munmap` keeps DMA-ing the stale
//! frames: silent data corruption. That is why user-space caches intercept
//! `free`/`munmap` — unreliably — and why the paper moves invalidation
//! into the kernel with MMU notifiers.
//!
//! This example runs the exact free-then-realloc scenario twice:
//! with `use_mmu_notifiers = false` the receiver observes the *old*
//! payload (corruption); with notifiers enabled the driver unpins on the
//! `munmap`, repins on demand at the next send, and the receiver sees the
//! fresh bytes.
//!
//! Run: `cargo run --release --example invalidation`

use std::cell::Cell;
use std::rc::Rc;

use openmx_core::engine::{AppEvent, Cluster, Ctx, ProcId, Process};
use openmx_core::{OpenMxConfig, PinningMode};
use simmem::VirtAddr;

const LEN: u64 = 1 << 20;

fn pattern(gen: u8) -> Vec<u8> {
    (0..LEN).map(|i| (i as u8) ^ gen).collect()
}

struct Sender {
    buf: VirtAddr,
    round: u8,
}

impl Process for Sender {
    fn start(&mut self, ctx: &mut Ctx<'_>) {
        self.buf = ctx.malloc(LEN);
        ctx.write_buf(self.buf, &pattern(1));
        ctx.isend(ProcId(1), 1, self.buf, LEN);
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: AppEvent) {
        match ev {
            AppEvent::SendDone(_) if self.round == 0 => {
                self.round = 1;
                // free + malloc: same VA back, *different* physical pages.
                ctx.free(self.buf);
                let again = ctx.malloc(LEN);
                assert_eq!(again, self.buf, "allocator reuses the address");
                ctx.write_buf(again, &pattern(2));
                ctx.isend(ProcId(1), 2, again, LEN);
            }
            AppEvent::SendDone(_) => ctx.stop(),
            other => panic!("sender: unexpected {other:?}"),
        }
    }
}

struct Receiver {
    buf: VirtAddr,
    round: u8,
    corrupted: Rc<Cell<bool>>,
}

impl Process for Receiver {
    fn start(&mut self, ctx: &mut Ctx<'_>) {
        self.buf = ctx.malloc(LEN);
        ctx.irecv(1, !0, self.buf, LEN);
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: AppEvent) {
        match ev {
            AppEvent::RecvDone(..) if self.round == 0 => {
                assert_eq!(ctx.read_buf(self.buf, LEN), pattern(1));
                self.round = 1;
                ctx.irecv(2, !0, self.buf, LEN);
            }
            AppEvent::RecvDone(..) => {
                let got = ctx.read_buf(self.buf, LEN);
                self.corrupted.set(got != pattern(2));
                ctx.stop();
            }
            other => panic!("receiver: unexpected {other:?}"),
        }
    }
}

fn run(use_notifiers: bool) -> bool {
    let corrupted = Rc::new(Cell::new(false));
    let mut cfg = OpenMxConfig::with_mode(PinningMode::Cached);
    cfg.use_mmu_notifiers = use_notifiers;
    let mut cl = Cluster::new(cfg, 2);
    cl.add_process(
        0,
        Box::new(Sender {
            buf: VirtAddr(0),
            round: 0,
        }),
    );
    cl.add_process(
        1,
        Box::new(Receiver {
            buf: VirtAddr(0),
            round: 0,
            corrupted: corrupted.clone(),
        }),
    );
    cl.run(None);
    let invalidations = cl.node_counters(0).get("notifier_region_unpins");
    println!("  notifier invalidations on the sender node: {invalidations}");
    corrupted.get()
}

fn main() {
    println!("scenario: send 1 MiB, free the buffer, malloc it back at the same");
    println!("address, fill with new data, send again (pinning cache enabled)\n");

    println!("without MMU notifiers (stale pinning cache):");
    let corrupted = run(false);
    println!(
        "  second message payload: {}\n",
        if corrupted {
            "STALE — the receiver got the OLD bytes (silent corruption!)"
        } else {
            "fresh (unexpected)"
        }
    );
    assert!(
        corrupted,
        "expected the stale cache to corrupt the transfer"
    );

    println!("with MMU notifiers (the paper's design):");
    let corrupted = run(true);
    println!(
        "  second message payload: {}",
        if corrupted {
            "STALE (unexpected)"
        } else {
            "fresh — munmap invalidated the region; the driver repinned on demand"
        }
    );
    assert!(!corrupted);
}
