//! IMB PingPong across all five pinning strategies — a compact version of
//! the paper's Figures 6/7 sweep at a single message size.
//!
//! Run: `cargo run --release --example pingpong [size_kib]`

use openmx_core::{OpenMxConfig, PinningMode};
use openmx_mpi::{imb_job, run_job, summarize, ImbKernel};
use simcore::Bandwidth;

fn main() {
    let size_kib: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1024);
    let msg = size_kib * 1024;
    println!("IMB PingPong, {size_kib} KiB messages, 2 nodes on 10G Ethernet\n");
    println!("{:<18} {:>12} {:>12}", "pinning mode", "t/2 (us)", "MiB/s");

    let mut base = None;
    for mode in PinningMode::all() {
        let cfg = OpenMxConfig::with_mode(mode);
        let iters = 24;
        let (scripts, mark) = imb_job(ImbKernel::PingPong, 2, msg, 4, iters);
        let (cluster, records) = run_job(&cfg, 2, 1, scripts);
        let res = summarize(&records, mark, iters);
        let half = res.avg_iter / 2;
        let bw = Bandwidth::measured(msg, half).as_mib_per_sec();
        let delta = match base {
            None => {
                base = Some(bw);
                String::new()
            }
            Some(b) => format!(
                "  ({:+.1}% vs {})",
                100.0 * (bw / b - 1.0),
                PinningMode::PinPerComm.label()
            ),
        };
        println!(
            "{:<18} {:>12.1} {:>12.0}{delta}",
            mode.label(),
            half.as_micros_f64(),
            bw
        );
        assert_eq!(cluster.counters().get("requests_failed"), 0);
    }
    println!(
        "\nThe paper's §4.2 result: the pinning cache and overlapped pinning\n\
         each recover the ~5% that per-communication pinning costs on this host."
    );
}
