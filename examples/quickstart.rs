//! Quickstart: one large message across the simulated cluster, verified
//! byte for byte.
//!
//! Builds a two-node cluster running the Open-MX stack with the paper's
//! decoupled, overlapped, MMU-notifier-backed pinning cache, sends a 1 MiB
//! buffer from node 0 to node 1 through the rendezvous/pull protocol, and
//! checks the received bytes.
//!
//! Run: `cargo run --release --example quickstart`

use openmx_core::engine::{AppEvent, Cluster, Ctx, ProcId, Process};
use openmx_core::{OpenMxConfig, PinningMode};
use simmem::VirtAddr;

const LEN: u64 = 1 << 20;
const TAG: u64 = 7;

struct Sender {
    buf: VirtAddr,
}

impl Process for Sender {
    fn start(&mut self, ctx: &mut Ctx<'_>) {
        // Allocate and fill the send buffer, then post the send. Requests
        // are non-blocking; completion arrives in `on_event`.
        self.buf = ctx.malloc(LEN);
        let payload: Vec<u8> = (0..LEN).map(|i| (i % 251) as u8).collect();
        ctx.write_buf(self.buf, &payload);
        ctx.isend(ProcId(1), TAG, self.buf, LEN);
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: AppEvent) {
        match ev {
            AppEvent::SendDone(_) => {
                println!(
                    "[{}] sender: 1 MiB send completed (rendezvous + pull, pinning overlapped)",
                    ctx.now()
                );
                ctx.stop();
            }
            other => panic!("unexpected event {other:?}"),
        }
    }
}

struct Receiver {
    buf: VirtAddr,
}

impl Process for Receiver {
    fn start(&mut self, ctx: &mut Ctx<'_>) {
        self.buf = ctx.malloc(LEN);
        ctx.irecv(TAG, !0, self.buf, LEN);
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: AppEvent) {
        match ev {
            AppEvent::RecvDone(_, n) => {
                assert_eq!(n, LEN);
                let got = ctx.read_buf(self.buf, LEN);
                let ok = got.iter().enumerate().all(|(i, &b)| b == (i % 251) as u8);
                assert!(ok, "payload corrupted in flight");
                println!("[{}] receiver: {n} bytes delivered and verified", ctx.now());
                ctx.stop();
            }
            other => panic!("unexpected event {other:?}"),
        }
    }
}

fn main() {
    // The paper's platform: Xeon E5460 hosts on Myri-10G Ethernet, with
    // the overlapped pinning cache (the paper's best configuration).
    let cfg = OpenMxConfig::with_mode(PinningMode::OverlappedCached);
    let mut cluster = Cluster::new(cfg, 2);
    cluster.add_process(0, Box::new(Sender { buf: VirtAddr(0) }));
    cluster.add_process(1, Box::new(Receiver { buf: VirtAddr(0) }));
    let end = cluster.run(None);

    println!("\nsimulation finished at {end}");
    println!("\nengine counters:");
    for (k, v) in cluster.counters().iter() {
        println!("  {k:<28} {v}");
    }
}
