//! Workspace umbrella crate re-exporting the public API.
pub use openmx_core as core;
pub use openmx_mpi as mpi;
pub use simcore;
pub use simmem;
pub use simnet;
