//! The event queue at the heart of the simulator.
//!
//! A binary heap of `(time, sequence)`-ordered entries. The sequence number
//! makes ordering *stable*: two events scheduled for the same instant pop in
//! the order they were scheduled, which keeps simulations deterministic.
//!
//! Events can be cancelled by [`EventId`] (used for retransmission timers
//! that are disarmed when the ack arrives). Cancellation is lazy — the entry
//! stays in the heap and is skipped on pop — which keeps `cancel` O(1).

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

use crate::time::SimTime;

/// Identifies a scheduled event so it can be cancelled later.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventId(u64);

struct Entry<T> {
    time: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A time-ordered, stable, cancellable event queue.
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    live: HashSet<u64>,
    cancelled: HashSet<u64>,
    next_seq: u64,
    last_popped: SimTime,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            live: HashSet::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
            last_popped: SimTime::ZERO,
        }
    }

    /// Schedule `payload` to fire at `time`. Returns an id usable with
    /// [`EventQueue::cancel`].
    ///
    /// # Panics
    /// Panics if `time` is earlier than the last popped event: the
    /// simulation may not schedule into its own past.
    pub fn schedule(&mut self, time: SimTime, payload: T) -> EventId {
        assert!(
            time >= self.last_popped,
            "scheduling into the past: {time:?} < {:?}",
            self.last_popped
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.live.insert(seq);
        self.heap.push(Entry { time, seq, payload });
        EventId(seq)
    }

    /// Cancel a previously scheduled event. Returns `true` if the event was
    /// still pending (not yet popped or cancelled). Cancelling an already
    /// fired event is a harmless no-op returning `false`.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if !self.live.remove(&id.0) {
            return false;
        }
        self.cancelled.insert(id.0);
        true
    }

    /// Remove and return the earliest pending event, skipping cancelled ones.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            self.live.remove(&entry.seq);
            self.last_popped = entry.time;
            return Some((entry.time, entry.payload));
        }
        None
    }

    /// The timestamp of the next pending (non-cancelled) event.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(entry) = self.heap.peek() {
            if self.cancelled.contains(&entry.seq) {
                let seq = self.heap.pop().expect("peeked entry vanished").seq;
                self.cancelled.remove(&seq);
                continue;
            }
            return Some(entry.time);
        }
        None
    }

    /// Number of pending entries, *including* lazily cancelled ones.
    pub fn raw_len(&self) -> usize {
        self.heap.len()
    }

    /// Number of live (non-cancelled) pending events.
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// True if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The timestamp of the most recently popped event — the queue's notion
    /// of "now".
    pub fn now(&self) -> SimTime {
        self.last_popped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_micros(us)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), "c");
        q.schedule(t(10), "a");
        q.schedule(t(20), "b");
        assert_eq!(q.pop(), Some((t(10), "a")));
        assert_eq!(q.pop(), Some((t(20), "b")));
        assert_eq!(q.pop(), Some((t(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_pop_in_schedule_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(5), i)));
        }
    }

    #[test]
    fn cancel_skips_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        q.schedule(t(2), "b");
        assert!(q.cancel(a));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((t(2), "b")));
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        assert_eq!(q.pop(), Some((t(1), "a")));
        assert!(!q.cancel(a));
        // Re-scheduling still works and the tombstone set stays clean.
        q.schedule(t(2), "b");
        assert_eq!(q.pop(), Some((t(2), "b")));
    }

    #[test]
    fn cancel_unknown_id_is_noop() {
        let mut q: EventQueue<&str> = EventQueue::new();
        assert!(!q.cancel(EventId(999)));
    }

    #[test]
    fn double_cancel_counts_once() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        assert!(q.cancel(a));
        assert!(!q.cancel(a));
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        q.schedule(t(2), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(2)));
        assert_eq!(q.pop(), Some((t(2), "b")));
    }

    #[test]
    fn now_tracks_last_pop() {
        let mut q = EventQueue::new();
        q.schedule(t(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), t(7));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(t(10), ());
        q.pop();
        q.schedule(t(5), ());
    }

    #[test]
    fn scheduling_at_now_is_allowed() {
        let mut q = EventQueue::new();
        q.schedule(t(10), 1);
        q.pop();
        q.schedule(t(10), 2);
        assert_eq!(q.pop(), Some((t(10), 2)));
    }
}
