//! A host-core model with Linux-like scheduling priorities.
//!
//! The paper's §4.3 overload scenario depends on one scheduling fact: the
//! receive path (bottom-half interrupt handler) is "strongly privileged" and
//! can exhaust a core, starving the application task that is trying to pin
//! pages. We model a core as a non-preemptive run queue with two priority
//! levels — [`Priority::BottomHalf`] always runs before [`Priority::Task`] —
//! where each work item is a bounded chunk of CPU time (pin batches,
//! per-packet processing, memcpy chunks). Chunking makes the model
//! effectively preemptive at chunk granularity, exactly like the real
//! softirq/task interleaving the paper describes.
//!
//! The core does not own a clock. The simulation engine drives it:
//!
//! ```text
//! engine: submit(now, work) ──► Some(Completion{at}) ──► schedule event at `at`
//! event fires: on_complete(now) ──► (finished payload, next Completion?)
//! ```

use std::collections::VecDeque;

use crate::time::{SimDuration, SimTime};

/// Scheduling class of a work item. Lower value = higher priority.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Hash)]
pub enum Priority {
    /// Interrupt bottom-half work (packet rx/tx processing). Runs first.
    BottomHalf = 0,
    /// Kernel task context (on-demand pinning, deferred driver work):
    /// ahead of user code, below interrupts — like a kworker that the
    /// scheduler favours over the user thread that is blocked on it.
    Kernel = 1,
    /// Ordinary task context (application calls and compute).
    Task = 2,
}

/// Opaque identifier of a submitted work item.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct WorkId(u64);

/// A bounded chunk of CPU time carrying a caller-defined payload.
#[derive(Clone, Debug)]
pub struct Work<T> {
    /// CPU time this chunk consumes.
    pub duration: SimDuration,
    /// Scheduling class.
    pub priority: Priority,
    /// Caller payload returned on completion.
    pub payload: T,
}

/// A pending completion the engine must turn into a scheduled event.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Completion {
    /// Which work item will finish.
    pub id: WorkId,
    /// When it will finish.
    pub at: SimTime,
}

/// A simulated host core: three-level non-preemptive run queue.
pub struct CpuCore<T> {
    queues: [VecDeque<(WorkId, Work<T>)>; 3],
    running: Option<(WorkId, SimTime, T)>,
    /// Between [`CpuCore::complete`] and [`CpuCore::resume`]: the engine is
    /// executing the finished work's handler, which may enqueue follow-up
    /// work that must be considered before the next item starts.
    held: bool,
    next_id: u64,
    busy: SimDuration,
}

impl<T> Default for CpuCore<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> CpuCore<T> {
    /// An idle core with empty queues.
    pub fn new() -> Self {
        CpuCore {
            queues: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
            running: None,
            held: false,
            next_id: 0,
            busy: SimDuration::ZERO,
        }
    }

    /// Submit a chunk of work. If the core is idle the chunk starts
    /// immediately and the returned [`Completion`] must be scheduled as an
    /// engine event; if the core is busy the chunk queues and `None` is
    /// returned (its completion will surface from a later
    /// [`CpuCore::on_complete`]).
    pub fn submit(&mut self, now: SimTime, work: Work<T>) -> Option<Completion> {
        let id = WorkId(self.next_id);
        self.next_id += 1;
        self.queues[work.priority as usize].push_back((id, work));
        if self.running.is_none() && !self.held {
            self.start_next(now)
        } else {
            None
        }
    }

    /// The engine calls this when the completion event for the running work
    /// fires. Returns the finished payload and *holds* the core: nothing
    /// new starts until [`CpuCore::resume`], so the completion handler can
    /// enqueue follow-up work (e.g. the next pin chunk) ahead of
    /// lower-priority items that were already waiting.
    ///
    /// # Panics
    /// Panics if no work is running or if `now` disagrees with the promised
    /// completion time — both indicate an engine bookkeeping bug.
    pub fn complete(&mut self, now: SimTime) -> (WorkId, T) {
        let (id, at, payload) = self
            .running
            .take()
            .expect("complete called on an idle core");
        assert_eq!(at, now, "completion fired at the wrong time");
        self.held = true;
        (id, payload)
    }

    /// Release the hold taken by [`CpuCore::complete`] and start the next
    /// queued item, if any.
    pub fn resume(&mut self, now: SimTime) -> Option<Completion> {
        assert!(self.held, "resume without a pending completion");
        self.held = false;
        self.start_next(now)
    }

    /// Convenience for tests and simple drivers: complete-and-resume with
    /// no handler in between.
    pub fn on_complete(&mut self, now: SimTime) -> (WorkId, T, Option<Completion>) {
        let (id, payload) = self.complete(now);
        let next = self.resume(now);
        (id, payload, next)
    }

    /// Remove a not-yet-started work item from the queues. Returns its
    /// payload if it was still queued; `None` if it already started or
    /// finished.
    pub fn cancel_queued(&mut self, id: WorkId) -> Option<T> {
        for q in &mut self.queues {
            if let Some(pos) = q.iter().position(|(wid, _)| *wid == id) {
                return q.remove(pos).map(|(_, w)| w.payload);
            }
        }
        None
    }

    fn start_next(&mut self, now: SimTime) -> Option<Completion> {
        debug_assert!(self.running.is_none() && !self.held);
        for q in &mut self.queues {
            if let Some((id, work)) = q.pop_front() {
                let at = now + work.duration;
                self.busy += work.duration;
                self.running = Some((id, at, work.payload));
                return Some(Completion { id, at });
            }
        }
        None
    }

    /// True if nothing is running or queued.
    pub fn is_idle(&self) -> bool {
        self.running.is_none() && self.queues.iter().all(VecDeque::is_empty)
    }

    /// Number of queued (not yet started) items at `prio`.
    pub fn queued_at(&self, prio: Priority) -> usize {
        self.queues[prio as usize].len()
    }

    /// Total CPU time consumed by started work (utilization numerator).
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_nanos(us * 1000)
    }
    fn d(us: u64) -> SimDuration {
        SimDuration::from_micros(us)
    }
    fn task(us: u64, tag: &'static str) -> Work<&'static str> {
        Work {
            duration: d(us),
            priority: Priority::Task,
            payload: tag,
        }
    }
    fn bh(us: u64, tag: &'static str) -> Work<&'static str> {
        Work {
            duration: d(us),
            priority: Priority::BottomHalf,
            payload: tag,
        }
    }

    #[test]
    fn idle_core_starts_immediately() {
        let mut c = CpuCore::new();
        let comp = c.submit(t(0), task(5, "a")).expect("should start");
        assert_eq!(comp.at, t(5));
        assert!(!c.is_idle());
        let (_, payload, next) = c.on_complete(t(5));
        assert_eq!(payload, "a");
        assert!(next.is_none());
        assert!(c.is_idle());
    }

    #[test]
    fn fifo_within_priority() {
        let mut c = CpuCore::new();
        c.submit(t(0), task(5, "a")).unwrap();
        assert!(c.submit(t(0), task(5, "b")).is_none());
        assert!(c.submit(t(0), task(5, "c")).is_none());
        let (_, p, n) = c.on_complete(t(5));
        assert_eq!(p, "a");
        assert_eq!(n.unwrap().at, t(10));
        let (_, p, n) = c.on_complete(t(10));
        assert_eq!(p, "b");
        assert_eq!(n.unwrap().at, t(15));
        let (_, p, n) = c.on_complete(t(15));
        assert_eq!(p, "c");
        assert!(n.is_none());
    }

    #[test]
    fn bottom_half_jumps_the_queue() {
        let mut c = CpuCore::new();
        c.submit(t(0), task(10, "pin")).unwrap();
        c.submit(t(1), task(10, "pin2"));
        c.submit(t(2), bh(3, "rx"));
        // Running pin is NOT preempted (non-preemptive chunks)...
        let (_, p, n) = c.on_complete(t(10));
        assert_eq!(p, "pin");
        // ...but the bottom half runs before the queued task chunk.
        assert_eq!(n.unwrap().at, t(13));
        let (_, p, _n) = c.on_complete(t(13));
        assert_eq!(p, "rx");
        let (_, p, _) = c.on_complete(t(23));
        assert_eq!(p, "pin2");
    }

    #[test]
    fn sustained_bottom_half_starves_tasks() {
        // The §4.3 scenario: BH chunks keep arriving before the core drains,
        // so the task chunk never runs.
        let mut c = CpuCore::new();
        c.submit(t(0), task(10, "pin")).unwrap(); // starts at 0, done at 10
        c.submit(t(0), task(10, "pin-rest"));
        let mut now = t(10);
        // While pin runs, a BH storm arrives.
        for i in 0..100 {
            c.submit(t(1 + i), bh(10, "rx"));
        }
        // Drain 100 BH chunks; pin-rest must come out last.
        let mut order = Vec::new();
        let (_, p, mut next) = c.on_complete(now);
        order.push(p);
        while let Some(comp) = next {
            now = comp.at;
            let (_, p, n) = c.on_complete(now);
            order.push(p);
            next = n;
        }
        assert_eq!(order.first(), Some(&"pin"));
        assert_eq!(order.last(), Some(&"pin-rest"));
        assert_eq!(order.len(), 102);
        // pin-rest completed only after ~1 ms of BH work.
        assert_eq!(now, t(10 + 100 * 10 + 10));
    }

    #[test]
    fn hold_lets_handler_enqueue_ahead_of_queued_work() {
        // A kernel chunk finishes; its handler submits the next kernel
        // chunk. With the hold protocol the follow-up chunk runs before a
        // task item that was already queued.
        let mut c = CpuCore::new();
        c.submit(
            t(0),
            Work {
                duration: d(5),
                priority: Priority::Kernel,
                payload: "pin1",
            },
        )
        .unwrap();
        c.submit(t(0), task(5, "syscall"));
        let (_, p) = c.complete(t(5));
        assert_eq!(p, "pin1");
        // Handler submits the next chunk while the core is held.
        assert!(c
            .submit(
                t(5),
                Work {
                    duration: d(5),
                    priority: Priority::Kernel,
                    payload: "pin2"
                },
            )
            .is_none());
        let next = c.resume(t(5)).unwrap();
        assert_eq!(next.at, t(10));
        let (_, p, _) = c.on_complete(t(10));
        assert_eq!(p, "pin2", "kernel chunk chains ahead of the syscall");
        let (_, p, _) = c.on_complete(t(15));
        assert_eq!(p, "syscall");
    }

    #[test]
    fn kernel_work_runs_before_task_after_bh() {
        let mut c = CpuCore::new();
        c.submit(t(0), task(10, "compute")).unwrap();
        c.submit(
            t(1),
            Work {
                duration: d(2),
                priority: Priority::Kernel,
                payload: "pin",
            },
        );
        c.submit(t(2), bh(1, "rx"));
        c.submit(t(2), task(10, "compute2"));
        let (_, p, _) = c.on_complete(t(10));
        assert_eq!(p, "compute");
        let (_, p, _) = c.on_complete(t(11));
        assert_eq!(p, "rx", "bottom half first");
        let (_, p, _) = c.on_complete(t(13));
        assert_eq!(p, "pin", "kernel work before queued task work");
        let (_, p, _) = c.on_complete(t(23));
        assert_eq!(p, "compute2");
    }

    #[test]
    fn cancel_queued_removes_pending_only() {
        let mut c = CpuCore::new();
        let first = c.submit(t(0), task(5, "a")).unwrap();
        c.submit(t(0), task(5, "b"));
        // "a" already started: cannot cancel.
        assert!(c.cancel_queued(first.id).is_none());
        // find b's id by cancelling the only queued item
        assert_eq!(c.queued_at(Priority::Task), 1);
        let (_, _p, n) = c.on_complete(t(5));
        assert!(n.is_some());
    }

    #[test]
    fn busy_time_accumulates() {
        let mut c = CpuCore::new();
        c.submit(t(0), task(5, "a")).unwrap();
        c.submit(t(0), task(7, "b"));
        c.on_complete(t(5));
        c.on_complete(t(12));
        assert_eq!(c.busy_time(), d(12));
    }

    #[test]
    #[should_panic(expected = "idle core")]
    fn on_complete_when_idle_panics() {
        let mut c: CpuCore<()> = CpuCore::new();
        c.on_complete(t(0));
    }
}
