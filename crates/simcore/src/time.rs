//! Virtual time: instants, durations, and byte-rate arithmetic.
//!
//! The simulation clock has nanosecond resolution stored in a `u64`, which
//! covers ~584 years of virtual time — far beyond any experiment here. All
//! arithmetic is checked in debug builds (overflow panics rather than wraps).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulation clock, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinite" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds since the epoch.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanoseconds since the epoch.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch, as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span from `earlier` to `self`.
    ///
    /// # Panics
    /// Panics if `earlier` is later than `self`.
    #[inline]
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("duration_since: earlier instant is in the future"),
        )
    }

    /// Saturating version of [`SimTime::duration_since`]: returns zero when
    /// `earlier` is actually later.
    #[inline]
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// Largest representable duration; used as an "infinite" sentinel.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    ///
    /// # Panics
    /// Panics on negative or non-finite input.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration: {s}");
        SimDuration((s * 1e9).round() as u64)
    }

    /// Nanoseconds in this duration.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds, as a float (for reporting).
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Seconds, as a float (for reporting).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True if this duration is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The longer of two durations.
    #[inline]
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// The shorter of two durations.
    #[inline]
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiply by an integer count (e.g. per-page cost × pages).
    #[inline]
    pub fn times(self, n: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(n).expect("duration overflow"))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimDuration underflow"))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        self.times(rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", format_ns(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}

/// Render nanoseconds with a human-friendly unit.
fn format_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// A data rate in bytes per second.
///
/// Used by the link, memcpy and DMA-engine models to convert byte counts
/// into [`SimDuration`]s. Stored as `f64` because rates are model
/// parameters, not accumulating state, so float error does not compound.
#[derive(Clone, Copy, PartialEq, PartialOrd, Debug)]
pub struct Bandwidth(f64);

impl Bandwidth {
    /// Construct from bytes per second.
    ///
    /// # Panics
    /// Panics if the rate is not strictly positive and finite.
    #[inline]
    pub fn from_bytes_per_sec(bps: f64) -> Self {
        assert!(bps.is_finite() && bps > 0.0, "invalid bandwidth: {bps}");
        Bandwidth(bps)
    }

    /// Construct from megabytes (10^6 bytes) per second.
    #[inline]
    pub fn from_mb_per_sec(mbps: f64) -> Self {
        Self::from_bytes_per_sec(mbps * 1e6)
    }

    /// Construct from gigabytes (10^9 bytes) per second.
    #[inline]
    pub fn from_gb_per_sec(gbps: f64) -> Self {
        Self::from_bytes_per_sec(gbps * 1e9)
    }

    /// Construct from mebibytes (2^20 bytes) per second — the unit the
    /// paper's throughput figures use.
    #[inline]
    pub fn from_mib_per_sec(mibps: f64) -> Self {
        Self::from_bytes_per_sec(mibps * (1u64 << 20) as f64)
    }

    /// Construct from a link speed in gigabits per second (e.g. `10.0` for
    /// 10G Ethernet).
    #[inline]
    pub fn from_gbit_per_sec(gbitps: f64) -> Self {
        Self::from_bytes_per_sec(gbitps * 1e9 / 8.0)
    }

    /// Bytes per second.
    #[inline]
    pub fn bytes_per_sec(self) -> f64 {
        self.0
    }

    /// Mebibytes per second (the paper's reporting unit).
    #[inline]
    pub fn as_mib_per_sec(self) -> f64 {
        self.0 / (1u64 << 20) as f64
    }

    /// Time to move `bytes` at this rate, rounded up to a whole nanosecond
    /// so that a nonzero transfer never takes zero time.
    #[inline]
    pub fn time_for_bytes(self, bytes: u64) -> SimDuration {
        if bytes == 0 {
            return SimDuration::ZERO;
        }
        let ns = (bytes as f64) * 1e9 / self.0;
        SimDuration::from_nanos(ns.ceil() as u64)
    }

    /// The rate achieved by moving `bytes` in `elapsed` time.
    ///
    /// # Panics
    /// Panics if `elapsed` is zero.
    #[inline]
    pub fn measured(bytes: u64, elapsed: SimDuration) -> Bandwidth {
        assert!(
            !elapsed.is_zero(),
            "cannot measure bandwidth over zero time"
        );
        Bandwidth::from_bytes_per_sec(bytes as f64 * 1e9 / elapsed.as_nanos() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t0 = SimTime::ZERO;
        let t1 = t0 + SimDuration::from_micros(5);
        assert_eq!(t1.as_nanos(), 5_000);
        assert_eq!(t1 - t0, SimDuration::from_micros(5));
        assert_eq!(t1.duration_since(t0).as_micros_f64(), 5.0);
    }

    #[test]
    fn saturating_duration_since_clamps() {
        let early = SimTime::from_nanos(10);
        let late = SimTime::from_nanos(20);
        assert_eq!(early.saturating_duration_since(late), SimDuration::ZERO);
        assert_eq!(
            late.saturating_duration_since(early),
            SimDuration::from_nanos(10)
        );
    }

    #[test]
    #[should_panic(expected = "earlier instant is in the future")]
    fn duration_since_panics_backwards() {
        let _ = SimTime::ZERO.duration_since(SimTime::from_nanos(1));
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1000));
        assert_eq!(SimDuration::from_micros(1), SimDuration::from_nanos(1000));
        assert_eq!(
            SimDuration::from_secs_f64(1.5),
            SimDuration::from_millis(1500)
        );
    }

    #[test]
    fn duration_scaling() {
        let per_page = SimDuration::from_nanos(150);
        assert_eq!(per_page.times(256).as_nanos(), 38_400);
        assert_eq!((per_page * 4).as_nanos(), 600);
        assert_eq!((SimDuration::from_micros(10) / 4).as_nanos(), 2_500);
    }

    #[test]
    fn bandwidth_time_for_bytes() {
        // 10G Ethernet = 1.25 GB/s; 1250 bytes take exactly 1 us.
        let bw = Bandwidth::from_gbit_per_sec(10.0);
        assert_eq!(bw.time_for_bytes(1250), SimDuration::from_micros(1));
        assert_eq!(bw.time_for_bytes(0), SimDuration::ZERO);
        // Rounds up: 1 byte at 1.25 GB/s is 0.8 ns -> 1 ns.
        assert_eq!(bw.time_for_bytes(1), SimDuration::from_nanos(1));
    }

    #[test]
    fn bandwidth_units() {
        let bw = Bandwidth::from_mib_per_sec(1000.0);
        assert!((bw.as_mib_per_sec() - 1000.0).abs() < 1e-9);
        let gb = Bandwidth::from_gb_per_sec(26.5);
        assert!((gb.bytes_per_sec() - 26.5e9).abs() < 1.0);
    }

    #[test]
    fn bandwidth_measured() {
        let bw = Bandwidth::measured(1_000_000, SimDuration::from_millis(1));
        assert!((bw.bytes_per_sec() - 1e9).abs() < 1.0);
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", SimDuration::from_nanos(17)), "17ns");
        assert_eq!(format!("{}", SimDuration::from_micros(2)), "2.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(3)), "3.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(4)), "4.000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_micros).sum();
        assert_eq!(total, SimDuration::from_micros(10));
    }
}
