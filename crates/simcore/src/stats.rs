//! Statistics utilities used by the measurement harness.
//!
//! * [`OnlineStats`] — Welford's single-pass mean/variance,
//! * [`Histogram`] — log2-bucketed latency histogram with percentiles,
//! * [`FixedHistogram`] — linear fixed-bucket latency histogram with
//!   interpolated quantiles, for tight latency bands where log2 buckets
//!   are too coarse,
//! * [`linear_fit`] — ordinary least squares, used to recover the paper's
//!   Table 1 "base + per-page" pinning-cost decomposition from sweep data,
//! * [`Counters`] — named saturating event counters (overlap misses, drops).

use std::collections::BTreeMap;
use std::fmt;

use crate::time::SimDuration;

/// Single-pass mean / variance / min / max accumulator (Welford).
#[derive(Clone, Debug, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Convenience: add a duration observation in microseconds.
    pub fn push_duration_us(&mut self, d: SimDuration) {
        self.push(d.as_micros_f64());
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance (n−1 denominator); 0 with fewer than 2 samples.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Merge another accumulator into this one (parallel-sweep reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let d = other.mean - self.mean;
        let mean = self.mean + d * other.n as f64 / n as f64;
        self.m2 += other.m2 + d * d * self.n as f64 * other.n as f64 / n as f64;
        self.mean = mean;
        self.n = n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for OnlineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.3} sd={:.3} min={:.3} max={:.3}",
            self.n,
            self.mean(),
            self.stddev(),
            self.min.min(self.max),
            self.max.max(self.min)
        )
    }
}

/// Log2-bucketed histogram of nanosecond durations.
///
/// Bucket `i` holds values in `[2^i, 2^(i+1))`; bucket 0 holds `{0, 1}` ns.
/// Percentiles are answered at bucket resolution (upper bound), which is
/// plenty for latency-distribution reporting.
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum_ns: u128,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; 64],
            count: 0,
            sum_ns: 0,
        }
    }

    /// Record one duration.
    pub fn record(&mut self, d: SimDuration) {
        let ns = d.as_nanos();
        let idx = if ns <= 1 {
            0
        } else {
            63 - ns.leading_zeros() as usize
        };
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum_ns += ns as u128;
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of recorded values.
    pub fn mean(&self) -> SimDuration {
        if self.count == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos((self.sum_ns / self.count as u128) as u64)
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile (0 ≤ q ≤ 1).
    pub fn quantile(&self, q: f64) -> SimDuration {
        assert!((0.0..=1.0).contains(&q), "invalid quantile {q}");
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        let target = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                let upper = if i >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
                return SimDuration::from_nanos(upper);
            }
        }
        SimDuration::MAX
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
    }
}

/// Linear fixed-bucket histogram of nanosecond durations.
///
/// `bucket_count` equal-width buckets span `[0, range)`; values at or above
/// `range` land in a dedicated overflow bucket. Quantiles interpolate
/// linearly inside the winning bucket, so resolution is `range /
/// bucket_count` — much tighter than [`Histogram`]'s power-of-two buckets
/// when the latency band is known (pin latency, rendezvous round trips).
#[derive(Clone, Debug)]
pub struct FixedHistogram {
    buckets: Vec<u64>,
    overflow: u64,
    width_ns: u64,
    count: u64,
    sum_ns: u128,
    max_ns: u64,
}

impl FixedHistogram {
    /// A histogram of `bucket_count` buckets covering `[0, range)`.
    ///
    /// # Panics
    /// Panics if `bucket_count` is 0 or `range` is shorter than one
    /// nanosecond per bucket.
    pub fn new(range: SimDuration, bucket_count: usize) -> Self {
        assert!(bucket_count > 0, "bucket_count == 0");
        let width_ns = range.as_nanos() / bucket_count as u64;
        assert!(width_ns > 0, "range too small for {bucket_count} buckets");
        FixedHistogram {
            buckets: vec![0; bucket_count],
            overflow: 0,
            width_ns,
            count: 0,
            sum_ns: 0,
            max_ns: 0,
        }
    }

    /// Record one duration.
    pub fn record(&mut self, d: SimDuration) {
        let ns = d.as_nanos();
        let idx = (ns / self.width_ns) as usize;
        match self.buckets.get_mut(idx) {
            Some(b) => *b += 1,
            None => self.overflow += 1,
        }
        self.count += 1;
        self.sum_ns += ns as u128;
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Values that fell beyond the covered range.
    pub fn overflow_count(&self) -> u64 {
        self.overflow
    }

    /// Width of one bucket.
    pub fn bucket_width(&self) -> SimDuration {
        SimDuration::from_nanos(self.width_ns)
    }

    /// Mean of recorded values (exact, not bucketed).
    pub fn mean(&self) -> SimDuration {
        if self.count == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos((self.sum_ns / self.count as u128) as u64)
        }
    }

    /// Largest recorded value (exact).
    pub fn max(&self) -> SimDuration {
        SimDuration::from_nanos(self.max_ns)
    }

    /// The `q`-quantile (0 ≤ q ≤ 1), interpolated within the winning
    /// bucket. Quantiles landing in the overflow bucket report the exact
    /// observed maximum.
    ///
    /// # Panics
    /// Panics unless `0.0 <= q <= 1.0`.
    pub fn quantile(&self, q: f64) -> SimDuration {
        assert!((0.0..=1.0).contains(&q), "invalid quantile {q}");
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        let target = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= target {
                // Interpolate within bucket [i*w, (i+1)*w).
                let into = (target - seen) as f64 / c as f64;
                let ns = (i as u64 * self.width_ns) as f64 + into * self.width_ns as f64;
                return SimDuration::from_nanos(ns as u64);
            }
            seen += c;
        }
        self.max()
    }

    /// Merge another histogram into this one.
    ///
    /// # Panics
    /// Panics if the two histograms have different geometries.
    pub fn merge(&mut self, other: &FixedHistogram) {
        assert_eq!(self.width_ns, other.width_ns, "bucket width mismatch");
        assert_eq!(
            self.buckets.len(),
            other.buckets.len(),
            "bucket count mismatch"
        );
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

/// Ordinary least-squares fit `y = a + b·x`. Returns `(a, b)`.
///
/// Used to recover the Table 1 decomposition: pin cost observed for several
/// page counts, fitted to `base + per_page · pages`.
///
/// # Panics
/// Panics with fewer than two distinct x values.
pub fn linear_fit(points: &[(f64, f64)]) -> (f64, f64) {
    assert!(points.len() >= 2, "need at least two points");
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    assert!(denom.abs() > 1e-12, "x values are degenerate");
    let b = (n * sxy - sx * sy) / denom;
    let a = (sy - b * sx) / n;
    (a, b)
}

/// A named set of saturating event counters.
///
/// The Open-MX engine uses this for the §4.3 instrumentation: overlap
/// misses, packet drops, retransmissions, cache hits/misses, …
#[derive(Clone, Debug, Default)]
pub struct Counters {
    map: BTreeMap<&'static str, u64>,
}

impl Counters {
    /// An empty counter set.
    pub fn new() -> Self {
        Counters::default()
    }

    /// Add `n` to counter `name`, creating it at zero if absent.
    pub fn add(&mut self, name: &'static str, n: u64) {
        let c = self.map.entry(name).or_insert(0);
        *c = c.saturating_add(n);
    }

    /// Increment counter `name` by one.
    pub fn bump(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Current value of `name` (zero if never bumped).
    pub fn get(&self, name: &str) -> u64 {
        self.map.get(name).copied().unwrap_or(0)
    }

    /// Iterate `(name, value)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.map.iter().map(|(k, v)| (*k, *v))
    }

    /// Merge another counter set into this one.
    pub fn merge(&mut self, other: &Counters) {
        for (k, v) in other.iter() {
            self.add(k, v);
        }
    }
}

impl fmt::Display for Counters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in self.iter() {
            writeln!(f, "{k:<32} {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basic() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn online_stats_empty() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
    }

    #[test]
    fn online_stats_merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = OnlineStats::new();
        xs.iter().for_each(|&x| all.push(x));
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        xs[..37].iter().for_each(|&x| a.push(x));
        xs[37..].iter().for_each(|&x| b.push(x));
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
    }

    #[test]
    fn histogram_percentiles() {
        let mut h = Histogram::new();
        for us in 1..=1000u64 {
            h.record(SimDuration::from_micros(us));
        }
        assert_eq!(h.count(), 1000);
        // Median of 1..=1000 us lies in the bucket containing 500 us.
        let med = h.quantile(0.5).as_nanos();
        assert!(med >= 500_000, "median bucket upper bound {med}");
        assert!(h.quantile(1.0) >= h.quantile(0.5));
        let mean = h.mean().as_nanos();
        assert!((500_000..=501_000).contains(&mean), "mean = {mean}");
    }

    #[test]
    fn histogram_zero_and_merge() {
        let mut a = Histogram::new();
        a.record(SimDuration::ZERO);
        a.record(SimDuration::from_nanos(1));
        let mut b = Histogram::new();
        b.record(SimDuration::from_nanos(1 << 20));
        a.merge(&b);
        assert_eq!(a.count(), 3);
    }

    #[test]
    fn fixed_histogram_bucketing_and_quantiles() {
        // 100 buckets of 10 us over [0, 1 ms).
        let mut h = FixedHistogram::new(SimDuration::from_millis(1), 100);
        assert_eq!(h.bucket_width(), SimDuration::from_micros(10));
        for us in 1..=1000u64 {
            h.record(SimDuration::from_micros(us));
        }
        assert_eq!(h.count(), 1000);
        // 1000 us lands exactly at the range edge -> overflow bucket.
        assert_eq!(h.overflow_count(), 1);
        // Median of 1..=1000 us must be within one bucket of 500 us.
        let med = h.quantile(0.5).as_nanos();
        assert!((490_000..=510_000).contains(&med), "median {med}");
        let p99 = h.quantile(0.99).as_nanos();
        assert!((980_000..=1_000_000).contains(&p99), "p99 {p99}");
        let mean = h.mean().as_nanos();
        assert!((500_000..=501_000).contains(&mean), "mean {mean}");
        assert_eq!(h.max(), SimDuration::from_micros(1000));
        assert!(h.quantile(1.0) <= h.max());
    }

    #[test]
    fn fixed_histogram_edges() {
        let mut h = FixedHistogram::new(SimDuration::from_nanos(100), 10);
        // Bucket boundaries: 0 belongs to bucket 0, 10 to bucket 1,
        // 99 to bucket 9, 100+ overflows.
        h.record(SimDuration::ZERO);
        h.record(SimDuration::from_nanos(9));
        h.record(SimDuration::from_nanos(10));
        h.record(SimDuration::from_nanos(99));
        h.record(SimDuration::from_nanos(100));
        h.record(SimDuration::from_nanos(1_000_000));
        assert_eq!(h.count(), 6);
        assert_eq!(h.overflow_count(), 2);
        // The smallest observation quantile stays in the first bucket.
        assert!(h.quantile(0.0).as_nanos() < 10);
        // All-overflow quantile reports the exact max.
        assert_eq!(h.quantile(1.0), SimDuration::from_nanos(1_000_000));
    }

    #[test]
    fn fixed_histogram_empty_and_merge() {
        let empty = FixedHistogram::new(SimDuration::from_micros(1), 4);
        assert_eq!(empty.quantile(0.5), SimDuration::ZERO);
        assert_eq!(empty.mean(), SimDuration::ZERO);

        let mut a = FixedHistogram::new(SimDuration::from_micros(1), 4);
        let mut b = FixedHistogram::new(SimDuration::from_micros(1), 4);
        a.record(SimDuration::from_nanos(100));
        b.record(SimDuration::from_nanos(800));
        b.record(SimDuration::from_micros(5));
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.overflow_count(), 1);
        assert_eq!(a.max(), SimDuration::from_micros(5));
    }

    #[test]
    #[should_panic(expected = "bucket width mismatch")]
    fn fixed_histogram_merge_rejects_mismatch() {
        let mut a = FixedHistogram::new(SimDuration::from_micros(1), 4);
        let b = FixedHistogram::new(SimDuration::from_micros(2), 4);
        a.merge(&b);
    }

    #[test]
    fn linear_fit_recovers_coefficients() {
        // y = 1.3 + 0.15 x, the paper's Xeon E5460 pin cost in us/page.
        let pts: Vec<(f64, f64)> = (1..=64)
            .map(|p| (p as f64, 1.3 + 0.15 * p as f64))
            .collect();
        let (a, b) = linear_fit(&pts);
        assert!((a - 1.3).abs() < 1e-9, "a = {a}");
        assert!((b - 0.15).abs() < 1e-9, "b = {b}");
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn linear_fit_rejects_constant_x() {
        linear_fit(&[(1.0, 1.0), (1.0, 2.0)]);
    }

    #[test]
    fn counters_accumulate_and_merge() {
        let mut c = Counters::new();
        c.bump("overlap_miss");
        c.add("overlap_miss", 2);
        c.bump("drops");
        assert_eq!(c.get("overlap_miss"), 3);
        assert_eq!(c.get("absent"), 0);
        let mut d = Counters::new();
        d.add("drops", 5);
        c.merge(&d);
        assert_eq!(c.get("drops"), 6);
        let names: Vec<_> = c.iter().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["drops", "overlap_miss"]);
    }
}
