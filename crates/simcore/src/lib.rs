//! # simcore — deterministic discrete-event simulation kernel
//!
//! The foundation every other crate in this workspace builds on. It provides:
//!
//! * [`SimTime`] / [`SimDuration`] — virtual time with nanosecond resolution,
//! * [`Bandwidth`] — byte-rate arithmetic for link/copy-engine models,
//! * [`EventQueue`] — a stable, cancellable priority queue of timed events,
//! * [`SimRng`] — a seedable, reproducible random number generator,
//! * [`CpuCore`] — a two-priority-level run queue modelling a host core
//!   (bottom-half interrupt work runs ahead of queued task work, as in Linux),
//! * [`stats`] — online statistics, log-bucketed histograms and the
//!   least-squares fit used to extract the paper's Table 1 coefficients.
//!
//! Everything here is purely computational: no wall-clock time, no I/O,
//! no global state. Two runs with the same seed produce identical traces,
//! which is what makes the paper's figures reviewable rather than noisy.

#![warn(missing_docs)]

pub mod cpu;
pub mod queue;
pub mod rng;
pub mod stats;
pub mod time;

pub use cpu::{CpuCore, Priority, Work, WorkId};
pub use queue::{EventId, EventQueue};
pub use rng::SimRng;
pub use stats::{linear_fit, Counters, FixedHistogram, Histogram, OnlineStats};
pub use time::{Bandwidth, SimDuration, SimTime};
