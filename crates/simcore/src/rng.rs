//! Deterministic randomness for the simulator.
//!
//! Every stochastic decision in the workspace (packet loss, payload
//! patterns, arrival jitter) draws from a [`SimRng`] seeded explicitly, so
//! a whole experiment is reproducible from `(config, seed)`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seedable RNG with the handful of draw shapes the simulation needs.
///
/// Wraps `rand::StdRng` so the statistical quality is not in question; the
/// value of this type is the narrowed, documented interface and the
/// `derive_stream` mechanism that gives each component an independent,
/// reproducible stream.
pub struct SimRng {
    inner: StdRng,
    seed: u64,
}

impl SimRng {
    /// Create an RNG from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
            seed,
        }
    }

    /// The seed this stream was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derive an independent child stream for a named component. The same
    /// `(seed, label)` pair always yields the same stream, so adding a new
    /// consumer never perturbs existing ones — unlike sharing one stream.
    pub fn derive_stream(&self, label: &str) -> SimRng {
        // FNV-1a over the label, folded into the parent seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        SimRng::new(self.seed ^ h)
    }

    /// Uniform draw in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.inner.gen_range(0..n)
    }

    /// Uniform draw in the inclusive range `[lo, hi]`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        self.inner.gen_range(lo..=hi)
    }

    /// Bernoulli draw: true with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "invalid probability {p}");
        if p == 0.0 {
            false
        } else if p == 1.0 {
            true
        } else {
            self.inner.gen_bool(p)
        }
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.inner.gen_range(0.0..1.0)
    }

    /// Fill a byte buffer (used to generate message payloads).
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        self.inner.fill(buf);
    }

    /// A raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.gen()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

impl std::fmt::Debug for SimRng {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SimRng(seed={:#x})", self.seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn derived_streams_are_stable_and_independent() {
        let root = SimRng::new(7);
        let mut n1 = root.derive_stream("net");
        let mut n2 = root.derive_stream("net");
        let mut m = root.derive_stream("mem");
        let s1: Vec<u64> = (0..8).map(|_| n1.next_u64()).collect();
        let s2: Vec<u64> = (0..8).map(|_| n2.next_u64()).collect();
        let sm: Vec<u64> = (0..8).map(|_| m.next_u64()).collect();
        assert_eq!(s1, s2);
        assert_ne!(s1, sm);
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = SimRng::new(3);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(4);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut r = SimRng::new(5);
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(6);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
