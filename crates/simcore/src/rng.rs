//! Deterministic randomness for the simulator.
//!
//! Every stochastic decision in the workspace (packet loss, payload
//! patterns, arrival jitter) draws from a [`SimRng`] seeded explicitly, so
//! a whole experiment is reproducible from `(config, seed)`.

/// A seedable RNG with the handful of draw shapes the simulation needs.
///
/// The core is an in-tree xoshiro256** generator seeded through SplitMix64,
/// so the workspace has no external dependency and the byte-for-byte output
/// is stable forever. The value of this type is the narrowed, documented
/// interface and the `derive_stream` mechanism that gives each component an
/// independent, reproducible stream.
pub struct SimRng {
    state: [u64; 4],
    seed: u64,
}

/// SplitMix64 step; used only to expand a 64-bit seed into xoshiro state.
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SimRng {
    /// Create an RNG from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut s = seed;
        let state = [
            splitmix64(&mut s),
            splitmix64(&mut s),
            splitmix64(&mut s),
            splitmix64(&mut s),
        ];
        SimRng { state, seed }
    }

    /// The seed this stream was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derive an independent child stream for a named component. The same
    /// `(seed, label)` pair always yields the same stream, so adding a new
    /// consumer never perturbs existing ones — unlike sharing one stream.
    pub fn derive_stream(&self, label: &str) -> SimRng {
        // FNV-1a over the label, folded into the parent seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        SimRng::new(self.seed ^ h)
    }

    /// A raw 64-bit draw (xoshiro256** output function).
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s1 << 17;
        let mut n2 = s2 ^ s0;
        let mut n3 = s3 ^ s1;
        let n1 = s1 ^ n2;
        let n0 = s0 ^ n3;
        n2 ^= t;
        n3 = n3.rotate_left(45);
        self.state = [n0, n1, n2, n3];
        result
    }

    /// Uniform draw in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        // Rejection sampling over the widest multiple of `n`, so the draw
        // is exactly uniform rather than merely modulo-reduced.
        let zone = u64::MAX - (u64::MAX - n + 1) % n;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % n;
            }
        }
    }

    /// Uniform draw in the inclusive range `[lo, hi]`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        lo + self.below(hi - lo + 1)
    }

    /// Bernoulli draw: true with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "invalid probability {p}");
        if p == 0.0 {
            false
        } else if p == 1.0 {
            true
        } else {
            self.unit_f64() < p
        }
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        // 53 uniform mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fill a byte buffer (used to generate message payloads).
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

impl std::fmt::Debug for SimRng {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SimRng(seed={:#x})", self.seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn derived_streams_are_stable_and_independent() {
        let root = SimRng::new(7);
        let mut n1 = root.derive_stream("net");
        let mut n2 = root.derive_stream("net");
        let mut m = root.derive_stream("mem");
        let s1: Vec<u64> = (0..8).map(|_| n1.next_u64()).collect();
        let s2: Vec<u64> = (0..8).map(|_| n2.next_u64()).collect();
        let sm: Vec<u64> = (0..8).map(|_| m.next_u64()).collect();
        assert_eq!(s1, s2);
        assert_ne!(s1, sm);
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = SimRng::new(3);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(4);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut r = SimRng::new(5);
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(6);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn unit_f64_in_half_open_range() {
        let mut r = SimRng::new(9);
        for _ in 0..10_000 {
            let v = r.unit_f64();
            assert!((0.0..1.0).contains(&v), "v = {v}");
        }
    }

    #[test]
    fn fill_bytes_deterministic_and_varied() {
        let mut a = SimRng::new(11);
        let mut b = SimRng::new(11);
        let mut ba = [0u8; 37];
        let mut bb = [0u8; 37];
        a.fill_bytes(&mut ba);
        b.fill_bytes(&mut bb);
        assert_eq!(ba, bb);
        // Not all bytes equal — vanishingly unlikely for a working PRNG.
        assert!(ba.iter().any(|&x| x != ba[0]));
    }
}
