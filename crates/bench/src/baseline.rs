//! Flat-JSON bench baselines: the `"key": value` artifact format the
//! regression gates diff, shared by `bench_core` and `tenantstorm`.
//!
//! A baseline file is hand-rolled JSON (the repo carries no serde) whose
//! gated metrics each sit on their own `"key": number` line. Values
//! written as JSON strings are deliberately invisible to the parser —
//! bins use that for raw counts that scale with the iteration axis and
//! must not be compared between a smoke run and a full baseline.

/// Parse the flat `"key": value` entries out of a baseline JSON written
/// by the bench bins. Lines whose value is not a bare number (e.g. the
/// schema string, or string-quoted informational counts) are skipped.
pub fn parse_entries(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some(rest) = line.strip_prefix('"') else {
            continue;
        };
        let Some((key, val)) = rest.split_once("\": ") else {
            continue;
        };
        if let Ok(v) = val.parse::<f64>() {
            out.push((key.to_string(), v));
        }
    }
    out
}

/// The regression gate: every key present in both the current run and the
/// baseline at `path` must agree within `tolerance` relative drift. Keys
/// only in the baseline (e.g. points a smoke run skips) are not compared.
/// Prints a per-key report and exits 1 on any regression; panics if the
/// baseline is unreadable or shares no keys (a silently vacuous check).
pub fn check_against(name: &str, entries: &[(String, f64)], path: &str, tolerance: f64) {
    let baseline = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
    let base = parse_entries(&baseline);
    let mut compared = 0usize;
    let mut regressions = Vec::new();
    for (k, v) in entries {
        let Some((_, b)) = base.iter().find(|(bk, _)| bk == k) else {
            continue;
        };
        compared += 1;
        let rel = (v - b).abs() / b.abs().max(1e-9);
        if rel > tolerance {
            regressions.push(format!(
                "{k}: baseline {b:.3}, now {v:.3} ({:+.1}%)",
                (v / b - 1.0) * 100.0
            ));
        }
    }
    assert!(
        compared > 0,
        "no shared keys between run and baseline {path}"
    );
    if !regressions.is_empty() {
        eprintln!(
            "{name}: {} of {compared} shared keys drifted beyond {:.0}%:",
            regressions.len(),
            tolerance * 100.0
        );
        for r in &regressions {
            eprintln!("  {r}");
        }
        std::process::exit(1);
    }
    println!(
        "{name} check OK: {compared} shared keys within {:.0}% of {path}",
        tolerance * 100.0
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_numbers_and_skips_strings() {
        let text = "{\n  \"schema\": \"bench-core-v1\",\n  \"entries\": {\n    \
                    \"a.b\": 1.500000,\n    \"c\": 2,\n    \"raw\": \"12345\"\n  }\n}\n";
        let got = parse_entries(text);
        assert_eq!(got, vec![("a.b".to_string(), 1.5), ("c".to_string(), 2.0)]);
    }
}
