//! Shared harness code for the table/figure regeneration binaries.
//!
//! * [`table`] — plain-text table rendering + CSV output,
//! * [`baseline`] — flat-JSON baseline parsing + the drift gate shared by
//!   the bench-regression bins,
//! * [`pingpong`] — the IMB PingPong throughput runner behind Figs. 6–7,
//! * [`sweep`] — parallel parameter sweeps (one simulation per thread),
//! * [`microbench`] — wall-clock timing harness for the bench targets,
//! * [`paper`] — the published numbers we compare against,
//! * [`chaos`] — hostile-fabric soak runs asserting protocol liveness.

#![warn(missing_docs)]

pub mod baseline;
pub mod chaos;
pub mod microbench;
pub mod paper;
pub mod pingpong;
pub mod sweep;
pub mod table;

pub use pingpong::{pingpong_throughput, PingPongPoint};
pub use table::Table;
