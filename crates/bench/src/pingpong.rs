//! The IMB PingPong throughput runner behind Figures 6 and 7.

use openmx_core::{CpuProfile, OpenMxConfig, PinningMode};
use openmx_mpi::{imb_job, run_job, summarize, ImbKernel};
use simcore::Bandwidth;

/// One measured point of a pingpong curve.
#[derive(Clone, Copy, Debug)]
pub struct PingPongPoint {
    /// Message size in bytes.
    pub msg: u64,
    /// Throughput in MiB/s, IMB-style (message bytes / half round trip).
    pub mib_per_sec: f64,
    /// Overlap misses observed during the run (both sides).
    pub overlap_misses: u64,
    /// Pin-latency percentiles over the run's pin bursts, in µs
    /// (0 when the mode never pinned, e.g. permanent after warmup).
    pub pin_p50_us: f64,
    /// 95th percentile pin latency, µs.
    pub pin_p95_us: f64,
    /// 99th percentile pin latency, µs.
    pub pin_p99_us: f64,
    /// Pin bursts the percentiles are over.
    pub pin_bursts: u64,
}

/// Run an IMB PingPong at one message size and return its throughput.
pub fn pingpong_throughput(cfg: &OpenMxConfig, msg: u64) -> PingPongPoint {
    // Iteration counts shrink with size, as IMB does.
    let iters = (64u32).min(((256u64 << 20) / msg.max(1)) as u32).max(4);
    let warmup = 2;
    let (scripts, mark) = imb_job(ImbKernel::PingPong, 2, msg, warmup, iters);
    let (cl, records) = run_job(cfg, 2, 1, scripts);
    let res = summarize(&records, mark, iters);
    // IMB PingPong reports t = half the round trip; throughput = msg / t.
    let half = res.avg_iter / 2;
    let bw = Bandwidth::measured(msg, half);
    let c = cl.counters();
    let m = cl.metrics();
    let pin = &m.pin_latency;
    let q = |p: f64| {
        if pin.count() == 0 {
            0.0
        } else {
            pin.quantile(p).as_micros_f64()
        }
    };
    PingPongPoint {
        msg,
        mib_per_sec: bw.as_mib_per_sec(),
        overlap_misses: c.get("overlap_miss_rx") + c.get("overlap_miss_tx"),
        pin_p50_us: q(0.50),
        pin_p95_us: q(0.95),
        pin_p99_us: q(0.99),
        pin_bursts: pin.count(),
    }
}

/// The message-size axis of Figs. 6–7: 64 kB to 16 MB, doubling.
pub fn figure_sizes() -> Vec<u64> {
    (0..9).map(|i| (64 * 1024) << i).collect()
}

/// Convenience: the paper's platform config with a mode and I/OAT flag.
pub fn paper_cfg(mode: PinningMode, ioat: bool) -> OpenMxConfig {
    let mut cfg = OpenMxConfig::with_mode(mode);
    cfg.use_ioat = ioat;
    cfg.profile = CpuProfile::xeon_e5460();
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_axis_matches_figures() {
        let s = figure_sizes();
        assert_eq!(s.first(), Some(&(64 * 1024)));
        assert_eq!(s.last(), Some(&(16 << 20)));
        assert_eq!(s.len(), 9);
    }

    #[test]
    fn throughput_is_sane_at_one_megabyte() {
        let p = pingpong_throughput(&paper_cfg(PinningMode::Permanent, false), 1 << 20);
        assert!(
            (700.0..1200.0).contains(&p.mib_per_sec),
            "got {}",
            p.mib_per_sec
        );
        assert_eq!(p.overlap_misses, 0, "permanent mode cannot miss");
    }
}
