//! Driver hot-path scaling sweep: notifier routing, pressure eviction
//! and batched pinning as the declared-region count grows.
//!
//! The paper's argument needs the *kernel-side bookkeeping* to stay cheap
//! when thousands of regions are declared: an MMU-notifier event must not
//! pay O(regions) to find the pinned pages it invalidates, and a pressure
//! pass must not re-scan the whole table per victim. This harness times
//! the indexed paths against the naive scans they replaced, asserts the
//! ≥10× win at 4096 regions, checks the batched pin path issues at most
//! ⌈pages/chunk⌉ `Memory` pin calls per pin pass, and emits
//! `BENCH_pinscale.json`.
//!
//! Run: `cargo run --release -p openmx-bench --bin pinscale [-- --smoke]`
//!
//! Flags:
//! * `--smoke`     reduced sweep for CI (fewer query reps, same asserts),
//! * `--out PATH`  where to write the JSON (default `BENCH_pinscale.json`).

use std::time::Instant;

use openmx_bench::microbench::black_box;
use openmx_bench::table::Table;
use openmx_core::{Driver, RegionId, Segment};
use simcore::SimTime;
use simmem::{AsId, Memory, Prot, VirtAddr, Vpn, VpnRange, PAGE_SIZE};

/// Pages per declared region in the routing sweep.
const REGION_PAGES: u64 = 4;
/// The speedup the indexed paths must show at the largest sweep point.
const REQUIRED_SPEEDUP: f64 = 10.0;

struct Args {
    smoke: bool,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        out: "BENCH_pinscale.json".to_string(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--smoke" => args.smoke = true,
            "--out" => {
                i += 1;
                args.out = argv[i].clone();
            }
            other => {
                eprintln!("unknown flag: {other}");
                eprintln!("usage: pinscale [--smoke] [--out PATH]");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    args
}

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// Adjacent non-overlapping regions of `REGION_PAGES` pages each over one
/// mapped arena. Nothing is pinned — routing is a pure index question.
fn routing_driver(n: u64) -> (Driver, AsId, VirtAddr) {
    let mut mem = Memory::new(64, 0);
    let space = mem.create_space();
    let addr = mem
        .mmap(space, n * REGION_PAGES * PAGE_SIZE, Prot::ReadWrite)
        .expect("arena");
    let mut d = Driver::new(None);
    for i in 0..n {
        d.declare(
            space,
            &[Segment {
                addr: addr.add(i * REGION_PAGES * PAGE_SIZE),
                len: REGION_PAGES * PAGE_SIZE,
            }],
        )
        .expect("declare");
    }
    (d, space, addr)
}

/// Median wall-clock ns of `reps` runs of `f`.
fn median_ns<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut v: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos() as f64
        })
        .collect();
    v.sort_by(|a, b| a.total_cmp(b));
    v[v.len() / 2]
}

struct RoutePoint {
    indexed_ns: f64,
    naive_ns: f64,
}

/// Per-query cost of the interval index vs the full-table scan, over the
/// same pseudorandom 2-page windows (results cross-checked every query).
fn bench_routing(n: u64, queries: u64) -> RoutePoint {
    let (d, space, addr) = routing_driver(n);
    let base = addr.vpn().0;
    let span = n * REGION_PAGES;
    let windows: Vec<VpnRange> = {
        let mut state = 0x5eed_0000_0000_0001 + n;
        (0..queries)
            .map(|_| {
                let s = base + xorshift(&mut state) % span;
                VpnRange::new(Vpn(s), Vpn(s + 2))
            })
            .collect()
    };
    for w in &windows {
        assert_eq!(
            d.regions_intersecting(space, w),
            d.regions_intersecting_naive(space, w),
            "index diverged from the naive scan"
        );
    }
    let indexed_ns = median_ns(5, || {
        for w in &windows {
            black_box(d.regions_intersecting(space, w));
        }
    }) / queries as f64;
    let naive_ns = median_ns(5, || {
        for w in &windows {
            black_box(d.regions_intersecting_naive(space, w));
        }
    }) / queries as f64;
    RoutePoint {
        indexed_ns,
        naive_ns,
    }
}

/// One-page regions, all pinned and idle, staggered `last_use`.
fn evict_driver(n: u64) -> (Driver, Memory, Vec<RegionId>) {
    let mut mem = Memory::new(n as usize + 64, 0);
    let space = mem.create_space();
    let addr = mem
        .mmap(space, n * PAGE_SIZE, Prot::ReadWrite)
        .expect("arena");
    let mut d = Driver::new(Some(0));
    let ids: Vec<RegionId> = (0..n)
        .map(|i| {
            d.declare(
                space,
                &[Segment {
                    addr: addr.add(i * PAGE_SIZE),
                    len: PAGE_SIZE,
                }],
            )
            .expect("declare")
        })
        .collect();
    (d, mem, ids)
}

fn repin_all(d: &mut Driver, mem: &mut Memory, ids: &[RegionId], epoch: u64) {
    for (i, &id) in ids.iter().enumerate() {
        d.region_mut(id).pin_next_chunk(mem, 100).expect("pin");
        d.region_mut(id).last_use = SimTime::from_nanos(epoch * ids.len() as u64 + i as u64);
        d.note_region_idle(id);
    }
}

struct EvictPoint {
    heap_ns: f64,
    naive_ns: f64,
}

/// Per-eviction cost of draining all `n` idle pinned regions under a
/// zero pinned-page limit: the LRU heap vs the repeated min-scan the old
/// `pressure_evict` did.
fn bench_evict(n: u64, reps: usize) -> EvictPoint {
    let (mut d, mut mem, ids) = evict_driver(n);
    let mut heap_best = f64::INFINITY;
    for rep in 0..reps {
        repin_all(&mut d, &mut mem, &ids, rep as u64);
        let t = Instant::now();
        let evicted = d.pressure_evict(&mut mem, 0, SimTime::ZERO, None);
        let ns = t.elapsed().as_nanos() as f64;
        assert_eq!(evicted.len() as u64, n, "drain must evict every region");
        heap_best = heap_best.min(ns);
    }
    let mut naive_best = f64::INFINITY;
    for rep in 0..reps {
        repin_all(&mut d, &mut mem, &ids, (reps + rep) as u64);
        let t = Instant::now();
        let mut drained = 0u64;
        loop {
            let victim = d
                .iter_regions()
                .filter(|(_, r)| r.use_count == 0 && !r.unpinned() && !r.pinning_in_progress)
                .min_by_key(|(_, r)| r.last_use)
                .map(|(id, _)| id);
            let Some(id) = victim else { break };
            d.region_mut(id).unpin_all(&mut mem);
            drained += 1;
        }
        let ns = t.elapsed().as_nanos() as f64;
        assert_eq!(drained, n, "naive drain must evict every region");
        naive_best = naive_best.min(ns);
    }
    EvictPoint {
        heap_ns: heap_best / n as f64,
        naive_ns: naive_best / n as f64,
    }
}

struct BatchReport {
    pages: u64,
    chunk: u64,
    batched_calls: u64,
    per_page_calls: u64,
}

/// Pin one contiguous 256-page region in 32-page chunks through both pin
/// paths and count the `Memory` pin calls each issues.
fn batch_pin_calls() -> BatchReport {
    let pages = 256u64;
    let chunk = 32u64;
    let count = |per_page: bool| {
        let mut mem = Memory::new(pages as usize + 16, 0);
        let space = mem.create_space();
        let addr = mem.mmap(space, pages * PAGE_SIZE, Prot::ReadWrite).unwrap();
        let mut d = Driver::new(None);
        let id = d
            .declare(
                space,
                &[Segment {
                    addr,
                    len: pages * PAGE_SIZE,
                }],
            )
            .unwrap();
        let before = mem.pin_calls();
        loop {
            let r = d.region_mut(id);
            let progress = if per_page {
                r.pin_next_chunk_per_page(&mut mem, chunk)
            } else {
                r.pin_next_chunk(&mut mem, chunk)
            }
            .expect("pin");
            if progress.complete {
                break;
            }
        }
        mem.pin_calls() - before
    };
    BatchReport {
        pages,
        chunk,
        batched_calls: count(false),
        per_page_calls: count(true),
    }
}

fn main() {
    let args = parse_args();
    let counts: &[u64] = if args.smoke {
        &[64, 1024, 4096]
    } else {
        &[64, 256, 1024, 4096]
    };
    let queries: u64 = if args.smoke { 256 } else { 1024 };
    let evict_reps: usize = if args.smoke { 2 } else { 3 };

    let mut t = Table::new(
        "driver hot-path scaling (wall-clock, lower is better)",
        &[
            "regions",
            "route idx ns",
            "route scan ns",
            "route speedup",
            "evict heap ns",
            "evict scan ns",
            "evict speedup",
        ],
    );
    let mut rows = Vec::new();
    for &n in counts {
        let route = bench_routing(n, queries);
        let evict = bench_evict(n, evict_reps);
        let route_speedup = route.naive_ns / route.indexed_ns;
        let evict_speedup = evict.naive_ns / evict.heap_ns;
        t.row(vec![
            format!("{n}"),
            format!("{:.0}", route.indexed_ns),
            format!("{:.0}", route.naive_ns),
            format!("{route_speedup:.1}x"),
            format!("{:.0}", evict.heap_ns),
            format!("{:.0}", evict.naive_ns),
            format!("{evict_speedup:.1}x"),
        ]);
        rows.push((n, route, evict, route_speedup, evict_speedup));
    }
    t.emit(None);

    let batch = batch_pin_calls();
    println!(
        "batch pin: {} pages in {}-page chunks -> {} pin calls batched vs {} per-page",
        batch.pages, batch.chunk, batch.batched_calls, batch.per_page_calls
    );

    // JSON artifact (hand-assembled; the repo carries no serde).
    let mut json = String::from("{\n  \"sweep\": [\n");
    for (i, (n, route, evict, rs, es)) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"regions\": {n}, \"route_indexed_ns\": {:.1}, \"route_naive_ns\": {:.1}, \
             \"route_speedup\": {rs:.2}, \"evict_heap_ns\": {:.1}, \"evict_naive_ns\": {:.1}, \
             \"evict_speedup\": {es:.2}}}{}\n",
            route.indexed_ns,
            route.naive_ns,
            evict.heap_ns,
            evict.naive_ns,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"batch\": {{\"pages\": {}, \"chunk\": {}, \"batched_pin_calls\": {}, \
         \"per_page_pin_calls\": {}}}\n}}\n",
        batch.pages, batch.chunk, batch.batched_calls, batch.per_page_calls
    ));
    std::fs::write(&args.out, json).expect("write BENCH_pinscale.json");
    println!("wrote {}", args.out);

    // The acceptance gates.
    let (n_max, _, _, route_speedup, evict_speedup) = rows.last().expect("sweep ran");
    assert!(
        route_speedup >= &REQUIRED_SPEEDUP,
        "notifier routing only {route_speedup:.1}x faster than the naive scan at {n_max} regions"
    );
    assert!(
        evict_speedup >= &REQUIRED_SPEEDUP,
        "pressure eviction only {evict_speedup:.1}x faster than the naive scan at {n_max} regions"
    );
    assert!(
        batch.batched_calls <= batch.pages.div_ceil(batch.chunk),
        "batched pinning issued {} pin calls for {} pages in {}-page chunks",
        batch.batched_calls,
        batch.pages,
        batch.chunk
    );
    println!(
        "pinscale OK: routing {route_speedup:.1}x, eviction {evict_speedup:.1}x at {n_max} \
         regions; batched pin calls {} <= {}",
        batch.batched_calls,
        batch.pages.div_ceil(batch.chunk)
    );
}
