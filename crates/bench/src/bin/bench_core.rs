//! Unified bench-regression harness: one run sweeps the paper's headline
//! results — Fig. 6 (pin-per-comm vs permanent, ± I/OAT), Fig. 7 (the
//! overlapped/cached pinning strategies), Table 2 (IMB kernels over the
//! MPI layer) and the deterministic batched-pinning call counts — and
//! emits them as one flat `BENCH_core.json`.
//!
//! Every metric gated here is *virtual-time* or a deterministic counter,
//! so the numbers are machine-independent: any drift beyond tolerance is
//! a behavioural change in the protocol or the simulation, not noise.
//! CI runs `--smoke --check BENCH_core.json` against the committed
//! baseline and fails on >25% relative drift of any shared key.
//!
//! Run: `cargo run --release -p openmx-bench --bin bench_core [-- --smoke]`
//!
//! Flags:
//! * `--smoke`       reduced size/iteration axes for CI (keys stay a
//!   subset of the full run's, so `--check` still compares),
//! * `--out PATH`    where to write the JSON (default `BENCH_core.json`),
//! * `--check PATH`  diff against a baseline JSON; exit 1 on regression.

use openmx_bench::baseline::check_against;
use openmx_bench::pingpong::{paper_cfg, pingpong_throughput};
use openmx_bench::table::Table;
use openmx_core::{Driver, PinningMode, Segment};
use openmx_mpi::{run_imb, ImbKernel};
use simmem::{Memory, Prot, PAGE_SIZE};

/// Maximum relative drift of a shared key before `--check` fails.
const TOLERANCE: f64 = 0.25;

struct Args {
    smoke: bool,
    out: String,
    check: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        out: "BENCH_core.json".to_string(),
        check: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--smoke" => args.smoke = true,
            "--out" => {
                i += 1;
                args.out = argv[i].clone();
            }
            "--check" => {
                i += 1;
                args.check = Some(argv[i].clone());
            }
            other => {
                eprintln!("unknown flag: {other}");
                eprintln!("usage: bench_core [--smoke] [--out PATH] [--check PATH]");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    args
}

/// Count `Memory` pin calls for one 256-page region pinned in 32-page
/// chunks — batched vs per-page (same probe as the pinscale gate).
fn pin_call_count(per_page: bool) -> u64 {
    let pages = 256u64;
    let chunk = 32u64;
    let mut mem = Memory::new(pages as usize + 16, 0);
    let space = mem.create_space();
    let addr = mem.mmap(space, pages * PAGE_SIZE, Prot::ReadWrite).unwrap();
    let mut d = Driver::new(None);
    let id = d
        .declare(
            space,
            &[Segment {
                addr,
                len: pages * PAGE_SIZE,
            }],
        )
        .unwrap();
    let before = mem.pin_calls();
    loop {
        let r = d.region_mut(id);
        let progress = if per_page {
            r.pin_next_chunk_per_page(&mut mem, chunk)
        } else {
            r.pin_next_chunk(&mut mem, chunk)
        }
        .expect("pin");
        if progress.complete {
            break;
        }
    }
    mem.pin_calls() - before
}

fn main() {
    let args = parse_args();

    let sizes: &[u64] = if args.smoke {
        &[64 * 1024, 1 << 20]
    } else {
        &[64 * 1024, 1 << 20, 16 << 20]
    };
    let imb_iters: u32 = if args.smoke { 2 } else { 4 };

    let mut entries: Vec<(String, f64)> = Vec::new();

    // Fig. 6 — the pinning-cost bounds: pin-per-comm vs permanent, ± I/OAT.
    for mode in [PinningMode::PinPerComm, PinningMode::Permanent] {
        for ioat in [false, true] {
            let cfg = paper_cfg(mode, ioat);
            for &msg in sizes {
                let p = pingpong_throughput(&cfg, msg);
                entries.push((
                    format!("fig6.{}.ioat{}.{msg}.mib_s", mode.label(), ioat as u8),
                    p.mib_per_sec,
                ));
            }
        }
    }

    // Fig. 7 — the decoupled strategies against the regular baseline.
    for mode in [
        PinningMode::PinPerComm,
        PinningMode::Cached,
        PinningMode::Overlapped,
        PinningMode::OverlappedCached,
    ] {
        let cfg = paper_cfg(mode, false);
        for &msg in sizes {
            let p = pingpong_throughput(&cfg, msg);
            entries.push((format!("fig7.{}.{msg}.mib_s", mode.label()), p.mib_per_sec));
        }
    }

    // Table 2 — IMB kernels through the MPI layer, virtual per-iteration
    // time (steady state after one warmup iteration, so the average is
    // independent of the iteration count and smoke runs stay comparable).
    for mode in [PinningMode::PinPerComm, PinningMode::OverlappedCached] {
        let cfg = paper_cfg(mode, false);
        for (kernel, kname) in [
            (ImbKernel::SendRecv, "sendrecv"),
            (ImbKernel::Bcast, "bcast"),
        ] {
            let res = run_imb(&cfg, 2, 2, kernel, 64 * 1024, 1, imb_iters);
            entries.push((
                format!("table2.{kname}.{}.avg_us", mode.label()),
                res.avg_iter.as_micros_f64(),
            ));
        }
    }

    // Pinscale — deterministic pin-call counts for the batched path.
    entries.push((
        "pinscale.batched_pin_calls".into(),
        pin_call_count(false) as f64,
    ));
    entries.push((
        "pinscale.per_page_pin_calls".into(),
        pin_call_count(true) as f64,
    ));

    let mut t = Table::new(
        "bench-core: deterministic headline metrics",
        &["key", "value"],
    );
    for (k, v) in &entries {
        t.row(vec![k.clone(), format!("{v:.3}")]);
    }
    t.emit(None);

    // One flat key per line so baselines diff cleanly in review.
    let mut json = String::from("{\n  \"schema\": \"bench-core-v1\",\n  \"entries\": {\n");
    for (i, (k, v)) in entries.iter().enumerate() {
        json.push_str(&format!(
            "    \"{k}\": {v:.6}{}\n",
            if i + 1 == entries.len() { "" } else { "," }
        ));
    }
    json.push_str("  }\n}\n");
    std::fs::write(&args.out, &json).expect("write BENCH_core.json");
    println!("wrote {} ({} entries)", args.out, entries.len());

    // The regression gate: every key present in both runs must agree
    // within tolerance. Keys only in the baseline (e.g. the 16 MiB points
    // a smoke run skips) are not compared.
    if let Some(path) = &args.check {
        check_against("bench-core", &entries, path, TOLERANCE);
    }
}
