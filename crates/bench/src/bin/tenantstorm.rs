//! Noisy-neighbor tenant storm: per-tenant pin quotas with weighted-fair
//! eviction vs the unprotected global-LRU driver.
//!
//! One aggressor process round-robins rendezvous sends over twelve
//! 64-page buffers with no think time, so its pinned working set alone
//! overruns the node's pinned-page ceiling; four well-behaved victims on
//! the same node each loop a 32-page send followed by a 1 ms compute gap.
//! Without quotas the pressure evictor walks the global LRU, and the
//! victims' idle cached regions — the oldest entries by construction —
//! are exactly what it unpins: every victim round then stalls behind a
//! fresh pin pass. With quotas the aggressor is capped at its own hard
//! limit (self-evicting its own idle buffers), the node never reaches
//! the global ceiling, and the victims keep their pins.
//!
//! The headline metric is the victims' steady-state pin-wait time (the
//! traced interval a transfer spends queued behind the pin cursor),
//! p50/p99 over all victim rounds past warmup. The gates assert the
//! quota world inflicts **zero** cross-tenant evictions on the victims
//! and bounds their p99 at least [`REQUIRED_IMPROVEMENT`]× below the
//! unprotected world's, while the aggressor stays within its cap.
//!
//! Run: `cargo run --release -p openmx-bench --bin tenantstorm [-- --smoke]`
//!
//! Flags:
//! * `--smoke`       fewer victim rounds for CI (same asserts),
//! * `--out PATH`    where to write the JSON (default `BENCH_tenantstorm.json`),
//! * `--check PATH`  diff against a baseline JSON; exit 1 on drift.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use openmx_bench::baseline::check_against;
use openmx_bench::table::Table;
use openmx_core::{
    AppEvent, Cluster, Ctx, OpenMxConfig, PinQuota, PinningMode, ProcId, Process, TraceEvent,
};
use simcore::{SimDuration, SimTime};
use simmem::{VirtAddr, PAGE_SIZE};

/// Pages per victim buffer (32 pages = 128 KiB, rendezvous-sized).
const VICTIM_PAGES: u64 = 32;
/// Pages per aggressor buffer.
const AGGRESSOR_PAGES: u64 = 64;
/// Distinct buffers the aggressor cycles through.
const AGGRESSOR_BUFS: usize = 12;
/// Victim processes (each with a dedicated receiver on the other node).
const VICTIMS: usize = 4;
/// Node-wide pinned-page ceiling. The aggressor's full working set
/// (12 x 64 pages) overruns it; quota-capped tenants together stay under.
const PINNED_LIMIT: usize = 256;
/// Per-tenant quota in the protected world.
const QUOTA: PinQuota = PinQuota {
    soft_share: 64,
    hard_cap: 96,
};
/// Victim think time between rounds — longer than one full aggressor
/// buffer cycle, so victim regions are the LRU minimum while they idle.
const VICTIM_GAP: SimDuration = SimDuration::from_millis(1);
/// Rendezvous pre-synchronization threshold (paper §3.3): the rndv (and
/// the receiver's first pull) queue behind this many pinned pages, so a
/// transfer whose region lost its pins to eviction opens a traced
/// pin-wait interval on its next round.
const PRESYNC_PAGES: u64 = 16;
/// Steady-state cutoff: pin waits starting before this are warmup (the
/// unavoidable cold first pin of each buffer) in both worlds.
const WARMUP: SimTime = SimTime::from_nanos(5_000_000);
/// Required p99 pin-wait improvement of the quota world over the
/// unprotected world.
const REQUIRED_IMPROVEMENT: f64 = 10.0;
/// Floor for the protected world's p99 when it has no steady-state waits
/// at all (the expected case): 100 ns, one simulated per-page DMA setup,
/// so the ratio stays finite without drowning the off world's microsecond
/// -scale repin stalls.
const P99_FLOOR_NS: f64 = 100.0;
/// Maximum relative drift of a shared key before `--check` fails.
const TOLERANCE: f64 = 0.25;

struct Args {
    smoke: bool,
    out: String,
    check: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        out: "BENCH_tenantstorm.json".to_string(),
        check: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--smoke" => args.smoke = true,
            "--out" => {
                i += 1;
                args.out = argv[i].clone();
            }
            "--check" => {
                i += 1;
                args.check = Some(argv[i].clone());
            }
            other => {
                eprintln!("unknown flag: {other}");
                eprintln!("usage: tenantstorm [--smoke] [--out PATH] [--check PATH]");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    args
}

/// A well-behaved tenant: send, think, repeat.
struct Victim {
    peer: ProcId,
    tag: u64,
    rounds_left: u32,
    buf: VirtAddr,
    done: Rc<RefCell<Vec<bool>>>,
    slot: usize,
}

impl Process for Victim {
    fn start(&mut self, ctx: &mut Ctx<'_>) {
        self.buf = ctx.malloc(VICTIM_PAGES * PAGE_SIZE);
        ctx.isend(self.peer, self.tag, self.buf, VICTIM_PAGES * PAGE_SIZE);
    }
    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: AppEvent) {
        match ev {
            AppEvent::SendDone(_) => {
                self.rounds_left -= 1;
                if self.rounds_left == 0 {
                    self.done.borrow_mut()[self.slot] = true;
                    ctx.stop();
                } else {
                    ctx.compute(VICTIM_GAP, 0);
                }
            }
            AppEvent::ComputeDone(_) => {
                ctx.isend(self.peer, self.tag, self.buf, VICTIM_PAGES * PAGE_SIZE);
            }
            other => panic!("victim: unexpected event {other:?}"),
        }
    }
}

/// The noisy neighbor: no think time, a working set that alone overruns
/// the node's pinned-page ceiling.
struct Aggressor {
    peer: ProcId,
    tag: u64,
    rounds_left: u32,
    bufs: Vec<VirtAddr>,
    next: usize,
}

impl Process for Aggressor {
    fn start(&mut self, ctx: &mut Ctx<'_>) {
        for _ in 0..AGGRESSOR_BUFS {
            self.bufs.push(ctx.malloc(AGGRESSOR_PAGES * PAGE_SIZE));
        }
        ctx.isend(
            self.peer,
            self.tag,
            self.bufs[0],
            AGGRESSOR_PAGES * PAGE_SIZE,
        );
        self.next = 1;
    }
    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: AppEvent) {
        match ev {
            AppEvent::SendDone(_) | AppEvent::Failed(..) => {
                self.rounds_left -= 1;
                if self.rounds_left == 0 {
                    ctx.stop();
                    return;
                }
                let buf = self.bufs[self.next % AGGRESSOR_BUFS];
                self.next += 1;
                ctx.isend(self.peer, self.tag, buf, AGGRESSOR_PAGES * PAGE_SIZE);
            }
            other => panic!("aggressor: unexpected event {other:?}"),
        }
    }
}

/// Reposting receiver: one buffer, `rounds` back-to-back receives.
struct Sink {
    tag: u64,
    len: u64,
    rounds_left: u32,
    buf: VirtAddr,
}

impl Process for Sink {
    fn start(&mut self, ctx: &mut Ctx<'_>) {
        self.buf = ctx.malloc(self.len);
        ctx.irecv(self.tag, !0, self.buf, self.len);
    }
    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: AppEvent) {
        match ev {
            AppEvent::RecvDone(..) | AppEvent::Failed(..) => {
                self.rounds_left -= 1;
                if self.rounds_left == 0 {
                    ctx.stop();
                } else {
                    ctx.irecv(self.tag, !0, self.buf, self.len);
                }
            }
            other => panic!("sink: unexpected event {other:?}"),
        }
    }
}

fn quantile(sorted: &[u64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx] as f64
}

struct WorldReport {
    /// Sorted steady-state victim pin-wait durations (ns).
    victim_waits: Vec<u64>,
    /// Cross-tenant eviction pages suffered by the victims.
    victims_suffered: u64,
    /// Aggressor peak attributed pinned pages.
    aggressor_peak: u64,
    /// Aggressor quota denials.
    aggressor_denials: u64,
    /// Pressure-evicted pages on the senders' node.
    pressure_pages: u64,
}

/// One storm: the aggressor and the victims share node 0, their sinks
/// live on node 1. `quota` switches the protected world on.
fn run_world(rounds: u32, quota: Option<PinQuota>) -> WorldReport {
    let mut cfg = OpenMxConfig::with_mode(PinningMode::OverlappedCached);
    cfg.pinned_pages_limit = Some(PINNED_LIMIT);
    cfg.presync_pages = PRESYNC_PAGES;
    cfg.pin_quota = quota;
    let mut cl = Cluster::new(cfg, 2);
    cl.enable_trace_with_capacity(1 << 17);

    let done = Rc::new(RefCell::new(vec![false; VICTIMS]));
    let agg_rounds = rounds * 6;
    // ProcId(0): the aggressor. ProcId(1..=VICTIMS): the victims.
    cl.add_process(
        0,
        Box::new(Aggressor {
            peer: ProcId((VICTIMS + 1) as u32),
            tag: 100,
            rounds_left: agg_rounds,
            bufs: Vec::new(),
            next: 0,
        }),
    );
    for v in 0..VICTIMS {
        cl.add_process(
            0,
            Box::new(Victim {
                peer: ProcId((VICTIMS + 2 + v) as u32),
                tag: v as u64,
                rounds_left: rounds,
                buf: VirtAddr(0),
                done: done.clone(),
                slot: v,
            }),
        );
    }
    cl.add_process(
        1,
        Box::new(Sink {
            tag: 100,
            len: AGGRESSOR_PAGES * PAGE_SIZE,
            rounds_left: agg_rounds,
            buf: VirtAddr(0),
        }),
    );
    for v in 0..VICTIMS {
        cl.add_process(
            1,
            Box::new(Sink {
                tag: v as u64,
                len: VICTIM_PAGES * PAGE_SIZE,
                rounds_left: rounds,
                buf: VirtAddr(0),
            }),
        );
    }
    cl.run(Some(SimTime::from_nanos(120_000_000_000)));
    assert!(
        done.borrow().iter().all(|&d| d),
        "victims did not finish their rounds (quota={})",
        quota.is_some()
    );

    // Steady-state victim pin waits: pair PinWaitStart/End by (xfer,
    // region), attribute by the record's proc, drop warmup intervals.
    let mut open: BTreeMap<(u64, u32), (SimTime, u32)> = BTreeMap::new();
    let mut victim_waits = Vec::new();
    for rec in cl.tracer().iter() {
        match rec.event {
            TraceEvent::PinWaitStart { xfer, region } => {
                let proc = rec.proc.map(|p| p.0).unwrap_or(u32::MAX);
                open.insert((xfer.0, region.0), (rec.time, proc));
            }
            TraceEvent::PinWaitEnd { xfer, region } => {
                if let Some((start, proc)) = open.remove(&(xfer.0, region.0)) {
                    let victim = (1..=VICTIMS as u32).contains(&proc);
                    if victim && start >= WARMUP {
                        victim_waits.push((rec.time - start).as_nanos());
                    }
                }
            }
            _ => {}
        }
    }
    victim_waits.sort_unstable();

    let stats = cl.driver(0).tenant_stats();
    let tenant = |p: u32| {
        stats
            .iter()
            .find(|(q, _)| q.0 == p)
            .map(|&(_, t)| t)
            .unwrap_or_default()
    };
    let victims_suffered = (1..=VICTIMS as u32)
        .map(|p| tenant(p).evictions_suffered_from_others)
        .sum();
    WorldReport {
        victim_waits,
        victims_suffered,
        aggressor_peak: tenant(0).peak_pinned_pages,
        aggressor_denials: tenant(0).quota_denials,
        pressure_pages: cl.node_counters(0).get("pressure_unpinned_pages"),
    }
}

fn main() {
    let args = parse_args();
    let rounds: u32 = if args.smoke { 30 } else { 200 };

    let off = run_world(rounds, None);
    let on = run_world(rounds, Some(QUOTA));

    let off_p50 = quantile(&off.victim_waits, 0.50);
    let off_p99 = quantile(&off.victim_waits, 0.99);
    let off_p999 = quantile(&off.victim_waits, 0.999);
    let on_p50 = quantile(&on.victim_waits, 0.50);
    let on_p99 = quantile(&on.victim_waits, 0.99);
    let on_p999 = quantile(&on.victim_waits, 0.999);
    let improvement = off_p99 / on_p99.max(P99_FLOOR_NS);

    let mut t = Table::new(
        "tenantstorm: victim pin-wait under a noisy neighbor (ns, steady state)",
        &[
            "world",
            "p50",
            "p99",
            "p999",
            "waits",
            "victim suffered pages",
            "aggressor peak",
        ],
    );
    t.row(vec![
        "no quota".to_string(),
        format!("{off_p50:.0}"),
        format!("{off_p99:.0}"),
        format!("{off_p999:.0}"),
        format!("{}", off.victim_waits.len()),
        format!("{}", off.victims_suffered),
        format!("{}", off.aggressor_peak),
    ]);
    t.row(vec![
        "quota 64/96".to_string(),
        format!("{on_p50:.0}"),
        format!("{on_p99:.0}"),
        format!("{on_p999:.0}"),
        format!("{}", on.victim_waits.len()),
        format!("{}", on.victims_suffered),
        format!("{}", on.aggressor_peak),
    ]);
    t.emit(None);
    println!(
        "victim p99 improvement: {improvement:.1}x; aggressor denials with quota: {}; \
         pressure pages node0: off={} on={}",
        on.aggressor_denials, off.pressure_pages, on.pressure_pages
    );

    // Gated keys sit on `"key": number` lines; raw counts that scale with
    // the round axis are written as strings so smoke-vs-full checks skip
    // them (see openmx_bench::baseline).
    let json = format!(
        "{{\n  \"schema\": \"tenantstorm-v1\",\n  \"entries\": {{\n    \
         \"off.victim_pin_wait_p50_ns\": {off_p50:.1},\n    \
         \"off.victim_pin_wait_p99_ns\": {off_p99:.1},\n    \
         \"on.victim_pin_wait_p50_ns\": {on_p50:.1},\n    \
         \"on.victim_pin_wait_p99_ns\": {on_p99:.1},\n    \
         \"on.victims_suffered_pages\": {},\n    \
         \"on.aggressor_peak_pages\": {},\n    \
         \"p99_improvement\": {improvement:.2}\n  }},\n  \"info\": {{\n    \
         \"rounds\": \"{rounds}\",\n    \
         \"off.victim_pin_wait_p999_ns\": \"{off_p999:.0}\",\n    \
         \"on.victim_pin_wait_p999_ns\": \"{on_p999:.0}\",\n    \
         \"off.waits\": \"{}\",\n    \"on.waits\": \"{}\",\n    \
         \"off.victims_suffered_pages\": \"{}\",\n    \
         \"off.pressure_pages\": \"{}\",\n    \"on.pressure_pages\": \"{}\",\n    \
         \"on.aggressor_denials\": \"{}\"\n  }}\n}}\n",
        on.victims_suffered,
        on.aggressor_peak,
        off.victim_waits.len(),
        on.victim_waits.len(),
        off.victims_suffered,
        off.pressure_pages,
        on.pressure_pages,
        on.aggressor_denials,
    );
    std::fs::write(&args.out, json).expect("write BENCH_tenantstorm.json");
    println!("wrote {}", args.out);

    // The acceptance gates.
    assert!(
        off.victims_suffered > 0,
        "storm too weak: the unprotected world inflicted no cross-tenant evictions"
    );
    assert!(
        !off.victim_waits.is_empty(),
        "storm too weak: victims never waited on a pin in the unprotected world"
    );
    assert_eq!(
        on.victims_suffered, 0,
        "quota world must inflict zero cross-tenant evictions on the victims"
    );
    assert!(
        on.aggressor_peak <= QUOTA.hard_cap,
        "aggressor exceeded its hard cap: peak {} > {}",
        on.aggressor_peak,
        QUOTA.hard_cap
    );
    assert!(
        improvement >= REQUIRED_IMPROVEMENT,
        "victim p99 pin-wait only improved {improvement:.1}x \
         (off {off_p99:.0} ns vs on {on_p99:.0} ns, need {REQUIRED_IMPROVEMENT}x)"
    );
    println!(
        "tenantstorm OK: victim p99 pin-wait {off_p99:.0} ns -> {on_p99:.0} ns \
         ({improvement:.1}x), zero cross-tenant evictions under quota"
    );

    if let Some(path) = &args.check {
        let entries = vec![
            ("off.victim_pin_wait_p50_ns".to_string(), off_p50),
            ("off.victim_pin_wait_p99_ns".to_string(), off_p99),
            ("on.victim_pin_wait_p50_ns".to_string(), on_p50),
            ("on.victim_pin_wait_p99_ns".to_string(), on_p99),
            (
                "on.victims_suffered_pages".to_string(),
                on.victims_suffered as f64,
            ),
            (
                "on.aggressor_peak_pages".to_string(),
                on.aggressor_peak as f64,
            ),
            ("p99_improvement".to_string(), improvement),
        ];
        check_against("tenantstorm", &entries, path, TOLERANCE);
    }
}
