//! Crash/restart recovery storm: incarnation-fenced endpoints and
//! orphan-pin reaping under repeated process crashes.
//!
//! Three well-behaved survivor tenants share node 0 with one "phoenix"
//! process that is crashed and restarted every cycle while all four keep
//! rendezvous traffic flowing to sinks on node 1. The phoenix cycles a
//! working set large enough that, together with the survivors, the node
//! sits over its pinned-page ceiling — so every crash is also a pressure
//! event, and a missed reap would show up as both an orphaned pin and a
//! survivor stall.
//!
//! Per cycle the harness asserts the two crash fault-domain invariants
//! directly against the driver:
//!
//! * **zero orphan pins** — the instant the crash returns, no region
//!   owned by the dead incarnation remains declared, and the tenant's
//!   attributed pinned-page count is zero;
//! * **zero ghost completions** — the restarted incarnation never
//!   receives a completion for a request it did not post.
//!
//! The headline metrics are recovery latency (crash to the reborn
//! process's first completed transfer, p50/p99 over cycles) and the
//! surviving tenants' steady-state p99 pin wait, which the crashes must
//! not inflate.
//!
//! Run: `cargo run --release -p openmx-bench --bin crashstorm [-- --smoke]`
//!
//! Flags:
//! * `--smoke`       fewer crash cycles for CI (same asserts),
//! * `--out PATH`    where to write the JSON (default `BENCH_crashstorm.json`),
//! * `--check PATH`  diff against a baseline JSON; exit 1 on drift.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::rc::Rc;

use openmx_bench::baseline::check_against;
use openmx_bench::table::Table;
use openmx_core::{AppEvent, Cluster, Ctx, OpenMxConfig, PinningMode, ProcId, Process, TraceEvent};
use simcore::{SimDuration, SimTime};
use simmem::{VirtAddr, PAGE_SIZE};

/// Pages per survivor buffer (rendezvous-sized).
const SURVIVOR_PAGES: u64 = 32;
/// Pages per phoenix buffer.
const PHOENIX_PAGES: u64 = 64;
/// Distinct buffers the phoenix cycles through (192 pages of working
/// set: with the survivors' 96 the node overruns its 256-page ceiling,
/// so crashes double as pressure-relief events).
const PHOENIX_BUFS: usize = 3;
/// Survivor processes on node 0.
const SURVIVORS: usize = 3;
/// Node-wide pinned-page ceiling.
const PINNED_LIMIT: usize = 256;
/// Rendezvous pre-synchronization threshold: transfers queue behind this
/// many pinned pages, opening traced pin-wait intervals on repins.
const PRESYNC_PAGES: u64 = 16;
/// Survivor think time between rounds — long enough that an idle
/// survivor buffer can become the LRU minimum under pressure, so the
/// storm produces real survivor repin waits to gate on.
const SURVIVOR_GAP: SimDuration = SimDuration::from_millis(1);
/// Traffic time before each crash.
const WORK_WINDOW: SimDuration = SimDuration::from_millis(4);
/// Dead time between crash and restart.
const DOWN_TIME: SimDuration = SimDuration::from_millis(1);
/// Per-cycle cap on waiting for the reborn phoenix's first completion.
const RECOVERY_CAP: SimDuration = SimDuration::from_millis(100);
/// Drive quantum while waiting for the recovery flag.
const RECOVERY_QUANTUM: SimDuration = SimDuration::from_micros(20);
/// Steady-state cutoff for survivor pin waits (cold first pins are
/// warmup in any world).
const WARMUP: SimTime = SimTime::from_nanos(2_000_000);
/// Maximum relative drift of a shared key before `--check` fails.
const TOLERANCE: f64 = 0.25;

struct Args {
    smoke: bool,
    out: String,
    check: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        out: "BENCH_crashstorm.json".to_string(),
        check: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--smoke" => args.smoke = true,
            "--out" => {
                i += 1;
                args.out = argv[i].clone();
            }
            "--check" => {
                i += 1;
                args.check = Some(argv[i].clone());
            }
            other => {
                eprintln!("unknown flag: {other}");
                eprintln!("usage: crashstorm [--smoke] [--out PATH] [--check PATH]");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    args
}

/// A surviving tenant: send, think, repeat until the storm ends.
struct Survivor {
    peer: ProcId,
    tag: u64,
    buf: VirtAddr,
}

impl Process for Survivor {
    fn start(&mut self, ctx: &mut Ctx<'_>) {
        self.buf = ctx.malloc(SURVIVOR_PAGES * PAGE_SIZE);
        ctx.isend(self.peer, self.tag, self.buf, SURVIVOR_PAGES * PAGE_SIZE);
    }
    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: AppEvent) {
        match ev {
            AppEvent::SendDone(_) => ctx.compute(SURVIVOR_GAP, 0),
            AppEvent::ComputeDone(_) => {
                ctx.isend(self.peer, self.tag, self.buf, SURVIVOR_PAGES * PAGE_SIZE);
            }
            AppEvent::Failed(..) => ctx.compute(SURVIVOR_GAP, 0),
            other => panic!("survivor: unexpected event {other:?}"),
        }
    }
}

/// The crash victim. Each incarnation records the requests it posted;
/// any completion for a request it does not know is a ghost from a dead
/// incarnation, which the engine must never deliver.
struct Phoenix {
    peer: ProcId,
    tag: u64,
    bufs: Vec<VirtAddr>,
    next: usize,
    mine: BTreeSet<u64>,
    ghosts: Rc<Cell<u64>>,
    /// Set to the completion time of this incarnation's first transfer.
    first_done: Rc<Cell<Option<SimTime>>>,
}

impl Phoenix {
    fn post(&mut self, ctx: &mut Ctx<'_>) {
        let buf = self.bufs[self.next % PHOENIX_BUFS];
        self.next += 1;
        let req = ctx.isend(self.peer, self.tag, buf, PHOENIX_PAGES * PAGE_SIZE);
        self.mine.insert(req.0);
    }
}

impl Process for Phoenix {
    fn start(&mut self, ctx: &mut Ctx<'_>) {
        for _ in 0..PHOENIX_BUFS {
            self.bufs.push(ctx.malloc(PHOENIX_PAGES * PAGE_SIZE));
        }
        self.post(ctx);
    }
    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: AppEvent) {
        match ev {
            AppEvent::SendDone(req) | AppEvent::Failed(req, _) => {
                if !self.mine.remove(&req.0) {
                    self.ghosts.set(self.ghosts.get() + 1);
                    return;
                }
                if matches!(ev, AppEvent::SendDone(_)) && self.first_done.get().is_none() {
                    self.first_done.set(Some(ctx.now()));
                }
                self.post(ctx);
            }
            other => panic!("phoenix: unexpected event {other:?}"),
        }
    }
}

/// Reposting receiver that shrugs off peer-crash failures.
struct Sink {
    tag: u64,
    len: u64,
    buf: VirtAddr,
}

impl Process for Sink {
    fn start(&mut self, ctx: &mut Ctx<'_>) {
        self.buf = ctx.malloc(self.len);
        ctx.irecv(self.tag, !0, self.buf, self.len);
    }
    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: AppEvent) {
        match ev {
            AppEvent::RecvDone(..) | AppEvent::Failed(..) => {
                ctx.irecv(self.tag, !0, self.buf, self.len);
            }
            other => panic!("sink: unexpected event {other:?}"),
        }
    }
}

fn quantile(sorted: &[u64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx] as f64
}

fn main() {
    let args = parse_args();
    let cycles: u32 = if args.smoke { 4 } else { 20 };

    let mut cfg = OpenMxConfig::with_mode(PinningMode::OverlappedCached);
    cfg.pinned_pages_limit = Some(PINNED_LIMIT);
    cfg.presync_pages = PRESYNC_PAGES;
    let mut cl = Cluster::new(cfg, 2);
    cl.enable_trace_with_capacity(1 << 18);

    let ghosts = Rc::new(Cell::new(0u64));
    let first_done: Rc<Cell<Option<SimTime>>> = Rc::new(Cell::new(None));
    let phoenix = ProcId(SURVIVORS as u32);
    let phoenix_sink_tag = 100u64;

    // ProcId(0..SURVIVORS): survivors; ProcId(SURVIVORS): the phoenix.
    for s in 0..SURVIVORS {
        cl.add_process(
            0,
            Box::new(Survivor {
                peer: ProcId((SURVIVORS + 2 + s) as u32),
                tag: s as u64,
                buf: VirtAddr(0),
            }),
        );
    }
    cl.add_process(
        0,
        Box::new(Phoenix {
            peer: ProcId((SURVIVORS + 1) as u32),
            tag: phoenix_sink_tag,
            bufs: Vec::new(),
            next: 0,
            mine: BTreeSet::new(),
            ghosts: ghosts.clone(),
            first_done: first_done.clone(),
        }),
    );
    // Node 1: the phoenix's sink first, then one sink per survivor.
    cl.add_process(
        1,
        Box::new(Sink {
            tag: phoenix_sink_tag,
            len: PHOENIX_PAGES * PAGE_SIZE,
            buf: VirtAddr(0),
        }),
    );
    for s in 0..SURVIVORS {
        cl.add_process(
            1,
            Box::new(Sink {
                tag: s as u64,
                len: SURVIVOR_PAGES * PAGE_SIZE,
                buf: VirtAddr(0),
            }),
        );
    }

    let mut recovery_ns: Vec<u64> = Vec::new();
    let mut orphan_pins_total = 0u64;
    let mut reaped_total = 0u64;

    for cycle in 0..cycles {
        let t = cl.now();
        cl.run(Some(t + WORK_WINDOW));

        let reaped_before = cl.counters().get("crash_reaped_pages");
        let crash_at = cl.now();
        cl.crash_proc(phoenix);

        // Invariant: the kernel exit path reaps synchronously — the
        // instant crash_proc returns, the dead tenant owns nothing.
        let orphans: u64 = cl
            .driver(0)
            .iter_regions()
            .filter(|(_, r)| r.owner == phoenix)
            .map(|(_, r)| r.pinned_pages().max(1))
            .sum();
        orphan_pins_total += orphans;
        assert_eq!(
            cl.driver(0).pinned_pages_of(phoenix),
            0,
            "cycle {cycle}: dead tenant still has attributed pins"
        );
        reaped_total += cl.counters().get("crash_reaped_pages") - reaped_before;

        cl.run(Some(crash_at + DOWN_TIME));

        first_done.set(None);
        cl.restart_proc(
            phoenix,
            Box::new(Phoenix {
                peer: ProcId((SURVIVORS + 1) as u32),
                tag: phoenix_sink_tag,
                bufs: Vec::new(),
                next: 0,
                mine: BTreeSet::new(),
                ghosts: ghosts.clone(),
                first_done: first_done.clone(),
            }),
        );

        let cap = cl.now() + RECOVERY_CAP;
        while first_done.get().is_none() && cl.now() < cap {
            let t = cl.now();
            cl.run(Some(t + RECOVERY_QUANTUM));
        }
        let done_at = first_done
            .get()
            .unwrap_or_else(|| panic!("cycle {cycle}: phoenix never recovered"));
        recovery_ns.push((done_at - crash_at).as_nanos());

        assert_eq!(
            ghosts.get(),
            0,
            "cycle {cycle}: a dead incarnation's completion leaked through"
        );
    }

    // Survivor steady-state pin waits across the whole storm.
    let mut open: BTreeMap<(u64, u32), (SimTime, u32)> = BTreeMap::new();
    let mut survivor_waits = Vec::new();
    for rec in cl.tracer().iter() {
        match rec.event {
            TraceEvent::PinWaitStart { xfer, region } => {
                let proc = rec.proc.map(|p| p.0).unwrap_or(u32::MAX);
                open.insert((xfer.0, region.0), (rec.time, proc));
            }
            TraceEvent::PinWaitEnd { xfer, region } => {
                if let Some((start, proc)) = open.remove(&(xfer.0, region.0)) {
                    if (proc as usize) < SURVIVORS && start >= WARMUP {
                        survivor_waits.push((rec.time - start).as_nanos());
                    }
                }
            }
            _ => {}
        }
    }
    survivor_waits.sort_unstable();
    recovery_ns.sort_unstable();

    let rec_p50 = quantile(&recovery_ns, 0.50);
    let rec_p99 = quantile(&recovery_ns, 0.99);
    let wait_p50 = quantile(&survivor_waits, 0.50);
    let wait_p99 = quantile(&survivor_waits, 0.99);
    let reaped_per_cycle = reaped_total as f64 / cycles as f64;
    let c = cl.counters();

    let mut t = Table::new(
        "crashstorm: recovery latency and survivor pin-wait (ns)",
        &["metric", "p50", "p99", "samples"],
    );
    t.row(vec![
        "recovery latency".to_string(),
        format!("{rec_p50:.0}"),
        format!("{rec_p99:.0}"),
        format!("{}", recovery_ns.len()),
    ]);
    t.row(vec![
        "survivor pin wait".to_string(),
        format!("{wait_p50:.0}"),
        format!("{wait_p99:.0}"),
        format!("{}", survivor_waits.len()),
    ]);
    t.emit(None);
    println!(
        "cycles={cycles} reaped/cycle={reaped_per_cycle:.0} pages, \
         orphans={orphan_pins_total}, ghosts={}, fenced={} frames, \
         peer_dead_aborts={}",
        ghosts.get(),
        c.get("frames_fenced"),
        c.get("peer_dead_aborts"),
    );

    // Gated keys sit on `"key": number` lines; raw counts that scale
    // with the cycle axis go under "info" as strings so smoke-vs-full
    // checks skip them (see openmx_bench::baseline).
    let json = format!(
        "{{\n  \"schema\": \"crashstorm-v1\",\n  \"entries\": {{\n    \
         \"recovery_p50_ns\": {rec_p50:.1},\n    \
         \"recovery_p99_ns\": {rec_p99:.1},\n    \
         \"survivor_pin_wait_p50_ns\": {wait_p50:.1},\n    \
         \"survivor_pin_wait_p99_ns\": {wait_p99:.1},\n    \
         \"reaped_pages_per_cycle\": {reaped_per_cycle:.1},\n    \
         \"orphan_pins_total\": {orphan_pins_total},\n    \
         \"ghost_completions_total\": {}\n  }},\n  \"info\": {{\n    \
         \"cycles\": \"{cycles}\",\n    \
         \"recovery_samples\": \"{}\",\n    \
         \"survivor_wait_samples\": \"{}\",\n    \
         \"frames_fenced\": \"{}\",\n    \
         \"peer_dead_aborts\": \"{}\",\n    \
         \"proc_crashes\": \"{}\",\n    \
         \"proc_restarts\": \"{}\"\n  }}\n}}\n",
        ghosts.get(),
        recovery_ns.len(),
        survivor_waits.len(),
        c.get("frames_fenced"),
        c.get("peer_dead_aborts"),
        c.get("proc_crashes"),
        c.get("proc_restarts"),
    );
    std::fs::write(&args.out, json).expect("write BENCH_crashstorm.json");
    println!("wrote {}", args.out);

    // The acceptance gates.
    assert_eq!(orphan_pins_total, 0, "orphaned pins survived a crash");
    assert_eq!(ghosts.get(), 0, "ghost completions crossed an incarnation");
    assert_eq!(c.get("proc_crashes"), cycles as u64);
    assert_eq!(c.get("proc_restarts"), cycles as u64);
    assert!(
        reaped_total > 0,
        "storm too weak: crashes never reaped a pinned page"
    );
    println!(
        "crashstorm OK: {cycles} crash/restart cycles, recovery p99 {rec_p99:.0} ns, \
         zero orphan pins, zero ghost completions"
    );

    if let Some(path) = &args.check {
        let entries = vec![
            ("recovery_p50_ns".to_string(), rec_p50),
            ("recovery_p99_ns".to_string(), rec_p99),
            ("survivor_pin_wait_p50_ns".to_string(), wait_p50),
            ("survivor_pin_wait_p99_ns".to_string(), wait_p99),
            ("reaped_pages_per_cycle".to_string(), reaped_per_cycle),
            ("orphan_pins_total".to_string(), orphan_pins_total as f64),
            ("ghost_completions_total".to_string(), ghosts.get() as f64),
        ];
        check_against("crashstorm", &entries, path, TOLERANCE);
    }
}
