//! Ablations of the design knobs called out in DESIGN.md §7, each
//! measured on the Fig. 7 pingpong workload (1 MiB unless stated):
//!
//! * pin chunk size — overlap granularity vs. per-chunk overhead,
//! * eager threshold — where the rendezvous path should start,
//! * pull window — pipeline depth of the data phase,
//! * region-cache capacity — LRU thrash point,
//! * presync pages — the §4.3 mitigation's cost in the normal case,
//! * optimistic re-request — recovery latency under loss,
//! * adaptive per-request hints — the paper's §5 proposal.
//!
//! Run: `cargo run --release -p openmx-bench --bin ablation`

use openmx_bench::pingpong::{paper_cfg, pingpong_throughput};
use openmx_bench::sweep::parallel_map;
use openmx_bench::table::Table;
use openmx_core::{OpenMxConfig, PinningMode};
use openmx_mpi::collectives::JobBuilder;
use openmx_mpi::{run_job, Op};

fn throughput(cfg: &OpenMxConfig, msg: u64) -> f64 {
    pingpong_throughput(cfg, msg).mib_per_sec
}

fn main() {
    // ---- pin chunk size ---------------------------------------------------
    let chunks = [1u64, 8, 32, 128, 1024];
    let rows = parallel_map(chunks.to_vec(), |c| {
        let mut cfg = paper_cfg(PinningMode::Overlapped, false);
        cfg.pin_chunk_pages = c;
        (c, throughput(&cfg, 1 << 20))
    });
    let mut t = Table::new(
        "ablation: pin chunk size (overlapped, 1 MiB pingpong)",
        &["pages/chunk", "MiB/s"],
    );
    for (c, v) in rows {
        t.row(vec![format!("{c}"), format!("{v:.0}")]);
    }
    t.emit(None);

    // ---- eager threshold ---------------------------------------------------
    let thresholds = [4 * 1024u64, 32 * 1024, 128 * 1024];
    let msgs = [16 * 1024u64, 64 * 1024];
    let jobs: Vec<(u64, u64)> = thresholds
        .iter()
        .flat_map(|&t| msgs.iter().map(move |&m| (t, m)))
        .collect();
    let rows = parallel_map(jobs, |(th, msg)| {
        let mut cfg = paper_cfg(PinningMode::OverlappedCached, false);
        cfg.eager_threshold = th;
        (th, msg, throughput(&cfg, msg))
    });
    let mut t = Table::new(
        "ablation: eager threshold (MXoE spec: 32 KiB)",
        &["threshold", "16KiB msg MiB/s", "64KiB msg MiB/s"],
    );
    for &th in &thresholds {
        let a = rows
            .iter()
            .find(|r| r.0 == th && r.1 == 16 * 1024)
            .unwrap()
            .2;
        let b = rows
            .iter()
            .find(|r| r.0 == th && r.1 == 64 * 1024)
            .unwrap()
            .2;
        t.row(vec![
            format!("{}KiB", th / 1024),
            format!("{a:.0}"),
            format!("{b:.0}"),
        ]);
    }
    t.emit(None);

    // ---- pull window --------------------------------------------------------
    let windows = [1u32, 2, 4, 8];
    let rows = parallel_map(windows.to_vec(), |w| {
        let mut cfg = paper_cfg(PinningMode::OverlappedCached, false);
        cfg.pull_window = w;
        (w, throughput(&cfg, 1 << 20))
    });
    let mut t = Table::new(
        "ablation: pull window (blocks in flight)",
        &["window", "MiB/s"],
    );
    for (w, v) in rows {
        t.row(vec![format!("{w}"), format!("{v:.0}")]);
    }
    t.emit(None);

    // ---- region cache capacity ----------------------------------------------
    // Workload touches 16 distinct 256 KiB buffers round-robin; capacities
    // below 32 (16 send + 16 recv regions) thrash.
    let caps = [4usize, 16, 32, 64];
    let rows = parallel_map(caps.to_vec(), |cap| {
        let mut cfg = paper_cfg(PinningMode::Cached, false);
        cfg.cache_capacity = cap;
        let len = 256 * 1024u64;
        let nbufs = 16usize;
        let mut b = JobBuilder::new(2);
        let bufs: Vec<usize> = (0..nbufs)
            .map(|i| b.alloc(len, move |_| Some(i as u8)))
            .collect();
        let rbuf = b.alloc(len, |_| None);
        for round in 0..3 {
            for (i, &sbuf) in bufs.iter().enumerate() {
                let tag = (round * nbufs + i) as u32 + 10;
                b.step_all(move |r| match r {
                    0 => vec![Op::Send {
                        to: 1,
                        tag,
                        buf: sbuf,
                        offset: 0,
                        len,
                    }],
                    1 => vec![Op::Recv {
                        from: 0,
                        tag,
                        buf: rbuf,
                        offset: 0,
                        len,
                    }],
                    _ => vec![],
                });
            }
        }
        let (cl, records) = run_job(&cfg, 2, 1, b.scripts);
        assert!(records.iter().all(|r| r.failures.is_empty()));
        let stats = cl.cache_stats(openmx_core::ProcId(0));
        let evictions = cl.counters().get("cache_evictions");
        (
            cap,
            stats.hits,
            stats.misses,
            evictions,
            cl.now().as_secs_f64() * 1e3,
        )
    });
    let mut t = Table::new(
        "ablation: region cache capacity (16 buffers round-robin, 3 rounds)",
        &["capacity", "hits", "misses", "evictions", "total ms"],
    );
    for (cap, h, m, e, ms) in rows {
        t.row(vec![
            format!("{cap}"),
            format!("{h}"),
            format!("{m}"),
            format!("{e}"),
            format!("{ms:.2}"),
        ]);
    }
    t.emit(None);

    // ---- presync pages --------------------------------------------------------
    let presync = [0u64, 8, 64, 256];
    let rows = parallel_map(presync.to_vec(), |p| {
        let mut cfg = paper_cfg(PinningMode::Overlapped, false);
        cfg.presync_pages = p;
        (p, throughput(&cfg, 1 << 20))
    });
    let mut t = Table::new(
        "ablation: synchronous presync pages before the initiating message (§4.3 mitigation)",
        &["presync pages", "MiB/s (1 MiB, normal load)"],
    );
    for (p, v) in rows {
        t.row(vec![format!("{p}"), format!("{v:.0}")]);
    }
    t.emit(None);

    // ---- allreduce algorithm -------------------------------------------------
    let rows = parallel_map(vec![false, true], |rdouble| {
        let cfg = paper_cfg(PinningMode::OverlappedCached, false);
        let len = 1u64 << 20;
        let mut b = JobBuilder::new(4);
        let buf = b.alloc(len, |_| Some(1));
        let scratch = b.alloc(len, |_| None);
        for _ in 0..4 {
            if rdouble {
                b.allreduce_rdouble(buf, scratch, len);
            } else {
                b.allreduce(buf, scratch, len);
            }
        }
        let (cl, records) = run_job(&cfg, 2, 2, b.scripts);
        assert!(records.iter().all(|r| r.failures.is_empty()));
        (rdouble, cl.now().as_secs_f64() * 1e3)
    });
    let mut t = Table::new(
        "ablation: allreduce algorithm (1 MiB, 4 ranks on 2 nodes, 4 ops)",
        &["algorithm", "total ms"],
    );
    for (rd, ms) in rows {
        t.row(vec![
            if rd {
                "recursive doubling"
            } else {
                "reduce + bcast"
            }
            .to_string(),
            format!("{ms:.2}"),
        ]);
    }
    t.emit(None);

    // ---- optimistic re-request under loss ---------------------------------------
    let rows = parallel_map(vec![true, false], |on| {
        let mut cfg = paper_cfg(PinningMode::OverlappedCached, false);
        cfg.net.loss_probability = 0.01;
        cfg.optimistic_rerequest = on;
        cfg.retransmit_timeout = simcore::SimDuration::from_millis(100);
        (on, throughput(&cfg, 1 << 20))
    });
    let mut t = Table::new(
        "ablation: optimistic re-request under 1% frame loss (timeout 100 ms)",
        &["optimistic re-request", "MiB/s"],
    );
    for (on, v) in rows {
        t.row(vec![format!("{on}"), format!("{v:.0}")]);
    }
    t.emit(None);

    println!(
        "reading:\n\
         * pin chunks of 1-32 pages are equivalent; beyond that a cliff appears:\n\
           the first pull requests reach the sender before its *first* chunk\n\
           finishes, the whole initial window drops, and — since no later frames\n\
           arrive to trigger the optimistic re-request — recovery waits the full\n\
           1 s timeout. The paper's drop-don't-delay policy (§3.3) makes the\n\
           overlap granularity a correctness-adjacent knob, and its presync idea\n\
           (§4.3) is exactly the guard for this race.\n\
         * window 1 starves the pull pipeline; 2 suffices on this RTT.\n\
         * a region cache smaller than the working set thrashes back to\n\
           pin-per-comm behaviour (44 evictions, zero hits at capacity 4).\n\
         * presync costs a little normal-load throughput for §4.3 insurance.\n\
         * optimistic re-request is what keeps loss recovery off the 1 s path."
    );
}
