//! Explorer soak: sweep seeds × op-mix profiles through the simulation
//! tester ([`simtest`]) and assert zero invariant violations, hangs or
//! panics. On a failure, the schedule is ddmin-shrunk and a one-line
//! repro string is printed for a regression test to replay verbatim.
//!
//! Run: `cargo run --release -p openmx-bench --bin explore [-- --smoke]`
//!
//! Flags:
//! * `--smoke`       reduced matrix for CI (5 seeds per profile),
//! * `--seeds N`     seeds per profile (default 70 → 210 runs total),
//! * `--start N`     first seed (default 0),
//! * `--profile P`   restrict to one profile (churn | lossy | pressure | trimstorm | tenantmix | crashstorm),
//! * `--shrink N`    shrink budget in candidate runs (default 400).

use openmx_bench::sweep::parallel_map;
use openmx_bench::table::Table;
use simtest::{explore, profiles, Profile};

struct Args {
    seeds: usize,
    start: u64,
    shrink: usize,
    profile: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        seeds: 70,
        start: 0,
        shrink: 400,
        profile: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--smoke" => args.seeds = 5,
            "--seeds" => {
                i += 1;
                args.seeds = argv[i].parse().expect("--seeds takes a number");
            }
            "--start" => {
                i += 1;
                args.start = argv[i].parse().expect("--start takes a number");
            }
            "--shrink" => {
                i += 1;
                args.shrink = argv[i].parse().expect("--shrink takes a number");
            }
            "--profile" => {
                i += 1;
                args.profile = Some(argv[i].clone());
            }
            other => {
                eprintln!("unknown flag: {other}");
                eprintln!(
                    "usage: explore [--smoke] [--seeds N] [--start N] [--profile P] [--shrink N]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }
    args
}

fn main() {
    let args = parse_args();
    let profs: Vec<Profile> = profiles()
        .into_iter()
        .filter(|p| args.profile.as_deref().is_none_or(|want| want == p.name))
        .collect();
    if profs.is_empty() {
        eprintln!("no such profile; choose from: churn, lossy, pressure, trimstorm, tenantmix, crashstorm");
        std::process::exit(2);
    }

    // One cell = a contiguous slice of seeds under one profile, so the
    // sweep parallelizes without splitting a profile's report.
    const SLICE: usize = 5;
    let mut cells = Vec::new();
    for (pi, _) in profs.iter().enumerate() {
        let mut s = 0;
        while s < args.seeds {
            let n = SLICE.min(args.seeds - s);
            cells.push((pi, args.start + s as u64, n));
            s += n;
        }
    }
    let shrink = args.shrink;
    let profs_for_map = profs.clone();
    let reports = parallel_map(cells, move |(pi, start, n)| {
        let p = &profs_for_map[pi];
        (pi, explore(p, start, n, shrink))
    });

    let mut t = Table::new(
        "explore soak: invariant violations per op-mix profile",
        &["profile", "runs", "xfers", "completions", "failures"],
    );
    let mut total_runs = 0usize;
    let mut failures = Vec::new();
    for (pi, p) in profs.iter().enumerate() {
        let mine: Vec<_> = reports.iter().filter(|(i, _)| *i == pi).collect();
        let runs: usize = mine.iter().map(|(_, r)| r.runs).sum();
        let xfers: usize = mine.iter().map(|(_, r)| r.xfers).sum();
        let completions: usize = mine.iter().map(|(_, r)| r.completions).sum();
        let nfail: usize = mine.iter().map(|(_, r)| r.failures.len()).sum();
        total_runs += runs;
        for (_, r) in &mine {
            failures.extend(r.failures.iter().cloned());
        }
        t.row(vec![
            p.name.to_string(),
            format!("{runs}"),
            format!("{xfers}"),
            format!("{completions}"),
            format!("{nfail}"),
        ]);
    }
    t.emit(None);

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("seed 0x{:x} ({}) violated:", f.seed, f.profile);
            for v in &f.violations {
                eprintln!("  - {v}");
            }
            eprintln!(
                "  shrunk to {} ops in {} runs; repro:",
                f.shrunk.ops.len(),
                f.shrink_runs
            );
            eprintln!("  {}", f.repro);
            // Flight recorder: ship the correlated-span + metrics dump
            // next to the repro string.
            let path = format!("postmortem_explore_{:x}_{}.json", f.seed, f.profile);
            std::fs::write(&path, &f.post_mortem).expect("write post-mortem");
            eprintln!("  post-mortem: {path}");
        }
        eprintln!(
            "explore soak: {} of {total_runs} runs failed",
            failures.len()
        );
        std::process::exit(1);
    }
    println!("explore soak: {total_runs} runs, 0 violations, 0 hangs, 0 panics");
}
