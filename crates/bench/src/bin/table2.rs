//! Table 2 — execution-time improvement brought by the pinning cache and
//! by overlapped pinning on IMB kernels and NPB is.C.4, between 2 nodes.
//!
//! Methodology: each benchmark runs three times — `pin-per-comm`
//! (baseline "regular pinning"), `cache`, and `overlapped` — and the
//! improvement is `(t_base - t_mode) / t_base`, like the paper's table.
//! IMB kernels sweep the large-message sizes that dominate the
//! benchmark's execution time; NPB IS runs the scaled class-C/4-process
//! integer-sort kernel (see DESIGN.md for the scaling note).
//!
//! Run: `cargo run --release -p openmx-bench --bin table2`

use openmx_bench::paper::TABLE2;
use openmx_bench::sweep::parallel_map;
use openmx_bench::table::Table;
use openmx_core::{OpenMxConfig, PinningMode};
use openmx_mpi::{imb_job, is_job, run_job, summarize, ImbKernel, IsConfig};
use simcore::SimDuration;

/// Total timed duration of one IMB kernel's large-message sweep.
fn imb_total(mode: PinningMode, kernel: ImbKernel) -> SimDuration {
    let cfg = OpenMxConfig::with_mode(mode);
    let mut total = SimDuration::ZERO;
    for msg in [256 * 1024u64, 512 * 1024, 1 << 20, 2 << 20] {
        let iters = 12;
        let (scripts, mark) = imb_job(kernel, 2, msg, 2, iters);
        let (_cl, records) = run_job(&cfg, 2, 1, scripts);
        let res = summarize(&records, mark, iters);
        total += res.avg_iter * iters as u64;
    }
    total
}

/// Total timed duration of the NPB IS kernel (4 ranks on 2 nodes).
fn is_total(mode: PinningMode) -> SimDuration {
    let cfg = OpenMxConfig::with_mode(mode);
    let is = IsConfig::c4_scaled();
    let (scripts, mark) = is_job(&is);
    let (_cl, records) = run_job(&cfg, 2, 2, scripts);
    let res = summarize(&records, mark, is.iterations);
    res.avg_iter * is.iterations as u64
}

fn main() {
    let benches: Vec<(&str, Option<ImbKernel>)> = vec![
        ("IMB SendRecv", Some(ImbKernel::SendRecv)),
        ("IMB Allgatherv", Some(ImbKernel::Allgatherv)),
        ("IMB Broadcast", Some(ImbKernel::Bcast)),
        ("IMB Reduce", Some(ImbKernel::Reduce)),
        ("IMB Allreduce", Some(ImbKernel::Allreduce)),
        ("IMB Reduce_scatter", Some(ImbKernel::ReduceScatter)),
        ("IMB Exchange", Some(ImbKernel::Exchange)),
        ("NPB is.C.4", None),
    ];
    let modes = [
        PinningMode::PinPerComm,
        PinningMode::Cached,
        PinningMode::Overlapped,
    ];
    let jobs: Vec<(usize, PinningMode)> = (0..benches.len())
        .flat_map(|b| modes.iter().map(move |&m| (b, m)))
        .collect();
    let times = parallel_map(jobs.clone(), |(b, mode)| match benches[b].1 {
        Some(kernel) => imb_total(mode, kernel),
        None => is_total(mode),
    });

    let mut t = Table::new(
        "Table 2 — execution-time improvement vs regular pinning (2 nodes)",
        &[
            "Application",
            "cache %",
            "cache % (paper)",
            "overlap %",
            "overlap % (paper)",
        ],
    );
    for (b, (name, _)) in benches.iter().enumerate() {
        let base = times[b * 3].as_secs_f64();
        let cache = times[b * 3 + 1].as_secs_f64();
        let overlap = times[b * 3 + 2].as_secs_f64();
        let cache_pct = 100.0 * (base - cache) / base;
        let overlap_pct = 100.0 * (base - overlap) / base;
        let paper = TABLE2[b];
        assert_eq!(paper.name, *name);
        t.row(vec![
            name.to_string(),
            format!("{cache_pct:.1}"),
            format!("{:.1}", paper.cache_pct),
            format!("{overlap_pct:.1}"),
            format!("{:.1}", paper.overlap_pct),
        ]);
    }
    t.emit(Some("table2.csv"));
    println!(
        "expected shape (paper §4.4): the cache helps whenever buffers are\n\
         reused (most kernels); overlap helps less for collectives that already\n\
         overlap their constituent communications, and can go slightly negative."
    );
}
