//! Table 2 — execution-time improvement brought by the pinning cache and
//! by overlapped pinning on IMB kernels and NPB is.C.4, between 2 nodes.
//!
//! Methodology: each benchmark runs three times — `pin-per-comm`
//! (baseline "regular pinning"), `cache`, and `overlapped` — and the
//! improvement is `(t_base - t_mode) / t_base`, like the paper's table.
//! IMB kernels sweep the large-message sizes that dominate the
//! benchmark's execution time; NPB IS runs the scaled class-C/4-process
//! integer-sort kernel (see DESIGN.md for the scaling note).
//!
//! Run: `cargo run --release -p openmx-bench --bin table2`

use openmx_bench::paper::TABLE2;
use openmx_bench::sweep::parallel_map;
use openmx_bench::table::Table;
use openmx_core::{OpenMxConfig, PinningMode};
use openmx_mpi::{imb_job, is_job, run_job, summarize, ImbKernel, IsConfig};
use simcore::SimDuration;

/// One benchmark run's timed duration plus its pin/overlap observability.
struct BenchRun {
    total: SimDuration,
    pin_p50_us: f64,
    pin_bursts: u64,
    overlap_misses: u64,
}

fn observe(cl: &openmx_core::Cluster) -> (f64, u64, u64) {
    let pin = &cl.metrics().pin_latency;
    let p50 = if pin.count() == 0 {
        0.0
    } else {
        pin.quantile(0.5).as_micros_f64()
    };
    let c = cl.counters();
    (
        p50,
        pin.count(),
        c.get("overlap_miss_rx") + c.get("overlap_miss_tx"),
    )
}

/// Total timed duration of one IMB kernel's large-message sweep.
fn imb_total(mode: PinningMode, kernel: ImbKernel) -> BenchRun {
    let cfg = OpenMxConfig::with_mode(mode);
    let mut total = SimDuration::ZERO;
    let mut pin = openmx_core::Metrics::new();
    let mut misses = 0;
    for msg in [256 * 1024u64, 512 * 1024, 1 << 20, 2 << 20] {
        let iters = 12;
        let (scripts, mark) = imb_job(kernel, 2, msg, 2, iters);
        let (cl, records) = run_job(&cfg, 2, 1, scripts);
        let res = summarize(&records, mark, iters);
        total += res.avg_iter * iters as u64;
        pin.merge(cl.metrics());
        let (_, _, m) = observe(&cl);
        misses += m;
    }
    let p50 = if pin.pin_latency.count() == 0 {
        0.0
    } else {
        pin.pin_latency.quantile(0.5).as_micros_f64()
    };
    BenchRun {
        total,
        pin_p50_us: p50,
        pin_bursts: pin.pin_latency.count(),
        overlap_misses: misses,
    }
}

/// Total timed duration of the NPB IS kernel (4 ranks on 2 nodes).
fn is_total(mode: PinningMode) -> BenchRun {
    let cfg = OpenMxConfig::with_mode(mode);
    let is = IsConfig::c4_scaled();
    let (scripts, mark) = is_job(&is);
    let (cl, records) = run_job(&cfg, 2, 2, scripts);
    let res = summarize(&records, mark, is.iterations);
    let (pin_p50_us, pin_bursts, overlap_misses) = observe(&cl);
    BenchRun {
        total: res.avg_iter * is.iterations as u64,
        pin_p50_us,
        pin_bursts,
        overlap_misses,
    }
}

fn main() {
    let benches: Vec<(&str, Option<ImbKernel>)> = vec![
        ("IMB SendRecv", Some(ImbKernel::SendRecv)),
        ("IMB Allgatherv", Some(ImbKernel::Allgatherv)),
        ("IMB Broadcast", Some(ImbKernel::Bcast)),
        ("IMB Reduce", Some(ImbKernel::Reduce)),
        ("IMB Allreduce", Some(ImbKernel::Allreduce)),
        ("IMB Reduce_scatter", Some(ImbKernel::ReduceScatter)),
        ("IMB Exchange", Some(ImbKernel::Exchange)),
        ("NPB is.C.4", None),
    ];
    let modes = [
        PinningMode::PinPerComm,
        PinningMode::Cached,
        PinningMode::Overlapped,
    ];
    let jobs: Vec<(usize, PinningMode)> = (0..benches.len())
        .flat_map(|b| modes.iter().map(move |&m| (b, m)))
        .collect();
    let times = parallel_map(jobs.clone(), |(b, mode)| match benches[b].1 {
        Some(kernel) => imb_total(mode, kernel),
        None => is_total(mode),
    });

    let mut t = Table::new(
        "Table 2 — execution-time improvement vs regular pinning (2 nodes)",
        &[
            "Application",
            "cache %",
            "cache % (paper)",
            "overlap %",
            "overlap % (paper)",
        ],
    );
    for (b, (name, _)) in benches.iter().enumerate() {
        let base = times[b * 3].total.as_secs_f64();
        let cache = times[b * 3 + 1].total.as_secs_f64();
        let overlap = times[b * 3 + 2].total.as_secs_f64();
        let cache_pct = 100.0 * (base - cache) / base;
        let overlap_pct = 100.0 * (base - overlap) / base;
        let paper = TABLE2[b];
        assert_eq!(paper.name, *name);
        t.row(vec![
            name.to_string(),
            format!("{cache_pct:.1}"),
            format!("{:.1}", paper.cache_pct),
            format!("{overlap_pct:.1}"),
            format!("{:.1}", paper.overlap_pct),
        ]);
    }
    t.emit(Some("table2.csv"));

    let mut obs = Table::new(
        "observability — overlapped-mode pin latency and overlap misses per benchmark",
        &["Application", "pin p50 µs", "pin bursts", "overlap misses"],
    );
    for (b, (name, _)) in benches.iter().enumerate() {
        let r = &times[b * 3 + 2];
        obs.row(vec![
            name.to_string(),
            format!("{:.1}", r.pin_p50_us),
            format!("{}", r.pin_bursts),
            format!("{}", r.overlap_misses),
        ]);
    }
    obs.emit(None);
    println!(
        "expected shape (paper §4.4): the cache helps whenever buffers are\n\
         reused (most kernels); overlap helps less for collectives that already\n\
         overlap their constituent communications, and can go slightly negative."
    );
}
