//! Table 1 — base and per-page overhead of Open-MX pinning+unpinning,
//! and the corresponding pinning throughput, for all four hosts.
//!
//! Two methodologies:
//!
//! 1. **Microbenchmark** (the paper's): pin+unpin a region in a tight
//!    loop on one simulated core, sweep the page count, least-squares fit
//!    `base + pages · per_page`. The pins are really performed against the
//!    memory substrate; the virtual clock is charged by the host profile.
//! 2. **End-to-end**: run IMB PingPong under `pin-per-comm` vs `permanent`
//!    pinning and fit the per-iteration time difference (4 pin+unpin
//!    cycles per iteration). This shows how much of the microbenchmark
//!    cost actually lands on the communication critical path (~80–85%:
//!    part of the unpin work hides behind the wire).
//!
//! Run: `cargo run --release -p openmx-bench --bin table1`

use openmx_bench::paper::TABLE1;
use openmx_bench::sweep::parallel_map;
use openmx_bench::table::Table;
use openmx_core::region::{DriverRegion, Segment};
use openmx_core::{CpuProfile, OpenMxConfig, PinningMode};
use openmx_mpi::{imb_job, run_job, summarize, ImbKernel};
use simcore::linear_fit;
use simmem::{Memory, Prot, PAGE_SIZE};

/// The paper's microbenchmark: pin+unpin `pages` once, return µs of
/// simulated CPU time, actually exercising the pin path.
fn micro_pin_unpin_us(profile: &CpuProfile, pages: u64) -> f64 {
    let mut mem = Memory::new((pages + 16) as usize, 0);
    let space = mem.create_space();
    let addr = mem.mmap(space, pages * PAGE_SIZE, Prot::ReadWrite).unwrap();
    let mut region = DriverRegion::new(
        space,
        &[Segment {
            addr,
            len: pages * PAGE_SIZE,
        }],
    );
    let mut elapsed = simcore::SimDuration::ZERO;
    let mut first = true;
    loop {
        let p = region.pin_next_chunk(&mut mem, 32).unwrap();
        elapsed += profile.pin_cost(p.pages_pinned, first);
        first = false;
        if p.complete {
            break;
        }
    }
    let released = region.unpin_all(&mut mem);
    assert_eq!(released, pages);
    elapsed += profile.unpin_cost(pages);
    elapsed.as_micros_f64()
}

fn iter_time_us(profile: &CpuProfile, mode: PinningMode, msg: u64) -> (f64, openmx_core::Metrics) {
    let mut cfg = OpenMxConfig::with_mode(mode);
    cfg.profile = profile.clone();
    let iters = 24;
    let (scripts, mark) = imb_job(ImbKernel::PingPong, 2, msg, 4, iters);
    let (cl, records) = run_job(&cfg, 2, 1, scripts);
    (
        summarize(&records, mark, iters).avg_iter.as_micros_f64(),
        cl.metrics().clone(),
    )
}

fn main() {
    let sizes: Vec<u64> = vec![128 * 1024, 512 * 1024, 2 << 20, 8 << 20];
    let mut out = Table::new(
        "Table 1 — Open-MX pin+unpin overhead: microbench & end-to-end vs paper",
        &[
            "Processor",
            "GHz",
            "base µs",
            "(paper)",
            "ns/page",
            "(paper)",
            "GB/s",
            "(paper)",
            "e2e base µs",
            "e2e ns/page",
        ],
    );

    for (profile, paper) in CpuProfile::table1_hosts().iter().zip(TABLE1) {
        // --- microbenchmark fit (the paper's Table 1 methodology) ---
        let micro: Vec<(f64, f64)> = [16u64, 64, 256, 1024, 4096]
            .iter()
            .map(|&p| (p as f64, micro_pin_unpin_us(profile, p)))
            .collect();
        let (m_base, m_per_page_us) = linear_fit(&micro);
        let m_ns_page = m_per_page_us * 1e3;
        let m_gbps = PAGE_SIZE as f64 / m_ns_page;

        // --- end-to-end fit through IMB PingPong ---
        let jobs: Vec<(u64, PinningMode)> = sizes
            .iter()
            .flat_map(|&s| [(s, PinningMode::PinPerComm), (s, PinningMode::Permanent)])
            .collect();
        let results = parallel_map(jobs, |(msg, mode)| iter_time_us(profile, mode, msg));
        let mut points = Vec::new();
        let mut pin_metrics = openmx_core::Metrics::new();
        for (i, &msg) in sizes.iter().enumerate() {
            let pages = (msg / PAGE_SIZE) as f64;
            // 4 pin+unpin cycles per pingpong iteration; permanent mode
            // pays a cache lookup per op that pin-per-comm does not.
            let lookup_us = 4.0 * profile.cache_lookup.as_nanos() as f64 / 1e3;
            let diff = (results[2 * i].0 - results[2 * i + 1].0 + lookup_us) / 4.0;
            points.push((pages, diff));
            pin_metrics.merge(&results[2 * i].1);
        }
        let (e_base, e_per_page_us) = linear_fit(&points);
        println!(
            "{}: pin-per-comm runs: {}",
            profile.name,
            pin_metrics.pin_latency_summary()
        );

        out.row(vec![
            profile.name.to_string(),
            format!("{:.2}", profile.ghz),
            format!("{m_base:.1}"),
            format!("{:.1}", paper.base_us),
            format!("{m_ns_page:.0}"),
            format!("{:.0}", paper.ns_per_page),
            format!("{m_gbps:.1}"),
            format!("{:.1}", paper.gb_per_sec),
            format!("{e_base:.1}"),
            format!("{:.0}", e_per_page_us * 1e3),
        ]);
    }
    out.emit(Some("table1.csv"));
    println!(
        "microbench columns reproduce the paper's tight-loop methodology;\n\
         the e2e columns show the share visible on the pingpong critical path\n\
         (part of the unpin cost hides behind the wire, so e2e < microbench)."
    );
}
