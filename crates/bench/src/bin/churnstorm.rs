//! Notifier-storm churn bench: deferred, coalesced unpinning vs the old
//! eager in-event unpin under allocator-style trim/remap churn.
//!
//! The scenario is glibc's malloc trim heartbeat: a 256-page pinned
//! region whose 8-page tail is unmapped (one MMU-notifier event),
//! immediately remapped, and touched again by the next communication.
//! The eager notifier path unpins the *whole region* inside the event
//! and repins all 256 pages on next use; the deferred path marks the
//! 8-page tail stale, re-pins just that tail, and the epoch drain then
//! finds nothing left to release — the unpin is cancelled. The headline
//! metric is pages unpinned-then-repinned per trim event, which the
//! deferred path must cut by ≥10× (it lands at region/trim = 32×).
//!
//! Also reported: wall-clock notifier cost per event for both paths
//! (the deferred handler does no `Memory` release work inside the
//! event) and the cancelled-unpin ratio (1.0 here — every trim is
//! churn, the design's best case and its reason to exist).
//!
//! Run: `cargo run --release -p openmx-bench --bin churnstorm [-- --smoke]`
//!
//! Flags:
//! * `--smoke`     fewer rounds for CI (same asserts),
//! * `--out PATH`  where to write the JSON (default `BENCH_churnstorm.json`).

use std::time::Instant;

use openmx_bench::table::Table;
use openmx_core::{Driver, RegionId, Segment};
use simmem::{AsId, Memory, Prot, VirtAddr, PAGE_SIZE};

/// Pages in the pinned region.
const REGION_PAGES: u64 = 256;
/// Pages trimmed (and remapped) per churn round.
const TRIM_PAGES: u64 = 8;
/// Pin-pass chunk size (matches the engine's default granularity).
const CHUNK_PAGES: u64 = 32;
/// Required reduction in unpinned-then-repinned pages vs eager.
const REQUIRED_REDUCTION: f64 = 10.0;

struct Args {
    smoke: bool,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        out: "BENCH_churnstorm.json".to_string(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--smoke" => args.smoke = true,
            "--out" => {
                i += 1;
                args.out = argv[i].clone();
            }
            other => {
                eprintln!("unknown flag: {other}");
                eprintln!("usage: churnstorm [--smoke] [--out PATH]");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    args
}

/// One fully pinned 256-page region over a fresh space.
fn setup() -> (Driver, Memory, AsId, VirtAddr, RegionId) {
    let mut mem = Memory::new(REGION_PAGES as usize + 64, 0);
    let space = mem.create_space();
    mem.register_notifier(space).expect("notifier");
    let addr = mem
        .mmap(space, REGION_PAGES * PAGE_SIZE, Prot::ReadWrite)
        .expect("arena");
    let mut d = Driver::new(None);
    let id = d
        .declare(
            space,
            &[Segment {
                addr,
                len: REGION_PAGES * PAGE_SIZE,
            }],
        )
        .expect("declare");
    repin(&mut d, &mut mem, id);
    (d, mem, space, addr, id)
}

/// Run pin passes until the region is fully pinned; returns the pages
/// pinned (= pages that had been unpinned before the pass).
fn repin(d: &mut Driver, mem: &mut Memory, id: RegionId) -> u64 {
    let mut pinned = 0;
    loop {
        let p = d
            .region_mut(id)
            .pin_next_chunk(mem, CHUNK_PAGES)
            .expect("pin");
        pinned += p.pages_pinned;
        if p.complete {
            break;
        }
    }
    pinned
}

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.total_cmp(b));
    v[v.len() / 2]
}

struct WorldReport {
    /// Total pages that were unpinned and then repinned across all rounds.
    unpin_repin_pages: u64,
    /// Median wall-clock ns spent inside the notifier handler per event.
    event_ns: f64,
    /// Total `Memory` pin calls issued by the repin passes.
    pin_calls: u64,
}

/// One trim/remap churn storm through either notifier path.
fn run_world(rounds: u64, eager: bool) -> (WorldReport, Driver) {
    let (mut d, mut mem, space, addr, id) = setup();
    let tail_addr = addr.add((REGION_PAGES - TRIM_PAGES) * PAGE_SIZE);
    let mut unpin_repin = 0u64;
    let mut event_ns = Vec::new();
    let pin_calls_before = mem.pin_calls();
    for _ in 0..rounds {
        let events = mem
            .munmap(space, tail_addr, TRIM_PAGES * PAGE_SIZE)
            .expect("trim");
        for ev in &events {
            let t = Instant::now();
            let hit = if eager {
                d.handle_invalidate_eager(&mut mem, ev)
            } else {
                d.handle_invalidate(&mut mem, ev)
            };
            event_ns.push(t.elapsed().as_nanos() as f64);
            // Eager releases inside the event; deferred only marks stale
            // (the release happens in the repin pass's cursor rewind).
            if eager {
                unpin_repin += hit.iter().map(|(_, pages)| pages).sum::<u64>();
            }
        }
        mem.mmap_at(space, tail_addr, TRIM_PAGES * PAGE_SIZE, Prot::ReadWrite)
            .expect("remap");
        if !eager {
            unpin_repin += d.region(id).stale_pages();
        }
        let repinned = repin(&mut d, &mut mem, id);
        assert_eq!(
            repinned,
            if eager { REGION_PAGES } else { TRIM_PAGES },
            "repin width diverged from the design (eager={eager})"
        );
        if !eager {
            // Epoch close after the region was already re-pinned: the
            // drain must find nothing stale and cancel the pending unpin.
            let (released, cancelled) = d.drain_deferred(&mut mem);
            assert!(released.is_empty(), "drain found stale pages after repin");
            assert_eq!(cancelled, vec![id], "repin must cancel the deferred unpin");
        }
        // Pin accounting stays exact in both worlds, every round.
        assert_eq!(d.pinned_pages_total(), mem.frames().pinned_pages() as u64);
        assert!(d.region(id).fully_pinned());
    }
    (
        WorldReport {
            unpin_repin_pages: unpin_repin,
            event_ns: median(event_ns),
            pin_calls: mem.pin_calls() - pin_calls_before,
        },
        d,
    )
}

fn main() {
    let args = parse_args();
    let rounds: u64 = if args.smoke { 64 } else { 512 };

    let (eager, _) = run_world(rounds, true);
    let (deferred, d) = run_world(rounds, false);
    let stats = d.stats();

    let reduction = eager.unpin_repin_pages as f64 / deferred.unpin_repin_pages as f64;
    let cancel_ratio = stats.notifier_cancelled as f64 / stats.notifier_deferred as f64;

    let mut t = Table::new(
        "churnstorm: trim/remap storms through the notifier (lower is better)",
        &[
            "path",
            "unpin+repin pages",
            "pages/event",
            "event ns",
            "pin calls",
        ],
    );
    t.row(vec![
        "eager".to_string(),
        format!("{}", eager.unpin_repin_pages),
        format!("{}", eager.unpin_repin_pages / rounds),
        format!("{:.0}", eager.event_ns),
        format!("{}", eager.pin_calls),
    ]);
    t.row(vec![
        "deferred".to_string(),
        format!("{}", deferred.unpin_repin_pages),
        format!("{}", deferred.unpin_repin_pages / rounds),
        format!("{:.0}", deferred.event_ns),
        format!("{}", deferred.pin_calls),
    ]);
    t.emit(None);
    println!(
        "churn work reduction: {reduction:.1}x; cancelled {}/{} deferred unpins \
         ({cancel_ratio:.2}) in {} drains",
        stats.notifier_cancelled, stats.notifier_deferred, stats.notifier_drain_batches
    );

    // JSON artifact (hand-assembled; the repo carries no serde).
    let json = format!(
        "{{\n  \"rounds\": {rounds},\n  \"region_pages\": {REGION_PAGES},\n  \
         \"trim_pages\": {TRIM_PAGES},\n  \"eager\": {{\"unpin_repin_pages\": {}, \
         \"event_ns\": {:.1}, \"pin_calls\": {}}},\n  \"deferred\": \
         {{\"unpin_repin_pages\": {}, \"event_ns\": {:.1}, \"pin_calls\": {}, \
         \"cancelled\": {}, \"deferred\": {}, \"drain_batches\": {}}},\n  \
         \"reduction\": {reduction:.2},\n  \"cancel_ratio\": {cancel_ratio:.2}\n}}\n",
        eager.unpin_repin_pages,
        eager.event_ns,
        eager.pin_calls,
        deferred.unpin_repin_pages,
        deferred.event_ns,
        deferred.pin_calls,
        stats.notifier_cancelled,
        stats.notifier_deferred,
        stats.notifier_drain_batches,
    );
    std::fs::write(&args.out, json).expect("write BENCH_churnstorm.json");
    println!("wrote {}", args.out);

    // The acceptance gates.
    assert!(
        reduction >= REQUIRED_REDUCTION,
        "deferred path only cut unpin+repin churn {reduction:.1}x (need {REQUIRED_REDUCTION}x)"
    );
    assert!(
        (cancel_ratio - 1.0).abs() < f64::EPSILON,
        "pure-churn storm must cancel every deferred unpin, got {cancel_ratio:.2}"
    );
    println!(
        "churnstorm OK: {reduction:.1}x less unpin+repin churn, {:.0}% of deferred \
         unpins cancelled",
        cancel_ratio * 100.0
    );
}
