//! §4.3 — Overlap-miss behaviour: rare under regular load, catastrophic
//! when the bottom half exhausts the core the pinning process runs on.
//!
//! Scenarios (overlapped pinning, 16 MiB one-way stream, 10G Ethernet):
//!
//! * `regular` — interrupts on core 0, process on core 1 (the usual irq
//!   affinity): misses stay under 1/10 000 (paper).
//! * `colocated` — process bound to the interrupt core: receive processing
//!   starves the pin chunks, whole windows of pull replies drop, and
//!   recovery waits on the 1 s retransmission timeout — the 1 GB/s →
//!   ~tens of MB/s collapse the paper reports.
//! * `colocated + eager flood` — an extra process pair hammers the same
//!   node with small messages ("many small packets").
//! * `colocated + presync` — the paper's proposed mitigation: pin a few
//!   pages synchronously before the initiating message.
//! * `colocated + I/OAT` — copy offload empties the bottom half, which
//!   rescues the overlap (not in the paper, ablation).
//!
//! Run: `cargo run --release -p openmx-bench --bin overload`

use openmx_bench::paper::{OVERLAP_MISS_RATE_BOUND, OVERLOAD_COLLAPSE_MBPS};
use openmx_bench::table::Table;
use openmx_core::{OpenMxConfig, PinningMode};
use openmx_mpi::collectives::JobBuilder;
use openmx_mpi::script::Op;
use openmx_mpi::{run_job, summarize};
use simcore::Bandwidth;

struct Scenario {
    name: &'static str,
    colocate: bool,
    flood: bool,
    presync: u64,
    ioat: bool,
}

struct ScenarioRun {
    mbps: f64,
    misses: u64,
    stalls: u64,
    miss_rate: f64,
    pin_p50_us: f64,
    pin_p99_us: f64,
}

fn run_scenario(s: &Scenario) -> ScenarioRun {
    let mut cfg = OpenMxConfig::with_mode(PinningMode::Overlapped);
    cfg.colocate_with_bh = s.colocate;
    cfg.presync_pages = s.presync;
    cfg.use_ioat = s.ioat;
    // §4.3 measures the cost of dropped pull windows under MX's *fixed*
    // 1 s resend timer — the paper's collapse. The adaptive backoff
    // (default since it landed) recovers those drops in milliseconds and
    // would hide the very effect this experiment exists to show.
    cfg.adaptive_retransmit = false;

    let msg: u64 = 16 << 20;
    let msgs: u32 = 6;
    let ranks = if s.flood { 4 } else { 2 };
    let mut b = JobBuilder::new(ranks);
    let sbuf = b.alloc(msg, |_| Some(0x5a));
    let rbuf = b.alloc(msg, |_| None);
    let fbuf = b.alloc(64 * 1024, |_| Some(0x01));

    // Warmup message, then the timed stream (rank 0 -> rank 1).
    for _ in 0..=msgs {
        let tag = b.tag();
        b.step_all(|r| match r {
            0 => vec![Op::Send {
                to: 1,
                tag,
                buf: sbuf,
                offset: 0,
                len: msg,
            }],
            1 => vec![Op::Recv {
                from: 0,
                tag,
                buf: rbuf,
                offset: 0,
                len: msg,
            }],
            _ => vec![],
        });
    }
    // The flooders (ranks 2 on node 0, 3 on node 1) blast 16 KiB eager
    // messages at the victim's node for the whole run. Receives are
    // posted wildcard-ish ahead of time in bursts.
    if s.flood {
        let burst = 16usize;
        let rounds = 600usize;
        let mut scripts = std::mem::take(&mut b.scripts);
        for round in 0..rounds {
            let tag = 1_000_000 + round as u32;
            let mut send_ops = Vec::new();
            let mut recv_ops = Vec::new();
            for i in 0..burst {
                send_ops.push(Op::Send {
                    to: 3,
                    tag,
                    buf: fbuf,
                    offset: (i as u64) * 4096 % 32768,
                    len: 16 * 1024,
                });
                recv_ops.push(Op::RecvAny {
                    tag,
                    buf: fbuf,
                    offset: 0,
                    len: 16 * 1024,
                });
            }
            scripts[2].push(openmx_mpi::Step { ops: send_ops });
            scripts[3].push(openmx_mpi::Step { ops: recv_ops });
        }
        b.scripts = scripts;
    }

    let (cl, records) = {
        let scripts = b.scripts;
        // rank->node: 0,2 on node 0; 1,3 on node 1 (ppn = 2 interleaved by
        // block: ranks 0..1 -> node 0 — not what we want with 4 ranks).
        // run_job uses block distribution, so order ranks as
        // [stream-tx, flood-tx] on node 0 and [stream-rx, flood-rx] on 1:
        // with ppn=2 block layout ranks 0,1 -> node 0. Instead reorder:
        // keep 2 ranks per node by constructing the rank list so that
        // ranks 0 and 2 land on node 0. Easiest: ppn=2 and swap scripts.
        if scripts.len() == 4 {
            let reordered = {
                let mut v: Vec<_> = scripts.into_iter().map(Some).collect();
                // block layout: slot0,1 -> node0; slot2,3 -> node1.
                // want: stream-tx(0), flood-tx(2) on node0;
                //       stream-rx(1), flood-rx(3) on node1.
                let s0 = v[0].take().unwrap();
                let s1 = v[1].take().unwrap();
                let s2 = v[2].take().unwrap();
                let s3 = v[3].take().unwrap();
                vec![s0, s2, s1, s3]
            };
            // After reordering, rank ids changed: fix peer ids inside ops.
            let remap = |r: usize| match r {
                0 => 0usize, // stream tx
                1 => 2,      // stream rx
                2 => 1,      // flood tx
                3 => 3,      // flood rx
                _ => unreachable!(),
            };
            let reordered: Vec<_> = reordered
                .into_iter()
                .map(|mut s| {
                    for step in &mut s.steps {
                        for op in &mut step.ops {
                            match op {
                                Op::Send { to, .. } => *to = remap(*to),
                                Op::Recv { from, .. } => *from = remap(*from),
                                _ => {}
                            }
                        }
                    }
                    s
                })
                .collect();
            run_job(&cfg, 2, 2, reordered)
        } else {
            run_job(&cfg, 2, 1, scripts)
        }
    };

    // Timed window: stream rank is rank 0 (node 0) sending; measure from
    // its first step completion (warmup done) to its finish.
    let stream_rx_rank = if s.flood { 2 } else { 1 };
    let rec = &records[stream_rx_rank];
    let start = rec.step_done[0];
    let end = rec.finished.expect("stream receiver finished");
    let bw = Bandwidth::measured(msg * msgs as u64, end.duration_since(start));
    let c = cl.counters();
    let misses = c.get("overlap_miss_rx") + c.get("overlap_miss_tx");
    let frames = c.get("frames_rx").max(1);
    let _ = summarize; // (records already checked per-rank above)
    let pin = &cl.metrics().pin_latency;
    let q = |p: f64| {
        if pin.count() == 0 {
            0.0
        } else {
            pin.quantile(p).as_micros_f64()
        }
    };
    ScenarioRun {
        mbps: bw.bytes_per_sec() / 1e6,
        misses,
        stalls: c.get("pull_stall_timeouts"),
        miss_rate: misses as f64 / frames as f64,
        pin_p50_us: q(0.50),
        pin_p99_us: q(0.99),
    }
}

fn main() {
    let scenarios = [
        Scenario {
            name: "regular (irq on its own core)",
            colocate: false,
            flood: false,
            presync: 0,
            ioat: false,
        },
        Scenario {
            name: "colocated with bottom half",
            colocate: true,
            flood: false,
            presync: 0,
            ioat: false,
        },
        Scenario {
            name: "colocated + eager flood",
            colocate: true,
            flood: true,
            presync: 0,
            ioat: false,
        },
        Scenario {
            name: "colocated + presync 64 pages",
            colocate: true,
            flood: false,
            presync: 64,
            ioat: false,
        },
        Scenario {
            name: "colocated + I/OAT offload",
            colocate: true,
            flood: false,
            presync: 0,
            ioat: true,
        },
    ];
    let mut t = Table::new(
        "§4.3 — overlap misses and the overloaded-core collapse (16MiB stream, overlapped pinning)",
        &[
            "scenario",
            "MB/s",
            "overlap misses",
            "1s stalls",
            "miss rate",
            "pin p50 µs",
            "pin p99 µs",
        ],
    );
    for s in &scenarios {
        let r = run_scenario(s);
        t.row(vec![
            s.name.to_string(),
            format!("{:.0}", r.mbps),
            format!("{}", r.misses),
            format!("{}", r.stalls),
            format!("{:.2e}", r.miss_rate),
            format!("{:.1}", r.pin_p50_us),
            format!("{:.1}", r.pin_p99_us),
        ]);
    }
    t.emit(Some("overload.csv"));
    println!(
        "paper: miss rate < {OVERLAP_MISS_RATE_BOUND:.0e} under regular load; collapse from\n\
         ~{:.0} MB/s to ~{:.0} MB/s when the receive bottom half exhausts the pinning core.",
        OVERLOAD_COLLAPSE_MBPS.0, OVERLOAD_COLLAPSE_MBPS.1
    );
}
