//! Figures 2 / 3 / 5 — event timelines of one large-message transfer.
//!
//! A thin consumer of the engine's tracer (`openmx_core::obs`): prints the
//! event stream of a single 1 MiB MPI-style transfer under regular pinning
//! (Figure 2: pin → rndv → pull → notify) and under overlapped pinning with
//! the cache (Figures 3/5: rndv leaves first, pinning proceeds during the
//! round trip; the second transfer hits the cache and pins nothing).
//!
//! Each run is also exported as Chrome trace-event JSON
//! (`timeline_<mode>.json`) — load it in <https://ui.perfetto.dev> or
//! `chrome://tracing` to see pin spans against the packet flow — and as a
//! causal span tree (`timeline_<mode>_spans.json`): nested B/E duration
//! events with one track group per `XferId`, so the overlap window, pin
//! waits and pull blocks show as bars. A per-transfer critical-path
//! breakdown (pin wait / wire / backoff / host) is printed alongside.
//!
//! Run: `cargo run --release -p openmx-bench --bin timeline`

use openmx_core::engine::{AppEvent, Cluster, Ctx, ProcId, Process};
use openmx_core::{OpenMxConfig, PinningMode};
use simmem::VirtAddr;

struct Sender {
    len: u64,
    sent: u32,
    msgs: u32,
    buf: VirtAddr,
}
struct Receiver {
    len: u64,
    got: u32,
    msgs: u32,
    buf: VirtAddr,
}

impl Process for Sender {
    fn start(&mut self, ctx: &mut Ctx<'_>) {
        self.buf = ctx.malloc(self.len);
        ctx.write_buf(self.buf, &vec![7u8; self.len as usize]);
        ctx.isend(ProcId(1), 42, self.buf, self.len);
    }
    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: AppEvent) {
        if let AppEvent::SendDone(_) = ev {
            self.sent += 1;
            if self.sent < self.msgs {
                ctx.isend(ProcId(1), 42, self.buf, self.len);
            } else {
                ctx.stop();
            }
        }
    }
}
impl Process for Receiver {
    fn start(&mut self, ctx: &mut Ctx<'_>) {
        self.buf = ctx.malloc(self.len);
        ctx.irecv(42, !0, self.buf, self.len);
    }
    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: AppEvent) {
        if let AppEvent::RecvDone(..) = ev {
            self.got += 1;
            if self.got < self.msgs {
                ctx.irecv(42, !0, self.buf, self.len);
            } else {
                ctx.stop();
            }
        }
    }
}

fn show(mode: PinningMode, header: &str) {
    let cfg = OpenMxConfig::with_mode(mode);
    let mut cl = Cluster::new(cfg, 2);
    cl.enable_trace();
    let len = 1 << 20;
    cl.add_process(
        0,
        Box::new(Sender {
            len,
            sent: 0,
            msgs: 2,
            buf: VirtAddr(0),
        }),
    );
    cl.add_process(
        1,
        Box::new(Receiver {
            len,
            got: 0,
            msgs: 2,
            buf: VirtAddr(0),
        }),
    );
    cl.run(None);
    println!("=== {header} ({}) ===", mode.label());
    println!("{:>12}  {:<8} {:<16} detail", "time", "node", "event");
    let mut shown = 0;
    for r in cl.tracer().iter() {
        println!(
            "{:>12}  node{:<4} {:<16} {}",
            format!("{}", r.time),
            r.node,
            r.event.kind(),
            r.event.detail()
        );
        shown += 1;
        if shown > 60 {
            println!("  … ({} more events)", cl.tracer().len() - shown);
            break;
        }
    }
    let json = openmx_core::obs::chrome_trace_json(cl.tracer());
    let path = format!("timeline_{}.json", mode.label().replace([' ', '+'], "_"));
    match std::fs::write(&path, &json) {
        Ok(()) => println!(
            "wrote {path} ({} events) — load in ui.perfetto.dev or chrome://tracing",
            cl.tracer().len()
        ),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }

    // The causal view: per-transfer span trees with critical-path
    // attribution, plus the nested B/E export Perfetto renders as bars.
    let spans = openmx_core::obs::build_spans(cl.tracer());
    println!("per-transfer critical path (components sum to end-to-end):");
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "xfer", "e2e us", "pin_wait us", "wire us", "backoff us", "host us"
    );
    for s in &spans {
        let cp = &s.critical_path;
        println!(
            "{:>6} {:>12.1} {:>12.1} {:>12.1} {:>12.1} {:>12.1}",
            s.xfer.0,
            s.duration_ns() as f64 / 1e3,
            cp.pin_wait_ns as f64 / 1e3,
            cp.wire_ns as f64 / 1e3,
            cp.retransmit_backoff_ns as f64 / 1e3,
            cp.host_overhead_ns as f64 / 1e3,
        );
    }
    let span_json = openmx_core::obs::chrome_spans_json(&spans);
    let span_path = format!(
        "timeline_{}_spans.json",
        mode.label().replace([' ', '+'], "_")
    );
    match std::fs::write(&span_path, &span_json) {
        Ok(()) => println!(
            "wrote {span_path} ({} span trees) — nested B/E view, one track per transfer",
            spans.len()
        ),
        Err(e) => eprintln!("could not write {span_path}: {e}"),
    }
    println!();
}

fn main() {
    show(
        PinningMode::PinPerComm,
        "Figure 2 — regular rendezvous: pin, then rndv, pull, notify",
    );
    show(
        PinningMode::OverlappedCached,
        "Figures 3/5 — overlapped pinning + cache: rndv first, pin during the round trip; second transfer hits the cache",
    );
}
