//! Figures 2 / 3 / 5 — event timelines of one large-message transfer.
//!
//! A thin consumer of the engine's tracer (`openmx_core::obs`): prints the
//! event stream of a single 1 MiB MPI-style transfer under regular pinning
//! (Figure 2: pin → rndv → pull → notify) and under overlapped pinning with
//! the cache (Figures 3/5: rndv leaves first, pinning proceeds during the
//! round trip; the second transfer hits the cache and pins nothing).
//!
//! Each run is also exported as Chrome trace-event JSON
//! (`timeline_<mode>.json`) — load it in <https://ui.perfetto.dev> or
//! `chrome://tracing` to see pin spans against the packet flow.
//!
//! Run: `cargo run --release -p openmx-bench --bin timeline`

use openmx_core::engine::{AppEvent, Cluster, Ctx, ProcId, Process};
use openmx_core::{OpenMxConfig, PinningMode};
use simmem::VirtAddr;

struct Sender {
    len: u64,
    sent: u32,
    msgs: u32,
    buf: VirtAddr,
}
struct Receiver {
    len: u64,
    got: u32,
    msgs: u32,
    buf: VirtAddr,
}

impl Process for Sender {
    fn start(&mut self, ctx: &mut Ctx<'_>) {
        self.buf = ctx.malloc(self.len);
        ctx.write_buf(self.buf, &vec![7u8; self.len as usize]);
        ctx.isend(ProcId(1), 42, self.buf, self.len);
    }
    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: AppEvent) {
        if let AppEvent::SendDone(_) = ev {
            self.sent += 1;
            if self.sent < self.msgs {
                ctx.isend(ProcId(1), 42, self.buf, self.len);
            } else {
                ctx.stop();
            }
        }
    }
}
impl Process for Receiver {
    fn start(&mut self, ctx: &mut Ctx<'_>) {
        self.buf = ctx.malloc(self.len);
        ctx.irecv(42, !0, self.buf, self.len);
    }
    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: AppEvent) {
        if let AppEvent::RecvDone(..) = ev {
            self.got += 1;
            if self.got < self.msgs {
                ctx.irecv(42, !0, self.buf, self.len);
            } else {
                ctx.stop();
            }
        }
    }
}

fn show(mode: PinningMode, header: &str) {
    let cfg = OpenMxConfig::with_mode(mode);
    let mut cl = Cluster::new(cfg, 2);
    cl.enable_trace();
    let len = 1 << 20;
    cl.add_process(
        0,
        Box::new(Sender {
            len,
            sent: 0,
            msgs: 2,
            buf: VirtAddr(0),
        }),
    );
    cl.add_process(
        1,
        Box::new(Receiver {
            len,
            got: 0,
            msgs: 2,
            buf: VirtAddr(0),
        }),
    );
    cl.run(None);
    println!("=== {header} ({}) ===", mode.label());
    println!("{:>12}  {:<8} {:<16} detail", "time", "node", "event");
    let mut shown = 0;
    for r in cl.tracer().iter() {
        println!(
            "{:>12}  node{:<4} {:<16} {}",
            format!("{}", r.time),
            r.node,
            r.event.kind(),
            r.event.detail()
        );
        shown += 1;
        if shown > 60 {
            println!("  … ({} more events)", cl.tracer().len() - shown);
            break;
        }
    }
    let json = openmx_core::obs::chrome_trace_json(cl.tracer());
    let path = format!("timeline_{}.json", mode.label().replace([' ', '+'], "_"));
    match std::fs::write(&path, &json) {
        Ok(()) => println!(
            "wrote {path} ({} events) — load in ui.perfetto.dev or chrome://tracing",
            cl.tracer().len()
        ),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    println!();
}

fn main() {
    show(
        PinningMode::PinPerComm,
        "Figure 2 — regular rendezvous: pin, then rndv, pull, notify",
    );
    show(
        PinningMode::OverlappedCached,
        "Figures 3/5 — overlapped pinning + cache: rndv first, pin during the round trip; second transfer hits the cache",
    );
}
