//! Figure 7 — impact of overlapped pinning and the pinning cache on IMB
//! PingPong throughput (no I/OAT): regular pinning vs overlapped pinning
//! vs pinning cache vs overlapped pinning cache.
//!
//! Run: `cargo run --release -p openmx-bench --bin fig7`

use openmx_bench::paper::FIG7_ANCHORS;
use openmx_bench::pingpong::{figure_sizes, paper_cfg, pingpong_throughput};
use openmx_bench::sweep::parallel_map;
use openmx_bench::table::{fmt_size, Table};
use openmx_core::PinningMode;

fn main() {
    let series = [
        ("regular", PinningMode::PinPerComm),
        ("overlapped", PinningMode::Overlapped),
        ("cache", PinningMode::Cached),
        ("overlapped+cache", PinningMode::OverlappedCached),
    ];
    let sizes = figure_sizes();
    let jobs: Vec<(usize, u64)> = series
        .iter()
        .enumerate()
        .flat_map(|(si, _)| sizes.iter().map(move |&m| (si, m)))
        .collect();
    let points = parallel_map(jobs, |(si, msg)| {
        let (_, mode) = series[si];
        (si, pingpong_throughput(&paper_cfg(mode, false), msg))
    });

    let mut by_series: Vec<Vec<openmx_bench::pingpong::PingPongPoint>> =
        vec![Vec::new(); series.len()];
    for (si, p) in points {
        by_series[si].push(p);
    }

    let mut t = Table::new(
        "Figure 7 — IMB PingPong throughput (MiB/s): overlapped pinning & pinning cache",
        &["size", series[0].0, series[1].0, series[2].0, series[3].0],
    );
    for (i, &msg) in sizes.iter().enumerate() {
        t.row(vec![
            fmt_size(msg),
            format!("{:.0}", by_series[0][i].mib_per_sec),
            format!("{:.0}", by_series[1][i].mib_per_sec),
            format!("{:.0}", by_series[2][i].mib_per_sec),
            format!("{:.0}", by_series[3][i].mib_per_sec),
        ]);
    }
    t.emit(Some("fig7.csv"));

    let last = sizes.len() - 1;
    let base = by_series[0][last].mib_per_sec;
    for (si, (name, _)) in series.iter().enumerate() {
        let p = &by_series[si][last];
        println!(
            "{name:<18} at 16MiB: {:>6.0} MiB/s ({:+.1}% vs regular), \
             pin p50/p99 {:.1}/{:.1} µs over {} bursts, overlap misses across sweep: {}",
            p.mib_per_sec,
            100.0 * (p.mib_per_sec / base - 1.0),
            p.pin_p50_us,
            p.pin_p99_us,
            p.pin_bursts,
            by_series[si].iter().map(|p| p.overlap_misses).sum::<u64>()
        );
    }
    println!();

    let mut cmp = Table::new(
        "vs paper anchors (MiB/s, read off the published figure)",
        &["size", "series", "measured", "paper"],
    );
    for (msg, a, b, c, d) in FIG7_ANCHORS {
        let idx = sizes.iter().position(|&s| s == msg).expect("anchor size");
        for (si, paper_v) in [(0usize, a), (1, b), (2, c), (3, d)] {
            cmp.row(vec![
                fmt_size(msg),
                series[si].0.to_string(),
                format!("{:.0}", by_series[si][idx].mib_per_sec),
                format!("{paper_v:.0}"),
            ]);
        }
    }
    cmp.emit(None);
    println!(
        "expected shape (paper §4.2): both the cache and the overlap recover the\n\
         ~5% pinning penalty; overlapped pinning helps exactly when the cache\n\
         cannot (no buffer reuse), at negligible overhead."
    );
}
