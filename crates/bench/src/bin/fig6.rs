//! Figure 6 — IMB PingPong throughput on Open-MX, 64 kB–16 MB, comparing
//! pin-once-per-communication against permanent pinning, with and without
//! I/OAT copy offload.
//!
//! Run: `cargo run --release -p openmx-bench --bin fig6`

use openmx_bench::paper::{DEGRADATION_FAST_PCT, FIG6_ANCHORS};
use openmx_bench::pingpong::{figure_sizes, paper_cfg, pingpong_throughput};
use openmx_bench::sweep::parallel_map;
use openmx_bench::table::{fmt_size, Table};
use openmx_core::PinningMode;

fn main() {
    let series = [
        ("pin-per-comm", PinningMode::PinPerComm, false),
        ("permanent", PinningMode::Permanent, false),
        ("pin-per-comm + I/OAT", PinningMode::PinPerComm, true),
        ("permanent + I/OAT", PinningMode::Permanent, true),
    ];
    let sizes = figure_sizes();
    let jobs: Vec<(usize, u64)> = series
        .iter()
        .enumerate()
        .flat_map(|(si, _)| sizes.iter().map(move |&m| (si, m)))
        .collect();
    let points = parallel_map(jobs, |(si, msg)| {
        let (_, mode, ioat) = series[si];
        (si, pingpong_throughput(&paper_cfg(mode, ioat), msg))
    });

    let mut by_series: Vec<Vec<openmx_bench::pingpong::PingPongPoint>> =
        vec![Vec::new(); series.len()];
    for (si, p) in points {
        by_series[si].push(p);
    }

    let mut t = Table::new(
        "Figure 6 — IMB PingPong throughput (MiB/s), Xeon E5460 + Myri-10G",
        &["size", series[0].0, series[1].0, series[2].0, series[3].0],
    );
    for (i, &msg) in sizes.iter().enumerate() {
        t.row(vec![
            fmt_size(msg),
            format!("{:.0}", by_series[0][i].mib_per_sec),
            format!("{:.0}", by_series[1][i].mib_per_sec),
            format!("{:.0}", by_series[2][i].mib_per_sec),
            format!("{:.0}", by_series[3][i].mib_per_sec),
        ]);
    }
    t.emit(Some("fig6.csv"));

    // Observability: what the pin path actually cost per series at 16 MiB.
    let last = sizes.len() - 1;
    let mut lat = Table::new(
        "pin latency at 16 MiB (per pin burst) and overlap misses across the sweep",
        &[
            "series",
            "p50 µs",
            "p95 µs",
            "p99 µs",
            "bursts",
            "overlap misses",
        ],
    );
    for (si, (name, _, _)) in series.iter().enumerate() {
        let p = &by_series[si][last];
        lat.row(vec![
            name.to_string(),
            format!("{:.1}", p.pin_p50_us),
            format!("{:.1}", p.pin_p95_us),
            format!("{:.1}", p.pin_p99_us),
            format!("{}", p.pin_bursts),
            format!(
                "{}",
                by_series[si].iter().map(|p| p.overlap_misses).sum::<u64>()
            ),
        ]);
    }
    lat.emit(None);

    // Headline comparisons with the paper.
    let deg = 100.0 * (1.0 - by_series[0][last].mib_per_sec / by_series[1][last].mib_per_sec);
    let deg_ioat = 100.0 * (1.0 - by_series[2][last].mib_per_sec / by_series[3][last].mib_per_sec);
    println!(
        "pinning degradation at 16MiB: {:.1}% (no I/OAT), {:.1}% (I/OAT); paper: ~{}% on this host",
        deg, deg_ioat, DEGRADATION_FAST_PCT
    );
    let mut cmp = Table::new(
        "vs paper anchors (MiB/s, read off the published figure)",
        &["size", "series", "measured", "paper"],
    );
    for (msg, a, b, c, d) in FIG6_ANCHORS {
        let idx = sizes.iter().position(|&s| s == msg).expect("anchor size");
        for (si, paper_v) in [(0usize, a), (1, b), (2, c), (3, d)] {
            cmp.row(vec![
                fmt_size(msg),
                series[si].0.to_string(),
                format!("{:.0}", by_series[si][idx].mib_per_sec),
                format!("{paper_v:.0}"),
            ]);
        }
    }
    cmp.emit(None);

    // §4.1/§4.2's "up to 20% on slower processors": repeat the comparison
    // on the slowest Table 1 host.
    use openmx_core::CpuProfile;
    let mut slow = Table::new(
        "slow host check — Opteron 265 (paper: pinning costs up to ~20%)",
        &["size", "pin-per-comm", "permanent", "degradation %"],
    );
    for msg in [1u64 << 20, 4 << 20, 16 << 20] {
        let jobs = vec![PinningMode::PinPerComm, PinningMode::Permanent];
        let vals = parallel_map(jobs, |mode| {
            let mut cfg = paper_cfg(mode, false);
            cfg.profile = CpuProfile::opteron_265();
            pingpong_throughput(&cfg, msg).mib_per_sec
        });
        slow.row(vec![
            fmt_size(msg),
            format!("{:.0}", vals[0]),
            format!("{:.0}", vals[1]),
            format!("{:.1}", 100.0 * (1.0 - vals[0] / vals[1])),
        ]);
    }
    slow.emit(None);
}
