//! Chaos soak: sweep seeds × fault profiles × message sizes over a
//! hostile fabric and assert the protocol never hangs or panics — every
//! transfer either completes intact or errors out through the completion
//! path. Also compares duplicate retransmissions of the adaptive backoff
//! policy against the fixed 1 s timer under 5% loss.
//!
//! Run: `cargo run --release -p openmx-bench --bin chaos [-- --smoke]`
//!
//! Flags:
//! * `--smoke`          reduced matrix for CI (2 seeds, small messages),
//! * `--seeds N`        number of seeds per cell (default 8),
//! * `--max-retries N`  retry budget handed to the engine (default 16).

use openmx_bench::chaos::{
    chaos_cfg, crash_profiles, duplicate_comparison, profiles, run_chaos, run_chaos_crash, Verdict,
};
use openmx_bench::sweep::parallel_map;
use openmx_bench::table::Table;

struct Args {
    seeds: u64,
    max_retries: u32,
    sizes: Vec<u64>,
    msgs: u32,
}

fn parse_args() -> Args {
    let mut args = Args {
        seeds: 8,
        max_retries: 16,
        sizes: vec![16 * 1024, 256 * 1024, 1 << 20],
        msgs: 3,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--smoke" => {
                args.seeds = 2;
                args.sizes = vec![16 * 1024, 256 * 1024];
                args.msgs = 2;
            }
            "--seeds" => {
                i += 1;
                args.seeds = argv[i].parse().expect("--seeds takes a number");
            }
            "--max-retries" => {
                i += 1;
                args.max_retries = argv[i].parse().expect("--max-retries takes a number");
            }
            other => {
                eprintln!("unknown flag: {other}");
                eprintln!("usage: chaos [--smoke] [--seeds N] [--max-retries N]");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    args
}

fn main() {
    let args = parse_args();
    let profiles = profiles();

    // The full matrix: every (profile, seed, size) cell is one simulation.
    let mut cells = Vec::new();
    for (pi, _) in profiles.iter().enumerate() {
        for seed in 0..args.seeds {
            for &size in &args.sizes {
                cells.push((pi, seed, size));
            }
        }
    }
    let n_cells = cells.len();
    let max_retries = args.max_retries;
    let msgs = args.msgs;
    let profs = profiles.clone();
    let results = parallel_map(cells, move |(pi, seed, size)| {
        let (name, profile) = &profs[pi];
        let cfg = chaos_cfg(0xc4a0_5000 + seed, max_retries, true);
        let out = run_chaos(&cfg, profile, size, msgs);
        (*name, seed, size, out)
    });

    let mut t = Table::new(
        "chaos soak: outcomes per fault profile",
        &[
            "profile", "runs", "intact", "failed", "hung", "faults", "retrans", "dups rx",
        ],
    );
    let mut hung_total = 0u64;
    for (name, _) in &profiles {
        let rows: Vec<_> = results.iter().filter(|r| r.0 == *name).collect();
        let intact = rows
            .iter()
            .filter(|r| r.3.verdict == Verdict::Intact)
            .count();
        let failed = rows
            .iter()
            .filter(|r| r.3.verdict == Verdict::FailedCleanly)
            .count();
        let hung = rows.iter().filter(|r| r.3.verdict == Verdict::Hung).count();
        hung_total += hung as u64;
        let faults: u64 = rows.iter().map(|r| r.3.faults_injected).sum();
        let retrans: u64 = rows.iter().map(|r| r.3.retransmits).sum();
        let dups: u64 = rows.iter().map(|r| r.3.dup_frames_rx).sum();
        t.row(vec![
            name.to_string(),
            format!("{}", rows.len()),
            format!("{intact}"),
            format!("{failed}"),
            format!("{hung}"),
            format!("{faults}"),
            format!("{retrans}"),
            format!("{dups}"),
        ]);
    }
    t.emit(None);

    // Flight recorder: every hung cell ships its post-mortem dump as an
    // artifact before the soak aborts.
    if hung_total > 0 {
        for (name, seed, size, out) in &results {
            if out.verdict != Verdict::Hung {
                continue;
            }
            let path = format!("postmortem_chaos_{name}_{seed}_{size}.json");
            let dump = out.post_mortem.as_deref().unwrap_or("{}");
            std::fs::write(&path, dump).expect("write post-mortem");
            eprintln!("hung: {name} seed {seed} size {size} -> {path}");
        }
    }
    assert_eq!(hung_total, 0, "chaos soak found hung transfers");
    println!("soak: {n_cells} runs, 0 hangs, 0 panics");

    // Crash column: the receiving rank is crashed and restarted
    // mid-stream, alone and crossed with loss and duplication. The bar
    // is the same — every send settles, nothing hangs — plus byte
    // verification of whatever the reborn incarnation completed.
    let crash_profs = crash_profiles();
    let mut crash_cells = Vec::new();
    for (pi, _) in crash_profs.iter().enumerate() {
        for seed in 0..args.seeds {
            for &size in &args.sizes {
                crash_cells.push((pi, seed, size));
            }
        }
    }
    let n_crash = crash_cells.len();
    let cprofs = crash_profs.clone();
    let crash_results = parallel_map(crash_cells, move |(pi, seed, size)| {
        let (name, profile) = &cprofs[pi];
        let cfg = chaos_cfg(0xc4a5_4000 + seed, max_retries, true);
        let out = run_chaos_crash(&cfg, profile, size, msgs + 2);
        (*name, seed, size, out)
    });
    let mut t = Table::new(
        "chaos crash column: receiver crash/restart mid-stream",
        &[
            "profile", "runs", "intact", "failed", "hung", "faults", "retrans",
        ],
    );
    let mut crash_hung = 0u64;
    for (name, _) in &crash_profs {
        let rows: Vec<_> = crash_results.iter().filter(|r| r.0 == *name).collect();
        let intact = rows
            .iter()
            .filter(|r| r.3.verdict == Verdict::Intact)
            .count();
        let failed = rows
            .iter()
            .filter(|r| r.3.verdict == Verdict::FailedCleanly)
            .count();
        let hung = rows.iter().filter(|r| r.3.verdict == Verdict::Hung).count();
        crash_hung += hung as u64;
        let faults: u64 = rows.iter().map(|r| r.3.faults_injected).sum();
        let retrans: u64 = rows.iter().map(|r| r.3.retransmits).sum();
        t.row(vec![
            name.to_string(),
            format!("{}", rows.len()),
            format!("{intact}"),
            format!("{failed}"),
            format!("{hung}"),
            format!("{faults}"),
            format!("{retrans}"),
        ]);
    }
    t.emit(None);
    if crash_hung > 0 {
        for (name, seed, size, out) in &crash_results {
            if out.verdict != Verdict::Hung {
                continue;
            }
            let path = format!("postmortem_chaos_{name}_{seed}_{size}.json");
            let dump = out.post_mortem.as_deref().unwrap_or("{}");
            std::fs::write(&path, dump).expect("write post-mortem");
            eprintln!("hung: {name} seed {seed} size {size} -> {path}");
        }
    }
    assert_eq!(crash_hung, 0, "crash column found hung transfers");
    println!("crash column: {n_crash} runs, 0 hangs, 0 panics");

    // Adaptive-vs-fixed duplicate comparison under 5% i.i.d. loss. Bigger
    // messages than the soak cells: the duplicate gap comes from frames
    // that are delayed (not lost) being re-requested, which needs enough
    // in-flight traffic to show.
    let seeds: Vec<u64> = (0..args.seeds).map(|s| 0xd0b0_0000 + s).collect();
    let cmp = duplicate_comparison(&seeds, 1 << 20, args.msgs + 2);
    let mut t = Table::new(
        "retransmission policy under 5% loss (sum over seeds)",
        &["policy", "dup frames rx", "retransmits"],
    );
    t.row(vec![
        "fixed 1 s".into(),
        format!("{}", cmp.fixed_dups),
        format!("{}", cmp.fixed_retransmits),
    ]);
    t.row(vec![
        "adaptive".into(),
        format!("{}", cmp.adaptive_dups),
        format!("{}", cmp.adaptive_retransmits),
    ]);
    t.emit(None);
    assert!(
        cmp.adaptive_dups <= cmp.fixed_dups,
        "adaptive backoff produced more duplicates ({}) than the fixed timer ({})",
        cmp.adaptive_dups,
        cmp.fixed_dups,
    );
    println!(
        "adaptive dups {} <= fixed dups {}",
        cmp.adaptive_dups, cmp.fixed_dups
    );
}
