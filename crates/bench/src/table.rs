//! Minimal aligned-text table rendering (no serde_json offline, so the
//! harness emits plain text and CSV itself).

use std::fmt::Write as _;

/// A simple table: headers plus string rows.
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line: String = widths.iter().map(|w| "-".repeat(w + 2)).collect();
        let mut hdr = String::new();
        for (w, h) in widths.iter().zip(&self.headers) {
            let _ = write!(hdr, " {h:>w$} ");
        }
        let _ = writeln!(out, "{hdr}");
        let _ = writeln!(out, "{line}");
        for row in &self.rows {
            let mut r = String::new();
            for (w, cell) in widths.iter().zip(row) {
                let _ = write!(r, " {cell:>w$} ");
            }
            let _ = writeln!(out, "{r}");
        }
        out
    }

    /// Render as CSV (for plotting).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }

    /// Print the table and, if `csv_path` is set, also write the CSV.
    pub fn emit(&self, csv_path: Option<&str>) {
        print!("{}", self.render());
        if let Some(path) = csv_path {
            std::fs::write(path, self.to_csv()).expect("write csv");
            println!("(csv written to {path})");
        }
        println!();
    }
}

/// Format a byte count the way the paper's axes do (64kB, 1MB, 16MB).
pub fn fmt_size(bytes: u64) -> String {
    if bytes >= 1 << 20 {
        format!("{}MiB", bytes >> 20)
    } else if bytes >= 1 << 10 {
        format!("{}KiB", bytes >> 10)
    } else {
        format!("{bytes}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["size", "MiB/s"]);
        t.row(vec!["64KiB".into(), "650.1".into()]);
        t.row(vec!["16MiB".into(), "955.0".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("64KiB"));
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("size,MiB/s"));
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["x".into()]);
    }

    #[test]
    fn size_formatting() {
        assert_eq!(fmt_size(64 * 1024), "64KiB");
        assert_eq!(fmt_size(16 << 20), "16MiB");
        assert_eq!(fmt_size(100), "100B");
    }
}
