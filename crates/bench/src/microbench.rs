//! A minimal wall-clock micro-benchmark harness for the `harness = false`
//! bench targets. Measures real elapsed time of the simulator itself (the
//! *simulated* costs are the harness binaries' business).
//!
//! Deliberately tiny: warm up, pick an iteration count that fills a target
//! measurement window, take several samples, report median ns/iter.

use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a computed value.
///
/// `std::hint::black_box` is stable since Rust 1.66.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// One benchmark runner; prints a line per benchmark.
pub struct Bench {
    samples: usize,
    target: Duration,
}

impl Default for Bench {
    fn default() -> Self {
        Self::new()
    }
}

impl Bench {
    /// A runner with the default 11 samples of ~50 ms each.
    pub fn new() -> Self {
        Bench {
            samples: 11,
            target: Duration::from_millis(50),
        }
    }

    /// Override the number of timed samples (median is reported).
    pub fn samples(mut self, n: usize) -> Self {
        assert!(n > 0);
        self.samples = n;
        self
    }

    /// Override the per-sample measurement window.
    pub fn sample_window(mut self, d: Duration) -> Self {
        self.target = d;
        self
    }

    /// Time `f`, printing `name: <median> ns/iter (± spread over samples)`.
    pub fn bench<O, F: FnMut() -> O>(&self, name: &str, mut f: F) {
        // Warm-up and calibration: how many iterations fill the window?
        let calib_start = Instant::now();
        black_box(f());
        let once = calib_start.elapsed().max(Duration::from_nanos(1));
        let iters = (self.target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut per_iter: Vec<f64> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(f());
                }
                start.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter[per_iter.len() / 2];
        let spread = per_iter[per_iter.len() - 1] - per_iter[0];
        println!("{name}: {median:.0} ns/iter (spread {spread:.0} ns, {iters} iters/sample)");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        // Smoke test: a trivial closure completes without panicking.
        Bench::new()
            .samples(3)
            .sample_window(Duration::from_micros(200))
            .bench("noop", || black_box(1u64 + 1));
    }
}
