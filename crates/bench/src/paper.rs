//! The published numbers from the paper, for side-by-side comparison in
//! the harness output and EXPERIMENTS.md.

/// One row of the paper's Table 1.
#[derive(Clone, Copy, Debug)]
pub struct Table1Row {
    /// Host name.
    pub host: &'static str,
    /// Clock in GHz.
    pub ghz: f64,
    /// Base pin+unpin overhead, µs.
    pub base_us: f64,
    /// Per-page pin+unpin overhead, ns.
    pub ns_per_page: f64,
    /// Pinning throughput, GB/s.
    pub gb_per_sec: f64,
}

/// Table 1 as published.
pub const TABLE1: [Table1Row; 4] = [
    Table1Row {
        host: "Opteron 265",
        ghz: 1.8,
        base_us: 4.2,
        ns_per_page: 720.0,
        gb_per_sec: 5.5,
    },
    Table1Row {
        host: "Opteron 8347",
        ghz: 1.9,
        base_us: 2.2,
        ns_per_page: 330.0,
        gb_per_sec: 12.0,
    },
    Table1Row {
        host: "Xeon E5435",
        ghz: 2.33,
        base_us: 2.3,
        ns_per_page: 250.0,
        gb_per_sec: 16.0,
    },
    Table1Row {
        host: "Xeon E5460",
        ghz: 3.16,
        base_us: 1.3,
        ns_per_page: 150.0,
        gb_per_sec: 26.5,
    },
];

/// One row of the paper's Table 2: execution-time improvement (%) from
/// the pinning cache and from overlapped pinning.
#[derive(Clone, Copy, Debug)]
pub struct Table2Row {
    /// Benchmark name.
    pub name: &'static str,
    /// % improvement with the pinning cache.
    pub cache_pct: f64,
    /// % improvement with overlapped pinning.
    pub overlap_pct: f64,
}

/// Table 2 as published (IMB between 2 nodes + NPB is.C.4).
pub const TABLE2: [Table2Row; 8] = [
    Table2Row {
        name: "IMB SendRecv",
        cache_pct: 8.4,
        overlap_pct: 5.5,
    },
    Table2Row {
        name: "IMB Allgatherv",
        cache_pct: 7.5,
        overlap_pct: 6.8,
    },
    Table2Row {
        name: "IMB Broadcast",
        cache_pct: 4.4,
        overlap_pct: 2.0,
    },
    Table2Row {
        name: "IMB Reduce",
        cache_pct: 7.6,
        overlap_pct: 0.2,
    },
    Table2Row {
        name: "IMB Allreduce",
        cache_pct: 2.2,
        overlap_pct: -0.6,
    },
    Table2Row {
        name: "IMB Reduce_scatter",
        cache_pct: 7.9,
        overlap_pct: -0.8,
    },
    Table2Row {
        name: "IMB Exchange",
        cache_pct: -1.4,
        overlap_pct: -2.7,
    },
    Table2Row {
        name: "NPB is.C.4",
        cache_pct: 4.2,
        overlap_pct: 1.9,
    },
];

/// Approximate series anchors read off Figure 6 (Xeon E5460, MiB/s):
/// (message size, pin-per-comm, permanent, pin-per-comm + I/OAT,
/// permanent + I/OAT).
pub const FIG6_ANCHORS: [(u64, f64, f64, f64, f64); 3] = [
    (64 * 1024, 530.0, 560.0, 560.0, 590.0),
    (1 << 20, 930.0, 980.0, 1010.0, 1070.0),
    (16 << 20, 1020.0, 1080.0, 1090.0, 1150.0),
];

/// Approximate series anchors read off Figure 7 (MiB/s):
/// (message size, regular, overlapped, cache, overlapped cache).
pub const FIG7_ANCHORS: [(u64, f64, f64, f64, f64); 3] = [
    (64 * 1024, 530.0, 550.0, 555.0, 560.0),
    (1 << 20, 930.0, 970.0, 975.0, 980.0),
    (16 << 20, 1020.0, 1070.0, 1075.0, 1080.0),
];

/// §4.1: expected throughput degradation from pinning, by host class.
pub const DEGRADATION_FAST_PCT: f64 = 5.0; // Xeon E5460
/// §4.2: observed on slower machines.
pub const DEGRADATION_SLOW_PCT: f64 = 20.0; // Opteron 265

/// §4.3: overlap misses under regular load are below this rate.
pub const OVERLAP_MISS_RATE_BOUND: f64 = 1e-4;

/// §4.3: the overloaded-core collapse, MB/s.
pub const OVERLOAD_COLLAPSE_MBPS: (f64, f64) = (1000.0, 50.0);
