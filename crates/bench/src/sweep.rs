//! Parallel parameter sweeps: each simulation is independent and
//! deterministic, so points of a figure can run on separate threads
//! (std scoped threads) and still produce identical results to a
//! sequential run.

/// Map `f` over `inputs` in parallel, preserving order. `f` must build
/// everything it needs inside the call (simulations are not `Send`).
pub fn parallel_map<I, O, F>(inputs: Vec<I>, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    let mut results: Vec<Option<O>> = inputs.iter().map(|_| None).collect();
    std::thread::scope(|scope| {
        for (slot, input) in results.iter_mut().zip(inputs) {
            let f = &f;
            scope.spawn(move || {
                *slot = Some(f(input));
            });
        }
    });
    results
        .into_iter()
        .map(|o| o.expect("slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = parallel_map((0..32).collect(), |x: u64| x * x);
        assert_eq!(out, (0..32).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn works_with_non_copy_outputs() {
        let out = parallel_map(vec!["a", "bb", "ccc"], |s: &str| s.to_string());
        assert_eq!(out, vec!["a", "bb", "ccc"]);
    }
}
