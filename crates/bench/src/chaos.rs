//! Chaos soak harness: hostile-fabric sweeps asserting protocol liveness.
//!
//! Each run streams verified payloads between two ranks through a fabric
//! with injected faults (bursty loss, reordering, duplication, or all at
//! once) and classifies the outcome:
//!
//! * **intact** — every rank finished and every received byte matches,
//! * **failed cleanly** — at least one request errored through the normal
//!   completion path (the application saw it; nothing is stuck silently),
//! * **hung** — a rank neither finished nor observed a failure: the
//!   protocol lost liveness. The soak treats this as a hard error.
//!
//! The sweep axes (seeds × profiles × message sizes) and the adaptive-vs-
//! fixed retransmission comparison are driven by the `chaos` binary.

use openmx_core::{OpenMxConfig, PinningMode, ProcId};
use openmx_mpi::collectives::JobBuilder;
use openmx_mpi::{run_job, Op};
use simcore::SimDuration;
use simnet::{FaultConfig, FaultProfile, GilbertElliott};

/// How one chaos run ended.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// All ranks finished and the payload verified byte-for-byte.
    Intact,
    /// Requests failed, but through the completion path — the run
    /// terminated and the application observed every error.
    FailedCleanly,
    /// A rank neither finished nor saw a failure: liveness lost.
    Hung,
}

/// Counters harvested from one chaos run.
#[derive(Clone, Debug)]
pub struct ChaosOutcome {
    /// Outcome classification.
    pub verdict: Verdict,
    /// Failure reasons observed across ranks (empty when intact).
    pub failures: Vec<&'static str>,
    /// Retransmissions / re-requests the protocol fired.
    pub retransmits: u64,
    /// Duplicate frames the protocol received and discarded.
    pub dup_frames_rx: u64,
    /// Faults the fabric injected (loss, duplication, reordering).
    pub faults_injected: u64,
    /// Frames the fabric dropped in the bursty-loss bad state.
    pub frames_burst_lost: u64,
    /// Frames the fabric duplicated.
    pub frames_duplicated: u64,
    /// Frames the fabric delivered out of order.
    pub frames_reordered: u64,
    /// Flight-recorder post-mortem JSON, present iff the run was not
    /// intact. Chaos jobs run with tracing off, so the dump is a
    /// metrics-only snapshot (no spans) — still enough to see retransmit
    /// and fault counts at the point of failure.
    pub post_mortem: Option<String>,
}

/// The soak's fault-profile axis: every hostile behavior alone, then all
/// of them together, each applied to both directions of the 0 ↔ 1 pair.
pub fn profiles() -> Vec<(&'static str, FaultProfile)> {
    let burst = FaultProfile {
        burst: Some(GilbertElliott::bursty(0.05, 8.0)),
        ..FaultProfile::default()
    };
    let reorder = FaultProfile {
        reorder: 0.15,
        reorder_jitter: SimDuration::from_micros(200),
        ..FaultProfile::default()
    };
    let duplicate = FaultProfile {
        duplicate: 0.10,
        ..FaultProfile::default()
    };
    let combined = FaultProfile {
        burst: Some(GilbertElliott::bursty(0.03, 4.0)),
        reorder: 0.05,
        reorder_jitter: SimDuration::from_micros(100),
        duplicate: 0.05,
        loss: 0.01,
        ..FaultProfile::default()
    };
    vec![
        ("burst-loss", burst),
        ("reorder", reorder),
        ("duplicate", duplicate),
        ("combined", combined),
    ]
}

/// Baseline config for chaos runs: overlapped+cached pinning, a short
/// retransmission ceiling so lossy runs converge in reasonable virtual
/// time, and the caller's seed / retry budget.
pub fn chaos_cfg(seed: u64, max_retries: u32, adaptive: bool) -> OpenMxConfig {
    let mut cfg = OpenMxConfig::with_mode(PinningMode::OverlappedCached);
    cfg.seed = seed;
    cfg.max_retries = max_retries;
    cfg.adaptive_retransmit = adaptive;
    cfg.retransmit_timeout = SimDuration::from_millis(50);
    cfg
}

/// Run `msgs` verified messages of `len` bytes from rank 0 to rank 1 under
/// `profile` on both directions of the link, and classify the outcome.
/// Never panics on protocol failure — that is the point of the harness.
pub fn run_chaos(cfg: &OpenMxConfig, profile: &FaultProfile, len: u64, msgs: u32) -> ChaosOutcome {
    let mut cfg = cfg.clone();
    let mut faults = FaultConfig::clean();
    faults.set_link(0, 1, *profile);
    faults.set_link(1, 0, *profile);
    cfg.net.faults = faults;

    let mut b = JobBuilder::new(2);
    let sbuf = b.alloc(len, |_| Some(0x6b));
    let rbuf = b.alloc(len, |_| None);
    for _ in 0..msgs {
        let tag = b.tag();
        b.step_all(|r| match r {
            0 => vec![Op::Send {
                to: 1,
                tag,
                buf: sbuf,
                offset: 0,
                len,
            }],
            1 => vec![Op::Recv {
                from: 0,
                tag,
                buf: rbuf,
                offset: 0,
                len,
            }],
            _ => vec![],
        });
    }
    let (mut cl, records) = run_job(&cfg, 2, 1, b.scripts);

    let failures: Vec<&'static str> = records
        .iter()
        .flat_map(|r| r.failures.iter().copied())
        .collect();
    let all_finished = records.iter().all(|r| r.finished.is_some());
    let verdict = if failures.is_empty() && all_finished {
        let addr = records[1].buffer_addrs[rbuf];
        let got = cl.read_proc(ProcId(1), addr, len);
        let intact = got.iter().enumerate().all(|(i, &v)| v == (i as u8) ^ 0x6b);
        if intact {
            Verdict::Intact
        } else {
            // Data corruption with no reported error is a silent failure.
            Verdict::Hung
        }
    } else if failures.is_empty() {
        // Unfinished ranks with no recorded failure anywhere: stuck.
        Verdict::Hung
    } else {
        // Errors surfaced through the completion path. A peer of a failed
        // transfer may legitimately not finish (its partner is gone) —
        // what matters is that the run terminated and the error was seen.
        Verdict::FailedCleanly
    };

    let m = cl.metrics();
    let s = cl.net_stats();
    let post_mortem = (verdict != Verdict::Intact).then(|| {
        let reason = match verdict {
            Verdict::Hung => "chaos: liveness lost (rank stuck or silent corruption)",
            _ => "chaos: transfers failed through the completion path",
        };
        openmx_core::obs::post_mortem_json(reason, None, cl.tracer(), m, 32)
    });
    ChaosOutcome {
        verdict,
        failures,
        post_mortem,
        retransmits: m.retransmits(),
        dup_frames_rx: m.dup_frames_rx(),
        faults_injected: m.faults_injected(),
        frames_burst_lost: s.frames_burst_lost,
        frames_duplicated: s.frames_duplicated,
        frames_reordered: s.frames_reordered,
    }
}

/// One row of the adaptive-vs-fixed duplicate comparison.
#[derive(Clone, Copy, Debug)]
pub struct DupComparison {
    /// Duplicate frames received under the fixed 1 s timeout policy.
    pub fixed_dups: u64,
    /// Retransmissions fired under the fixed policy.
    pub fixed_retransmits: u64,
    /// Duplicate frames received under adaptive backoff.
    pub adaptive_dups: u64,
    /// Retransmissions fired under adaptive backoff.
    pub adaptive_retransmits: u64,
}

/// Measure duplicate retransmissions under 5% loss (plus the delay jitter
/// every congested fabric shows) with the fixed 1 s retransmission timer
/// vs. the adaptive backoff policy, summed over `seeds` seeds.
///
/// The gap comes from the re-request guard: the static guard assumes the
/// nominal round trip, so a frame delayed past it gets re-requested while
/// still in flight and arrives twice. The adaptive guard tracks the
/// measured RTO and leaves merely-late frames alone.
pub fn duplicate_comparison(seeds: &[u64], len: u64, msgs: u32) -> DupComparison {
    let mut out = DupComparison {
        fixed_dups: 0,
        fixed_retransmits: 0,
        adaptive_dups: 0,
        adaptive_retransmits: 0,
    };
    let profile = FaultProfile {
        loss: 0.05,
        reorder: 0.3,
        reorder_jitter: SimDuration::from_micros(400),
        ..FaultProfile::default()
    };
    for &seed in seeds {
        let mut fixed = chaos_cfg(seed, 16, false);
        // The fixed baseline is the pre-adaptive protocol: a flat 1 s
        // retransmission timer and the static re-request guard.
        fixed.retransmit_timeout = SimDuration::from_secs(1);
        let f = run_chaos(&fixed, &profile, len, msgs);
        assert_eq!(f.verdict, Verdict::Intact, "fixed run must survive 5% loss");
        out.fixed_dups += f.dup_frames_rx;
        out.fixed_retransmits += f.retransmits;

        let adaptive = chaos_cfg(seed, 16, true);
        let a = run_chaos(&adaptive, &profile, len, msgs);
        assert_eq!(
            a.verdict,
            Verdict::Intact,
            "adaptive run must survive 5% loss"
        );
        out.adaptive_dups += a.dup_frames_rx;
        out.adaptive_retransmits += a.retransmits;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_fabric_is_intact() {
        let cfg = chaos_cfg(1, 16, true);
        let out = run_chaos(&cfg, &FaultProfile::default(), 256 * 1024, 2);
        assert_eq!(out.verdict, Verdict::Intact);
        assert_eq!(out.faults_injected, 0);
    }

    #[test]
    fn every_profile_survives_one_seed() {
        for (name, p) in profiles() {
            let cfg = chaos_cfg(7, 16, true);
            // Enough frames that even the bursty model (which clusters its
            // losses into rare bad-state visits) is virtually certain to
            // fire at least once.
            let out = run_chaos(&cfg, &p, 1 << 20, 4);
            assert_ne!(out.verdict, Verdict::Hung, "{name} hung");
            assert!(out.faults_injected > 0, "{name} injected nothing");
        }
    }
}
