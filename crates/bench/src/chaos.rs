//! Chaos soak harness: hostile-fabric sweeps asserting protocol liveness.
//!
//! Each run streams verified payloads between two ranks through a fabric
//! with injected faults (bursty loss, reordering, duplication, or all at
//! once) and classifies the outcome:
//!
//! * **intact** — every rank finished and every received byte matches,
//! * **failed cleanly** — at least one request errored through the normal
//!   completion path (the application saw it; nothing is stuck silently),
//! * **hung** — a rank neither finished nor observed a failure: the
//!   protocol lost liveness. The soak treats this as a hard error.
//!
//! The sweep axes (seeds × profiles × message sizes) and the adaptive-vs-
//! fixed retransmission comparison are driven by the `chaos` binary.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use openmx_core::engine::{Cluster, Ctx, Process};
use openmx_core::{AppEvent, OpenMxConfig, PinningMode, ProcId};
use openmx_mpi::collectives::JobBuilder;
use openmx_mpi::{run_job, Op};
use simcore::{SimDuration, SimTime};
use simmem::VirtAddr;
use simnet::{FaultConfig, FaultProfile, GilbertElliott};

/// How one chaos run ended.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// All ranks finished and the payload verified byte-for-byte.
    Intact,
    /// Requests failed, but through the completion path — the run
    /// terminated and the application observed every error.
    FailedCleanly,
    /// A rank neither finished nor saw a failure: liveness lost.
    Hung,
}

/// Counters harvested from one chaos run.
#[derive(Clone, Debug)]
pub struct ChaosOutcome {
    /// Outcome classification.
    pub verdict: Verdict,
    /// Failure reasons observed across ranks (empty when intact).
    pub failures: Vec<&'static str>,
    /// Retransmissions / re-requests the protocol fired.
    pub retransmits: u64,
    /// Duplicate frames the protocol received and discarded.
    pub dup_frames_rx: u64,
    /// Faults the fabric injected (loss, duplication, reordering).
    pub faults_injected: u64,
    /// Frames the fabric dropped in the bursty-loss bad state.
    pub frames_burst_lost: u64,
    /// Frames the fabric duplicated.
    pub frames_duplicated: u64,
    /// Frames the fabric delivered out of order.
    pub frames_reordered: u64,
    /// Flight-recorder post-mortem JSON, present iff the run was not
    /// intact. Chaos jobs run with tracing off, so the dump is a
    /// metrics-only snapshot (no spans) — still enough to see retransmit
    /// and fault counts at the point of failure.
    pub post_mortem: Option<String>,
}

/// The soak's fault-profile axis: every hostile behavior alone, then all
/// of them together, each applied to both directions of the 0 ↔ 1 pair.
pub fn profiles() -> Vec<(&'static str, FaultProfile)> {
    let burst = FaultProfile {
        burst: Some(GilbertElliott::bursty(0.05, 8.0)),
        ..FaultProfile::default()
    };
    let reorder = FaultProfile {
        reorder: 0.15,
        reorder_jitter: SimDuration::from_micros(200),
        ..FaultProfile::default()
    };
    let duplicate = FaultProfile {
        duplicate: 0.10,
        ..FaultProfile::default()
    };
    let combined = FaultProfile {
        burst: Some(GilbertElliott::bursty(0.03, 4.0)),
        reorder: 0.05,
        reorder_jitter: SimDuration::from_micros(100),
        duplicate: 0.05,
        loss: 0.01,
        ..FaultProfile::default()
    };
    vec![
        ("burst-loss", burst),
        ("reorder", reorder),
        ("duplicate", duplicate),
        ("combined", combined),
    ]
}

/// Baseline config for chaos runs: overlapped+cached pinning, a short
/// retransmission ceiling so lossy runs converge in reasonable virtual
/// time, and the caller's seed / retry budget.
pub fn chaos_cfg(seed: u64, max_retries: u32, adaptive: bool) -> OpenMxConfig {
    let mut cfg = OpenMxConfig::with_mode(PinningMode::OverlappedCached);
    cfg.seed = seed;
    cfg.max_retries = max_retries;
    cfg.adaptive_retransmit = adaptive;
    cfg.retransmit_timeout = SimDuration::from_millis(50);
    cfg
}

/// Run `msgs` verified messages of `len` bytes from rank 0 to rank 1 under
/// `profile` on both directions of the link, and classify the outcome.
/// Never panics on protocol failure — that is the point of the harness.
pub fn run_chaos(cfg: &OpenMxConfig, profile: &FaultProfile, len: u64, msgs: u32) -> ChaosOutcome {
    let mut cfg = cfg.clone();
    let mut faults = FaultConfig::clean();
    faults.set_link(0, 1, *profile);
    faults.set_link(1, 0, *profile);
    cfg.net.faults = faults;

    let mut b = JobBuilder::new(2);
    let sbuf = b.alloc(len, |_| Some(0x6b));
    let rbuf = b.alloc(len, |_| None);
    for _ in 0..msgs {
        let tag = b.tag();
        b.step_all(|r| match r {
            0 => vec![Op::Send {
                to: 1,
                tag,
                buf: sbuf,
                offset: 0,
                len,
            }],
            1 => vec![Op::Recv {
                from: 0,
                tag,
                buf: rbuf,
                offset: 0,
                len,
            }],
            _ => vec![],
        });
    }
    let (mut cl, records) = run_job(&cfg, 2, 1, b.scripts);

    let failures: Vec<&'static str> = records
        .iter()
        .flat_map(|r| r.failures.iter().copied())
        .collect();
    let all_finished = records.iter().all(|r| r.finished.is_some());
    let verdict = if failures.is_empty() && all_finished {
        let addr = records[1].buffer_addrs[rbuf];
        let got = cl.read_proc(ProcId(1), addr, len);
        let intact = got.iter().enumerate().all(|(i, &v)| v == (i as u8) ^ 0x6b);
        if intact {
            Verdict::Intact
        } else {
            // Data corruption with no reported error is a silent failure.
            Verdict::Hung
        }
    } else if failures.is_empty() {
        // Unfinished ranks with no recorded failure anywhere: stuck.
        Verdict::Hung
    } else {
        // Errors surfaced through the completion path. A peer of a failed
        // transfer may legitimately not finish (its partner is gone) —
        // what matters is that the run terminated and the error was seen.
        Verdict::FailedCleanly
    };

    let m = cl.metrics();
    let s = cl.net_stats();
    let post_mortem = (verdict != Verdict::Intact).then(|| {
        let reason = match verdict {
            Verdict::Hung => "chaos: liveness lost (rank stuck or silent corruption)",
            _ => "chaos: transfers failed through the completion path",
        };
        openmx_core::obs::post_mortem_json(reason, None, cl.tracer(), m, 32)
    });
    ChaosOutcome {
        verdict,
        failures,
        post_mortem,
        retransmits: m.retransmits(),
        dup_frames_rx: m.dup_frames_rx(),
        faults_injected: m.faults_injected(),
        frames_burst_lost: s.frames_burst_lost,
        frames_duplicated: s.frames_duplicated,
        frames_reordered: s.frames_reordered,
    }
}

/// The crash-column axis: a receiver crash/restart mid-stream, alone and
/// crossed with the hostile-fabric behaviors (loss, duplication, both).
pub fn crash_profiles() -> Vec<(&'static str, FaultProfile)> {
    let loss = FaultProfile {
        loss: 0.03,
        ..FaultProfile::default()
    };
    let duplicate = FaultProfile {
        duplicate: 0.10,
        ..FaultProfile::default()
    };
    let both = FaultProfile {
        loss: 0.02,
        duplicate: 0.05,
        reorder: 0.05,
        reorder_jitter: SimDuration::from_micros(100),
        ..FaultProfile::default()
    };
    vec![
        ("crash", FaultProfile::default()),
        ("crash+loss", loss),
        ("crash+dup", duplicate),
        ("crash+loss+dup", both),
    ]
}

/// Sender for the crash column: streams `msgs` messages and records how
/// each one settled — the liveness bar is that every send either
/// completes or fails through the completion path, crash or no crash.
struct CrashSender {
    peer: ProcId,
    len: u64,
    msgs_left: u32,
    buf: VirtAddr,
    failures: Rc<RefCell<Vec<&'static str>>>,
    clean: Rc<Cell<u32>>,
    done: Rc<Cell<bool>>,
}

impl Process for CrashSender {
    fn start(&mut self, ctx: &mut Ctx<'_>) {
        self.buf = ctx.malloc(self.len);
        let pat: Vec<u8> = (0..self.len).map(|i| (i as u8) ^ 0x6b).collect();
        ctx.write_buf(self.buf, &pat);
        ctx.isend(self.peer, 7, self.buf, self.len);
    }
    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: AppEvent) {
        match ev {
            AppEvent::SendDone(_) => self.clean.set(self.clean.get() + 1),
            AppEvent::Failed(_, reason) => self.failures.borrow_mut().push(reason),
            other => panic!("crash sender: unexpected event {other:?}"),
        }
        self.msgs_left -= 1;
        if self.msgs_left == 0 {
            self.done.set(true);
            ctx.stop();
        } else {
            ctx.isend(self.peer, 7, self.buf, self.len);
        }
    }
}

/// Reposting receiver for the crash column; counts the completions its
/// own incarnation observed.
struct CrashSink {
    len: u64,
    buf: VirtAddr,
    buf_out: Rc<Cell<VirtAddr>>,
    recvs: Rc<Cell<u32>>,
}

impl Process for CrashSink {
    fn start(&mut self, ctx: &mut Ctx<'_>) {
        self.buf = ctx.malloc(self.len);
        self.buf_out.set(self.buf);
        ctx.irecv(7, !0, self.buf, self.len);
    }
    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: AppEvent) {
        match ev {
            AppEvent::RecvDone(..) => self.recvs.set(self.recvs.get() + 1),
            AppEvent::Failed(..) => {}
            other => panic!("crash sink: unexpected event {other:?}"),
        }
        ctx.irecv(7, !0, self.buf, self.len);
    }
}

/// Like [`run_chaos`], but the receiving rank is crashed mid-stream and
/// restarted with a bumped incarnation while the sender keeps posting.
/// The liveness bar is identical: every send settles (done or failed);
/// a sender stuck waiting on a dead or reborn peer is a hang. Messages
/// completed by the restarted incarnation are verified byte-for-byte.
pub fn run_chaos_crash(
    cfg: &OpenMxConfig,
    profile: &FaultProfile,
    len: u64,
    msgs: u32,
) -> ChaosOutcome {
    let mut cfg = cfg.clone();
    let mut faults = FaultConfig::clean();
    faults.set_link(0, 1, *profile);
    faults.set_link(1, 0, *profile);
    cfg.net.faults = faults;

    let failures: Rc<RefCell<Vec<&'static str>>> = Rc::new(RefCell::new(Vec::new()));
    let clean = Rc::new(Cell::new(0u32));
    let done = Rc::new(Cell::new(false));
    let buf_out = Rc::new(Cell::new(VirtAddr(0)));
    let recvs = Rc::new(Cell::new(0u32));

    let mut cl = Cluster::new(cfg, 2);
    cl.add_process(
        0,
        Box::new(CrashSender {
            peer: ProcId(1),
            len,
            msgs_left: msgs,
            buf: VirtAddr(0),
            failures: failures.clone(),
            clean: clean.clone(),
            done: done.clone(),
        }),
    );
    cl.add_process(
        1,
        Box::new(CrashSink {
            len,
            buf: VirtAddr(0),
            buf_out: buf_out.clone(),
            recvs: recvs.clone(),
        }),
    );

    // Let the stream get going, kill the receiver mid-flight, leave it
    // down long enough for in-flight traffic to hit the fence, restart.
    cl.run(Some(SimTime::from_nanos(300_000)));
    cl.crash_proc(ProcId(1));
    cl.run(Some(SimTime::from_nanos(800_000)));
    let reborn_recvs = Rc::new(Cell::new(0u32));
    cl.restart_proc(
        ProcId(1),
        Box::new(CrashSink {
            len,
            buf: VirtAddr(0),
            buf_out: buf_out.clone(),
            recvs: reborn_recvs.clone(),
        }),
    );
    cl.run(Some(SimTime::from_nanos(120_000_000_000)));

    let failures: Vec<&'static str> = failures.borrow().clone();
    let verdict = if !done.get() {
        // The sender never settled all its messages: liveness lost.
        Verdict::Hung
    } else if failures.is_empty() && clean.get() == msgs {
        // Every send completed. If the reborn incarnation finished a
        // receive, its buffer must hold the verified pattern.
        let intact = if reborn_recvs.get() > 0 {
            let got = cl.read_proc(ProcId(1), buf_out.get(), len);
            got.iter().enumerate().all(|(i, &v)| v == (i as u8) ^ 0x6b)
        } else {
            true
        };
        if intact {
            Verdict::Intact
        } else {
            Verdict::Hung
        }
    } else {
        Verdict::FailedCleanly
    };

    let m = cl.metrics();
    let s = cl.net_stats();
    let post_mortem = (verdict == Verdict::Hung).then(|| {
        openmx_core::obs::post_mortem_json(
            "chaos crash column: liveness lost across a crash/restart",
            None,
            cl.tracer(),
            m,
            32,
        )
    });
    ChaosOutcome {
        verdict,
        failures,
        post_mortem,
        retransmits: m.retransmits(),
        dup_frames_rx: m.dup_frames_rx(),
        faults_injected: m.faults_injected(),
        frames_burst_lost: s.frames_burst_lost,
        frames_duplicated: s.frames_duplicated,
        frames_reordered: s.frames_reordered,
    }
}

/// One row of the adaptive-vs-fixed duplicate comparison.
#[derive(Clone, Copy, Debug)]
pub struct DupComparison {
    /// Duplicate frames received under the fixed 1 s timeout policy.
    pub fixed_dups: u64,
    /// Retransmissions fired under the fixed policy.
    pub fixed_retransmits: u64,
    /// Duplicate frames received under adaptive backoff.
    pub adaptive_dups: u64,
    /// Retransmissions fired under adaptive backoff.
    pub adaptive_retransmits: u64,
}

/// Measure duplicate retransmissions under 5% loss (plus the delay jitter
/// every congested fabric shows) with the fixed 1 s retransmission timer
/// vs. the adaptive backoff policy, summed over `seeds` seeds.
///
/// The gap comes from the re-request guard: the static guard assumes the
/// nominal round trip, so a frame delayed past it gets re-requested while
/// still in flight and arrives twice. The adaptive guard tracks the
/// measured RTO and leaves merely-late frames alone.
pub fn duplicate_comparison(seeds: &[u64], len: u64, msgs: u32) -> DupComparison {
    let mut out = DupComparison {
        fixed_dups: 0,
        fixed_retransmits: 0,
        adaptive_dups: 0,
        adaptive_retransmits: 0,
    };
    let profile = FaultProfile {
        loss: 0.05,
        reorder: 0.3,
        reorder_jitter: SimDuration::from_micros(400),
        ..FaultProfile::default()
    };
    for &seed in seeds {
        let mut fixed = chaos_cfg(seed, 16, false);
        // The fixed baseline is the pre-adaptive protocol: a flat 1 s
        // retransmission timer and the static re-request guard.
        fixed.retransmit_timeout = SimDuration::from_secs(1);
        let f = run_chaos(&fixed, &profile, len, msgs);
        assert_eq!(f.verdict, Verdict::Intact, "fixed run must survive 5% loss");
        out.fixed_dups += f.dup_frames_rx;
        out.fixed_retransmits += f.retransmits;

        let adaptive = chaos_cfg(seed, 16, true);
        let a = run_chaos(&adaptive, &profile, len, msgs);
        assert_eq!(
            a.verdict,
            Verdict::Intact,
            "adaptive run must survive 5% loss"
        );
        out.adaptive_dups += a.dup_frames_rx;
        out.adaptive_retransmits += a.retransmits;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_fabric_is_intact() {
        let cfg = chaos_cfg(1, 16, true);
        let out = run_chaos(&cfg, &FaultProfile::default(), 256 * 1024, 2);
        assert_eq!(out.verdict, Verdict::Intact);
        assert_eq!(out.faults_injected, 0);
    }

    #[test]
    fn every_profile_survives_one_seed() {
        for (name, p) in profiles() {
            let cfg = chaos_cfg(7, 16, true);
            // Enough frames that even the bursty model (which clusters its
            // losses into rare bad-state visits) is virtually certain to
            // fire at least once.
            let out = run_chaos(&cfg, &p, 1 << 20, 4);
            assert_ne!(out.verdict, Verdict::Hung, "{name} hung");
            assert!(out.faults_injected > 0, "{name} injected nothing");
        }
    }
}
