//! Criterion benchmarks of whole-simulation wall time: how fast the engine
//! replays the paper's workloads. One group per regenerated artifact.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use openmx_core::{OpenMxConfig, PinningMode};
use openmx_mpi::{imb_job, is_job, run_job, summarize, ImbKernel, IsConfig};

/// Fig. 6/7 unit of work: one pingpong measurement at 1 MiB.
fn bench_pingpong(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_pingpong_1MiB");
    g.sample_size(20);
    for mode in [
        PinningMode::PinPerComm,
        PinningMode::OverlappedCached,
    ] {
        g.bench_function(mode.label(), |b| {
            b.iter(|| {
                let cfg = OpenMxConfig::with_mode(mode);
                let (scripts, mark) = imb_job(ImbKernel::PingPong, 2, 1 << 20, 1, 8);
                let (_cl, records) = run_job(&cfg, 2, 1, scripts);
                black_box(summarize(&records, mark, 8).avg_iter)
            })
        });
    }
    g.finish();
}

/// Table 2 unit of work: one IMB SendRecv sweep point.
fn bench_sendrecv(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_imb_sendrecv_512KiB");
    g.sample_size(20);
    g.bench_function("cached", |b| {
        b.iter(|| {
            let cfg = OpenMxConfig::with_mode(PinningMode::Cached);
            let (scripts, mark) = imb_job(ImbKernel::SendRecv, 2, 512 * 1024, 1, 8);
            let (_cl, records) = run_job(&cfg, 2, 1, scripts);
            black_box(summarize(&records, mark, 8).avg_iter)
        })
    });
    g.finish();
}

/// Table 2's NPB IS row: one scaled-down iteration pair.
fn bench_is(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_npb_is");
    g.sample_size(10);
    g.bench_function("is_2iter_4ranks", |b| {
        b.iter(|| {
            let cfg = OpenMxConfig::with_mode(PinningMode::OverlappedCached);
            let mut is = IsConfig::c4_scaled();
            is.keys_per_rank = 1 << 20;
            is.iterations = 2;
            let (scripts, mark) = is_job(&is);
            let (_cl, records) = run_job(&cfg, 2, 2, scripts);
            black_box(summarize(&records, mark, 2).avg_iter)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_pingpong, bench_sendrecv, bench_is);
criterion_main!(benches);
