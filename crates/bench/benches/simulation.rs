//! Benchmarks of whole-simulation wall time: how fast the engine replays
//! the paper's workloads. One benchmark per regenerated artifact.

use std::time::Duration;

use openmx_bench::microbench::{black_box, Bench};
use openmx_core::{OpenMxConfig, PinningMode};
use openmx_mpi::{imb_job, is_job, run_job, summarize, ImbKernel, IsConfig};

/// Fig. 6/7 unit of work: one pingpong measurement at 1 MiB.
fn bench_pingpong(b: &Bench) {
    for mode in [PinningMode::PinPerComm, PinningMode::OverlappedCached] {
        b.bench(&format!("sim_pingpong_1MiB/{}", mode.label()), || {
            let cfg = OpenMxConfig::with_mode(mode);
            let (scripts, mark) = imb_job(ImbKernel::PingPong, 2, 1 << 20, 1, 8);
            let (_cl, records) = run_job(&cfg, 2, 1, scripts);
            black_box(summarize(&records, mark, 8).avg_iter)
        });
    }
}

/// Table 2 unit of work: one IMB SendRecv sweep point.
fn bench_sendrecv(b: &Bench) {
    b.bench("sim_imb_sendrecv_512KiB/cached", || {
        let cfg = OpenMxConfig::with_mode(PinningMode::Cached);
        let (scripts, mark) = imb_job(ImbKernel::SendRecv, 2, 512 * 1024, 1, 8);
        let (_cl, records) = run_job(&cfg, 2, 1, scripts);
        black_box(summarize(&records, mark, 8).avg_iter)
    });
}

/// Table 2's NPB IS row: one scaled-down iteration pair.
fn bench_is(b: &Bench) {
    b.bench("sim_npb_is/is_2iter_4ranks", || {
        let cfg = OpenMxConfig::with_mode(PinningMode::OverlappedCached);
        let mut is = IsConfig::c4_scaled();
        is.keys_per_rank = 1 << 20;
        is.iterations = 2;
        let (scripts, mark) = is_job(&is);
        let (_cl, records) = run_job(&cfg, 2, 2, scripts);
        black_box(summarize(&records, mark, 2).avg_iter)
    });
}

fn main() {
    let b = Bench::new()
        .samples(5)
        .sample_window(Duration::from_millis(200));
    bench_pingpong(&b);
    bench_sendrecv(&b);
    bench_is(&b);
}
