//! Microbenchmarks of the hot data structures: the event queue, the region
//! cache, the page-fault/pin path and the core run queue. These measure
//! *wall-clock* cost of the simulator itself (the simulated costs are the
//! harness binaries' business).

use openmx_bench::microbench::{black_box, Bench};
use openmx_core::cache::{CacheOutcome, RegionCache};
use openmx_core::driver::Driver;
use openmx_core::region::Segment;
use openmx_core::RegionId;
use simcore::{CpuCore, EventQueue, Priority, SimDuration, SimTime, Work};
use simmem::{Memory, Prot, VirtAddr, PAGE_SIZE};

fn bench_event_queue(b: &Bench) {
    b.bench("event_queue schedule+pop 1k", || {
        let mut q = EventQueue::new();
        for i in 0..1000u64 {
            q.schedule(SimTime::from_nanos((i * 7919) % 100_000 + 1), i);
        }
        let mut sum = 0u64;
        while let Some((_, v)) = q.pop() {
            sum += v;
        }
        black_box(sum)
    });
    b.bench("event_queue cancel-heavy", || {
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0..1000u64)
            .map(|i| q.schedule(SimTime::from_nanos(i + 1), i))
            .collect();
        for id in ids.iter().step_by(2) {
            q.cancel(*id);
        }
        let mut n = 0;
        while q.pop().is_some() {
            n += 1;
        }
        black_box(n)
    });
}

fn bench_region_cache(b: &Bench) {
    let segments: Vec<Vec<Segment>> = (0..64u64)
        .map(|i| {
            vec![Segment {
                addr: VirtAddr(0x10_0000 + i * 0x10_0000),
                len: 1 << 20,
            }]
        })
        .collect();
    {
        let mut cache = RegionCache::new(64);
        for (i, s) in segments.iter().enumerate() {
            cache.insert(s.clone(), RegionId(i as u32));
        }
        let mut i = 0;
        b.bench("region_cache lookup hit", || {
            i = (i + 1) % segments.len();
            match cache.lookup(&segments[i]) {
                CacheOutcome::Hit(id) => black_box(id),
                CacheOutcome::Miss => panic!("must hit"),
            }
        });
    }
    b.bench("region_cache insert+evict", || {
        let mut cache = RegionCache::new(16);
        for (i, s) in segments.iter().enumerate() {
            black_box(cache.insert(s.clone(), RegionId(i as u32)));
        }
    });
}

fn bench_pin_path(b: &Bench) {
    {
        let mut mem = Memory::new(512, 0);
        let space = mem.create_space();
        let addr = mem.mmap(space, 256 * PAGE_SIZE, Prot::ReadWrite).unwrap();
        // Pre-fault so we measure the steady-state pin path.
        mem.write(space, addr, &vec![1u8; (256 * PAGE_SIZE) as usize])
            .unwrap();
        b.bench("pin+unpin 256 pages (1 MiB)", || {
            let (pfns, _) = mem.pin_user_pages(space, addr, 256 * PAGE_SIZE).unwrap();
            mem.unpin_pages(&pfns);
            black_box(pfns.len())
        });
    }
    {
        let mut mem = Memory::new(512, 0);
        let space = mem.create_space();
        mem.register_notifier(space).unwrap();
        let addr = mem.mmap(space, 64 * PAGE_SIZE, Prot::ReadWrite).unwrap();
        b.bench("driver declare+invalidate", || {
            let mut driver = Driver::new(None);
            let rid = driver
                .declare(
                    space,
                    &[Segment {
                        addr,
                        len: 64 * PAGE_SIZE,
                    }],
                )
                .unwrap();
            driver.region_mut(rid).pin_next_chunk(&mut mem, 64).unwrap();
            let evs = mem.munmap(space, addr, 64 * PAGE_SIZE).expect("munmap");
            for ev in &evs {
                driver.handle_invalidate(&mut mem, ev);
            }
            // Remap for the next iteration.
            let again = mem.mmap(space, 64 * PAGE_SIZE, Prot::ReadWrite).unwrap();
            assert_eq!(again, addr);
            driver.undeclare(&mut mem, rid);
            black_box(rid)
        });
    }
}

fn bench_cpu_core(b: &Bench) {
    b.bench("cpu_core submit/complete 1k mixed", || {
        let mut core = CpuCore::new();
        let mut now = SimTime::ZERO;
        let mut next = core
            .submit(
                now,
                Work {
                    duration: SimDuration::from_nanos(100),
                    priority: Priority::Task,
                    payload: 0u64,
                },
            )
            .unwrap();
        for i in 1..1000u64 {
            let prio = if i % 3 == 0 {
                Priority::BottomHalf
            } else {
                Priority::Task
            };
            core.submit(
                now,
                Work {
                    duration: SimDuration::from_nanos(100),
                    priority: prio,
                    payload: i,
                },
            );
        }
        let mut sum = 0u64;
        loop {
            now = next.at;
            let (_, v, n) = core.on_complete(now);
            sum += v;
            match n {
                Some(c) => next = c,
                None => break,
            }
        }
        black_box(sum)
    });
}

fn main() {
    let b = Bench::new();
    bench_event_queue(&b);
    bench_region_cache(&b);
    bench_pin_path(&b);
    bench_cpu_core(&b);
}
