//! Delta-debugging schedule shrinker.
//!
//! Given a failing schedule, [`shrink`] searches for a smaller one that
//! still fails: classic ddmin chunk removal over the op list, then
//! structural reduction (fewer nodes / processes — op indices are taken
//! modulo the shape, so every op stays valid), then per-op simplification
//! (smaller transfers, shorter advances). Every candidate is judged by
//! actually re-running it, so the result is guaranteed to reproduce *some*
//! violation — not necessarily the identical one, which is standard for
//! delta debugging and fine for a repro.

use crate::exec::{run_schedule_catching, Mutation};
use crate::schedule::{Op, Schedule};

/// Shrink a failing schedule. Returns the smallest failing schedule found
/// and how many candidate runs were spent. `max_runs` bounds the total
/// work; the input is returned unchanged if it does not fail at all.
pub fn shrink(s: &Schedule, mutation: Option<Mutation>, max_runs: usize) -> (Schedule, usize) {
    let mut runs = 0usize;
    let fails = |cand: &Schedule, runs: &mut usize| -> bool {
        *runs += 1;
        !run_schedule_catching(cand, mutation).violations.is_empty()
    };
    if !fails(s, &mut runs) {
        return (s.clone(), runs);
    }
    let mut best = s.clone();

    // Phase 1: ddmin chunk removal over the op list.
    let mut n = 2usize;
    while best.ops.len() >= 2 && runs < max_runs {
        let chunk = best.ops.len().div_ceil(n);
        let mut reduced = false;
        let mut start = 0usize;
        while start < best.ops.len() && runs < max_runs {
            let end = (start + chunk).min(best.ops.len());
            let mut cand = best.clone();
            cand.ops.drain(start..end);
            if fails(&cand, &mut runs) {
                best = cand;
                reduced = true;
                // Same start: the next chunk slid into this position.
            } else {
                start = end;
            }
        }
        if reduced {
            n = n.saturating_sub(1).max(2);
        } else if chunk <= 1 {
            break;
        } else {
            n = (n * 2).min(best.ops.len().max(2));
        }
    }
    // Try the empty schedule outright (mutation-only failures).
    if !best.ops.is_empty() && runs < max_runs {
        let mut cand = best.clone();
        cand.ops.clear();
        if fails(&cand, &mut runs) {
            best = cand;
        }
    }

    // Phase 2: structural reduction — smaller cluster shapes.
    for (nodes, ppn) in [(2u8, 1u8), (2, 2), (3, 1)] {
        if runs >= max_runs {
            break;
        }
        let smaller =
            (nodes as usize * ppn as usize) < (best.nodes as usize * best.procs_per_node as usize);
        if !smaller {
            continue;
        }
        let mut cand = best.clone();
        cand.nodes = nodes;
        cand.procs_per_node = ppn;
        if fails(&cand, &mut runs) {
            best = cand;
        }
    }

    // Phase 3: per-op simplification.
    for i in 0..best.ops.len() {
        if runs >= max_runs {
            break;
        }
        match best.ops[i] {
            Op::Xfer { len, .. } => {
                for smaller in [2048u32, 16_384, 65_536] {
                    if smaller >= len || runs >= max_runs {
                        continue;
                    }
                    let mut cand = best.clone();
                    if let Op::Xfer { len, .. } = &mut cand.ops[i] {
                        *len = smaller;
                    }
                    if fails(&cand, &mut runs) {
                        best = cand;
                        break;
                    }
                }
            }
            Op::Advance { ticks } if ticks > 1 => {
                let mut cand = best.clone();
                cand.ops[i] = Op::Advance { ticks: 1 };
                if fails(&cand, &mut runs) {
                    best = cand;
                }
            }
            _ => {}
        }
    }

    (best, runs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{generate, profile_by_name};

    #[test]
    fn non_failing_schedule_is_returned_unchanged() {
        let s = Schedule {
            seed: 11,
            profile: "churn".into(),
            nodes: 2,
            procs_per_node: 1,
            ops: vec![Op::Advance { ticks: 2 }],
        };
        let (out, runs) = shrink(&s, None, 50);
        assert_eq!(out, s);
        assert_eq!(runs, 1);
    }

    #[test]
    fn mutation_failure_shrinks_to_nearly_nothing() {
        let p = profile_by_name("churn").unwrap();
        let s = generate(21, &p);
        let m = Some(Mutation::LeakPin { after_op: 3 });
        assert!(!run_schedule_catching(&s, m).violations.is_empty());
        let (small, _runs) = shrink(&s, m, 200);
        assert!(
            small.ops.len() <= 10,
            "shrunk to {} ops: {:?}",
            small.ops.len(),
            small.ops
        );
        assert!(!run_schedule_catching(&small, m).violations.is_empty());
    }
}
