//! # simtest — deterministic simulation-test harness
//!
//! A FoundationDB-style randomized tester for the whole Open-MX stack:
//! seeded schedules drive multiple nodes, multiple address spaces and
//! concurrent eager/rendezvous transfers over a (possibly hostile)
//! fabric, while hostile VM churn — `munmap`/remap, fork + COW writes,
//! swap-out/in, page migration — lands on the very buffers the transfers
//! are using. After every tick an invariant oracle cross-checks the
//! layers against each other:
//!
//! * pin accounting (driver books vs. frame pool, no pins in dead spaces),
//! * driver/cache coherence (every cached descriptor declared, no leaks),
//! * completion conservation (every posted op completes exactly once),
//! * end-to-end data integrity (delivered bytes match a pure-Rust model
//!   of the sender's buffer at post time).
//!
//! Everything replays from a single `u64` seed. When a run fails, the
//! delta-debugging [`shrink`] minimizes the schedule and [`encode`] packs
//! it into a one-line repro string a `#[test]` replays verbatim:
//!
//! ```text
//! EXPL1;seed=0x2a;profile=churn;nodes=2;ppn=1;ops=X0.0>1.0:262144s,U0.0,A20
//! ```
//!
//! [`Mutation`]s deliberately break the stack (leak a pin, swallow a
//! completion) to prove the oracle catches what it claims to.

#![warn(missing_docs)]

pub mod exec;
pub mod explore;
pub mod schedule;
pub mod shrink;

pub use exec::{run_schedule, run_schedule_catching, Mutation, RunOutcome, Violation};
pub use explore::{explore, ExploreReport, FailureCase};
pub use schedule::{
    decode, encode, generate, profile_by_name, profiles, schedule_cfg, ChurnKind, Op, Profile,
    Schedule, BUFS_PER_PROC, BUF_LEN, BUF_PAGES, TICK,
};
pub use shrink::shrink;
