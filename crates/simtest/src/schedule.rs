//! The schedule grammar: what one simulation-test run *is*.
//!
//! A [`Schedule`] is a fully deterministic description of a run — cluster
//! shape, fault/op-mix profile, and an ordered list of [`Op`]s the
//! executor interleaves with the engine's event loop one tick at a time.
//! Schedules round-trip through a compact one-line repro string
//! ([`encode`]/[`decode`]) so a failing run can be replayed verbatim from
//! a test or a bug report.

use simcore::{SimDuration, SimRng};
use simmem::PAGE_SIZE;
use simnet::{FaultConfig, FaultProfile, GilbertElliott};

use openmx_core::{OpenMxConfig, PinQuota, PinningMode};

/// Virtual time between schedule steps: one op is applied, then the engine
/// runs for this long before the invariant oracle looks at the world.
pub const TICK: SimDuration = SimDuration::from_micros(100);

/// Harness buffers per process.
pub const BUFS_PER_PROC: usize = 3;

/// Pages per harness buffer.
pub const BUF_PAGES: u64 = 80;

/// Bytes per harness buffer (80 pages = 320 KiB, several pin chunks).
pub const BUF_LEN: u64 = BUF_PAGES * PAGE_SIZE;

/// A hostile address-space move aimed at one harness buffer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ChurnKind {
    /// `munmap` the buffer (free-then-invalidate under an in-flight pin).
    Unmap,
    /// `munmap` then immediately re-`mmap` at the same address (the
    /// malloc-reuse pattern the pinning cache is designed around).
    UnmapRemap,
    /// `fork` the space, then write one page (COW break + notifier).
    CowWrite,
    /// Swap out every resident unpinned page of the buffer.
    SwapOut,
    /// Fault the buffer's pages back in.
    SwapIn,
    /// Migrate every resident unpinned page to a different frame.
    Migrate,
    /// Overwrite the buffer with fresh bytes (plain store, COW breaks).
    Rewrite,
}

/// One step of a schedule.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Op {
    /// Post a verified transfer: `src` sends `len` bytes from its buffer
    /// `sbuf` to `dst`'s buffer `rbuf`. With `recv_first` the receive is
    /// posted before the send; otherwise it is posted a few ticks late so
    /// the message arrives *unexpected*. Process/buffer indices are taken
    /// modulo the cluster shape, so ops stay valid while a shrinker edits
    /// the shape underneath them.
    Xfer {
        /// Sending process index (mod process count).
        src: u8,
        /// Sender buffer index (mod [`BUFS_PER_PROC`]).
        sbuf: u8,
        /// Receiving process index (mod process count; bumped if == src).
        dst: u8,
        /// Receiver buffer index (mod [`BUFS_PER_PROC`]).
        rbuf: u8,
        /// Message length in bytes (clamped to [`BUF_LEN`]).
        len: u32,
        /// Post the receive before the send.
        recv_first: bool,
    },
    /// Mutate one process's address space under whatever is in flight.
    Churn {
        /// Target process index (mod process count).
        proc: u8,
        /// Target buffer index (mod [`BUFS_PER_PROC`]).
        buf: u8,
        /// Which hostile move.
        kind: ChurnKind,
    },
    /// Crash one process mid-whatever: endpoint fenced, kernel exit path
    /// reaps every pin and transfer it owned, address space destroyed.
    /// Applied to an already-crashed process, a no-op.
    Crash {
        /// Target process index (mod process count).
        proc: u8,
    },
    /// Restart a crashed process with a bumped incarnation (fresh address
    /// space, heap, endpoint, cache). Applied to a live process, a no-op.
    Restart {
        /// Target process index (mod process count).
        proc: u8,
    },
    /// Let the engine run for `ticks` extra ticks with no new work.
    Advance {
        /// Ticks to advance (≥ 1).
        ticks: u8,
    },
}

/// One complete, replayable run description.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Schedule {
    /// Seed for the engine *and* the harness payload/choice streams.
    pub seed: u64,
    /// Name of the [`Profile`] supplying faults, memory shape and op mix.
    pub profile: String,
    /// Nodes in the cluster.
    pub nodes: u8,
    /// Processes per node.
    pub procs_per_node: u8,
    /// The op sequence.
    pub ops: Vec<Op>,
}

impl Schedule {
    /// Total process count.
    pub fn nprocs(&self) -> usize {
        self.nodes.max(1) as usize * self.procs_per_node.max(1) as usize
    }
}

/// An op-mix + environment profile the explorer sweeps over.
#[derive(Clone, Debug)]
pub struct Profile {
    /// Name (stable; part of the repro string).
    pub name: &'static str,
    /// Fault profile applied to every directed inter-node link.
    pub faults: FaultProfile,
    /// Physical frames per node.
    pub frames_per_node: usize,
    /// Swap slots per node.
    pub swap_per_node: usize,
    /// Driver pinned-page ceiling (pressure eviction when `Some`).
    pub pinned_pages_limit: Option<usize>,
    /// Per-tenant pin quota (soft share + hard cap) when `Some`.
    pub pin_quota: Option<PinQuota>,
    /// Generation weights, indexed `[xfer, unmap, remap, cow, swapout,
    /// swapin, migrate, rewrite, crash, restart, advance]`.
    pub weights: [u32; 11],
    /// Transfer sizes the generator draws from.
    pub sizes: &'static [u32],
}

/// The explorer's profile axis: VM-churn-heavy on a clean fabric, a
/// transfer-heavy mix over a hostile fabric, and a rendezvous-heavy mix
/// under a tight pinned-page ceiling (pressure eviction always active).
pub fn profiles() -> Vec<Profile> {
    let clean = FaultProfile::default();
    let hostile = FaultProfile {
        loss: 0.01,
        burst: Some(GilbertElliott::bursty(0.03, 4.0)),
        reorder: 0.05,
        reorder_jitter: SimDuration::from_micros(100),
        duplicate: 0.05,
        ..FaultProfile::default()
    };
    vec![
        Profile {
            name: "churn",
            faults: clean,
            frames_per_node: 16 * 1024,
            swap_per_node: 8 * 1024,
            pinned_pages_limit: None,
            pin_quota: None,
            weights: [30, 8, 8, 6, 8, 6, 6, 8, 0, 0, 20],
            sizes: &[2048, 16384, 49152, 131072, 262144],
        },
        Profile {
            name: "lossy",
            faults: hostile,
            frames_per_node: 16 * 1024,
            swap_per_node: 8 * 1024,
            pinned_pages_limit: None,
            pin_quota: None,
            weights: [45, 4, 4, 2, 3, 2, 3, 4, 0, 0, 33],
            sizes: &[2048, 16384, 49152, 131072, 262144],
        },
        Profile {
            name: "pressure",
            faults: FaultProfile::default(),
            frames_per_node: 16 * 1024,
            swap_per_node: 8 * 1024,
            pinned_pages_limit: Some(96),
            pin_quota: None,
            weights: [40, 4, 4, 2, 10, 6, 4, 4, 0, 0, 26],
            sizes: &[49152, 131072, 262144, 327680],
        },
        // Glibc-style malloc-trim storm: heavy unmap/remap churn against
        // pinned buffers with transfers in flight — the workload the
        // deferred-unpin epoch exists for. No fabric faults and no pin
        // ceiling, so every failure is the notifier path's own.
        Profile {
            name: "trimstorm",
            faults: FaultProfile::default(),
            frames_per_node: 16 * 1024,
            swap_per_node: 8 * 1024,
            pinned_pages_limit: None,
            pin_quota: None,
            weights: [32, 12, 20, 4, 0, 0, 0, 8, 0, 0, 24],
            sizes: &[16384, 49152, 131072, 262144],
        },
        // Multi-tenant quota mix: no global pin ceiling, but every process
        // runs under a per-tenant quota (soft share 64 pages, hard cap 96).
        // One 80-page harness buffer pins fine; pinning a second one pushes
        // the tenant over its cap, so self-eviction and clean quota denials
        // interleave with rendezvous traffic and malloc-style remap churn.
        Profile {
            name: "tenantmix",
            faults: FaultProfile::default(),
            frames_per_node: 16 * 1024,
            swap_per_node: 8 * 1024,
            pinned_pages_limit: None,
            pin_quota: Some(PinQuota {
                soft_share: 64,
                hard_cap: 96,
            }),
            weights: [42, 6, 10, 2, 0, 0, 0, 6, 0, 0, 24],
            sizes: &[131072, 262144, 327680],
        },
        // Crash/restart storm: processes die under in-flight eager and
        // rendezvous traffic and come back with bumped incarnations while
        // a mildly hostile fabric keeps stale pre-crash frames arriving
        // late. Exercises incarnation fencing, the watchdog's
        // dead-peer short-circuits, and the kernel exit path's orphan-pin
        // reap; restarts re-run traffic over reused buffer addresses in
        // fresh address spaces.
        Profile {
            name: "crashstorm",
            faults: FaultProfile {
                loss: 0.005,
                reorder: 0.03,
                reorder_jitter: SimDuration::from_micros(100),
                duplicate: 0.03,
                ..FaultProfile::default()
            },
            frames_per_node: 16 * 1024,
            swap_per_node: 8 * 1024,
            pinned_pages_limit: None,
            pin_quota: None,
            weights: [40, 5, 5, 2, 0, 0, 0, 4, 6, 9, 29],
            sizes: &[2048, 16384, 131072, 262144],
        },
    ]
}

/// Look a profile up by name.
pub fn profile_by_name(name: &str) -> Option<Profile> {
    profiles().into_iter().find(|p| p.name == name)
}

/// Build the full stack configuration for a schedule: overlapped+cached
/// pinning, a deliberately tiny region cache (eviction paths stay hot), a
/// stretched deferred-unpin flush epoch (parked regions span several ops,
/// so schedules can race declares, evictions and pin-budget pressure
/// against the deferred queue — where that path's bugs live), a short
/// retransmission ceiling, and the profile's faults on every directed
/// inter-node link.
pub fn schedule_cfg(s: &Schedule, p: &Profile) -> OpenMxConfig {
    let mut cfg = OpenMxConfig::with_mode(PinningMode::OverlappedCached);
    cfg.seed = s.seed;
    cfg.max_retries = 6;
    cfg.adaptive_retransmit = true;
    cfg.retransmit_timeout = SimDuration::from_millis(20);
    cfg.cache_capacity = 4;
    cfg.notifier_epoch = TICK * 5;
    cfg.frames_per_node = p.frames_per_node;
    cfg.swap_per_node = p.swap_per_node;
    cfg.pinned_pages_limit = p.pinned_pages_limit;
    cfg.pin_quota = p.pin_quota;
    let mut faults = FaultConfig::clean();
    if !p.faults.is_clean() {
        for a in 0..s.nodes as u32 {
            for b in 0..s.nodes as u32 {
                if a != b {
                    faults.set_link(a, b, p.faults);
                }
            }
        }
    }
    cfg.net.faults = faults;
    cfg
}

/// Seeded random schedule: shape and op sequence drawn from the profile's
/// weights. The same `(seed, profile)` always yields the same schedule.
pub fn generate(seed: u64, profile: &Profile) -> Schedule {
    let mut rng = SimRng::new(seed).derive_stream("explore-gen");
    let nodes = rng.range_inclusive(2, 3) as u8;
    let ppn = rng.range_inclusive(1, 2) as u8;
    let nprocs = nodes as u64 * ppn as u64;
    let count = rng.range_inclusive(30, 60);
    let total: u64 = profile.weights.iter().map(|&w| w as u64).sum();
    let mut ops = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let mut draw = rng.below(total);
        let mut kind = profile.weights.len() - 1;
        for (k, &w) in profile.weights.iter().enumerate() {
            if draw < w as u64 {
                kind = k;
                break;
            }
            draw -= w as u64;
        }
        let churn = |rng: &mut SimRng, ck| Op::Churn {
            proc: rng.below(nprocs) as u8,
            buf: rng.below(BUFS_PER_PROC as u64) as u8,
            kind: ck,
        };
        ops.push(match kind {
            0 => {
                let src = rng.below(nprocs) as u8;
                let mut dst = rng.below(nprocs) as u8;
                if dst == src {
                    dst = (dst + 1) % nprocs as u8;
                }
                Op::Xfer {
                    src,
                    sbuf: rng.below(BUFS_PER_PROC as u64) as u8,
                    dst,
                    rbuf: rng.below(BUFS_PER_PROC as u64) as u8,
                    len: profile.sizes[rng.below(profile.sizes.len() as u64) as usize],
                    recv_first: rng.chance(0.6),
                }
            }
            1 => churn(&mut rng, ChurnKind::Unmap),
            2 => churn(&mut rng, ChurnKind::UnmapRemap),
            3 => churn(&mut rng, ChurnKind::CowWrite),
            4 => churn(&mut rng, ChurnKind::SwapOut),
            5 => churn(&mut rng, ChurnKind::SwapIn),
            6 => churn(&mut rng, ChurnKind::Migrate),
            7 => churn(&mut rng, ChurnKind::Rewrite),
            8 => Op::Crash {
                proc: rng.below(nprocs) as u8,
            },
            9 => Op::Restart {
                proc: rng.below(nprocs) as u8,
            },
            _ => Op::Advance {
                ticks: rng.range_inclusive(1, 5) as u8,
            },
        });
    }
    Schedule {
        seed,
        profile: profile.name.to_string(),
        nodes,
        procs_per_node: ppn,
        ops,
    }
}

// ---- repro-string codec ----------------------------------------------

const MAGIC: &str = "EXPL1";

fn encode_op(op: &Op, out: &mut String) {
    use std::fmt::Write;
    match op {
        Op::Xfer {
            src,
            sbuf,
            dst,
            rbuf,
            len,
            recv_first,
        } => {
            let tail = if *recv_first { 'r' } else { 's' };
            write!(out, "X{src}.{sbuf}>{dst}.{rbuf}:{len}{tail}").unwrap();
        }
        Op::Churn { proc, buf, kind } => {
            let c = match kind {
                ChurnKind::Unmap => 'U',
                ChurnKind::UnmapRemap => 'R',
                ChurnKind::CowWrite => 'F',
                ChurnKind::SwapOut => 'O',
                ChurnKind::SwapIn => 'I',
                ChurnKind::Migrate => 'M',
                ChurnKind::Rewrite => 'W',
            };
            write!(out, "{c}{proc}.{buf}").unwrap();
        }
        Op::Crash { proc } => write!(out, "C{proc}").unwrap(),
        Op::Restart { proc } => write!(out, "B{proc}").unwrap(),
        Op::Advance { ticks } => write!(out, "A{ticks}").unwrap(),
    }
}

/// Serialize a schedule to its one-line repro string.
pub fn encode(s: &Schedule) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    write!(
        out,
        "{MAGIC};seed=0x{:x};profile={};nodes={};ppn={};ops=",
        s.seed, s.profile, s.nodes, s.procs_per_node
    )
    .unwrap();
    for (i, op) in s.ops.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        encode_op(op, &mut out);
    }
    out
}

fn parse_pair(body: &str, what: &str) -> Result<(u8, u8), String> {
    let (a, b) = body
        .split_once('.')
        .ok_or_else(|| format!("{what}: expected `p.b`, got `{body}`"))?;
    let p = a.parse::<u8>().map_err(|e| format!("{what}: {e}"))?;
    let q = b.parse::<u8>().map_err(|e| format!("{what}: {e}"))?;
    Ok((p, q))
}

fn decode_op(tok: &str) -> Result<Op, String> {
    let (head, body) = tok.split_at(1);
    match head {
        "X" => {
            let (from, rest) = body
                .split_once('>')
                .ok_or_else(|| format!("xfer `{tok}`: missing `>`"))?;
            let (to, rest) = rest
                .split_once(':')
                .ok_or_else(|| format!("xfer `{tok}`: missing `:`"))?;
            let recv_first = match rest.chars().last() {
                Some('r') => true,
                Some('s') => false,
                _ => return Err(format!("xfer `{tok}`: expected trailing r|s")),
            };
            let len = rest[..rest.len() - 1]
                .parse::<u32>()
                .map_err(|e| format!("xfer `{tok}`: {e}"))?;
            let (src, sbuf) = parse_pair(from, "xfer src")?;
            let (dst, rbuf) = parse_pair(to, "xfer dst")?;
            Ok(Op::Xfer {
                src,
                sbuf,
                dst,
                rbuf,
                len,
                recv_first,
            })
        }
        "A" => Ok(Op::Advance {
            ticks: body.parse::<u8>().map_err(|e| format!("advance: {e}"))?,
        }),
        "C" => Ok(Op::Crash {
            proc: body.parse::<u8>().map_err(|e| format!("crash: {e}"))?,
        }),
        "B" => Ok(Op::Restart {
            proc: body.parse::<u8>().map_err(|e| format!("restart: {e}"))?,
        }),
        c => {
            let kind = match c {
                "U" => ChurnKind::Unmap,
                "R" => ChurnKind::UnmapRemap,
                "F" => ChurnKind::CowWrite,
                "O" => ChurnKind::SwapOut,
                "I" => ChurnKind::SwapIn,
                "M" => ChurnKind::Migrate,
                "W" => ChurnKind::Rewrite,
                _ => return Err(format!("unknown op `{tok}`")),
            };
            let (proc, buf) = parse_pair(body, "churn")?;
            Ok(Op::Churn { proc, buf, kind })
        }
    }
}

/// Parse a repro string back into a schedule. Validates the profile name.
pub fn decode(s: &str) -> Result<Schedule, String> {
    let mut seed = None;
    let mut profile = None;
    let mut nodes = None;
    let mut ppn = None;
    let mut ops = None;
    for (i, field) in s.trim().split(';').enumerate() {
        if i == 0 {
            if field != MAGIC {
                return Err(format!("bad magic `{field}` (want {MAGIC})"));
            }
            continue;
        }
        let (key, val) = field
            .split_once('=')
            .ok_or_else(|| format!("field `{field}`: missing `=`"))?;
        match key {
            "seed" => {
                let raw = val
                    .strip_prefix("0x")
                    .ok_or_else(|| format!("seed `{val}`: missing 0x"))?;
                seed = Some(u64::from_str_radix(raw, 16).map_err(|e| format!("seed: {e}"))?);
            }
            "profile" => {
                if profile_by_name(val).is_none() {
                    return Err(format!("unknown profile `{val}`"));
                }
                profile = Some(val.to_string());
            }
            "nodes" => nodes = Some(val.parse::<u8>().map_err(|e| format!("nodes: {e}"))?),
            "ppn" => ppn = Some(val.parse::<u8>().map_err(|e| format!("ppn: {e}"))?),
            "ops" => {
                let mut v = Vec::new();
                if !val.is_empty() {
                    for tok in val.split(',') {
                        v.push(decode_op(tok)?);
                    }
                }
                ops = Some(v);
            }
            other => return Err(format!("unknown field `{other}`")),
        }
    }
    Ok(Schedule {
        seed: seed.ok_or("missing seed")?,
        profile: profile.ok_or("missing profile")?,
        nodes: nodes.ok_or("missing nodes")?.clamp(1, 8),
        procs_per_node: ppn.ok_or("missing ppn")?.clamp(1, 4),
        ops: ops.ok_or("missing ops")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_round_trips() {
        let s = Schedule {
            seed: 0xdead_beef,
            profile: "churn".into(),
            nodes: 3,
            procs_per_node: 2,
            ops: vec![
                Op::Xfer {
                    src: 0,
                    sbuf: 1,
                    dst: 4,
                    rbuf: 2,
                    len: 262_144,
                    recv_first: true,
                },
                Op::Advance { ticks: 5 },
                Op::Churn {
                    proc: 3,
                    buf: 0,
                    kind: ChurnKind::UnmapRemap,
                },
                Op::Xfer {
                    src: 2,
                    sbuf: 0,
                    dst: 1,
                    rbuf: 0,
                    len: 2048,
                    recv_first: false,
                },
                Op::Churn {
                    proc: 1,
                    buf: 2,
                    kind: ChurnKind::SwapOut,
                },
            ],
        };
        let line = encode(&s);
        assert_eq!(decode(&line).expect("decode"), s);
        assert!(line.starts_with("EXPL1;seed=0xdeadbeef;profile=churn"));
    }

    #[test]
    fn every_churn_kind_round_trips() {
        for kind in [
            ChurnKind::Unmap,
            ChurnKind::UnmapRemap,
            ChurnKind::CowWrite,
            ChurnKind::SwapOut,
            ChurnKind::SwapIn,
            ChurnKind::Migrate,
            ChurnKind::Rewrite,
        ] {
            let s = Schedule {
                seed: 1,
                profile: "lossy".into(),
                nodes: 2,
                procs_per_node: 1,
                ops: vec![Op::Churn {
                    proc: 0,
                    buf: 1,
                    kind,
                }],
            };
            assert_eq!(decode(&encode(&s)).unwrap(), s);
        }
    }

    #[test]
    fn crash_and_restart_ops_round_trip() {
        let s = Schedule {
            seed: 7,
            profile: "crashstorm".into(),
            nodes: 2,
            procs_per_node: 2,
            ops: vec![
                Op::Xfer {
                    src: 0,
                    sbuf: 0,
                    dst: 2,
                    rbuf: 0,
                    len: 2048,
                    recv_first: false,
                },
                Op::Crash { proc: 0 },
                Op::Advance { ticks: 3 },
                Op::Restart { proc: 0 },
                Op::Crash { proc: 3 },
            ],
        };
        let line = encode(&s);
        assert!(line.contains("C0"), "{line}");
        assert!(line.contains("B0"), "{line}");
        assert_eq!(decode(&line).expect("decode"), s);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode("NOPE;seed=0x1").is_err());
        assert!(decode("EXPL1;seed=1;profile=churn;nodes=2;ppn=1;ops=").is_err());
        assert!(decode("EXPL1;seed=0x1;profile=wat;nodes=2;ppn=1;ops=").is_err());
        assert!(decode("EXPL1;seed=0x1;profile=churn;nodes=2;ppn=1;ops=Z0.0").is_err());
        assert!(decode("EXPL1;seed=0x1;profile=churn;nodes=2;ppn=1;ops=X0.0:5r").is_err());
        // Empty op list is fine.
        let s = decode("EXPL1;seed=0x1;profile=churn;nodes=2;ppn=1;ops=")
            .unwrap_or_else(|_| panic!("empty ops must parse"));
        assert!(s.ops.is_empty());
    }

    #[test]
    fn generation_is_deterministic_and_profile_sensitive() {
        for p in profiles() {
            let a = generate(99, &p);
            let b = generate(99, &p);
            assert_eq!(a, b, "{} not deterministic", p.name);
            assert!(a.ops.len() >= 30 && a.ops.len() <= 60);
            assert!((2..=3).contains(&a.nodes));
            let c = generate(100, &p);
            assert_ne!(a, c, "{} seed-insensitive", p.name);
        }
        let churn = generate(5, &profile_by_name("churn").unwrap());
        let lossy = generate(5, &profile_by_name("lossy").unwrap());
        assert_ne!(churn.ops, lossy.ops, "profiles share one op stream");
    }

    #[test]
    fn generated_schedules_round_trip() {
        for p in profiles() {
            for seed in 0..5u64 {
                let s = generate(seed, &p);
                assert_eq!(decode(&encode(&s)).unwrap(), s);
            }
        }
    }

    #[test]
    fn bad_decode_is_err_not_panic() {
        // Fuzzish corpus of malformed lines.
        for line in [
            "",
            ";;;",
            "EXPL1",
            "EXPL1;seed=0xzz;profile=churn;nodes=1;ppn=1;ops=",
            "EXPL1;seed=0x1;profile=churn;nodes=x;ppn=1;ops=",
            "EXPL1;seed=0x1;profile=churn;nodes=2;ppn=1;ops=X9.9>9.9:abcr",
            "EXPL1;seed=0x1;profile=churn;nodes=2;ppn=1;ops=A",
            "EXPL1;seed=0x1;profile=churn;nodes=2;ppn=1;ops=U5",
        ] {
            assert!(decode(line).is_err(), "accepted `{line}`");
        }
    }
}
