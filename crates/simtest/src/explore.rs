//! The seeded explorer: generate → run → (on failure) shrink → report.

use crate::exec::{run_schedule_catching, Violation};
use crate::schedule::{encode, generate, Profile, Schedule};
use crate::shrink::shrink;

/// One failing seed, fully packaged for a bug report.
#[derive(Clone, Debug)]
pub struct FailureCase {
    /// The failing seed.
    pub seed: u64,
    /// Profile it failed under.
    pub profile: String,
    /// Violations the original schedule produced.
    pub violations: Vec<Violation>,
    /// Minimized schedule (still failing).
    pub shrunk: Schedule,
    /// Violations the shrunk schedule produces.
    pub shrunk_violations: Vec<Violation>,
    /// Self-contained repro string for the shrunk schedule — feed it to
    /// [`crate::schedule::decode`] and re-run to replay the failure.
    pub repro: String,
    /// Candidate runs the shrinker spent.
    pub shrink_runs: usize,
    /// Flight-recorder post-mortem JSON (last correlated spans + metrics
    /// snapshot + repro) from the shrunk run, falling back to the
    /// original failing run.
    pub post_mortem: String,
}

/// Aggregate result of one explorer sweep.
#[derive(Clone, Debug, Default)]
pub struct ExploreReport {
    /// Schedules executed.
    pub runs: usize,
    /// Transfers posted across all runs.
    pub xfers: usize,
    /// Completions observed across all runs.
    pub completions: usize,
    /// Ops applied across all runs.
    pub ops_executed: usize,
    /// Every failing seed, shrunk and packaged.
    pub failures: Vec<FailureCase>,
}

/// Run `count` seeded schedules (seeds `start_seed..start_seed+count`)
/// under one profile. Each failure is shrunk within `shrink_budget`
/// candidate runs and packaged as a [`FailureCase`].
pub fn explore(
    profile: &Profile,
    start_seed: u64,
    count: usize,
    shrink_budget: usize,
) -> ExploreReport {
    let mut report = ExploreReport::default();
    for i in 0..count {
        let seed = start_seed.wrapping_add(i as u64);
        let s = generate(seed, profile);
        let out = run_schedule_catching(&s, None);
        report.runs += 1;
        report.xfers += out.xfers;
        report.completions += out.completions;
        report.ops_executed += out.ops_executed;
        if out.violations.is_empty() {
            continue;
        }
        let (shrunk, shrink_runs) = shrink(&s, None, shrink_budget);
        let shrunk_out = run_schedule_catching(&shrunk, None);
        report.failures.push(FailureCase {
            seed,
            profile: profile.name.to_string(),
            violations: out.violations,
            repro: encode(&shrunk),
            shrunk,
            shrunk_violations: shrunk_out.violations,
            post_mortem: shrunk_out
                .post_mortem
                .or(out.post_mortem)
                .unwrap_or_default(),
            shrink_runs,
        });
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::profiles;

    #[test]
    fn one_seed_per_profile_is_clean() {
        for p in profiles() {
            let r = explore(&p, 1000, 1, 10);
            assert_eq!(r.runs, 1);
            assert!(
                r.failures.is_empty(),
                "{}: {:?}",
                p.name,
                r.failures[0].violations
            );
            assert!(r.xfers > 0, "{}: schedule posted no transfers", p.name);
        }
    }
}
