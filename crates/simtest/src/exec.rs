//! The schedule executor and its invariant oracle.
//!
//! [`run_schedule`] builds a real [`Cluster`] from a [`Schedule`], then
//! alternates: apply one op (post a transfer, or mutate an address space
//! under whatever is in flight), run the engine for one tick, drain
//! application completions, and check every invariant. The run ends with
//! a quiescence phase (drain all events) and a final conservation check.
//!
//! The oracle's invariants:
//!
//! * **Pin accounting** — the driver's per-region pinned-page sum equals
//!   the frame pool's pin count at every tick; no pinned frame belongs to
//!   a region of a dead address space.
//! * **Cache coherence** — every descriptor in a user-space region cache
//!   names a declared region; no descriptor appears twice on a node; at
//!   clean quiescence the declared set *is* the union of the caches.
//! * **Completion conservation** — every posted operation completes
//!   exactly once (success or clean error) before the queue drains; a
//!   receive whose partner failed is excused, everything else that never
//!   completes is a hang.
//! * **Data integrity** — bytes delivered to an untainted receive match
//!   the harness's pure-Rust snapshot of the sender's buffer at post
//!   time, byte for byte. Content-preserving churn (swap, migration)
//!   deliberately does *not* taint, so it must be invisible to the data.
//!
//! [`Mutation`]s deliberately break the stack (leak a pin, swallow a
//! completion) to prove the oracle catches what it claims to catch.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;

use openmx_core::{AppEvent, Cluster, Ctx, ProcId, Process};
use simcore::{SimDuration, SimRng};
use simmem::{AsId, VirtAddr, Vpn, VpnRange, PAGE_SIZE};

use crate::schedule::{
    encode, profile_by_name, schedule_cfg, ChurnKind, Op, Schedule, BUFS_PER_PROC, BUF_LEN, TICK,
};

/// Spans kept in a flight-recorder post-mortem dump.
const POST_MORTEM_SPANS: usize = 32;

/// Tracer ring capacity for schedule runs: bounded so long schedules
/// cannot grow memory, large enough that the flight recorder's last-N
/// spans are fully correlated.
const TRACE_CAPACITY: usize = 4096;

/// Virtual time per quiescence chunk.
const QUIESCE_CHUNK: SimDuration = SimDuration::from_millis(5);
/// Quiescence budget in chunks (20 virtual seconds — far beyond the worst
/// retry-exhaustion tail under the 20 ms retransmission ceiling).
const QUIESCE_CHUNKS: usize = 4000;

/// An invariant violation the oracle detected.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Violation {
    /// Driver region accounting disagrees with the frame pool.
    PinAccounting {
        /// Node where the books diverged.
        node: usize,
        /// Pages the driver thinks are pinned (sum over regions).
        declared: u64,
        /// Pages the frame pool says are pinned.
        pinned: u64,
    },
    /// A region still holds pins although its address space is gone.
    DeadSpacePin {
        /// Node of the offending driver.
        node: usize,
        /// The offending region id.
        region: u32,
    },
    /// A user-space cache holds a descriptor the driver never declared
    /// (or already tore down).
    CacheIncoherent {
        /// Process whose cache is stale.
        proc: usize,
        /// The dangling descriptor.
        region: u32,
    },
    /// The same descriptor appears in two cache entries on one node.
    CacheDuplicate {
        /// Node where the duplicate lives.
        node: usize,
        /// The duplicated descriptor.
        region: u32,
    },
    /// At clean quiescence, declared regions and cached descriptors
    /// disagree — a declaration leaked past the cache (or vice versa).
    RegionLeak {
        /// Node with the imbalance.
        node: usize,
        /// Regions the driver still holds.
        declared: usize,
        /// Descriptors user-space caches still hold.
        cached: usize,
    },
    /// Protocol state survived a fully clean run.
    XferLeak {
        /// Entries left across the engine's transfer tables.
        count: usize,
    },
    /// A request completed twice.
    DoubleCompletion {
        /// The request.
        req: u64,
    },
    /// A completion arrived for a request the harness never posted.
    UnknownCompletion {
        /// The request.
        req: u64,
    },
    /// A receive completed with the wrong length.
    ShortRecv {
        /// The receive request.
        req: u64,
        /// Delivered length.
        got: u64,
        /// Posted (= sent) length.
        want: u64,
    },
    /// Delivered bytes diverge from the sender-side snapshot.
    DataMismatch {
        /// The receive request.
        req: u64,
        /// First differing byte offset.
        offset: usize,
    },
    /// The driver's notifier interval index answered a routing query
    /// differently from the naive full-table intersect scan.
    IndexDiverged {
        /// Node whose driver index diverged.
        node: usize,
        /// The address space queried.
        space: u32,
        /// Start vpn of the diverging query window.
        start_vpn: u64,
    },
    /// A page inside a region's protocol-visible (valid) prefix has a
    /// PTE that no longer maps the attached pinned frame. This is the
    /// differential oracle for the deferred-unpin path: the old eager
    /// path could never reach this state because it unpinned every
    /// invalidated page inside the notifier event itself, so any hit
    /// means the deferral exposed a stale page to the protocol.
    StaleVisible {
        /// Node whose driver exposed the stale page.
        node: usize,
        /// The offending region.
        region: u32,
        /// Region-relative page index inside the valid prefix.
        page: u64,
    },
    /// A tenant's attributed pinned pages exceeded its hard quota cap.
    QuotaExceeded {
        /// Node whose driver let the tenant through.
        node: usize,
        /// The over-cap process.
        proc: u32,
        /// Pages attributed to the tenant.
        pinned: u64,
        /// The profile's hard cap.
        cap: u64,
    },
    /// The per-tenant attributed pinned-page sum disagrees with the
    /// driver's global pinned count — attribution leaked or double-counted
    /// somewhere on the pin/unpin/evict path.
    TenantAccounting {
        /// Node where the books diverged.
        node: usize,
        /// Sum of per-tenant attributed pages.
        attributed: u64,
        /// The driver's global pinned count.
        pinned: u64,
    },
    /// A crashed process still owns driver state — its kernel exit path
    /// failed to reap a region (and whatever pins it held).
    OrphanPins {
        /// Node whose driver kept the dead tenant's state.
        node: usize,
        /// The crashed owner.
        proc: u32,
        /// The region that survived the crash.
        region: u32,
        /// Pages the orphaned region still holds pinned.
        pages: u64,
    },
    /// A completion was delivered for a request posted by a process
    /// incarnation that has since crashed.
    GhostCompletion {
        /// The request.
        req: u64,
    },
    /// Posted operations never completed although the engine went quiet
    /// (or never went quiet within the budget).
    Hang {
        /// Pairs with an unsettled side.
        outstanding: usize,
        /// Entries still in the engine's transfer tables.
        inflight: usize,
    },
    /// The stack panicked mid-run.
    Panic {
        /// The panic payload.
        message: String,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::PinAccounting {
                node,
                declared,
                pinned,
            } => write!(
                f,
                "pin accounting: node {node} driver says {declared} pages pinned, frame pool says {pinned}"
            ),
            Violation::DeadSpacePin { node, region } => write!(
                f,
                "dead-space pin: node {node} region {region} holds pins for a destroyed space"
            ),
            Violation::CacheIncoherent { proc, region } => write!(
                f,
                "cache incoherent: proc {proc} caches undeclared region {region}"
            ),
            Violation::CacheDuplicate { node, region } => {
                write!(f, "cache duplicate: node {node} region {region} cached twice")
            }
            Violation::RegionLeak {
                node,
                declared,
                cached,
            } => write!(
                f,
                "region leak: node {node} has {declared} declared vs {cached} cached at quiescence"
            ),
            Violation::XferLeak { count } => {
                write!(f, "xfer leak: {count} protocol table entries after a clean run")
            }
            Violation::DoubleCompletion { req } => {
                write!(f, "double completion: request {req}")
            }
            Violation::UnknownCompletion { req } => {
                write!(f, "unknown completion: request {req}")
            }
            Violation::ShortRecv { req, got, want } => {
                write!(f, "short recv: request {req} delivered {got} of {want} bytes")
            }
            Violation::DataMismatch { req, offset } => {
                write!(f, "data mismatch: request {req} first diverges at byte {offset}")
            }
            Violation::IndexDiverged {
                node,
                space,
                start_vpn,
            } => write!(
                f,
                "index diverged: node {node} space {space} window at vpn {start_vpn} routed differently than the naive scan"
            ),
            Violation::StaleVisible { node, region, page } => write!(
                f,
                "stale visible: node {node} region {region} page {page} is protocol-visible but its PTE left the pinned frame"
            ),
            Violation::QuotaExceeded {
                node,
                proc,
                pinned,
                cap,
            } => write!(
                f,
                "quota exceeded: node {node} proc {proc} holds {pinned} pinned pages over its hard cap of {cap}"
            ),
            Violation::TenantAccounting {
                node,
                attributed,
                pinned,
            } => write!(
                f,
                "tenant accounting: node {node} attributes {attributed} pages across tenants but {pinned} are pinned"
            ),
            Violation::OrphanPins {
                node,
                proc,
                region,
                pages,
            } => write!(
                f,
                "orphan pins: node {node} region {region} (owner proc {proc}, {pages} pages pinned) survived its owner's crash"
            ),
            Violation::GhostCompletion { req } => write!(
                f,
                "ghost completion: request {req} completed after its owner crashed"
            ),
            Violation::Hang {
                outstanding,
                inflight,
            } => write!(
                f,
                "hang: {outstanding} operations never completed ({inflight} xfer entries in flight)"
            ),
            Violation::Panic { message } => write!(f, "panic: {message}"),
        }
    }
}

/// A deliberate bug injected into an otherwise correct run, to prove the
/// oracle has teeth.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mutation {
    /// After op `after_op`, pin one page behind the driver's back and leak
    /// it — the frame pool count diverges from the region accounting.
    LeakPin {
        /// Op index to inject after (clamped to the op count).
        after_op: usize,
    },
    /// Drop the `nth` application completion on the floor — the operation
    /// appears to hang.
    SwallowCompletion {
        /// Zero-based completion index to swallow.
        nth: usize,
    },
    /// After op `after_op`, make one invalidated region forget its stale
    /// watermark — or, when nothing is stale yet, unmap a pinned page and
    /// swallow the notifier events. Both are the same bug seen from two
    /// ends: a lost MMU-notifier callback leaves moved pages
    /// protocol-visible.
    ForgetStale {
        /// Op index to inject after (clamped to the op count).
        after_op: usize,
    },
    /// Disable per-tenant quota enforcement in every driver while the
    /// profile still advertises a quota — tenants sail past their hard
    /// cap and the per-tick quota oracle must notice.
    SkipQuota,
    /// Crash ops mark the process dead but skip the kernel exit path's
    /// reap wholesale — every pin the dead tenant owned leaks and its
    /// transfer-table entries rot. The per-tick orphan-pin oracle must
    /// notice on the very next tick.
    LeakOnCrash,
}

/// What one executed schedule produced.
#[derive(Clone, Debug, Default)]
pub struct RunOutcome {
    /// Violations, in detection order (empty = run passed).
    pub violations: Vec<Violation>,
    /// Ops actually applied before the run ended.
    pub ops_executed: usize,
    /// Transfers posted.
    pub xfers: usize,
    /// Application completions observed.
    pub completions: usize,
    /// Flight-recorder dump (post-mortem JSON: last correlated spans +
    /// metrics snapshot + repro string), present iff the run failed.
    pub post_mortem: Option<String>,
    /// Final per-node driver counters — lets a pinned repro assert it
    /// actually exercised the path it was minimized for (e.g. a deferral
    /// really parked, a drain really cancelled) instead of passing
    /// vacuously. Empty when the run panicked before completion.
    pub driver_stats: Vec<openmx_core::obs::DriverStats>,
    /// Final merged engine counters (fence drops, dead-peer aborts, crash
    /// reaps, restarts …) — the crash-path equivalent of `driver_stats`
    /// for pinned-repro signatures. Empty when the run panicked.
    pub counters: simcore::Counters,
}

/// A process that does nothing but record its completions for the harness.
struct Collector {
    events: Rc<RefCell<Vec<(ProcId, AppEvent)>>>,
}

impl Process for Collector {
    fn start(&mut self, _ctx: &mut Ctx<'_>) {}
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: AppEvent) {
        self.events.borrow_mut().push((ctx.me(), event));
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Side {
    Send,
    Recv,
}

/// One posted transfer and everything the oracle knows about it.
struct Pair {
    send_req: u64,
    recv_req: Option<u64>,
    sender: usize,
    receiver: usize,
    sbuf: usize,
    rbuf: usize,
    raddr: VirtAddr,
    len: u64,
    /// Pure-Rust model of the sender's buffer content at post time.
    snapshot: Vec<u8>,
    /// Content-changing churn touched a buffer mid-flight: waive the data
    /// and length checks (completion conservation still applies).
    tainted: bool,
    send_done: bool,
    send_failed: bool,
    recv_done: bool,
    recv_failed: bool,
    /// The sender crashed with this side unsettled: no completion will
    /// ever come, and one arriving anyway is a ghost.
    send_excused: bool,
    /// Same for the receiver side (also set when the receive was never
    /// posted because its target was already dead).
    recv_excused: bool,
}

impl Pair {
    fn send_settled(&self) -> bool {
        self.send_done || self.send_failed || self.send_excused
    }
    /// A receive whose partner failed — or died with its send unsettled —
    /// may legitimately never complete (nothing will ever match it).
    fn recv_settled(&self) -> bool {
        self.recv_done
            || self.recv_failed
            || self.recv_excused
            || self.send_failed
            || self.send_excused
    }
    fn settled(&self) -> bool {
        self.send_settled() && self.recv_settled()
    }
    fn clean(&self) -> bool {
        self.send_done && self.recv_done && !self.send_failed && !self.recv_failed
    }
}

/// A receive the schedule posts late so the message arrives unexpected.
struct PendingRecv {
    pair: usize,
    ticks_left: u32,
    tag: u64,
    receiver: usize,
    raddr: VirtAddr,
    len: u64,
}

struct Harness {
    nprocs: usize,
    bufs: Vec<Vec<VirtAddr>>,
    mapped: Vec<Vec<bool>>,
    pairs: Vec<Pair>,
    by_req: BTreeMap<u64, (usize, Side)>,
    pending_recvs: Vec<PendingRecv>,
    children: BTreeMap<usize, AsId>,
    events: Rc<RefCell<Vec<(ProcId, AppEvent)>>>,
    /// Which processes are currently crashed (awaiting restart).
    crashed: Vec<bool>,
    /// Requests whose owning incarnation crashed before they settled: any
    /// completion delivered for one of these is a ghost.
    ghost_reqs: BTreeSet<u64>,
    rng: SimRng,
    /// The profile's per-tenant hard cap, sourced from the schedule (not
    /// the driver) so a mutation that blinds enforcement cannot also
    /// blind the oracle.
    quota_cap: Option<u64>,
    mutation: Option<Mutation>,
    completions: usize,
    violations: Vec<Violation>,
}

impl Harness {
    fn taint_touching(&mut self, proc: usize, buf: usize) {
        for p in self.pairs.iter_mut() {
            if p.recv_done {
                continue;
            }
            if (p.sender == proc && p.sbuf == buf) || (p.receiver == proc && p.rbuf == buf) {
                p.tainted = true;
            }
        }
    }

    fn ensure_mapped(&mut self, cl: &mut Cluster, p: usize, b: usize) {
        if self.mapped[p][b] {
            return;
        }
        cl.vm_mmap_at(ProcId(p as u32), self.bufs[p][b], BUF_LEN)
            .expect("remap harness buffer");
        self.mapped[p][b] = true;
    }

    fn post_recv(&mut self, cl: &mut Cluster, pair: usize, tag: u64) {
        let (receiver, raddr, len) = {
            let p = &self.pairs[pair];
            (p.receiver, p.raddr, p.len)
        };
        let req = cl.drive(ProcId(receiver as u32), |ctx| {
            ctx.irecv(tag, !0u64, raddr, len)
        });
        self.pairs[pair].recv_req = Some(req.0);
        self.by_req.insert(req.0, (pair, Side::Recv));
    }

    fn apply_op(&mut self, cl: &mut Cluster, op: &Op) {
        match op {
            Op::Advance { .. } => {}
            Op::Xfer {
                src,
                sbuf,
                dst,
                rbuf,
                len,
                recv_first,
            } => {
                if self.nprocs < 2 {
                    return;
                }
                let sp = *src as usize % self.nprocs;
                let mut dp = *dst as usize % self.nprocs;
                if dp == sp {
                    dp = (dp + 1) % self.nprocs;
                }
                let sb = *sbuf as usize % BUFS_PER_PROC;
                let rb = *rbuf as usize % BUFS_PER_PROC;
                let len = (*len as u64).clamp(1, BUF_LEN);
                if self.crashed[sp] {
                    return; // dead sender: nothing to drive
                }
                if self.crashed[dp] {
                    // Send into a dead peer: post only the send. It must
                    // settle with a clean failure through the dead-peer
                    // short-circuits — never hang, never SendDone.
                    self.ensure_mapped(cl, sp, sb);
                    self.taint_touching(sp, sb);
                    let mut data = vec![0u8; len as usize];
                    self.rng.fill_bytes(&mut data);
                    let saddr = self.bufs[sp][sb];
                    cl.drive(ProcId(sp as u32), |ctx| ctx.write_buf(saddr, &data));
                    let pair = self.pairs.len();
                    let tag = 0x5e5e_0000 + pair as u64;
                    let sreq = cl.drive(ProcId(sp as u32), |ctx| {
                        ctx.isend(ProcId(dp as u32), tag, saddr, len)
                    });
                    self.pairs.push(Pair {
                        send_req: sreq.0,
                        recv_req: None,
                        sender: sp,
                        receiver: dp,
                        sbuf: sb,
                        rbuf: rb,
                        raddr: self.bufs[dp][rb],
                        len,
                        snapshot: data,
                        tainted: true,
                        send_done: false,
                        send_failed: false,
                        recv_done: false,
                        recv_failed: false,
                        send_excused: false,
                        recv_excused: true,
                    });
                    self.by_req.insert(sreq.0, (pair, Side::Send));
                    return;
                }
                self.ensure_mapped(cl, sp, sb);
                self.ensure_mapped(cl, dp, rb);

                // A concurrent delivery into the source or target buffer
                // makes this pair's final bytes order-dependent.
                let birth_taint = self.pairs.iter().any(|p| {
                    !p.recv_done
                        && !p.recv_failed
                        && ((p.receiver == dp && p.rbuf == rb)
                            || (p.receiver == sp && p.rbuf == sb))
                });
                // Writing the pattern mutates the source under any pair
                // already reading it; the new delivery mutates the target.
                self.taint_touching(sp, sb);
                self.taint_touching(dp, rb);

                let mut data = vec![0u8; len as usize];
                self.rng.fill_bytes(&mut data);
                let saddr = self.bufs[sp][sb];
                cl.drive(ProcId(sp as u32), |ctx| ctx.write_buf(saddr, &data));

                let pair = self.pairs.len();
                let tag = 0x5e5e_0000 + pair as u64;
                let raddr = self.bufs[dp][rb];
                if *recv_first {
                    self.pairs.push(Pair {
                        send_req: 0,
                        recv_req: None,
                        sender: sp,
                        receiver: dp,
                        sbuf: sb,
                        rbuf: rb,
                        raddr,
                        len,
                        snapshot: data,
                        tainted: birth_taint,
                        send_done: false,
                        send_failed: false,
                        recv_done: false,
                        recv_failed: false,
                        send_excused: false,
                        recv_excused: false,
                    });
                    self.post_recv(cl, pair, tag);
                    let sreq = cl.drive(ProcId(sp as u32), |ctx| {
                        ctx.isend(ProcId(dp as u32), tag, saddr, len)
                    });
                    self.pairs[pair].send_req = sreq.0;
                    self.by_req.insert(sreq.0, (pair, Side::Send));
                } else {
                    let sreq = cl.drive(ProcId(sp as u32), |ctx| {
                        ctx.isend(ProcId(dp as u32), tag, saddr, len)
                    });
                    self.pairs.push(Pair {
                        send_req: sreq.0,
                        recv_req: None,
                        sender: sp,
                        receiver: dp,
                        sbuf: sb,
                        rbuf: rb,
                        raddr,
                        len,
                        snapshot: data,
                        tainted: birth_taint,
                        send_done: false,
                        send_failed: false,
                        recv_done: false,
                        recv_failed: false,
                        send_excused: false,
                        recv_excused: false,
                    });
                    self.by_req.insert(sreq.0, (pair, Side::Send));
                    // Post the receive a few ticks late: the message (or
                    // its rendezvous) arrives unexpected.
                    self.pending_recvs.push(PendingRecv {
                        pair,
                        ticks_left: 3,
                        tag,
                        receiver: dp,
                        raddr,
                        len,
                    });
                }
            }
            Op::Churn { proc, buf, kind } => {
                let p = *proc as usize % self.nprocs;
                if self.crashed[p] {
                    return; // no address space to churn
                }
                let b = *buf as usize % BUFS_PER_PROC;
                let pid = ProcId(p as u32);
                let addr = self.bufs[p][b];
                match kind {
                    ChurnKind::Unmap => {
                        if self.mapped[p][b] {
                            self.taint_touching(p, b);
                            cl.vm_munmap(pid, addr, BUF_LEN)
                                .expect("munmap mapped buffer");
                            self.mapped[p][b] = false;
                        }
                    }
                    ChurnKind::UnmapRemap => {
                        self.taint_touching(p, b);
                        if self.mapped[p][b] {
                            cl.vm_munmap(pid, addr, BUF_LEN)
                                .expect("munmap mapped buffer");
                        }
                        cl.vm_mmap_at(pid, addr, BUF_LEN)
                            .expect("remap harness buffer");
                        self.mapped[p][b] = true;
                    }
                    ChurnKind::CowWrite => {
                        if let Some(old) = self.children.remove(&p) {
                            let node = cl.node_of(pid);
                            let _ = cl.vm_destroy_space(node, old);
                        }
                        if let Ok(child) = cl.vm_fork(pid) {
                            self.children.insert(p, child);
                        }
                        if self.mapped[p][b] {
                            self.taint_touching(p, b);
                            let mut page = vec![0u8; PAGE_SIZE as usize];
                            self.rng.fill_bytes(&mut page);
                            cl.drive(pid, |ctx| ctx.write_buf(addr, &page));
                        }
                    }
                    ChurnKind::SwapOut => {
                        // Content-preserving: deliberately no taint — swap
                        // must be invisible to the data oracle.
                        let _ = cl.vm_swap_out(pid, addr, BUF_LEN);
                    }
                    ChurnKind::SwapIn => {
                        if self.mapped[p][b] {
                            let _ = cl.vm_swap_in(pid, addr, BUF_LEN);
                        }
                    }
                    ChurnKind::Migrate => {
                        // Content-preserving, like SwapOut.
                        let _ = cl.vm_migrate(pid, addr, BUF_LEN);
                    }
                    ChurnKind::Rewrite => {
                        if self.mapped[p][b] {
                            self.taint_touching(p, b);
                            let mut data = vec![0u8; BUF_LEN as usize];
                            self.rng.fill_bytes(&mut data);
                            cl.drive(pid, |ctx| ctx.write_buf(addr, &data));
                        }
                    }
                }
            }
            Op::Crash { proc } => {
                let p = *proc as usize % self.nprocs;
                if self.crashed[p] {
                    return;
                }
                // Excuse both sides owned by the dying incarnation:
                // nothing will ever complete them, and any completion
                // that arrives anyway is a ghost. Taint waives the data
                // checks for surviving partners; a live partner must
                // still settle on its own (watchdog or reap failure).
                for pr in self.pairs.iter_mut() {
                    if pr.sender == p {
                        if !(pr.send_done || pr.send_failed) {
                            pr.send_excused = true;
                            self.ghost_reqs.insert(pr.send_req);
                        }
                        if !(pr.recv_done || pr.recv_failed) {
                            // Even an acked send's bytes die with the
                            // sender (the crash purges unexpected data);
                            // a tag-only posted receive has no protocol
                            // state the engine could fail.
                            pr.recv_excused = true;
                        }
                        pr.tainted = true;
                    }
                    if pr.receiver == p && !(pr.recv_done || pr.recv_failed) {
                        pr.recv_excused = true;
                        pr.tainted = true;
                        if let Some(r) = pr.recv_req {
                            self.ghost_reqs.insert(r);
                        }
                    }
                }
                // Unposted receives die with the process.
                self.pending_recvs.retain(|pr| pr.receiver != p);
                for b in 0..BUFS_PER_PROC {
                    self.mapped[p][b] = false;
                }
                self.crashed[p] = true;
                if matches!(self.mutation, Some(Mutation::LeakOnCrash)) {
                    cl.crash_proc_leaky_for_test(ProcId(p as u32));
                } else {
                    cl.crash_proc(ProcId(p as u32));
                }
            }
            Op::Restart { proc } => {
                let p = *proc as usize % self.nprocs;
                if !self.crashed[p] {
                    return;
                }
                cl.restart_proc(
                    ProcId(p as u32),
                    Box::new(Collector {
                        events: self.events.clone(),
                    }),
                );
                self.crashed[p] = false;
                // Buffers keep their old virtual addresses; `ensure_mapped`
                // remaps them into the fresh space as ops touch them.
            }
        }
    }

    fn tick_pending_recvs(&mut self, cl: &mut Cluster) {
        let mut due = Vec::new();
        for pr in self.pending_recvs.iter_mut() {
            if pr.ticks_left == 0 {
                continue;
            }
            pr.ticks_left -= 1;
            if pr.ticks_left == 0 {
                due.push((pr.pair, pr.tag, pr.receiver, pr.raddr, pr.len));
            }
        }
        self.pending_recvs.retain(|pr| pr.ticks_left > 0);
        for (pair, tag, _receiver, _raddr, _len) in due {
            self.post_recv(cl, pair, tag);
        }
    }

    fn flush_pending_recvs(&mut self, cl: &mut Cluster) {
        let due: Vec<(usize, u64)> = self
            .pending_recvs
            .iter()
            .map(|pr| (pr.pair, pr.tag))
            .collect();
        self.pending_recvs.clear();
        for (pair, tag) in due {
            self.post_recv(cl, pair, tag);
        }
    }

    fn drain(&mut self, cl: &mut Cluster) {
        let drained: Vec<(ProcId, AppEvent)> = self.events.borrow_mut().drain(..).collect();
        for (_proc, ev) in drained {
            let (req, is_fail, len) = match ev {
                AppEvent::SendDone(r) => (r.0, false, None),
                AppEvent::RecvDone(r, n) => (r.0, false, Some(n)),
                AppEvent::Failed(r, _) => (r.0, true, None),
                AppEvent::ComputeDone(_) => continue,
            };
            let idx = self.completions;
            self.completions += 1;
            if matches!(self.mutation, Some(Mutation::SwallowCompletion { nth }) if nth == idx) {
                continue;
            }
            if self.ghost_reqs.contains(&req) {
                self.violations.push(Violation::GhostCompletion { req });
                continue;
            }
            let Some(&(pi, side)) = self.by_req.get(&req) else {
                self.violations.push(Violation::UnknownCompletion { req });
                continue;
            };
            match (side, is_fail) {
                (Side::Send, false) => {
                    if self.pairs[pi].send_done || self.pairs[pi].send_failed {
                        self.violations.push(Violation::DoubleCompletion { req });
                    }
                    self.pairs[pi].send_done = true;
                }
                (Side::Send, true) => {
                    // A late watchdog failure after SendDone is a legal
                    // sequence (the notify tail went silent); a second
                    // Failed is not.
                    if self.pairs[pi].send_failed {
                        self.violations.push(Violation::DoubleCompletion { req });
                    }
                    self.pairs[pi].send_failed = true;
                }
                (Side::Recv, true) => {
                    if self.pairs[pi].recv_failed || self.pairs[pi].recv_done {
                        self.violations.push(Violation::DoubleCompletion { req });
                    }
                    self.pairs[pi].recv_failed = true;
                }
                (Side::Recv, false) => {
                    if self.pairs[pi].recv_done || self.pairs[pi].recv_failed {
                        self.violations.push(Violation::DoubleCompletion { req });
                        continue;
                    }
                    self.pairs[pi].recv_done = true;
                    let got = len.unwrap_or(0);
                    if self.pairs[pi].tainted {
                        continue;
                    }
                    let want = self.pairs[pi].len;
                    if got != want {
                        self.violations
                            .push(Violation::ShortRecv { req, got, want });
                        continue;
                    }
                    let (receiver, raddr) = (self.pairs[pi].receiver, self.pairs[pi].raddr);
                    let bytes = cl.read_proc(ProcId(receiver as u32), raddr, want);
                    if let Some(offset) = bytes
                        .iter()
                        .zip(&self.pairs[pi].snapshot)
                        .position(|(a, b)| a != b)
                    {
                        self.violations
                            .push(Violation::DataMismatch { req, offset });
                    }
                }
            }
        }
    }

    fn check_invariants(&mut self, cl: &Cluster) {
        for node in 0..cl.node_count() {
            let declared = cl.driver(node).pinned_pages_total();
            let pinned = cl.memory(node).frames().pinned_pages() as u64;
            if declared != pinned {
                self.violations.push(Violation::PinAccounting {
                    node,
                    declared,
                    pinned,
                });
            }
            // Tenant books: attribution must partition the global pinned
            // count, and (when the profile runs quotas) no tenant may sit
            // over its hard cap at any tick.
            let tenants = cl.driver(node).tenant_stats();
            let attributed: u64 = tenants.iter().map(|(_, t)| t.pinned_pages).sum();
            if attributed != declared {
                self.violations.push(Violation::TenantAccounting {
                    node,
                    attributed,
                    pinned: declared,
                });
            }
            if let Some(cap) = self.quota_cap {
                for (proc, t) in &tenants {
                    if t.pinned_pages > cap {
                        self.violations.push(Violation::QuotaExceeded {
                            node,
                            proc: proc.0,
                            pinned: t.pinned_pages,
                            cap,
                        });
                    }
                }
            }
            for (rid, r) in cl.driver(node).iter_regions() {
                // Crash fault domain: a dead tenant must leave nothing
                // behind — the kernel exit path reaps every region it
                // owned, pinned or not, before the tick ends.
                let owner = r.owner.0 as usize;
                if owner < self.nprocs && self.crashed[owner] {
                    self.violations.push(Violation::OrphanPins {
                        node,
                        proc: r.owner.0,
                        region: rid.0,
                        pages: r.pinned_pages(),
                    });
                    continue;
                }
                if r.pinned_pages() > 0 && !cl.memory(node).space_exists(r.space) {
                    self.violations.push(Violation::DeadSpacePin {
                        node,
                        region: rid.0,
                    });
                    continue;
                }
                if !cl.memory(node).space_exists(r.space) {
                    continue;
                }
                // Deferred-unpin differential check: every page the
                // region exposes to the protocol (the valid prefix —
                // stale pages past the watermark are excluded) must
                // still be mapped to the exact frame that was pinned.
                // The eager path trivially satisfies this by unpinning
                // inside the event; the deferral must too.
                for idx in 0..r.valid_pages() {
                    let vpn = r.layout.vpn_of_page(idx);
                    if cl.memory(node).resident_pfn(r.space, vpn)
                        != Some(r.pinned_pfns()[idx as usize])
                    {
                        self.violations.push(Violation::StaleVisible {
                            node,
                            region: rid.0,
                            page: idx,
                        });
                    }
                }
            }
            // Notifier-routing cross-check: for every declared segment
            // range (and a window widened one page past each boundary),
            // the interval index must agree with the naive intersect
            // scan — a false negative here is a region a real munmap
            // would have silently failed to unpin.
            let driver = cl.driver(node);
            for (_, r) in driver.iter_regions() {
                for seg in r.layout.segments() {
                    let exact = seg.page_range();
                    let probe =
                        VpnRange::new(Vpn(exact.start.0.saturating_sub(1)), Vpn(exact.end.0 + 1));
                    for q in [exact, probe] {
                        if driver.regions_intersecting(r.space, &q)
                            != driver.regions_intersecting_naive(r.space, &q)
                        {
                            self.violations.push(Violation::IndexDiverged {
                                node,
                                space: r.space.0,
                                start_vpn: q.start.0,
                            });
                        }
                    }
                }
            }
        }
        let mut per_node_seen: BTreeMap<usize, BTreeSet<u32>> = BTreeMap::new();
        for p in 0..self.nprocs {
            let proc = ProcId(p as u32);
            let node = cl.node_of(proc);
            for rid in cl.cached_region_ids(proc) {
                if !cl.driver(node).is_declared(rid) {
                    self.violations.push(Violation::CacheIncoherent {
                        proc: p,
                        region: rid.0,
                    });
                }
                if !per_node_seen.entry(node).or_default().insert(rid.0) {
                    self.violations.push(Violation::CacheDuplicate {
                        node,
                        region: rid.0,
                    });
                }
            }
        }
    }

    fn inject_leak_pin(&mut self, cl: &mut Cluster) {
        // Pin one page of some mapped harness buffer directly in the frame
        // pool, bypassing the driver's region accounting, and leak it.
        for p in 0..self.nprocs {
            for b in 0..BUFS_PER_PROC {
                if !self.mapped[p][b] {
                    continue;
                }
                let pid = ProcId(p as u32);
                let node = cl.node_of(pid);
                let space = cl.space_of(pid);
                let addr = self.bufs[p][b];
                if cl
                    .memory_mut(node)
                    .pin_user_pages(space, addr, PAGE_SIZE)
                    .is_ok()
                {
                    return;
                }
            }
        }
        // Everything unmapped: bring one buffer back and pin that.
        self.ensure_mapped(cl, 0, 0);
        let node = cl.node_of(ProcId(0));
        let space = cl.space_of(ProcId(0));
        let addr = self.bufs[0][0];
        cl.memory_mut(node)
            .pin_user_pages(space, addr, PAGE_SIZE)
            .expect("leak-pin target");
    }

    fn inject_forget_stale(&mut self, cl: &mut Cluster) {
        // Preferred: a region already parked with a stale suffix (the
        // deferred-unpin window) — clear the watermark so the moved
        // pages become protocol-visible again.
        for node in 0..cl.node_count() {
            let hit = cl
                .driver(node)
                .iter_regions()
                .find(|(_, r)| r.stale_pages() > 0)
                .map(|(rid, _)| rid);
            if let Some(rid) = hit {
                cl.driver_mut(node)
                    .region_mut(rid)
                    .forget_stale_watermark_for_test();
                return;
            }
        }
        // Nothing stale yet: lose a notifier callback instead. Unmap one
        // pinned page straight through the memory subsystem and drop the
        // events on the floor — the driver keeps exposing the old frame.
        for node in 0..cl.node_count() {
            let candidates: Vec<_> = cl
                .driver(node)
                .iter_regions()
                .filter(|(_, r)| r.valid_pages() > 0)
                .map(|(_, r)| (r.space, r.layout.vpn_of_page(0)))
                .collect();
            for (space, vpn) in candidates {
                if cl
                    .memory_mut(node)
                    .munmap(space, vpn.base(), PAGE_SIZE)
                    .is_ok()
                {
                    return;
                }
            }
        }
    }
}

/// Execute a schedule against the real stack, checking every invariant at
/// every tick. Deterministic: the outcome is a pure function of
/// `(schedule, mutation)`. Panics from the stack propagate — use
/// [`run_schedule_catching`] to turn them into [`Violation::Panic`].
pub fn run_schedule(s: &Schedule, mutation: Option<Mutation>) -> RunOutcome {
    let profile = profile_by_name(&s.profile).expect("unknown profile");
    let nodes = s.nodes.clamp(1, 8) as usize;
    let ppn = s.procs_per_node.clamp(1, 4) as usize;
    let nprocs = nodes * ppn;
    let cfg = schedule_cfg(s, &profile);
    let mut cl = Cluster::new(cfg, nodes);
    // Bounded tracing feeds the flight recorder on failure; the ring cap
    // keeps long schedules at a fixed memory footprint.
    cl.enable_trace_with_capacity(TRACE_CAPACITY);
    if matches!(mutation, Some(Mutation::SkipQuota)) {
        for n in 0..cl.node_count() {
            cl.driver_mut(n).disable_quota_enforcement_for_test();
        }
    }
    let events: Rc<RefCell<Vec<(ProcId, AppEvent)>>> = Rc::default();
    for p in 0..nprocs {
        cl.add_process(
            p / ppn,
            Box::new(Collector {
                events: events.clone(),
            }),
        );
    }
    cl.start();

    let mut h = Harness {
        nprocs,
        bufs: Vec::new(),
        mapped: vec![vec![true; BUFS_PER_PROC]; nprocs],
        pairs: Vec::new(),
        by_req: BTreeMap::new(),
        pending_recvs: Vec::new(),
        children: BTreeMap::new(),
        events,
        crashed: vec![false; nprocs],
        ghost_reqs: BTreeSet::new(),
        rng: SimRng::new(s.seed).derive_stream("harness"),
        quota_cap: profile.pin_quota.map(|q| q.hard_cap),
        mutation,
        completions: 0,
        violations: Vec::new(),
    };
    for p in 0..nprocs {
        let mut row = Vec::with_capacity(BUFS_PER_PROC);
        for _ in 0..BUFS_PER_PROC {
            row.push(cl.vm_mmap(ProcId(p as u32), BUF_LEN));
        }
        h.bufs.push(row);
    }

    let mut ops_executed = 0usize;
    'run: {
        for (i, op) in s.ops.iter().enumerate() {
            h.apply_op(&mut cl, op);
            ops_executed += 1;
            if matches!(mutation, Some(Mutation::LeakPin { after_op }) if after_op == i) {
                h.inject_leak_pin(&mut cl);
            }
            if matches!(mutation, Some(Mutation::ForgetStale { after_op }) if after_op == i) {
                h.inject_forget_stale(&mut cl);
            }
            let ticks = match op {
                Op::Advance { ticks } => (*ticks).max(1) as u32,
                _ => 1,
            };
            for _ in 0..ticks {
                h.tick_pending_recvs(&mut cl);
                let t = cl.now() + TICK;
                cl.step_until(t);
                h.drain(&mut cl);
                h.check_invariants(&cl);
                if !h.violations.is_empty() {
                    break 'run;
                }
            }
        }
        if matches!(mutation, Some(Mutation::LeakPin { after_op }) if after_op >= s.ops.len()) {
            h.inject_leak_pin(&mut cl);
        }
        if matches!(mutation, Some(Mutation::ForgetStale { after_op }) if after_op >= s.ops.len()) {
            h.inject_forget_stale(&mut cl);
        }
        // Quiescence: post any still-delayed receives, then drain the
        // event queue completely (timers included) in bounded chunks.
        h.flush_pending_recvs(&mut cl);
        let mut chunks = 0usize;
        while cl.next_event_time().is_some() && chunks < QUIESCE_CHUNKS {
            let t = cl.now() + QUIESCE_CHUNK;
            cl.step_until(t);
            h.drain(&mut cl);
            h.check_invariants(&cl);
            if !h.violations.is_empty() {
                break 'run;
            }
            chunks += 1;
        }
        if cl.next_event_time().is_some() {
            // The queue never went quiet: timers re-arming forever.
            h.violations.push(Violation::Hang {
                outstanding: h.pairs.iter().filter(|p| !p.settled()).count(),
                inflight: cl.inflight_xfers(),
            });
            break 'run;
        }
        // Tear down forked children, then final conservation checks.
        let children: Vec<(usize, AsId)> = std::mem::take(&mut h.children).into_iter().collect();
        for (p, child) in children {
            let node = cl.node_of(ProcId(p as u32));
            let _ = cl.vm_destroy_space(node, child);
        }
        let outstanding = h.pairs.iter().filter(|p| !p.settled()).count();
        if outstanding > 0 {
            h.violations.push(Violation::Hang {
                outstanding,
                inflight: cl.inflight_xfers(),
            });
            break 'run;
        }
        if h.pairs.iter().all(|p| p.clean()) {
            let inflight = cl.inflight_xfers();
            if inflight != 0 {
                h.violations.push(Violation::XferLeak { count: inflight });
            }
            for node in 0..cl.node_count() {
                let declared: BTreeSet<u32> = cl
                    .driver(node)
                    .iter_regions()
                    .map(|(rid, _)| rid.0)
                    .collect();
                let mut cached: BTreeSet<u32> = BTreeSet::new();
                for p in 0..nprocs {
                    let proc = ProcId(p as u32);
                    if cl.node_of(proc) == node {
                        cached.extend(cl.cached_region_ids(proc).iter().map(|r| r.0));
                    }
                }
                if declared != cached {
                    h.violations.push(Violation::RegionLeak {
                        node,
                        declared: declared.len(),
                        cached: cached.len(),
                    });
                }
            }
        }
        h.check_invariants(&cl);
    }

    // Flight recorder: package the failure (violations + last spans +
    // metrics + repro) into a post-mortem dump the caller can ship.
    let post_mortem = h.violations.first().map(|first| {
        openmx_core::obs::post_mortem_json(
            &format!("invariant violation: {first}"),
            Some(&encode(s)),
            cl.tracer(),
            cl.metrics(),
            POST_MORTEM_SPANS,
        )
    });
    let driver_stats = (0..cl.node_count()).map(|n| cl.driver(n).stats()).collect();
    RunOutcome {
        violations: h.violations,
        ops_executed,
        xfers: h.pairs.len(),
        completions: h.completions,
        post_mortem,
        driver_stats,
        counters: cl.counters(),
    }
}

/// [`run_schedule`], with panics from the stack converted into a
/// [`Violation::Panic`] outcome instead of unwinding into the caller.
pub fn run_schedule_catching(s: &Schedule, mutation: Option<Mutation>) -> RunOutcome {
    match catch_unwind(AssertUnwindSafe(|| run_schedule(s, mutation))) {
        Ok(out) => out,
        Err(payload) => {
            let message = payload
                .downcast_ref::<&'static str>()
                .map(|m| m.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".to_string());
            let post_mortem = openmx_core::obs::post_mortem_json(
                &format!("panic: {message}"),
                Some(&encode(s)),
                &openmx_core::Tracer::disabled(),
                &openmx_core::Metrics::new(),
                POST_MORTEM_SPANS,
            );
            RunOutcome {
                violations: vec![Violation::Panic { message }],
                post_mortem: Some(post_mortem),
                ..RunOutcome::default()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{generate, profiles};

    fn tiny() -> Schedule {
        Schedule {
            seed: 11,
            profile: "churn".into(),
            nodes: 2,
            procs_per_node: 1,
            ops: vec![
                Op::Xfer {
                    src: 0,
                    sbuf: 0,
                    dst: 1,
                    rbuf: 0,
                    len: 49_152,
                    recv_first: true,
                },
                Op::Advance { ticks: 5 },
            ],
        }
    }

    #[test]
    fn tiny_clean_schedule_passes() {
        let out = run_schedule(&tiny(), None);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert_eq!(out.xfers, 1);
        assert!(out.completions >= 2, "send+recv completions");
    }

    #[test]
    fn unexpected_path_and_churn_pass() {
        let s = Schedule {
            seed: 12,
            profile: "churn".into(),
            nodes: 2,
            procs_per_node: 2,
            ops: vec![
                Op::Xfer {
                    src: 0,
                    sbuf: 0,
                    dst: 2,
                    rbuf: 1,
                    len: 262_144,
                    recv_first: false,
                },
                Op::Churn {
                    proc: 0,
                    buf: 0,
                    kind: ChurnKind::SwapOut,
                },
                Op::Churn {
                    proc: 2,
                    buf: 1,
                    kind: ChurnKind::Migrate,
                },
                Op::Advance { ticks: 10 },
                Op::Churn {
                    proc: 0,
                    buf: 0,
                    kind: ChurnKind::Unmap,
                },
            ],
        };
        let out = run_schedule(&s, None);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
    }

    #[test]
    fn run_is_deterministic() {
        let p = &profiles()[0];
        let s = generate(3, p);
        let a = run_schedule_catching(&s, None);
        let b = run_schedule_catching(&s, None);
        assert_eq!(a.violations, b.violations);
        assert_eq!(a.completions, b.completions);
        assert_eq!(a.xfers, b.xfers);
    }

    #[test]
    fn leaked_pin_trips_pin_accounting() {
        let out = run_schedule(&tiny(), Some(Mutation::LeakPin { after_op: 0 }));
        assert!(
            out.violations
                .iter()
                .any(|v| matches!(v, Violation::PinAccounting { .. })),
            "{:?}",
            out.violations
        );
    }

    #[test]
    fn failing_run_ships_a_post_mortem_and_clean_run_does_not() {
        let clean = run_schedule(&tiny(), None);
        assert!(clean.post_mortem.is_none());

        let out = run_schedule(&tiny(), Some(Mutation::LeakPin { after_op: 0 }));
        assert!(!out.violations.is_empty());
        let pm = out.post_mortem.expect("failure must carry a post-mortem");
        assert!(pm.starts_with("{\"reason\":\"invariant violation:"));
        assert!(
            pm.contains("\"repro\":\""),
            "dump must embed the repro string"
        );
        assert!(
            pm.contains("\"spans\":["),
            "dump must carry correlated spans"
        );
        assert!(pm.contains("\"metrics\":{"), "dump must snapshot metrics");
    }

    #[test]
    fn forgotten_stale_watermark_trips_stale_visible() {
        // Pin a rendezvous transfer to completion, unmap the send buffer
        // (marking its pinned suffix stale), then inject right after the
        // unmap: whichever branch fires — watermark forgotten in the
        // deferred window, or a notifier callback lost outright — the
        // per-tick residency oracle must flag the exposed page.
        let s = Schedule {
            seed: 21,
            profile: "churn".into(),
            nodes: 2,
            procs_per_node: 1,
            ops: vec![
                Op::Xfer {
                    src: 0,
                    sbuf: 0,
                    dst: 1,
                    rbuf: 0,
                    len: 262_144,
                    recv_first: true,
                },
                Op::Advance { ticks: 10 },
                Op::Churn {
                    proc: 0,
                    buf: 0,
                    kind: ChurnKind::Unmap,
                },
            ],
        };
        let out = run_schedule(&s, Some(Mutation::ForgetStale { after_op: 2 }));
        assert!(
            out.violations
                .iter()
                .any(|v| matches!(v, Violation::StaleVisible { .. })),
            "{:?}",
            out.violations
        );
    }

    #[test]
    fn skipped_quota_enforcement_trips_quota_exceeded() {
        // Two back-to-back 80-page rendezvous sends from one tenant under
        // tenantmix's 96-page hard cap. Enforced, the second pin
        // self-evicts the first (idle, cached) region and stays legal;
        // with enforcement skipped both stay pinned and the per-tick
        // oracle must flag 160 > 96.
        let s = Schedule {
            seed: 31,
            profile: "tenantmix".into(),
            nodes: 2,
            procs_per_node: 1,
            ops: vec![
                Op::Xfer {
                    src: 0,
                    sbuf: 0,
                    dst: 1,
                    rbuf: 0,
                    len: 327_680,
                    recv_first: true,
                },
                Op::Advance { ticks: 20 },
                Op::Xfer {
                    src: 0,
                    sbuf: 1,
                    dst: 1,
                    rbuf: 1,
                    len: 327_680,
                    recv_first: true,
                },
                Op::Advance { ticks: 20 },
            ],
        };
        let clean = run_schedule(&s, None);
        assert!(clean.violations.is_empty(), "{:?}", clean.violations);
        let out = run_schedule(&s, Some(Mutation::SkipQuota));
        assert!(
            out.violations
                .iter()
                .any(|v| matches!(v, Violation::QuotaExceeded { .. })),
            "skipped quota not caught: {:?}",
            out.violations
        );
    }

    fn crash_cycle() -> Schedule {
        // Pin a rendezvous transfer to completion (the send region stays
        // pinned in the registration cache), crash the sender, then
        // restart it and run a fresh transfer through the new
        // incarnation.
        Schedule {
            seed: 41,
            profile: "crashstorm".into(),
            nodes: 2,
            procs_per_node: 1,
            ops: vec![
                Op::Xfer {
                    src: 0,
                    sbuf: 0,
                    dst: 1,
                    rbuf: 0,
                    len: 262_144,
                    recv_first: true,
                },
                Op::Advance { ticks: 30 },
                Op::Crash { proc: 0 },
                Op::Advance { ticks: 3 },
                Op::Restart { proc: 0 },
                Op::Xfer {
                    src: 0,
                    sbuf: 1,
                    dst: 1,
                    rbuf: 1,
                    len: 262_144,
                    recv_first: true,
                },
                Op::Advance { ticks: 10 },
            ],
        }
    }

    #[test]
    fn crash_restart_cycle_is_clean_and_reuses_the_proc() {
        let out = run_schedule(&crash_cycle(), None);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert_eq!(out.xfers, 2);
        assert!(out.completions >= 4, "both transfers must complete");
        assert_eq!(out.counters.get("proc_crashes"), 1);
        assert_eq!(out.counters.get("proc_restarts"), 1);
        assert!(
            out.counters.get("crash_reaped_pages") > 0,
            "the cached pinned region must be reaped at crash"
        );
    }

    #[test]
    fn leak_on_crash_trips_orphan_pins() {
        let out = run_schedule(&crash_cycle(), Some(Mutation::LeakOnCrash));
        assert!(
            out.violations
                .iter()
                .any(|v| matches!(v, Violation::OrphanPins { proc: 0, .. })),
            "leaky crash not caught: {:?}",
            out.violations
        );
    }

    #[test]
    fn crash_mid_transfer_fails_the_survivor_cleanly() {
        // Sender dies while the pull is in flight: the surviving receiver
        // must get a clean failure (no hang), and the run stays free of
        // orphan pins and ghost completions.
        let s = Schedule {
            seed: 43,
            profile: "crashstorm".into(),
            nodes: 2,
            procs_per_node: 1,
            ops: vec![
                Op::Xfer {
                    src: 0,
                    sbuf: 0,
                    dst: 1,
                    rbuf: 0,
                    len: 262_144,
                    recv_first: true,
                },
                Op::Crash { proc: 0 },
                Op::Advance { ticks: 40 },
            ],
        };
        let out = run_schedule(&s, None);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert!(
            out.counters.get("peer_dead_aborts") > 0 || out.counters.get("requests_failed") > 0,
            "survivor must observe a clean failure, got counters {:?}",
            out.counters.iter().collect::<Vec<_>>()
        );
    }

    #[test]
    fn swallowed_completion_trips_hang() {
        let out = run_schedule(&tiny(), Some(Mutation::SwallowCompletion { nth: 0 }));
        assert!(
            out.violations
                .iter()
                .any(|v| matches!(v, Violation::Hang { .. })),
            "{:?}",
            out.violations
        );
    }
}
