//! Ethernet frame arithmetic: wire sizes, overheads, fragmentation.
//!
//! Open-MX sends MXoE messages as Ethernet frames; large transfers are
//! fragmented into MTU-sized pull replies. This module captures the byte
//! math — payload vs. on-wire size — used by the timing model.

/// Ethernet header (14) + FCS (4) bytes.
pub const ETH_HEADER_FCS: u64 = 18;
/// Preamble (8) + inter-packet gap (12) bytes of line time per frame.
pub const ETH_PREAMBLE_IPG: u64 = 20;
/// MXoE-style message header carried inside the Ethernet payload.
pub const MXOE_HEADER: u64 = 32;
/// Standard Ethernet MTU.
pub const MTU_STANDARD: u64 = 1500;
/// Jumbo-frame MTU (the paper's Myri-10G setup uses 9000-byte frames).
pub const MTU_JUMBO: u64 = 9000;

/// Bytes of application payload that fit in one frame at `mtu`.
#[inline]
pub fn max_payload(mtu: u64) -> u64 {
    assert!(mtu > MXOE_HEADER, "mtu too small for the MXoE header");
    mtu - MXOE_HEADER
}

/// Total line time charged for a frame carrying `payload` bytes, in bytes:
/// payload + MXoE header + Ethernet header/FCS + preamble/IPG.
#[inline]
pub fn wire_bytes(payload: u64) -> u64 {
    // Minimum Ethernet payload is 46 bytes (frames are padded).
    let eth_payload = (payload + MXOE_HEADER).max(46);
    eth_payload + ETH_HEADER_FCS + ETH_PREAMBLE_IPG
}

/// Split a `len`-byte message into per-frame payload sizes at `mtu`.
/// All fragments except the last are full; a zero-length message still
/// produces one (empty) frame, as control messages occupy a frame.
pub fn fragment(len: u64, mtu: u64) -> impl Iterator<Item = u64> {
    let chunk = max_payload(mtu);
    let mut remaining = len;
    let mut first = true;
    std::iter::from_fn(move || {
        if remaining == 0 {
            if first {
                first = false;
                return Some(0);
            }
            return None;
        }
        first = false;
        let n = remaining.min(chunk);
        remaining -= n;
        Some(n)
    })
}

/// Number of frames a `len`-byte message needs at `mtu`.
pub fn frame_count(len: u64, mtu: u64) -> u64 {
    if len == 0 {
        1
    } else {
        len.div_ceil(max_payload(mtu))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_capacity() {
        assert_eq!(max_payload(MTU_JUMBO), 9000 - 32);
        assert_eq!(max_payload(MTU_STANDARD), 1500 - 32);
    }

    #[test]
    fn wire_bytes_includes_overheads() {
        assert_eq!(wire_bytes(1000), 1000 + 32 + 18 + 20);
        // Tiny payloads hit the 46-byte Ethernet minimum... 0+32=32 < 46.
        assert_eq!(wire_bytes(0), 46 + 18 + 20);
        assert_eq!(wire_bytes(14), 46 + 18 + 20);
        assert_eq!(wire_bytes(15), 47 + 18 + 20);
    }

    #[test]
    fn fragmentation_covers_message() {
        let sizes: Vec<u64> = fragment(20_000, MTU_JUMBO).collect();
        assert_eq!(sizes.iter().sum::<u64>(), 20_000);
        assert_eq!(sizes.len() as u64, frame_count(20_000, MTU_JUMBO));
        // All but the last are full.
        for &s in &sizes[..sizes.len() - 1] {
            assert_eq!(s, max_payload(MTU_JUMBO));
        }
    }

    #[test]
    fn zero_length_message_is_one_frame() {
        let sizes: Vec<u64> = fragment(0, MTU_JUMBO).collect();
        assert_eq!(sizes, vec![0]);
        assert_eq!(frame_count(0, MTU_JUMBO), 1);
    }

    #[test]
    fn exact_multiple_has_no_empty_tail() {
        let chunk = max_payload(MTU_JUMBO);
        let sizes: Vec<u64> = fragment(chunk * 3, MTU_JUMBO).collect();
        assert_eq!(sizes, vec![chunk, chunk, chunk]);
    }

    #[test]
    #[should_panic(expected = "mtu too small")]
    fn tiny_mtu_rejected() {
        max_payload(16);
    }
}
