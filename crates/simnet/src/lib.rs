//! # simnet — a frame-level Ethernet fabric and I/OAT copy engine
//!
//! The network substrate under the Open-MX reproduction:
//!
//! * [`frame`] — Ethernet/MXoE byte math (headers, MTU, fragmentation),
//! * [`Network`] — a switched full-duplex fabric with ingress/egress
//!   serialization, propagation latency, random loss and drop-tail
//!   egress queues,
//! * [`IoatEngine`] — the chipset DMA engine Open-MX offloads
//!   receive-side copies to.
//!
//! The model is deliberately *passive*: it computes delivery/completion
//! times, while the simulation engine (in `openmx-core`) owns the event
//! queue and all payload bytes. This keeps the substrate independently
//! testable and the engine free to interleave network, CPU and memory
//! events deterministically.

#![warn(missing_docs)]

pub mod frame;
pub mod ioat;
pub mod net;

pub use ioat::IoatEngine;
pub use net::{
    Delivery, DropReason, FaultConfig, FaultProfile, GilbertElliott, NetConfig, NetStats, Network,
    NodeId, TxOutcome,
};
