//! The switched-Ethernet timing model.
//!
//! Topology: every node has a full-duplex link to one output-queued switch
//! (the paper's testbed: two hosts on a Myri-10G Ethernet fabric). A frame
//! experiences:
//!
//! 1. **Ingress serialization** on the sender's link — the NIC transmits
//!    one frame at a time, so the sender's TX path is a busy-until resource;
//! 2. **Propagation + switch latency** — a fixed one-way delay;
//! 3. **Egress serialization** on the receiver's link — frames from many
//!    senders to one receiver contend here (this is what makes incast and
//!    collective patterns behave realistically);
//! 4. **Loss** — optional random loss, plus drop-tail when the egress
//!    queue's backlog exceeds the configured buffering.
//!
//! The model is *passive*: [`Network::transmit`] just computes the delivery
//! time (or a drop); the simulation engine owns the event queue and the
//! frame payloads.

use simcore::{Bandwidth, SimDuration, SimRng, SimTime};

use crate::frame::wire_bytes;

/// Identifies a host on the fabric.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

/// Fabric configuration.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Link rate (both directions of every link).
    pub bandwidth: Bandwidth,
    /// One-way propagation + switch forwarding delay.
    pub latency: SimDuration,
    /// MTU used for fragmentation decisions by upper layers.
    pub mtu: u64,
    /// Random per-frame loss probability (0 disables).
    pub loss_probability: f64,
    /// Test hook: deterministically drop the first N frames offered to
    /// the fabric (exercises each control-frame recovery path in turn).
    pub drop_first: u64,
    /// Maximum egress backlog (time worth of queued frames) before
    /// drop-tail kicks in.
    pub egress_buffering: SimDuration,
}

impl NetConfig {
    /// The paper's fabric: 10G Ethernet, jumbo frames, ~5 µs one-way
    /// (10–20 µs observed round-trip including host processing), deep
    /// enough buffering for pingpong, no random loss.
    pub fn myri_10g() -> Self {
        NetConfig {
            bandwidth: Bandwidth::from_gbit_per_sec(10.0),
            latency: SimDuration::from_micros(5),
            mtu: crate::frame::MTU_JUMBO,
            loss_probability: 0.0,
            drop_first: 0,
            egress_buffering: SimDuration::from_millis(2),
        }
    }

    /// A 1G fabric with standard frames (for ablations).
    pub fn gige() -> Self {
        NetConfig {
            bandwidth: Bandwidth::from_gbit_per_sec(1.0),
            latency: SimDuration::from_micros(10),
            mtu: crate::frame::MTU_STANDARD,
            loss_probability: 0.0,
            drop_first: 0,
            egress_buffering: SimDuration::from_millis(4),
        }
    }
}

/// Why a frame was dropped.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DropReason {
    /// Random loss (bit error, etc.).
    RandomLoss,
    /// Egress queue overflow (drop-tail).
    QueueOverflow,
}

/// Outcome of a transmit attempt.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TxOutcome {
    /// Frame will arrive at the destination NIC at this time.
    Delivered {
        /// Arrival instant at the destination NIC (interrupt time).
        at: SimTime,
    },
    /// Frame was lost.
    Dropped(DropReason),
}

/// Aggregate fabric statistics.
#[derive(Clone, Copy, Default, Debug)]
pub struct NetStats {
    /// Frames handed to the fabric.
    pub frames_sent: u64,
    /// Frames delivered.
    pub frames_delivered: u64,
    /// Frames lost at random.
    pub frames_lost: u64,
    /// Frames dropped by egress overflow.
    pub frames_overflowed: u64,
    /// Application payload bytes delivered.
    pub payload_bytes_delivered: u64,
}

/// The fabric.
pub struct Network {
    cfg: NetConfig,
    /// Per-node sender-side busy-until (NIC TX serialization).
    tx_free: Vec<SimTime>,
    /// Per-node receiver-side busy-until (switch egress serialization).
    egress_free: Vec<SimTime>,
    rng: SimRng,
    stats: NetStats,
}

impl Network {
    /// A fabric connecting `nodes` hosts.
    pub fn new(nodes: usize, cfg: NetConfig, rng: SimRng) -> Self {
        assert!(nodes >= 1);
        Network {
            cfg,
            tx_free: vec![SimTime::ZERO; nodes],
            egress_free: vec![SimTime::ZERO; nodes],
            rng,
            stats: NetStats::default(),
        }
    }

    /// The fabric configuration.
    pub fn config(&self) -> &NetConfig {
        &self.cfg
    }

    /// Number of hosts.
    pub fn nodes(&self) -> usize {
        self.tx_free.len()
    }

    /// Transmit one frame with `payload` application bytes from `src` to
    /// `dst` at time `now`. Computes the arrival time at the destination
    /// NIC, accounting for both serialization points, or reports a drop.
    ///
    /// # Panics
    /// Panics on out-of-range nodes, on `src == dst` (loopback never
    /// reaches the wire in Open-MX — the library short-circuits it), and
    /// on payloads exceeding the MTU.
    pub fn transmit(&mut self, now: SimTime, src: NodeId, dst: NodeId, payload: u64) -> TxOutcome {
        assert_ne!(src, dst, "loopback frames do not cross the fabric");
        assert!(
            payload <= crate::frame::max_payload(self.cfg.mtu),
            "payload {payload} exceeds MTU {}",
            self.cfg.mtu
        );
        let s = src.0 as usize;
        let d = dst.0 as usize;
        self.stats.frames_sent += 1;

        let wire = wire_bytes(payload);
        let ser = self.cfg.bandwidth.time_for_bytes(wire);

        // Ingress: wait for the NIC TX path, then serialize.
        let tx_start = now.max(self.tx_free[s]);
        let tx_done = tx_start + ser;
        self.tx_free[s] = tx_done;

        if self.stats.frames_sent <= self.cfg.drop_first {
            self.stats.frames_lost += 1;
            return TxOutcome::Dropped(DropReason::RandomLoss);
        }
        if self.cfg.loss_probability > 0.0 && self.rng.chance(self.cfg.loss_probability) {
            self.stats.frames_lost += 1;
            return TxOutcome::Dropped(DropReason::RandomLoss);
        }

        // At the switch egress port for `dst`.
        let at_switch = tx_done + self.cfg.latency;
        let backlog = self.egress_free[d].saturating_duration_since(at_switch);
        if backlog > self.cfg.egress_buffering {
            self.stats.frames_overflowed += 1;
            return TxOutcome::Dropped(DropReason::QueueOverflow);
        }
        let eg_start = at_switch.max(self.egress_free[d]);
        let eg_done = eg_start + ser;
        self.egress_free[d] = eg_done;

        self.stats.frames_delivered += 1;
        self.stats.payload_bytes_delivered += payload;
        TxOutcome::Delivered { at: eg_done }
    }

    /// Fabric statistics so far.
    pub fn stats(&self) -> NetStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{max_payload, MTU_JUMBO};

    fn net(nodes: usize) -> Network {
        Network::new(nodes, NetConfig::myri_10g(), SimRng::new(1))
    }

    fn deliver(out: TxOutcome) -> SimTime {
        match out {
            TxOutcome::Delivered { at } => at,
            TxOutcome::Dropped(r) => panic!("unexpected drop: {r:?}"),
        }
    }

    #[test]
    fn single_frame_latency_breakdown() {
        let mut n = net(2);
        let at = deliver(n.transmit(SimTime::ZERO, NodeId(0), NodeId(1), 1000));
        // wire = 1000+32+18+20 = 1070 B; at 1.25 GB/s -> 856 ns per hop:
        // ingress serialization + switch/propagation + egress serialization.
        let ser = n.config().bandwidth.time_for_bytes(wire_bytes(1000));
        let lat = n.config().latency;
        assert_eq!(at, SimTime::ZERO + ser + lat + ser);
    }

    #[test]
    fn sender_serializes_back_to_back_frames() {
        let mut n = net(2);
        let full = max_payload(MTU_JUMBO);
        let a1 = deliver(n.transmit(SimTime::ZERO, NodeId(0), NodeId(1), full));
        let a2 = deliver(n.transmit(SimTime::ZERO, NodeId(0), NodeId(1), full));
        let ser = n.config().bandwidth.time_for_bytes(wire_bytes(full));
        assert_eq!(a2.duration_since(a1), ser, "pipeline rate = line rate");
    }

    #[test]
    fn throughput_approaches_line_rate() {
        // 16 MiB of jumbo frames should move at ~10 Gbit/s minus overheads.
        let mut n = net(2);
        let full = max_payload(MTU_JUMBO);
        let total: u64 = 16 << 20;
        let frames = total / full;
        let mut last = SimTime::ZERO;
        for _ in 0..frames {
            last = deliver(n.transmit(SimTime::ZERO, NodeId(0), NodeId(1), full));
        }
        let bw = Bandwidth::measured(frames * full, last.duration_since(SimTime::ZERO));
        let mibps = bw.as_mib_per_sec();
        // Line rate is ~1192 MiB/s; with per-frame overheads we expect a
        // bit less but comfortably above 1100.
        assert!(mibps > 1100.0 && mibps < 1195.0, "got {mibps} MiB/s");
    }

    #[test]
    fn egress_contention_halves_per_sender_rate() {
        let mut n = net(3);
        let full = max_payload(MTU_JUMBO);
        // Two senders blast the same receiver; deliveries interleave on
        // the shared egress port.
        let mut last = SimTime::ZERO;
        for _ in 0..100 {
            last = deliver(n.transmit(SimTime::ZERO, NodeId(0), NodeId(2), full));
            last = last.max(deliver(n.transmit(
                SimTime::ZERO,
                NodeId(1),
                NodeId(2),
                full,
            )));
        }
        let bw = Bandwidth::measured(200 * full, last.duration_since(SimTime::ZERO));
        // Aggregate is capped at one egress line rate.
        assert!(bw.as_mib_per_sec() < 1195.0);
        // ...but both senders were able to inject (their tx paths are
        // independent), so the egress queue absorbed the burst.
        assert_eq!(n.stats().frames_delivered, 200);
    }

    #[test]
    fn egress_overflow_drops() {
        let mut cfg = NetConfig::myri_10g();
        cfg.egress_buffering = SimDuration::from_micros(20); // shallow
        let mut n = Network::new(3, cfg, SimRng::new(2));
        let full = max_payload(MTU_JUMBO);
        // One sender alone cannot overflow egress (ingress already paces it
        // at line rate); two senders into one port build real backlog.
        let mut drops = 0;
        for _ in 0..100 {
            for src in [NodeId(0), NodeId(1)] {
                if matches!(
                    n.transmit(SimTime::ZERO, src, NodeId(2), full),
                    TxOutcome::Dropped(DropReason::QueueOverflow)
                ) {
                    drops += 1;
                }
            }
        }
        assert!(drops > 0, "shallow egress queue must overflow");
        assert_eq!(n.stats().frames_overflowed, drops);
    }

    #[test]
    fn random_loss_respects_probability() {
        let mut cfg = NetConfig::myri_10g();
        cfg.loss_probability = 0.1;
        let mut n = Network::new(2, cfg, SimRng::new(3));
        let mut lost = 0;
        for i in 0..10_000u64 {
            // Spread transmissions out so queues never overflow.
            let t = SimTime::from_nanos(i * 100_000);
            if matches!(
                n.transmit(t, NodeId(0), NodeId(1), 100),
                TxOutcome::Dropped(DropReason::RandomLoss)
            ) {
                lost += 1;
            }
        }
        assert!((800..1200).contains(&lost), "lost = {lost}");
        assert_eq!(n.stats().frames_lost, lost);
    }

    #[test]
    fn drop_first_is_deterministic() {
        let mut cfg = NetConfig::myri_10g();
        cfg.drop_first = 3;
        let mut n = Network::new(2, cfg, SimRng::new(9));
        let mut outcomes = Vec::new();
        for i in 0..5u64 {
            let t = SimTime::from_nanos(i * 10_000);
            outcomes.push(matches!(
                n.transmit(t, NodeId(0), NodeId(1), 100),
                TxOutcome::Dropped(_)
            ));
        }
        assert_eq!(outcomes, vec![true, true, true, false, false]);
    }

    #[test]
    #[should_panic(expected = "loopback")]
    fn loopback_is_rejected() {
        let mut n = net(2);
        n.transmit(SimTime::ZERO, NodeId(0), NodeId(0), 10);
    }

    #[test]
    #[should_panic(expected = "exceeds MTU")]
    fn oversized_payload_is_rejected() {
        let mut n = net(2);
        n.transmit(SimTime::ZERO, NodeId(0), NodeId(1), MTU_JUMBO);
    }
}
