//! The switched-Ethernet timing model.
//!
//! Topology: every node has a full-duplex link to one output-queued switch
//! (the paper's testbed: two hosts on a Myri-10G Ethernet fabric). A frame
//! experiences:
//!
//! 1. **Ingress serialization** on the sender's link — the NIC transmits
//!    one frame at a time, so the sender's TX path is a busy-until resource;
//! 2. **Propagation + switch latency** — a fixed one-way delay;
//! 3. **Egress serialization** on the receiver's link — frames from many
//!    senders to one receiver contend here (this is what makes incast and
//!    collective patterns behave realistically);
//! 4. **Loss** — optional random loss, plus drop-tail when the egress
//!    queue's backlog exceeds the configured buffering;
//! 5. **Injected faults** — optional per-link (src→dst, asymmetric)
//!    misbehavior: bursty loss (two-state Gilbert–Elliott), bounded
//!    reordering jitter, frame duplication, and scripted link death.
//!
//! The model is *passive*: [`Network::transmit`] just computes the delivery
//! time(s) (or a drop); the simulation engine owns the event queue and the
//! frame payloads.

use std::collections::BTreeMap;

use simcore::{Bandwidth, SimDuration, SimRng, SimTime};

use crate::frame::wire_bytes;

/// Identifies a host on the fabric.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

/// Two-state Gilbert–Elliott burst-loss model: the link alternates between
/// a *good* and a *bad* state with per-frame transition probabilities, and
/// drops frames with a state-dependent probability. This produces the
/// clustered losses real fabrics show under congestion or interference,
/// which i.i.d. loss cannot (a burst can swallow a whole retransmission).
#[derive(Clone, Copy, Debug)]
pub struct GilbertElliott {
    /// Per-frame probability of leaving the good state.
    pub p_good_to_bad: f64,
    /// Per-frame probability of leaving the bad state.
    pub p_bad_to_good: f64,
    /// Loss probability while in the good state.
    pub loss_good: f64,
    /// Loss probability while in the bad state.
    pub loss_bad: f64,
}

impl GilbertElliott {
    /// A bursty-loss model with a target long-run loss rate and mean burst
    /// length (frames spent in the bad state per visit). The bad state
    /// drops everything; the good state drops nothing.
    ///
    /// # Panics
    /// Panics unless `0 < avg_loss < 1` and `mean_burst >= 1`.
    pub fn bursty(avg_loss: f64, mean_burst: f64) -> Self {
        assert!(
            avg_loss > 0.0 && avg_loss < 1.0,
            "avg_loss must be in (0, 1)"
        );
        assert!(mean_burst >= 1.0, "mean_burst must be >= 1 frame");
        let p_bad_to_good = 1.0 / mean_burst;
        // Stationary bad-state probability pi = p_gb / (p_gb + p_bg);
        // long-run loss = pi * loss_bad = avg_loss with loss_bad = 1.
        let p_good_to_bad = avg_loss * p_bad_to_good / (1.0 - avg_loss);
        GilbertElliott {
            p_good_to_bad,
            p_bad_to_good,
            loss_good: 0.0,
            loss_bad: 1.0,
        }
    }

    fn validate(&self) -> Result<(), String> {
        for (name, p) in [
            ("p_good_to_bad", self.p_good_to_bad),
            ("p_bad_to_good", self.p_bad_to_good),
            ("loss_good", self.loss_good),
            ("loss_bad", self.loss_bad),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("gilbert-elliott {name} = {p} not in [0, 1]"));
            }
        }
        Ok(())
    }
}

/// Fault profile of one directed link (or the whole fabric). All fields
/// default to "clean"; each misbehavior draws from the fabric's seeded RNG
/// so runs stay reproducible from `(config, seed)`.
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultProfile {
    /// Extra i.i.d. per-frame loss on this link (on top of the global
    /// [`NetConfig::loss_probability`]).
    pub loss: f64,
    /// Probability a delivered frame arrives twice (the copy trails one
    /// serialization time behind the original).
    pub duplicate: f64,
    /// Probability a delivered frame is delayed past its in-order slot.
    pub reorder: f64,
    /// Maximum extra delay of a reordered frame (uniform in
    /// `(0, reorder_jitter]`).
    pub reorder_jitter: SimDuration,
    /// Bursty loss model (applied before the i.i.d. extra loss).
    pub burst: Option<GilbertElliott>,
    /// Scripted link death: deliver the first N frames on this link, drop
    /// everything after (deterministic — exercises mid-transfer failures).
    pub drop_after: Option<u64>,
}

impl FaultProfile {
    /// True when the profile injects nothing.
    pub fn is_clean(&self) -> bool {
        self.loss == 0.0
            && self.duplicate == 0.0
            && self.reorder == 0.0
            && self.burst.is_none()
            && self.drop_after.is_none()
    }

    /// Check every knob is a sane probability/duration combination.
    pub fn validate(&self) -> Result<(), String> {
        for (name, p) in [
            ("loss", self.loss),
            ("duplicate", self.duplicate),
            ("reorder", self.reorder),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("fault profile {name} = {p} not in [0, 1]"));
            }
        }
        if self.reorder > 0.0 && self.reorder_jitter.is_zero() {
            return Err("reorder > 0 requires a nonzero reorder_jitter".to_string());
        }
        if let Some(ge) = &self.burst {
            ge.validate()?;
        }
        Ok(())
    }
}

/// Fault configuration of the whole fabric: a default profile plus
/// per-directed-link (src → dst) overrides. Links are asymmetric — a dying
/// reverse path (lost acks/notifies) is a different failure than a dying
/// forward path, and the protocol must survive both.
#[derive(Clone, Debug, Default)]
pub struct FaultConfig {
    /// Profile of every link without an override.
    pub default: FaultProfile,
    /// Per-link overrides, keyed by (src, dst) node index.
    pub links: Vec<((u32, u32), FaultProfile)>,
}

impl FaultConfig {
    /// No injected faults anywhere.
    pub fn clean() -> Self {
        FaultConfig::default()
    }

    /// Set the profile of one directed link (replacing a prior override).
    pub fn set_link(&mut self, src: u32, dst: u32, profile: FaultProfile) {
        self.links.retain(|(k, _)| *k != (src, dst));
        self.links.push(((src, dst), profile));
    }

    /// The profile governing `src → dst`.
    pub fn profile(&self, src: u32, dst: u32) -> &FaultProfile {
        self.links
            .iter()
            .find(|(k, _)| *k == (src, dst))
            .map(|(_, p)| p)
            .unwrap_or(&self.default)
    }

    /// True when no profile injects anything.
    pub fn is_clean(&self) -> bool {
        self.default.is_clean() && self.links.iter().all(|(_, p)| p.is_clean())
    }

    /// Validate the default and every override.
    pub fn validate(&self) -> Result<(), String> {
        self.default.validate()?;
        for ((s, d), p) in &self.links {
            p.validate().map_err(|e| format!("link {s}->{d}: {e}"))?;
        }
        Ok(())
    }
}

/// Fabric configuration.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Link rate (both directions of every link).
    pub bandwidth: Bandwidth,
    /// One-way propagation + switch forwarding delay.
    pub latency: SimDuration,
    /// MTU used for fragmentation decisions by upper layers.
    pub mtu: u64,
    /// Random per-frame loss probability (0 disables).
    pub loss_probability: f64,
    /// Test hook: deterministically drop the first N frames offered to
    /// the fabric (exercises each control-frame recovery path in turn).
    pub drop_first: u64,
    /// Maximum egress backlog (time worth of queued frames) before
    /// drop-tail kicks in.
    pub egress_buffering: SimDuration,
    /// Injected per-link misbehavior (clean by default).
    pub faults: FaultConfig,
}

impl NetConfig {
    /// The paper's fabric: 10G Ethernet, jumbo frames, ~5 µs one-way
    /// (10–20 µs observed round-trip including host processing), deep
    /// enough buffering for pingpong, no random loss.
    pub fn myri_10g() -> Self {
        NetConfig {
            bandwidth: Bandwidth::from_gbit_per_sec(10.0),
            latency: SimDuration::from_micros(5),
            mtu: crate::frame::MTU_JUMBO,
            loss_probability: 0.0,
            drop_first: 0,
            egress_buffering: SimDuration::from_millis(2),
            faults: FaultConfig::clean(),
        }
    }

    /// A 1G fabric with standard frames (for ablations).
    pub fn gige() -> Self {
        NetConfig {
            bandwidth: Bandwidth::from_gbit_per_sec(1.0),
            latency: SimDuration::from_micros(10),
            mtu: crate::frame::MTU_STANDARD,
            loss_probability: 0.0,
            drop_first: 0,
            egress_buffering: SimDuration::from_millis(4),
            faults: FaultConfig::clean(),
        }
    }

    /// Check every probability knob is sane.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.loss_probability) {
            return Err(format!(
                "loss_probability = {} not in [0, 1]",
                self.loss_probability
            ));
        }
        self.faults.validate()
    }
}

/// Why a frame was dropped.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DropReason {
    /// Random loss (bit error, etc.).
    RandomLoss,
    /// Egress queue overflow (drop-tail).
    QueueOverflow,
    /// Gilbert–Elliott bad-state loss (bursty).
    BurstLoss,
    /// Scripted link death ([`FaultProfile::drop_after`]).
    LinkDown,
}

/// How a delivered frame arrives.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Delivery {
    /// Arrival instant at the destination NIC (interrupt time).
    pub at: SimTime,
    /// Injected duplicate: a second arrival of the same frame.
    pub duplicate_at: Option<SimTime>,
    /// The frame was delayed past its in-order delivery slot.
    pub reordered: bool,
}

/// Outcome of a transmit attempt.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TxOutcome {
    /// Frame will arrive at the destination NIC (possibly twice).
    Delivered(Delivery),
    /// Frame was lost.
    Dropped(DropReason),
}

/// Aggregate fabric statistics.
#[derive(Clone, Copy, Default, Debug)]
pub struct NetStats {
    /// Frames handed to the fabric.
    pub frames_sent: u64,
    /// Frames delivered (injected duplicates not counted).
    pub frames_delivered: u64,
    /// Frames lost at random.
    pub frames_lost: u64,
    /// Frames dropped by egress overflow.
    pub frames_overflowed: u64,
    /// Frames dropped in a Gilbert–Elliott bad state.
    pub frames_burst_lost: u64,
    /// Frames dropped by scripted link death.
    pub frames_link_down: u64,
    /// Frames delivered twice by fault injection.
    pub frames_duplicated: u64,
    /// Frames delayed past their in-order slot by fault injection.
    pub frames_reordered: u64,
    /// Application payload bytes delivered (duplicates not counted).
    pub payload_bytes_delivered: u64,
}

/// Mutable per-directed-link fault state.
#[derive(Clone, Copy, Default, Debug)]
struct LinkState {
    /// Frames offered to this link so far (drives `drop_after`).
    sent: u64,
    /// Gilbert–Elliott chain is in the bad state.
    ge_bad: bool,
}

/// The fabric.
pub struct Network {
    cfg: NetConfig,
    /// Per-node sender-side busy-until (NIC TX serialization).
    tx_free: Vec<SimTime>,
    /// Per-node receiver-side busy-until (switch egress serialization).
    egress_free: Vec<SimTime>,
    /// Fault state of links governed by a non-clean profile.
    links: BTreeMap<(u32, u32), LinkState>,
    rng: SimRng,
    stats: NetStats,
}

impl Network {
    /// A fabric connecting `nodes` hosts.
    pub fn new(nodes: usize, cfg: NetConfig, rng: SimRng) -> Self {
        assert!(nodes >= 1);
        cfg.validate().expect("invalid NetConfig");
        Network {
            cfg,
            tx_free: vec![SimTime::ZERO; nodes],
            egress_free: vec![SimTime::ZERO; nodes],
            links: BTreeMap::new(),
            rng,
            stats: NetStats::default(),
        }
    }

    /// The fabric configuration.
    pub fn config(&self) -> &NetConfig {
        &self.cfg
    }

    /// Number of hosts.
    pub fn nodes(&self) -> usize {
        self.tx_free.len()
    }

    /// Transmit one frame with `payload` application bytes from `src` to
    /// `dst` at time `now`. Computes the arrival time at the destination
    /// NIC, accounting for both serialization points, or reports a drop.
    ///
    /// # Panics
    /// Panics on out-of-range nodes, on `src == dst` (loopback never
    /// reaches the wire in Open-MX — the library short-circuits it), and
    /// on payloads exceeding the MTU.
    pub fn transmit(&mut self, now: SimTime, src: NodeId, dst: NodeId, payload: u64) -> TxOutcome {
        assert_ne!(src, dst, "loopback frames do not cross the fabric");
        assert!(
            payload <= crate::frame::max_payload(self.cfg.mtu),
            "payload {payload} exceeds MTU {}",
            self.cfg.mtu
        );
        let s = src.0 as usize;
        let d = dst.0 as usize;
        self.stats.frames_sent += 1;

        let wire = wire_bytes(payload);
        let ser = self.cfg.bandwidth.time_for_bytes(wire);

        // Ingress: wait for the NIC TX path, then serialize.
        let tx_start = now.max(self.tx_free[s]);
        let tx_done = tx_start + ser;
        self.tx_free[s] = tx_done;

        if self.stats.frames_sent <= self.cfg.drop_first {
            self.stats.frames_lost += 1;
            return TxOutcome::Dropped(DropReason::RandomLoss);
        }
        if self.cfg.loss_probability > 0.0 && self.rng.chance(self.cfg.loss_probability) {
            self.stats.frames_lost += 1;
            return TxOutcome::Dropped(DropReason::RandomLoss);
        }

        // Per-link fault injection (loss decisions before queueing: a
        // corrupted frame still occupied the sender's TX path but never
        // lands in the egress queue).
        let profile = *self.cfg.faults.profile(src.0, dst.0);
        let mut dup = false;
        let mut delay = SimDuration::ZERO;
        if !profile.is_clean() {
            let link = self.links.entry((src.0, dst.0)).or_default();
            link.sent += 1;
            if let Some(limit) = profile.drop_after {
                if link.sent > limit {
                    self.stats.frames_link_down += 1;
                    return TxOutcome::Dropped(DropReason::LinkDown);
                }
            }
            if let Some(ge) = &profile.burst {
                let loss_p = if link.ge_bad {
                    ge.loss_bad
                } else {
                    ge.loss_good
                };
                let lost = loss_p > 0.0 && self.rng.chance(loss_p);
                let flip_p = if link.ge_bad {
                    ge.p_bad_to_good
                } else {
                    ge.p_good_to_bad
                };
                let flip = flip_p > 0.0 && self.rng.chance(flip_p);
                if flip {
                    let link = self.links.get_mut(&(src.0, dst.0)).expect("link state");
                    link.ge_bad = !link.ge_bad;
                }
                if lost {
                    self.stats.frames_burst_lost += 1;
                    return TxOutcome::Dropped(DropReason::BurstLoss);
                }
            }
            if profile.loss > 0.0 && self.rng.chance(profile.loss) {
                self.stats.frames_lost += 1;
                return TxOutcome::Dropped(DropReason::RandomLoss);
            }
            if profile.reorder > 0.0 && self.rng.chance(profile.reorder) {
                let span = profile.reorder_jitter.as_nanos();
                delay = SimDuration::from_nanos(1 + self.rng.below(span));
            }
            dup = profile.duplicate > 0.0 && self.rng.chance(profile.duplicate);
        }

        // At the switch egress port for `dst`.
        let at_switch = tx_done + self.cfg.latency;
        let backlog = self.egress_free[d].saturating_duration_since(at_switch);
        if backlog > self.cfg.egress_buffering {
            self.stats.frames_overflowed += 1;
            return TxOutcome::Dropped(DropReason::QueueOverflow);
        }
        let eg_start = at_switch.max(self.egress_free[d]);
        let eg_done = eg_start + ser;
        self.egress_free[d] = eg_done;

        self.stats.frames_delivered += 1;
        self.stats.payload_bytes_delivered += payload;
        // Reordering delays the frame past its in-order slot without
        // holding the egress port (as if it took a longer path); the
        // duplicate trails the original by one serialization time.
        let reordered = !delay.is_zero();
        if reordered {
            self.stats.frames_reordered += 1;
        }
        let at = eg_done + delay;
        let duplicate_at = if dup {
            self.stats.frames_duplicated += 1;
            Some(at + ser)
        } else {
            None
        };
        TxOutcome::Delivered(Delivery {
            at,
            duplicate_at,
            reordered,
        })
    }

    /// Fabric statistics so far.
    pub fn stats(&self) -> NetStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{max_payload, MTU_JUMBO};

    fn net(nodes: usize) -> Network {
        Network::new(nodes, NetConfig::myri_10g(), SimRng::new(1))
    }

    fn deliver(out: TxOutcome) -> SimTime {
        match out {
            TxOutcome::Delivered(d) => d.at,
            TxOutcome::Dropped(r) => panic!("unexpected drop: {r:?}"),
        }
    }

    #[test]
    fn single_frame_latency_breakdown() {
        let mut n = net(2);
        let at = deliver(n.transmit(SimTime::ZERO, NodeId(0), NodeId(1), 1000));
        // wire = 1000+32+18+20 = 1070 B; at 1.25 GB/s -> 856 ns per hop:
        // ingress serialization + switch/propagation + egress serialization.
        let ser = n.config().bandwidth.time_for_bytes(wire_bytes(1000));
        let lat = n.config().latency;
        assert_eq!(at, SimTime::ZERO + ser + lat + ser);
    }

    #[test]
    fn sender_serializes_back_to_back_frames() {
        let mut n = net(2);
        let full = max_payload(MTU_JUMBO);
        let a1 = deliver(n.transmit(SimTime::ZERO, NodeId(0), NodeId(1), full));
        let a2 = deliver(n.transmit(SimTime::ZERO, NodeId(0), NodeId(1), full));
        let ser = n.config().bandwidth.time_for_bytes(wire_bytes(full));
        assert_eq!(a2.duration_since(a1), ser, "pipeline rate = line rate");
    }

    #[test]
    fn throughput_approaches_line_rate() {
        // 16 MiB of jumbo frames should move at ~10 Gbit/s minus overheads.
        let mut n = net(2);
        let full = max_payload(MTU_JUMBO);
        let total: u64 = 16 << 20;
        let frames = total / full;
        let mut last = SimTime::ZERO;
        for _ in 0..frames {
            last = deliver(n.transmit(SimTime::ZERO, NodeId(0), NodeId(1), full));
        }
        let bw = Bandwidth::measured(frames * full, last.duration_since(SimTime::ZERO));
        let mibps = bw.as_mib_per_sec();
        // Line rate is ~1192 MiB/s; with per-frame overheads we expect a
        // bit less but comfortably above 1100.
        assert!(mibps > 1100.0 && mibps < 1195.0, "got {mibps} MiB/s");
    }

    #[test]
    fn egress_contention_halves_per_sender_rate() {
        let mut n = net(3);
        let full = max_payload(MTU_JUMBO);
        // Two senders blast the same receiver; deliveries interleave on
        // the shared egress port.
        let mut last = SimTime::ZERO;
        for _ in 0..100 {
            last = deliver(n.transmit(SimTime::ZERO, NodeId(0), NodeId(2), full));
            last = last.max(deliver(n.transmit(
                SimTime::ZERO,
                NodeId(1),
                NodeId(2),
                full,
            )));
        }
        let bw = Bandwidth::measured(200 * full, last.duration_since(SimTime::ZERO));
        // Aggregate is capped at one egress line rate.
        assert!(bw.as_mib_per_sec() < 1195.0);
        // ...but both senders were able to inject (their tx paths are
        // independent), so the egress queue absorbed the burst.
        assert_eq!(n.stats().frames_delivered, 200);
    }

    #[test]
    fn egress_overflow_drops() {
        let mut cfg = NetConfig::myri_10g();
        cfg.egress_buffering = SimDuration::from_micros(20); // shallow
        let mut n = Network::new(3, cfg, SimRng::new(2));
        let full = max_payload(MTU_JUMBO);
        // One sender alone cannot overflow egress (ingress already paces it
        // at line rate); two senders into one port build real backlog.
        let mut drops = 0;
        for _ in 0..100 {
            for src in [NodeId(0), NodeId(1)] {
                if matches!(
                    n.transmit(SimTime::ZERO, src, NodeId(2), full),
                    TxOutcome::Dropped(DropReason::QueueOverflow)
                ) {
                    drops += 1;
                }
            }
        }
        assert!(drops > 0, "shallow egress queue must overflow");
        assert_eq!(n.stats().frames_overflowed, drops);
    }

    #[test]
    fn random_loss_respects_probability() {
        let mut cfg = NetConfig::myri_10g();
        cfg.loss_probability = 0.1;
        let mut n = Network::new(2, cfg, SimRng::new(3));
        let mut lost = 0;
        for i in 0..10_000u64 {
            // Spread transmissions out so queues never overflow.
            let t = SimTime::from_nanos(i * 100_000);
            if matches!(
                n.transmit(t, NodeId(0), NodeId(1), 100),
                TxOutcome::Dropped(DropReason::RandomLoss)
            ) {
                lost += 1;
            }
        }
        assert!((800..1200).contains(&lost), "lost = {lost}");
        assert_eq!(n.stats().frames_lost, lost);
    }

    #[test]
    fn drop_first_is_deterministic() {
        let mut cfg = NetConfig::myri_10g();
        cfg.drop_first = 3;
        let mut n = Network::new(2, cfg, SimRng::new(9));
        let mut outcomes = Vec::new();
        for i in 0..5u64 {
            let t = SimTime::from_nanos(i * 10_000);
            outcomes.push(matches!(
                n.transmit(t, NodeId(0), NodeId(1), 100),
                TxOutcome::Dropped(_)
            ));
        }
        assert_eq!(outcomes, vec![true, true, true, false, false]);
    }

    #[test]
    fn gilbert_elliott_losses_cluster() {
        let mut cfg = NetConfig::myri_10g();
        cfg.faults.default.burst = Some(GilbertElliott::bursty(0.1, 8.0));
        let mut n = Network::new(2, cfg, SimRng::new(4));
        let mut lost = Vec::new();
        for i in 0..20_000u64 {
            let t = SimTime::from_nanos(i * 100_000);
            if matches!(
                n.transmit(t, NodeId(0), NodeId(1), 100),
                TxOutcome::Dropped(DropReason::BurstLoss)
            ) {
                lost.push(i);
            }
        }
        let total = lost.len() as u64;
        assert_eq!(n.stats().frames_burst_lost, total);
        // Long-run rate near the 10% target.
        assert!((1_400..2_600).contains(&total), "burst losses = {total}");
        // Burstiness: far more adjacent loss pairs than i.i.d. loss at the
        // same rate would produce (expectation ~ total * rate = ~200).
        let adjacent = lost.windows(2).filter(|w| w[1] == w[0] + 1).count();
        assert!(adjacent > 600, "adjacent loss pairs = {adjacent}");
    }

    #[test]
    fn duplication_respects_probability_and_trails_original() {
        let mut cfg = NetConfig::myri_10g();
        cfg.faults.default.duplicate = 0.25;
        let mut n = Network::new(2, cfg, SimRng::new(5));
        let ser = cfg_ser();
        let mut dups = 0;
        for i in 0..10_000u64 {
            let t = SimTime::from_nanos(i * 100_000);
            if let TxOutcome::Delivered(d) = n.transmit(t, NodeId(0), NodeId(1), 100) {
                if let Some(at2) = d.duplicate_at {
                    dups += 1;
                    assert_eq!(at2.duration_since(d.at), ser);
                }
            }
        }
        assert!((2_000..3_000).contains(&dups), "dups = {dups}");
        assert_eq!(n.stats().frames_duplicated, dups);
    }

    fn cfg_ser() -> SimDuration {
        NetConfig::myri_10g()
            .bandwidth
            .time_for_bytes(wire_bytes(100))
    }

    #[test]
    fn reordering_delays_within_jitter_bound() {
        let mut cfg = NetConfig::myri_10g();
        cfg.faults.default.reorder = 0.3;
        cfg.faults.default.reorder_jitter = SimDuration::from_micros(50);
        let mut n = Network::new(2, cfg, SimRng::new(6));
        let ser = cfg_ser();
        let lat = NetConfig::myri_10g().latency;
        let mut reordered = 0;
        for i in 0..5_000u64 {
            let t = SimTime::from_nanos(i * 100_000);
            let in_order = t + ser + lat + ser;
            if let TxOutcome::Delivered(d) = n.transmit(t, NodeId(0), NodeId(1), 100) {
                if d.reordered {
                    reordered += 1;
                    let extra = d.at.duration_since(in_order);
                    assert!(!extra.is_zero());
                    assert!(extra <= SimDuration::from_micros(50), "extra = {extra}");
                } else {
                    assert_eq!(d.at, in_order);
                }
            }
        }
        assert!(
            (1_200..1_800).contains(&reordered),
            "reordered = {reordered}"
        );
        assert_eq!(n.stats().frames_reordered, reordered);
    }

    #[test]
    fn per_link_profiles_are_asymmetric() {
        let mut cfg = NetConfig::myri_10g();
        cfg.faults.set_link(
            0,
            1,
            FaultProfile {
                loss: 1.0,
                ..FaultProfile::default()
            },
        );
        let mut n = Network::new(2, cfg, SimRng::new(7));
        for i in 0..50u64 {
            let t = SimTime::from_nanos(i * 100_000);
            assert!(matches!(
                n.transmit(t, NodeId(0), NodeId(1), 100),
                TxOutcome::Dropped(DropReason::RandomLoss)
            ));
            // The reverse direction is untouched.
            assert!(matches!(
                n.transmit(t, NodeId(1), NodeId(0), 100),
                TxOutcome::Delivered(_)
            ));
        }
    }

    #[test]
    fn drop_after_kills_link_deterministically() {
        let mut cfg = NetConfig::myri_10g();
        cfg.faults.set_link(
            0,
            1,
            FaultProfile {
                drop_after: Some(3),
                ..FaultProfile::default()
            },
        );
        let mut n = Network::new(2, cfg, SimRng::new(8));
        let mut outcomes = Vec::new();
        for i in 0..5u64 {
            let t = SimTime::from_nanos(i * 10_000);
            outcomes.push(matches!(
                n.transmit(t, NodeId(0), NodeId(1), 100),
                TxOutcome::Dropped(DropReason::LinkDown)
            ));
        }
        assert_eq!(outcomes, vec![false, false, false, true, true]);
        assert_eq!(n.stats().frames_link_down, 2);
    }

    #[test]
    fn fault_config_validation_catches_bad_knobs() {
        let mut cfg = NetConfig::myri_10g();
        cfg.faults.default.duplicate = 1.5;
        assert!(cfg.validate().is_err());
        let mut cfg = NetConfig::myri_10g();
        cfg.faults.default.reorder = 0.1; // jitter left at zero
        assert!(cfg.validate().is_err());
        let mut cfg = NetConfig::myri_10g();
        cfg.loss_probability = -0.1;
        assert!(cfg.validate().is_err());
        assert!(NetConfig::myri_10g().validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "loopback")]
    fn loopback_is_rejected() {
        let mut n = net(2);
        n.transmit(SimTime::ZERO, NodeId(0), NodeId(0), 10);
    }

    #[test]
    #[should_panic(expected = "exceeds MTU")]
    fn oversized_payload_is_rejected() {
        let mut n = net(2);
        n.transmit(SimTime::ZERO, NodeId(0), NodeId(1), MTU_JUMBO);
    }
}
