//! The I/OAT DMA copy engine.
//!
//! Intel I/O Acceleration Technology offloads receive-side memory copies
//! from the CPU to a chipset DMA engine. Open-MX uses it to copy incoming
//! packet data into the (pinned) application buffer without burning host
//! cycles (Fig. 6's "+ I/OAT" curves).
//!
//! Model: a single engine per node with a per-descriptor setup cost and a
//! copy bandwidth; descriptors execute in submission order (one channel).
//! [`IoatEngine::submit`] returns the completion time; the caller turns it
//! into an engine event. The CPU pays only the (small) submission cost —
//! that asymmetry is the whole point of the device.

use simcore::{Bandwidth, SimDuration, SimTime};

/// One node's I/OAT DMA engine.
pub struct IoatEngine {
    bandwidth: Bandwidth,
    setup: SimDuration,
    free_at: SimTime,
    copies: u64,
    bytes: u64,
}

impl IoatEngine {
    /// An engine with explicit copy bandwidth and per-descriptor setup time.
    pub fn new(bandwidth: Bandwidth, setup: SimDuration) -> Self {
        IoatEngine {
            bandwidth,
            setup,
            free_at: SimTime::ZERO,
            copies: 0,
            bytes: 0,
        }
    }

    /// The chipset of the paper's Xeon era: ~2 GB/s sustained copy rate,
    /// ~300 ns descriptor setup.
    pub fn default_chipset() -> Self {
        IoatEngine::new(
            Bandwidth::from_gb_per_sec(2.0),
            SimDuration::from_nanos(300),
        )
    }

    /// CPU-side cost of submitting a descriptor (what the bottom half pays
    /// instead of doing the copy itself).
    pub fn submit_cost(&self) -> SimDuration {
        self.setup
    }

    /// Queue a `bytes`-long copy at `now`; returns when the data will be
    /// in place. Descriptors are processed FIFO on one channel.
    pub fn submit(&mut self, now: SimTime, bytes: u64) -> SimTime {
        let start = now.max(self.free_at);
        let done = start + self.bandwidth.time_for_bytes(bytes);
        self.free_at = done;
        self.copies += 1;
        self.bytes += bytes;
        done
    }

    /// When the engine drains, given no further submissions.
    pub fn idle_at(&self) -> SimTime {
        self.free_at
    }

    /// `(descriptors, bytes)` processed so far.
    pub fn totals(&self) -> (u64, u64) {
        (self.copies, self.bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copies_take_bandwidth_time() {
        let mut e = IoatEngine::new(
            Bandwidth::from_gb_per_sec(2.0),
            SimDuration::from_nanos(300),
        );
        let done = e.submit(SimTime::ZERO, 2_000_000);
        assert_eq!(done, SimTime::ZERO + SimDuration::from_millis(1));
    }

    #[test]
    fn descriptors_serialize() {
        let mut e = IoatEngine::default_chipset();
        let d1 = e.submit(SimTime::ZERO, 1_000_000);
        let d2 = e.submit(SimTime::ZERO, 1_000_000);
        assert_eq!(
            d2.duration_since(d1),
            Bandwidth::from_gb_per_sec(2.0).time_for_bytes(1_000_000)
        );
        assert_eq!(e.totals(), (2, 2_000_000));
    }

    #[test]
    fn engine_idles_between_bursts() {
        let mut e = IoatEngine::default_chipset();
        let d1 = e.submit(SimTime::ZERO, 1000);
        let later = d1 + SimDuration::from_millis(5);
        let d2 = e.submit(later, 1000);
        assert_eq!(d2.duration_since(later), e.bandwidth.time_for_bytes(1000));
    }
}
