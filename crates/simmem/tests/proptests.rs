//! Property-based tests for the memory substrate.
//!
//! Strategy: drive [`simmem`] with random operation sequences and check it
//! against trivially-correct reference models (a `HashMap<u64, u8>` for
//! byte contents, a `HashSet<u64>` for mapped pages). The substrate must
//! agree with the reference regardless of interleaving, and global
//! invariants (frame accounting, pin balance) must hold at every step.

use std::collections::{HashMap, HashSet};

use proptest::prelude::*;
use simmem::{InvalidateCause, MemError, Memory, Prot, VirtAddr, PAGE_SIZE};

#[derive(Clone, Debug)]
enum Op {
    Mmap { pages: u64 },
    Munmap { alloc_idx: usize },
    Write { alloc_idx: usize, offset: u64, len: u64, byte: u8 },
    Read { alloc_idx: usize, offset: u64, len: u64 },
    Pin { alloc_idx: usize },
    UnpinOldest,
    SwapOut { alloc_idx: usize, page: u64 },
    Migrate { alloc_idx: usize, page: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u64..16).prop_map(|pages| Op::Mmap { pages }),
        any::<usize>().prop_map(|alloc_idx| Op::Munmap { alloc_idx }),
        (any::<usize>(), 0u64..8192, 1u64..4096, any::<u8>())
            .prop_map(|(alloc_idx, offset, len, byte)| Op::Write { alloc_idx, offset, len, byte }),
        (any::<usize>(), 0u64..8192, 1u64..4096)
            .prop_map(|(alloc_idx, offset, len)| Op::Read { alloc_idx, offset, len }),
        any::<usize>().prop_map(|alloc_idx| Op::Pin { alloc_idx }),
        Just(Op::UnpinOldest),
        (any::<usize>(), 0u64..16).prop_map(|(alloc_idx, page)| Op::SwapOut { alloc_idx, page }),
        (any::<usize>(), 0u64..16).prop_map(|(alloc_idx, page)| Op::Migrate { alloc_idx, page }),
    ]
}

struct Alloc {
    addr: VirtAddr,
    pages: u64,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Reads agree with a reference byte map under arbitrary interleavings
    /// of mmap/munmap/write/swap/migrate/pin, and frame/pin accounting
    /// balances at the end.
    #[test]
    fn memory_agrees_with_reference_model(ops in prop::collection::vec(op_strategy(), 1..120)) {
        let mut mem = Memory::new(2048, 1024);
        let space = mem.create_space();
        mem.register_notifier(space).unwrap();

        let mut allocs: Vec<Alloc> = Vec::new();
        // Reference: absolute byte address -> value (unwritten bytes are 0).
        let mut reference: HashMap<u64, u8> = HashMap::new();
        let mut pins: Vec<Vec<simmem::Pfn>> = Vec::new();
        let mut pinned_pages_by_addr: HashSet<u64> = HashSet::new();

        for op in ops {
            match op {
                Op::Mmap { pages } => {
                    let addr = mem.mmap(space, pages * PAGE_SIZE, Prot::ReadWrite).unwrap();
                    allocs.push(Alloc { addr, pages });
                }
                Op::Munmap { alloc_idx } => {
                    if allocs.is_empty() { continue; }
                    let a = allocs.remove(alloc_idx % allocs.len());
                    // Pinned pages inside are allowed: frames survive pins.
                    let evs = mem.munmap(space, a.addr, a.pages * PAGE_SIZE).unwrap();
                    for ev in &evs {
                        prop_assert_eq!(ev.cause, InvalidateCause::Unmap);
                    }
                    for b in a.addr.0..a.addr.0 + a.pages * PAGE_SIZE {
                        reference.remove(&b);
                    }
                }
                Op::Write { alloc_idx, offset, len, byte } => {
                    if allocs.is_empty() { continue; }
                    let a = &allocs[alloc_idx % allocs.len()];
                    let size = a.pages * PAGE_SIZE;
                    let offset = offset % size;
                    let len = len.min(size - offset);
                    let data = vec![byte; len as usize];
                    mem.write(space, a.addr.add(offset), &data).unwrap();
                    for i in 0..len {
                        reference.insert(a.addr.0 + offset + i, byte);
                    }
                }
                Op::Read { alloc_idx, offset, len } => {
                    if allocs.is_empty() { continue; }
                    let a = &allocs[alloc_idx % allocs.len()];
                    let size = a.pages * PAGE_SIZE;
                    let offset = offset % size;
                    let len = len.min(size - offset);
                    let mut buf = vec![0u8; len as usize];
                    mem.read(space, a.addr.add(offset), &mut buf).unwrap();
                    for (i, &b) in buf.iter().enumerate() {
                        let expect = reference.get(&(a.addr.0 + offset + i as u64)).copied().unwrap_or(0);
                        prop_assert_eq!(b, expect, "mismatch at offset {}", offset + i as u64);
                    }
                }
                Op::Pin { alloc_idx } => {
                    if allocs.is_empty() { continue; }
                    let a = &allocs[alloc_idx % allocs.len()];
                    let (pfns, _ev) = mem.pin_user_pages(space, a.addr, a.pages * PAGE_SIZE).unwrap();
                    prop_assert_eq!(pfns.len() as u64, a.pages);
                    for p in 0..a.pages {
                        pinned_pages_by_addr.insert(a.addr.0 + p * PAGE_SIZE);
                    }
                    pins.push(pfns);
                }
                Op::UnpinOldest => {
                    if let Some(pfns) = pins.pop() {
                        mem.unpin_pages(&pfns);
                    }
                }
                Op::SwapOut { alloc_idx, page } => {
                    if allocs.is_empty() { continue; }
                    let a = &allocs[alloc_idx % allocs.len()];
                    let page = page % a.pages;
                    let vaddr = a.addr.add(page * PAGE_SIZE);
                    match mem.swap_out(space, vaddr.vpn()) {
                        Ok(_) | Err(MemError::NotResident(_)) | Err(MemError::PagePinned(_)) => {}
                        Err(e) => prop_assert!(false, "unexpected swap_out error {e}"),
                    }
                }
                Op::Migrate { alloc_idx, page } => {
                    if allocs.is_empty() { continue; }
                    let a = &allocs[alloc_idx % allocs.len()];
                    let page = page % a.pages;
                    let vaddr = a.addr.add(page * PAGE_SIZE);
                    match mem.migrate(space, vaddr.vpn()) {
                        Ok(_) | Err(MemError::NotResident(_)) | Err(MemError::PagePinned(_)) => {}
                        Err(e) => prop_assert!(false, "unexpected migrate error {e}"),
                    }
                }
            }
            // Invariant: pinned page count equals the pins we hold.
            let held: usize = pins.iter().map(Vec::len).sum();
            prop_assert_eq!(mem.frames().pinned_pages(), held);
        }

        // Teardown: release pins, unmap everything; all frames return.
        for pfns in pins.drain(..) {
            mem.unpin_pages(&pfns);
        }
        for a in allocs.drain(..) {
            mem.munmap(space, a.addr, a.pages * PAGE_SIZE).unwrap();
        }
        prop_assert_eq!(mem.frames().allocated(), 0);
        prop_assert_eq!(mem.frames().pinned_pages(), 0);
    }

    /// Data written before a fork is visible in both spaces; writes after
    /// the fork are private to the writer, under random offsets/sizes.
    #[test]
    fn fork_cow_isolation(
        pages in 1u64..8,
        pre in any::<u8>(),
        post_parent in any::<u8>(),
        post_child in any::<u8>(),
        offset in 0u64..4096,
    ) {
        let mut mem = Memory::new(256, 64);
        let parent = mem.create_space();
        let addr = mem.mmap(parent, pages * PAGE_SIZE, Prot::ReadWrite).unwrap();
        let size = pages * PAGE_SIZE;
        let offset = offset % size;
        let len = (size - offset).min(2 * PAGE_SIZE);
        mem.write(parent, addr.add(offset), &vec![pre; len as usize]).unwrap();

        let child = mem.fork_space(parent).unwrap();

        // Both see the pre-fork data.
        for space in [parent, child] {
            let mut buf = vec![0u8; len as usize];
            mem.read(space, addr.add(offset), &mut buf).unwrap();
            prop_assert!(buf.iter().all(|&b| b == pre));
        }

        // Post-fork writes are isolated.
        mem.write(parent, addr.add(offset), &vec![post_parent; len as usize]).unwrap();
        mem.write(child, addr.add(offset), &vec![post_child; len as usize]).unwrap();
        let mut buf = vec![0u8; len as usize];
        mem.read(parent, addr.add(offset), &mut buf).unwrap();
        prop_assert!(buf.iter().all(|&b| b == post_parent));
        mem.read(child, addr.add(offset), &mut buf).unwrap();
        prop_assert!(buf.iter().all(|&b| b == post_child));
    }

    /// A pinned frame's bytes are stable across any sequence of swap-out
    /// attempts, migrations and the final munmap; the driver's phys reads
    /// see exactly what the app wrote at pin time.
    #[test]
    fn pinned_frames_are_immovable(pages in 1u64..8, fill in any::<u8>()) {
        let mut mem = Memory::new(256, 64);
        let space = mem.create_space();
        mem.register_notifier(space).unwrap();
        let addr = mem.mmap(space, pages * PAGE_SIZE, Prot::ReadWrite).unwrap();
        mem.write(space, addr, &vec![fill; (pages * PAGE_SIZE) as usize]).unwrap();
        let (pfns, _) = mem.pin_user_pages(space, addr, pages * PAGE_SIZE).unwrap();

        for p in 0..pages {
            let vpn = addr.add(p * PAGE_SIZE).vpn();
            prop_assert!(matches!(mem.swap_out(space, vpn), Err(MemError::PagePinned(_))));
            prop_assert!(matches!(mem.migrate(space, vpn), Err(MemError::PagePinned(_))));
        }
        mem.munmap(space, addr, pages * PAGE_SIZE).unwrap();
        for &pfn in &pfns {
            let mut buf = [0u8; 64];
            mem.read_phys(pfn, 512, &mut buf);
            prop_assert!(buf.iter().all(|&b| b == fill));
        }
        mem.unpin_pages(&pfns);
        prop_assert_eq!(mem.frames().allocated(), 0);
    }
}
