//! Randomized property tests for the memory substrate.
//!
//! Strategy: drive [`simmem`] with random operation sequences and check it
//! against trivially-correct reference models (a `HashMap<u64, u8>` for
//! byte contents). The substrate must agree with the reference regardless
//! of interleaving, and global invariants (frame accounting, pin balance)
//! must hold at every step.
//!
//! Sequences are generated from a fixed-seed [`simcore::SimRng`], so every
//! run explores the same inputs — failures reproduce by case index.

use std::collections::HashMap;

use simcore::SimRng;
use simmem::{InvalidateCause, MemError, Memory, Prot, VirtAddr, PAGE_SIZE};

#[derive(Clone, Debug)]
enum Op {
    Mmap {
        pages: u64,
    },
    Munmap {
        alloc_idx: usize,
    },
    Write {
        alloc_idx: usize,
        offset: u64,
        len: u64,
        byte: u8,
    },
    Read {
        alloc_idx: usize,
        offset: u64,
        len: u64,
    },
    Pin {
        alloc_idx: usize,
    },
    UnpinOldest,
    SwapOut {
        alloc_idx: usize,
        page: u64,
    },
    Migrate {
        alloc_idx: usize,
        page: u64,
    },
}

fn random_op(rng: &mut SimRng) -> Op {
    match rng.below(8) {
        0 => Op::Mmap {
            pages: rng.range_inclusive(1, 15),
        },
        1 => Op::Munmap {
            alloc_idx: rng.next_u64() as usize,
        },
        2 => Op::Write {
            alloc_idx: rng.next_u64() as usize,
            offset: rng.below(8192),
            len: rng.range_inclusive(1, 4095),
            byte: rng.next_u64() as u8,
        },
        3 => Op::Read {
            alloc_idx: rng.next_u64() as usize,
            offset: rng.below(8192),
            len: rng.range_inclusive(1, 4095),
        },
        4 => Op::Pin {
            alloc_idx: rng.next_u64() as usize,
        },
        5 => Op::UnpinOldest,
        6 => Op::SwapOut {
            alloc_idx: rng.next_u64() as usize,
            page: rng.below(16),
        },
        _ => Op::Migrate {
            alloc_idx: rng.next_u64() as usize,
            page: rng.below(16),
        },
    }
}

struct Alloc {
    addr: VirtAddr,
    pages: u64,
}

/// Reads agree with a reference byte map under arbitrary interleavings of
/// mmap/munmap/write/swap/migrate/pin, and frame/pin accounting balances
/// at the end.
#[test]
fn memory_agrees_with_reference_model() {
    let mut rng = SimRng::new(0x5133_0001);
    for case in 0..64 {
        let nops = rng.range_inclusive(1, 119);
        let ops: Vec<Op> = (0..nops).map(|_| random_op(&mut rng)).collect();
        run_reference_case(case, ops);
    }
}

fn run_reference_case(case: u32, ops: Vec<Op>) {
    let mut mem = Memory::new(2048, 1024);
    let space = mem.create_space();
    mem.register_notifier(space).unwrap();

    let mut allocs: Vec<Alloc> = Vec::new();
    // Reference: absolute byte address -> value (unwritten bytes are 0).
    let mut reference: HashMap<u64, u8> = HashMap::new();
    let mut pins: Vec<Vec<simmem::Pfn>> = Vec::new();

    for op in ops {
        match op {
            Op::Mmap { pages } => {
                let addr = mem.mmap(space, pages * PAGE_SIZE, Prot::ReadWrite).unwrap();
                allocs.push(Alloc { addr, pages });
            }
            Op::Munmap { alloc_idx } => {
                if allocs.is_empty() {
                    continue;
                }
                let a = allocs.remove(alloc_idx % allocs.len());
                // Pinned pages inside are allowed: frames survive pins.
                let evs = mem.munmap(space, a.addr, a.pages * PAGE_SIZE).unwrap();
                for ev in &evs {
                    assert_eq!(ev.cause, InvalidateCause::Unmap, "case {case}");
                }
                for b in a.addr.0..a.addr.0 + a.pages * PAGE_SIZE {
                    reference.remove(&b);
                }
            }
            Op::Write {
                alloc_idx,
                offset,
                len,
                byte,
            } => {
                if allocs.is_empty() {
                    continue;
                }
                let a = &allocs[alloc_idx % allocs.len()];
                let size = a.pages * PAGE_SIZE;
                let offset = offset % size;
                let len = len.min(size - offset);
                let data = vec![byte; len as usize];
                mem.write(space, a.addr.add(offset), &data).unwrap();
                for i in 0..len {
                    reference.insert(a.addr.0 + offset + i, byte);
                }
            }
            Op::Read {
                alloc_idx,
                offset,
                len,
            } => {
                if allocs.is_empty() {
                    continue;
                }
                let a = &allocs[alloc_idx % allocs.len()];
                let size = a.pages * PAGE_SIZE;
                let offset = offset % size;
                let len = len.min(size - offset);
                let mut buf = vec![0u8; len as usize];
                mem.read(space, a.addr.add(offset), &mut buf).unwrap();
                for (i, &b) in buf.iter().enumerate() {
                    let expect = reference
                        .get(&(a.addr.0 + offset + i as u64))
                        .copied()
                        .unwrap_or(0);
                    assert_eq!(
                        b,
                        expect,
                        "case {case}: mismatch at offset {}",
                        offset + i as u64
                    );
                }
            }
            Op::Pin { alloc_idx } => {
                if allocs.is_empty() {
                    continue;
                }
                let a = &allocs[alloc_idx % allocs.len()];
                let (pfns, _ev) = mem
                    .pin_user_pages(space, a.addr, a.pages * PAGE_SIZE)
                    .unwrap();
                assert_eq!(pfns.len() as u64, a.pages, "case {case}");
                pins.push(pfns);
            }
            Op::UnpinOldest => {
                if let Some(pfns) = pins.pop() {
                    mem.unpin_pages(&pfns);
                }
            }
            Op::SwapOut { alloc_idx, page } => {
                if allocs.is_empty() {
                    continue;
                }
                let a = &allocs[alloc_idx % allocs.len()];
                let page = page % a.pages;
                let vaddr = a.addr.add(page * PAGE_SIZE);
                match mem.swap_out(space, vaddr.vpn()) {
                    Ok(_) | Err(MemError::NotResident(_)) | Err(MemError::PagePinned(_)) => {}
                    Err(e) => panic!("case {case}: unexpected swap_out error {e}"),
                }
            }
            Op::Migrate { alloc_idx, page } => {
                if allocs.is_empty() {
                    continue;
                }
                let a = &allocs[alloc_idx % allocs.len()];
                let page = page % a.pages;
                let vaddr = a.addr.add(page * PAGE_SIZE);
                match mem.migrate(space, vaddr.vpn()) {
                    Ok(_) | Err(MemError::NotResident(_)) | Err(MemError::PagePinned(_)) => {}
                    Err(e) => panic!("case {case}: unexpected migrate error {e}"),
                }
            }
        }
        // Invariant: pinned page count equals the pins we hold.
        let held: usize = pins.iter().map(Vec::len).sum();
        assert_eq!(mem.frames().pinned_pages(), held, "case {case}");
    }

    // Teardown: release pins, unmap everything; all frames return.
    for pfns in pins.drain(..) {
        mem.unpin_pages(&pfns);
    }
    for a in allocs.drain(..) {
        mem.munmap(space, a.addr, a.pages * PAGE_SIZE).unwrap();
    }
    assert_eq!(mem.frames().allocated(), 0, "case {case}");
    assert_eq!(mem.frames().pinned_pages(), 0, "case {case}");
}

/// Data written before a fork is visible in both spaces; writes after the
/// fork are private to the writer, under random offsets/sizes.
#[test]
fn fork_cow_isolation() {
    let mut rng = SimRng::new(0x5133_0002);
    for case in 0..32 {
        let pages = rng.range_inclusive(1, 7);
        let pre = rng.next_u64() as u8;
        let post_parent = rng.next_u64() as u8;
        let post_child = rng.next_u64() as u8;
        let offset = rng.below(4096);

        let mut mem = Memory::new(256, 64);
        let parent = mem.create_space();
        let addr = mem
            .mmap(parent, pages * PAGE_SIZE, Prot::ReadWrite)
            .unwrap();
        let size = pages * PAGE_SIZE;
        let offset = offset % size;
        let len = (size - offset).min(2 * PAGE_SIZE);
        mem.write(parent, addr.add(offset), &vec![pre; len as usize])
            .unwrap();

        let child = mem.fork_space(parent).unwrap();

        // Both see the pre-fork data.
        for space in [parent, child] {
            let mut buf = vec![0u8; len as usize];
            mem.read(space, addr.add(offset), &mut buf).unwrap();
            assert!(buf.iter().all(|&b| b == pre), "case {case}");
        }

        // Post-fork writes are isolated.
        mem.write(parent, addr.add(offset), &vec![post_parent; len as usize])
            .unwrap();
        mem.write(child, addr.add(offset), &vec![post_child; len as usize])
            .unwrap();
        let mut buf = vec![0u8; len as usize];
        mem.read(parent, addr.add(offset), &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == post_parent), "case {case}");
        mem.read(child, addr.add(offset), &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == post_child), "case {case}");
    }
}

/// A pinned frame's bytes are stable across any sequence of swap-out
/// attempts, migrations and the final munmap; the driver's phys reads see
/// exactly what the app wrote at pin time.
#[test]
fn pinned_frames_are_immovable() {
    let mut rng = SimRng::new(0x5133_0003);
    for case in 0..32 {
        let pages = rng.range_inclusive(1, 7);
        let fill = rng.next_u64() as u8;

        let mut mem = Memory::new(256, 64);
        let space = mem.create_space();
        mem.register_notifier(space).unwrap();
        let addr = mem.mmap(space, pages * PAGE_SIZE, Prot::ReadWrite).unwrap();
        mem.write(space, addr, &vec![fill; (pages * PAGE_SIZE) as usize])
            .unwrap();
        let (pfns, _) = mem.pin_user_pages(space, addr, pages * PAGE_SIZE).unwrap();

        for p in 0..pages {
            let vpn = addr.add(p * PAGE_SIZE).vpn();
            assert!(
                matches!(mem.swap_out(space, vpn), Err(MemError::PagePinned(_))),
                "case {case}"
            );
            assert!(
                matches!(mem.migrate(space, vpn), Err(MemError::PagePinned(_))),
                "case {case}"
            );
        }
        mem.munmap(space, addr, pages * PAGE_SIZE).unwrap();
        for &pfn in &pfns {
            let mut buf = [0u8; 64];
            mem.read_phys(pfn, 512, &mut buf);
            assert!(buf.iter().all(|&b| b == fill), "case {case}");
        }
        mem.unpin_pages(&pfns);
        assert_eq!(mem.frames().allocated(), 0, "case {case}");
    }
}
