//! Virtual memory areas: the mmap-level view of an address space.
//!
//! A [`VmaSet`] is an ordered set of non-overlapping half-open page ranges
//! with protection flags. `munmap` may split a VMA in two, exactly as in
//! Linux; adjacent VMAs with identical protection are merged on insert so
//! the set stays canonical.

use std::collections::BTreeMap;

use crate::addr::{Vpn, VpnRange};

/// Protection flags of a mapping.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Prot {
    /// Read-only mapping.
    ReadOnly,
    /// Read-write mapping.
    ReadWrite,
}

impl Prot {
    /// True if writes are permitted.
    pub fn writable(self) -> bool {
        matches!(self, Prot::ReadWrite)
    }
}

/// One mapped region.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Vma {
    /// Pages covered, half-open.
    pub range: VpnRange,
    /// Protection.
    pub prot: Prot,
}

/// Ordered, non-overlapping set of VMAs keyed by start page.
#[derive(Clone, Default, Debug)]
pub struct VmaSet {
    map: BTreeMap<u64, Vma>,
}

impl VmaSet {
    /// An empty set.
    pub fn new() -> Self {
        VmaSet::default()
    }

    /// Insert a mapping. Returns `false` (and changes nothing) if the range
    /// overlaps an existing VMA.
    pub fn insert(&mut self, range: VpnRange, prot: Prot) -> bool {
        if range.is_empty() || self.overlaps(&range) {
            return false;
        }
        let mut range = range;
        // Merge with an identical-prot neighbour on the left…
        if let Some((_, left)) = self
            .map
            .range(..range.start.0)
            .next_back()
            .map(|(k, v)| (*k, *v))
        {
            if left.range.end == range.start && left.prot == prot {
                self.map.remove(&left.range.start.0);
                range = VpnRange::new(left.range.start, range.end);
            }
        }
        // …and on the right.
        if let Some(right) = self.map.get(&range.end.0).copied() {
            if right.prot == prot {
                self.map.remove(&right.range.start.0);
                range = VpnRange::new(range.start, right.range.end);
            }
        }
        self.map.insert(range.start.0, Vma { range, prot });
        true
    }

    /// True if `range` overlaps any existing VMA.
    pub fn overlaps(&self, range: &VpnRange) -> bool {
        if range.is_empty() {
            return false;
        }
        // A candidate overlapper either starts inside `range` or is the
        // last VMA starting before it.
        if self.map.range(range.start.0..range.end.0).next().is_some() {
            return true;
        }
        if let Some((_, vma)) = self.map.range(..range.start.0).next_back() {
            return vma.range.end > range.start;
        }
        false
    }

    /// The VMA containing `vpn`, if any.
    pub fn find(&self, vpn: Vpn) -> Option<Vma> {
        self.map
            .range(..=vpn.0)
            .next_back()
            .map(|(_, v)| *v)
            .filter(|v| v.range.contains(vpn))
    }

    /// True if every page of `range` is covered by VMAs (possibly several).
    pub fn covers(&self, range: &VpnRange) -> bool {
        let mut cur = range.start;
        while cur < range.end {
            match self.find(cur) {
                Some(vma) => cur = vma.range.end.min(range.end),
                None => return false,
            }
        }
        true
    }

    /// Remove `range` from the set, splitting VMAs as needed. Returns the
    /// sub-ranges that were actually unmapped (pages that were mapped).
    pub fn remove(&mut self, range: VpnRange) -> Vec<VpnRange> {
        if range.is_empty() {
            return Vec::new();
        }
        let mut removed = Vec::new();
        // Collect affected VMAs: those starting before range.end whose end
        // exceeds range.start.
        let affected: Vec<Vma> = self
            .map
            .range(..range.end.0)
            .rev()
            .take_while(|(_, v)| v.range.end > range.start)
            .map(|(_, v)| *v)
            .collect();
        for vma in affected {
            self.map.remove(&vma.range.start.0);
            let cut = vma.range.intersect(&range);
            removed.push(cut);
            if vma.range.start < cut.start {
                let left = Vma {
                    range: VpnRange::new(vma.range.start, cut.start),
                    prot: vma.prot,
                };
                self.map.insert(left.range.start.0, left);
            }
            if cut.end < vma.range.end {
                let right = Vma {
                    range: VpnRange::new(cut.end, vma.range.end),
                    prot: vma.prot,
                };
                self.map.insert(right.range.start.0, right);
            }
        }
        removed.reverse(); // ascending order
        removed
    }

    /// Find a free gap of `pages` pages at or after `from`, scanning upward.
    pub fn find_gap(&self, from: Vpn, pages: u64, limit: Vpn) -> Option<Vpn> {
        let mut candidate = from;
        loop {
            if candidate.0 + pages > limit.0 {
                return None;
            }
            let range = VpnRange::new(candidate, Vpn(candidate.0 + pages));
            // First VMA intersecting the candidate range.
            let blocker = self
                .map
                .range(..range.end.0)
                .next_back()
                .map(|(_, v)| *v)
                .filter(|v| v.range.end > range.start);
            match blocker {
                None => return Some(candidate),
                Some(vma) => candidate = vma.range.end,
            }
        }
    }

    /// Iterate VMAs in address order.
    pub fn iter(&self) -> impl Iterator<Item = &Vma> {
        self.map.values()
    }

    /// Number of VMAs.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no mappings exist.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(a: u64, b: u64) -> VpnRange {
        VpnRange::new(Vpn(a), Vpn(b))
    }

    #[test]
    fn insert_and_find() {
        let mut s = VmaSet::new();
        assert!(s.insert(r(10, 20), Prot::ReadWrite));
        assert!(s.insert(r(30, 40), Prot::ReadOnly));
        assert_eq!(s.find(Vpn(15)).unwrap().range, r(10, 20));
        assert_eq!(s.find(Vpn(10)).unwrap().range, r(10, 20));
        assert!(s.find(Vpn(20)).is_none());
        assert!(s.find(Vpn(25)).is_none());
        assert_eq!(s.find(Vpn(39)).unwrap().prot, Prot::ReadOnly);
    }

    #[test]
    fn overlap_rejected() {
        let mut s = VmaSet::new();
        assert!(s.insert(r(10, 20), Prot::ReadWrite));
        assert!(!s.insert(r(15, 25), Prot::ReadWrite));
        assert!(!s.insert(r(5, 11), Prot::ReadWrite));
        assert!(!s.insert(r(10, 20), Prot::ReadWrite));
        assert!(s.insert(r(20, 25), Prot::ReadOnly)); // touching is fine
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn adjacent_same_prot_merge() {
        let mut s = VmaSet::new();
        s.insert(r(10, 20), Prot::ReadWrite);
        s.insert(r(20, 30), Prot::ReadWrite);
        assert_eq!(s.len(), 1);
        assert_eq!(s.find(Vpn(25)).unwrap().range, r(10, 30));
        // Fill a hole merging three ways.
        s.insert(r(40, 50), Prot::ReadWrite);
        s.insert(r(30, 40), Prot::ReadWrite);
        assert_eq!(s.len(), 1);
        assert_eq!(s.find(Vpn(10)).unwrap().range, r(10, 50));
    }

    #[test]
    fn different_prot_do_not_merge() {
        let mut s = VmaSet::new();
        s.insert(r(10, 20), Prot::ReadWrite);
        s.insert(r(20, 30), Prot::ReadOnly);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn remove_splits() {
        let mut s = VmaSet::new();
        s.insert(r(10, 30), Prot::ReadWrite);
        let removed = s.remove(r(15, 20));
        assert_eq!(removed, vec![r(15, 20)]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.find(Vpn(12)).unwrap().range, r(10, 15));
        assert_eq!(s.find(Vpn(25)).unwrap().range, r(20, 30));
        assert!(s.find(Vpn(17)).is_none());
    }

    #[test]
    fn remove_spanning_multiple_vmas() {
        let mut s = VmaSet::new();
        s.insert(r(10, 20), Prot::ReadWrite);
        s.insert(r(25, 35), Prot::ReadOnly);
        s.insert(r(40, 50), Prot::ReadWrite);
        let removed = s.remove(r(15, 45));
        assert_eq!(removed, vec![r(15, 20), r(25, 35), r(40, 45)]);
        assert_eq!(s.len(), 2);
        assert!(s.covers(&r(10, 15)));
        assert!(s.covers(&r(45, 50)));
        assert!(!s.covers(&r(10, 16)));
    }

    #[test]
    fn remove_unmapped_is_empty() {
        let mut s = VmaSet::new();
        s.insert(r(10, 20), Prot::ReadWrite);
        assert!(s.remove(r(30, 40)).is_empty());
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn covers_across_vmas() {
        let mut s = VmaSet::new();
        s.insert(r(10, 20), Prot::ReadWrite);
        s.insert(r(20, 30), Prot::ReadOnly); // adjacent, different prot
        assert!(s.covers(&r(12, 28)));
        assert!(!s.covers(&r(12, 31)));
    }

    #[test]
    fn find_gap_skips_mappings() {
        let mut s = VmaSet::new();
        s.insert(r(10, 20), Prot::ReadWrite);
        s.insert(r(22, 30), Prot::ReadWrite);
        assert_eq!(s.find_gap(Vpn(0), 5, Vpn(1000)), Some(Vpn(0)));
        assert_eq!(s.find_gap(Vpn(10), 5, Vpn(1000)), Some(Vpn(30)));
        assert_eq!(s.find_gap(Vpn(10), 2, Vpn(1000)), Some(Vpn(20)));
        assert_eq!(s.find_gap(Vpn(10), 2, Vpn(21)), None);
    }
}
