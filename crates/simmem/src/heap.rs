//! A glibc-flavoured `malloc`/`free` facade over [`Memory`].
//!
//! The pinning-cache story depends on allocator behaviour, so we model the
//! two regimes that matter (and that the paper's §5 discussion draws on):
//!
//! * **Large allocations** (≥ `mmap_threshold`, default 128 KiB as in
//!   glibc) map and unmap directly. `free` therefore reaches the kernel —
//!   and fires MMU-notifier invalidations — which is precisely when the
//!   paper says kernel hooks are "reliable and only called when a large
//!   region is actually unmapped".
//! * **Small allocations** recycle arena chunks in user space; `free`
//!   never reaches the kernel, so no invalidation fires (and none is
//!   needed — small messages go through the eager path, not user regions).
//!
//! Freed large blocks are requested again at the same virtual address by
//! equal-sized `malloc`s (first-fit gap search), reproducing the
//! free-then-realloc-same-buffer pattern the pinning cache optimizes.

use std::collections::HashMap;

use crate::addr::VirtAddr;
use crate::error::MemError;
use crate::space::{AsId, Memory, NotifierEvent};
use crate::vma::Prot;

/// Allocation bookkeeping for one simulated process.
pub struct SimHeap {
    space: AsId,
    mmap_threshold: u64,
    /// Arena free lists: rounded size -> LIFO of addresses.
    arena_free: HashMap<u64, Vec<VirtAddr>>,
    /// All live allocations: addr -> (len, is_mmap).
    live: HashMap<u64, (u64, bool)>,
    /// Total bytes currently allocated (live).
    live_bytes: u64,
}

impl SimHeap {
    /// A heap for `space` with the default 128 KiB mmap threshold.
    pub fn new(space: AsId) -> Self {
        Self::with_threshold(space, 128 * 1024)
    }

    /// A heap with an explicit large-allocation threshold.
    pub fn with_threshold(space: AsId, mmap_threshold: u64) -> Self {
        SimHeap {
            space,
            mmap_threshold,
            arena_free: HashMap::new(),
            live: HashMap::new(),
            live_bytes: 0,
        }
    }

    /// The address space this heap allocates in.
    pub fn space(&self) -> AsId {
        self.space
    }

    fn round(len: u64) -> u64 {
        VirtAddr(len.max(1)).page_ceil().0
    }

    /// Allocate `len` bytes.
    pub fn malloc(&mut self, mem: &mut Memory, len: u64) -> Result<VirtAddr, MemError> {
        let rounded = Self::round(len);
        let is_mmap = rounded >= self.mmap_threshold;
        let addr = if is_mmap {
            mem.mmap(self.space, rounded, Prot::ReadWrite)?
        } else if let Some(addr) = self.arena_free.get_mut(&rounded).and_then(Vec::pop) {
            addr
        } else {
            mem.mmap(self.space, rounded, Prot::ReadWrite)?
        };
        self.live.insert(addr.0, (rounded, is_mmap));
        self.live_bytes += rounded;
        Ok(addr)
    }

    /// Free an allocation. For mmap-backed blocks this unmaps and returns
    /// the MMU-notifier events; arena blocks are recycled silently.
    ///
    /// # Panics
    /// Panics on double free or freeing an unknown pointer — heap misuse is
    /// a bug in the workload, not a recoverable condition.
    pub fn free(&mut self, mem: &mut Memory, addr: VirtAddr) -> Vec<NotifierEvent> {
        let (len, is_mmap) = self
            .live
            .remove(&addr.0)
            .unwrap_or_else(|| panic!("free of unknown pointer {addr:?}"));
        self.live_bytes -= len;
        if is_mmap {
            mem.munmap(self.space, addr, len)
                .expect("munmap of live allocation failed")
        } else {
            self.arena_free.entry(len).or_default().push(addr);
            Vec::new()
        }
    }

    /// Bytes currently allocated.
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes
    }

    /// Number of live allocations.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// True if `len` would take the mmap (kernel-visible) path.
    pub fn is_mmap_sized(&self, len: u64) -> bool {
        Self::round(len) >= self.mmap_threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::InvalidateCause;

    fn setup() -> (Memory, SimHeap) {
        let mut mem = Memory::new(4096, 256);
        let space = mem.create_space();
        mem.register_notifier(space).unwrap();
        (mem, SimHeap::new(space))
    }

    #[test]
    fn large_free_fires_notifier() {
        let (mut mem, mut heap) = setup();
        let a = heap.malloc(&mut mem, 1 << 20).unwrap();
        mem.write(heap.space(), a, b"big").unwrap();
        let ev = heap.free(&mut mem, a);
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].cause, InvalidateCause::Unmap);
        assert_eq!(ev[0].range.len(), 256); // 1 MiB = 256 pages
    }

    #[test]
    fn small_free_is_silent_and_recycled() {
        let (mut mem, mut heap) = setup();
        let a = heap.malloc(&mut mem, 4096).unwrap();
        let ev = heap.free(&mut mem, a);
        assert!(ev.is_empty());
        let b = heap.malloc(&mut mem, 4096).unwrap();
        assert_eq!(a, b, "arena recycles LIFO");
    }

    #[test]
    fn large_free_then_malloc_reuses_address() {
        let (mut mem, mut heap) = setup();
        let a = heap.malloc(&mut mem, 1 << 20).unwrap();
        heap.free(&mut mem, a);
        let b = heap.malloc(&mut mem, 1 << 20).unwrap();
        assert_eq!(a, b, "first-fit returns the same VA for equal size");
    }

    #[test]
    fn accounting_tracks_live_bytes() {
        let (mut mem, mut heap) = setup();
        let a = heap.malloc(&mut mem, 100).unwrap();
        assert_eq!(heap.live_bytes(), crate::addr::PAGE_SIZE);
        assert_eq!(heap.live_count(), 1);
        let b = heap.malloc(&mut mem, 1 << 20).unwrap();
        assert_eq!(heap.live_bytes(), crate::addr::PAGE_SIZE + (1 << 20));
        heap.free(&mut mem, a);
        heap.free(&mut mem, b);
        assert_eq!(heap.live_bytes(), 0);
        assert_eq!(heap.live_count(), 0);
    }

    #[test]
    #[should_panic(expected = "free of unknown pointer")]
    fn double_free_panics() {
        let (mut mem, mut heap) = setup();
        let a = heap.malloc(&mut mem, 64).unwrap();
        heap.free(&mut mem, a);
        heap.free(&mut mem, a);
    }

    #[test]
    fn threshold_classification() {
        let (_, heap) = setup();
        assert!(!heap.is_mmap_sized(4096));
        assert!(!heap.is_mmap_sized(124 * 1024));
        // 127 KiB page-rounds up to 128 KiB and thus takes the mmap path.
        assert!(heap.is_mmap_sized(127 * 1024));
        assert!(heap.is_mmap_sized(128 * 1024));
        assert!(heap.is_mmap_sized(16 << 20));
    }
}
