//! # simmem — a virtual-memory substrate with MMU notifiers
//!
//! The paper's contribution lives in a Linux kernel driver that pins user
//! pages and keeps a pinning cache coherent through **MMU notifiers**.
//! This crate recreates the memory-management machinery that design rests
//! on, as an explicit, deterministic, byte-accurate model:
//!
//! * [`Memory`] — one node's frame pool + swap device + address spaces,
//! * demand paging, COW/fork, swap-out/in, page migration,
//! * [`Memory::pin_user_pages`] — `get_user_pages`-style DMA pinning that
//!   blocks swap/migration and keeps frames alive across `munmap`,
//! * [`NotifierEvent`] — MMU-notifier invalidations emitted by every
//!   operation that breaks a virtual→physical association,
//! * [`SimHeap`] — a glibc-flavoured malloc/free so workloads exercise the
//!   buffer-reuse and free-then-invalidate patterns the pinning cache
//!   is designed around.
//!
//! Frames carry real bytes: a stale cached pin shows up as *observable
//! data corruption* in tests, which is exactly the failure mode MMU
//! notifiers exist to prevent.

#![warn(missing_docs)]

pub mod addr;
pub mod error;
pub mod frame;
pub mod heap;
pub mod space;
pub mod vma;

pub use addr::{page_chunks, Pfn, VirtAddr, Vpn, VpnRange, PAGE_SHIFT, PAGE_SIZE};
pub use error::MemError;
pub use frame::FrameAllocator;
pub use heap::SimHeap;
pub use space::{AsId, InvalidateCause, Memory, NotifierEvent, PartialPin};
pub use vma::{Prot, Vma, VmaSet};
