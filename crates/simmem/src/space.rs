//! Address spaces, page tables, faults, COW, swap, migration, and pinning.
//!
//! [`Memory`] is one node's memory subsystem: a frame pool, a swap device,
//! and a set of process address spaces. Its API mirrors the Linux facilities
//! the paper's driver relies on:
//!
//! * `mmap`/`munmap` — anonymous demand-paged mappings,
//! * `read`/`write` — application access through the page tables (faulting,
//!   breaking COW),
//! * `pin_user_pages`/`unpin_pages` — `get_user_pages`-style DMA pinning,
//! * `swap_out`/`migrate` — the page-stealing operations pinning must block,
//! * `fork_space` — COW sharing, the classic registration-cache hazard,
//! * **MMU notifier events** — every operation that breaks a
//!   virtual→physical association returns [`NotifierEvent`]s when a notifier
//!   is registered on the space.
//!
//! ## Notifier semantics
//!
//! Linux invokes `invalidate_range_start` synchronously, inside the mm
//! operation, before the mapping changes. In this single-threaded simulator
//! an operation is atomic at one virtual instant, so we return the events to
//! the caller, which must dispatch them to the driver *before simulated time
//! advances*. Frame refcounting makes the dispatch order safe: pinned frames
//! survive `munmap` until the driver drops its pins, exactly as pages held
//! by `get_user_pages` do.

use std::collections::BTreeMap;

use crate::addr::{page_chunks, Pfn, VirtAddr, Vpn, VpnRange, PAGE_SIZE};
use crate::error::MemError;
use crate::frame::FrameAllocator;
use crate::vma::{Prot, VmaSet};

/// Identifies one address space within a [`Memory`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct AsId(pub u32);

/// Why a notifier event fired.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InvalidateCause {
    /// Pages were unmapped (`munmap`, including process teardown).
    Unmap,
    /// A copy-on-write fault replaced the physical page.
    CowBreak,
    /// The kernel swapped the page out.
    SwapOut,
    /// The kernel migrated the page to another frame.
    Migrate,
    /// The whole address space is being destroyed (`release`).
    Release,
}

/// An MMU-notifier invalidation event, delivered to whoever registered a
/// notifier on the space (the Open-MX driver).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct NotifierEvent {
    /// The affected address space.
    pub space: AsId,
    /// The invalidated page range.
    pub range: VpnRange,
    /// What happened.
    pub cause: InvalidateCause,
}

#[derive(Clone, Copy, Debug)]
enum Pte {
    Resident { pfn: Pfn, cow: bool },
    Swapped { slot: u32 },
}

struct AddressSpace {
    vmas: VmaSet,
    ptes: BTreeMap<u64, Pte>,
    notifier: bool,
    /// Lowest page considered by the gap search; keeps user mappings away
    /// from page 0 so null-ish addresses fault.
    base: Vpn,
    limit: Vpn,
}

struct SwapSpace {
    slots: Vec<Option<Box<[u8]>>>,
    free: Vec<u32>,
    used: usize,
}

impl SwapSpace {
    fn new(capacity: usize) -> Self {
        SwapSpace {
            slots: (0..capacity).map(|_| None).collect(),
            free: (0..capacity as u32).rev().collect(),
            used: 0,
        }
    }

    fn store(&mut self, data: Box<[u8]>) -> Result<u32, MemError> {
        let slot = self.free.pop().ok_or(MemError::OutOfSwap)?;
        self.slots[slot as usize] = Some(data);
        self.used += 1;
        Ok(slot)
    }

    fn load(&mut self, slot: u32) -> Box<[u8]> {
        let data = self.slots[slot as usize]
            .take()
            .expect("load from free swap slot");
        self.free.push(slot);
        self.used -= 1;
        data
    }

    fn drop_slot(&mut self, slot: u32) {
        let _ = self.load(slot);
    }

    fn duplicate(&mut self, slot: u32) -> Result<u32, MemError> {
        let data = self.slots[slot as usize]
            .as_ref()
            .expect("duplicate of free swap slot")
            .clone();
        self.store(data)
    }
}

/// Result of one [`Memory::pin_user_pages_partial`] call: the pages pinned
/// before the first failure, any notifier events those pins caused, and the
/// failure itself if one occurred. Unlike [`Memory::pin_user_pages`], a
/// partial pin is *not* rolled back internally — the caller owns the
/// reported pins and decides whether to keep or release them.
#[derive(Debug)]
pub struct PartialPin {
    /// Frames pinned, in page order, up to the first failure.
    pub pfns: Vec<Pfn>,
    /// Notifier events (COW breaks) fired by the successful pins.
    pub events: Vec<NotifierEvent>,
    /// The error that stopped the batch, if it did not complete.
    pub error: Option<MemError>,
}

/// One node's memory subsystem.
pub struct Memory {
    frames: FrameAllocator,
    swap: SwapSpace,
    spaces: Vec<Option<AddressSpace>>,
    /// Pin syscalls serviced (each `pin_user_pages*` call counts once,
    /// whatever its page count) — the per-call cost the batched driver
    /// path exists to amortize.
    pin_calls: u64,
    /// Unpin syscalls serviced (each `unpin_pages*` call counts once,
    /// whatever its page count) — the per-call cost the driver's batched
    /// deferred-drain path exists to amortize.
    unpin_calls: u64,
}

impl Memory {
    /// A node with `frame_capacity` physical frames and `swap_slots` pages
    /// of swap.
    pub fn new(frame_capacity: usize, swap_slots: usize) -> Self {
        Memory {
            frames: FrameAllocator::new(frame_capacity),
            swap: SwapSpace::new(swap_slots),
            spaces: Vec::new(),
            pin_calls: 0,
            unpin_calls: 0,
        }
    }

    /// Number of `pin_user_pages*` calls serviced so far.
    pub fn pin_calls(&self) -> u64 {
        self.pin_calls
    }

    /// Number of `unpin_pages*` calls serviced so far.
    pub fn unpin_calls(&self) -> u64 {
        self.unpin_calls
    }

    /// Create an empty address space (a "process").
    pub fn create_space(&mut self) -> AsId {
        let space = AddressSpace {
            vmas: VmaSet::new(),
            ptes: BTreeMap::new(),
            notifier: false,
            base: Vpn(0x100),
            limit: Vpn(1 << 36), // 48-bit VA, way beyond any workload here
        };
        if let Some(idx) = self.spaces.iter().position(Option::is_none) {
            self.spaces[idx] = Some(space);
            AsId(idx as u32)
        } else {
            self.spaces.push(Some(space));
            AsId(self.spaces.len() as u32 - 1)
        }
    }

    /// Destroy an address space, dropping every mapping. Returns the
    /// `Release` notifier event if one was registered.
    pub fn destroy_space(&mut self, id: AsId) -> Result<Vec<NotifierEvent>, MemError> {
        let space = self.space_mut(id)?;
        let notifier = space.notifier;
        let ptes = std::mem::take(&mut space.ptes);
        let full = VpnRange::new(Vpn(0), space.limit);
        self.spaces[id.0 as usize] = None;
        for (_, pte) in ptes {
            match pte {
                Pte::Resident { pfn, .. } => self.frames.put(pfn),
                Pte::Swapped { slot } => self.swap.drop_slot(slot),
            }
        }
        Ok(if notifier {
            vec![NotifierEvent {
                space: id,
                range: full,
                cause: InvalidateCause::Release,
            }]
        } else {
            Vec::new()
        })
    }

    /// Register an MMU notifier on the space (the driver does this when an
    /// endpoint opens). Subsequent invalidations are reported.
    pub fn register_notifier(&mut self, id: AsId) -> Result<(), MemError> {
        self.space_mut(id)?.notifier = true;
        Ok(())
    }

    /// Unregister the notifier.
    pub fn unregister_notifier(&mut self, id: AsId) -> Result<(), MemError> {
        self.space_mut(id)?.notifier = false;
        Ok(())
    }

    fn space(&self, id: AsId) -> Result<&AddressSpace, MemError> {
        self.spaces
            .get(id.0 as usize)
            .and_then(Option::as_ref)
            .ok_or(MemError::NoSuchSpace)
    }

    fn space_mut(&mut self, id: AsId) -> Result<&mut AddressSpace, MemError> {
        self.spaces
            .get_mut(id.0 as usize)
            .and_then(Option::as_mut)
            .ok_or(MemError::NoSuchSpace)
    }

    /// Map `len` bytes (rounded up to pages) of zeroed anonymous memory.
    /// Pages materialize on first touch (demand paging).
    pub fn mmap(&mut self, id: AsId, len: u64, prot: Prot) -> Result<VirtAddr, MemError> {
        let pages = VirtAddr(len).page_ceil().0 >> crate::addr::PAGE_SHIFT;
        let pages = pages.max(1);
        let space = self.space_mut(id)?;
        let start = space
            .vmas
            .find_gap(space.base, pages, space.limit)
            .ok_or(MemError::OutOfVirtualSpace)?;
        let range = VpnRange::new(start, Vpn(start.0 + pages));
        let ok = space.vmas.insert(range, prot);
        debug_assert!(ok);
        Ok(start.base())
    }

    /// Map at a fixed page-aligned address (fails if busy).
    pub fn mmap_at(
        &mut self,
        id: AsId,
        addr: VirtAddr,
        len: u64,
        prot: Prot,
    ) -> Result<VirtAddr, MemError> {
        assert!(addr.is_page_aligned(), "mmap_at requires page alignment");
        let range = VpnRange::covering(addr, len.max(1));
        let space = self.space_mut(id)?;
        if !space.vmas.insert(range, prot) {
            return Err(MemError::RangeBusy(addr));
        }
        Ok(addr)
    }

    /// Unmap `[addr, addr+len)` (page-granular). Pages pinned by a driver
    /// survive physically until unpinned, but the *mapping* is gone.
    /// Returns notifier events for the removed ranges.
    pub fn munmap(
        &mut self,
        id: AsId,
        addr: VirtAddr,
        len: u64,
    ) -> Result<Vec<NotifierEvent>, MemError> {
        let range = VpnRange::covering(addr.page_floor(), len + addr.page_offset());
        let mut events = Vec::new();
        let mut dropped: Vec<Pte> = Vec::new();
        {
            let space = self.space_mut(id)?;
            let notifier = space.notifier;
            let removed = space.vmas.remove(range);
            for sub in removed {
                let vpns: Vec<u64> = space.ptes.range(sub.as_raw()).map(|(k, _)| *k).collect();
                for vpn in vpns {
                    if let Some(pte) = space.ptes.remove(&vpn) {
                        dropped.push(pte);
                    }
                }
                if notifier {
                    events.push(NotifierEvent {
                        space: id,
                        range: sub,
                        cause: InvalidateCause::Unmap,
                    });
                }
            }
        }
        for pte in dropped {
            match pte {
                Pte::Resident { pfn, .. } => self.frames.put(pfn),
                Pte::Swapped { slot } => self.swap.drop_slot(slot),
            }
        }
        Ok(events)
    }

    /// True if every byte of `[addr, addr+len)` is inside some VMA.
    pub fn is_mapped(&self, id: AsId, addr: VirtAddr, len: u64) -> bool {
        match self.space(id) {
            Ok(space) => space.vmas.covers(&VpnRange::covering(addr, len.max(1))),
            Err(_) => false,
        }
    }

    /// Handle a (simulated) page fault at `vpn`. Returns the resident frame.
    /// With `write == true` this breaks COW, possibly emitting a `CowBreak`
    /// notifier event into `events`.
    fn fault(
        &mut self,
        id: AsId,
        vpn: Vpn,
        write: bool,
        events: &mut Vec<NotifierEvent>,
    ) -> Result<Pfn, MemError> {
        let space = self.space(id)?;
        let vma = space
            .vmas
            .find(vpn)
            .ok_or(MemError::BadAddress(vpn.base()))?;
        if write && !vma.prot.writable() {
            return Err(MemError::ProtectionFault(vpn.base()));
        }
        let notifier = space.notifier;
        let pte = space.ptes.get(&vpn.0).copied();
        match pte {
            None => {
                // Demand-zero fault.
                let pfn = self.frames.alloc()?;
                self.space_mut(id)?
                    .ptes
                    .insert(vpn.0, Pte::Resident { pfn, cow: false });
                Ok(pfn)
            }
            Some(Pte::Swapped { slot }) => {
                let data = self.swap.load(slot);
                let pfn = self.frames.alloc()?;
                self.frames.write(pfn, 0, &data);
                self.space_mut(id)?
                    .ptes
                    .insert(vpn.0, Pte::Resident { pfn, cow: false });
                Ok(pfn)
            }
            Some(Pte::Resident { pfn, cow }) => {
                if write && cow {
                    if self.frames.refcount(pfn) > 1 {
                        // Shared: copy to a private frame.
                        let new = self.frames.alloc()?;
                        self.frames.copy_frame(pfn, new);
                        self.frames.put(pfn);
                        self.space_mut(id)?.ptes.insert(
                            vpn.0,
                            Pte::Resident {
                                pfn: new,
                                cow: false,
                            },
                        );
                        if notifier {
                            events.push(NotifierEvent {
                                space: id,
                                range: VpnRange::new(vpn, vpn.next()),
                                cause: InvalidateCause::CowBreak,
                            });
                        }
                        Ok(new)
                    } else {
                        // Sole owner: just drop the COW bit.
                        self.space_mut(id)?
                            .ptes
                            .insert(vpn.0, Pte::Resident { pfn, cow: false });
                        Ok(pfn)
                    }
                } else {
                    Ok(pfn)
                }
            }
        }
    }

    /// Application write through the page tables. Faults pages in and
    /// breaks COW as needed; returns any notifier events that caused.
    pub fn write(
        &mut self,
        id: AsId,
        addr: VirtAddr,
        data: &[u8],
    ) -> Result<Vec<NotifierEvent>, MemError> {
        let mut events = Vec::new();
        let mut cursor = 0usize;
        for (vpn, off, n) in page_chunks(addr, data.len() as u64) {
            let pfn = self.fault(id, vpn, true, &mut events)?;
            self.frames
                .write(pfn, off, &data[cursor..cursor + n as usize]);
            cursor += n as usize;
        }
        Ok(events)
    }

    /// Application read through the page tables.
    pub fn read(&mut self, id: AsId, addr: VirtAddr, buf: &mut [u8]) -> Result<(), MemError> {
        let mut events = Vec::new();
        let mut cursor = 0usize;
        for (vpn, off, n) in page_chunks(addr, buf.len() as u64) {
            let pfn = self.fault(id, vpn, false, &mut events)?;
            self.frames
                .read(pfn, off, &mut buf[cursor..cursor + n as usize]);
            cursor += n as usize;
        }
        debug_assert!(events.is_empty(), "read faults never invalidate");
        Ok(())
    }

    /// `get_user_pages`-style pinning of the pages covering
    /// `[addr, addr+len)`: faults each page in *with write access* (breaking
    /// COW up front, as GUP with `FOLL_WRITE` does), raises its pin count,
    /// and returns the frames in page order.
    ///
    /// On failure (bad address, OOM) any pages already pinned by this call
    /// are released before the error is returned.
    pub fn pin_user_pages(
        &mut self,
        id: AsId,
        addr: VirtAddr,
        len: u64,
    ) -> Result<(Vec<Pfn>, Vec<NotifierEvent>), MemError> {
        let mut partial = self.pin_user_pages_partial(id, addr, len);
        match partial.error.take() {
            None => Ok((partial.pfns, partial.events)),
            Some(e) => {
                for pfn in partial.pfns {
                    self.frames.unpin(pfn);
                }
                Err(e)
            }
        }
    }

    /// Batched pin of the pages covering `[addr, addr+len)` with
    /// partial-success reporting: pins page by page in address order and
    /// stops at the first failure, returning everything pinned so far plus
    /// the error. The caller owns the reported pins — on error it must
    /// either keep them or release them via [`Memory::unpin_pages`].
    ///
    /// This is the one-syscall-per-run primitive behind the driver's
    /// batched pin path; [`Memory::pin_user_pages`] is the classic
    /// all-or-nothing wrapper over it.
    pub fn pin_user_pages_partial(&mut self, id: AsId, addr: VirtAddr, len: u64) -> PartialPin {
        self.pin_calls += 1;
        let range = VpnRange::covering(addr, len);
        let mut events = Vec::new();
        let mut pinned = Vec::with_capacity(range.len() as usize);
        for vpn in range.iter() {
            match self.fault(id, vpn, true, &mut events) {
                Ok(pfn) => {
                    self.frames.pin(pfn);
                    pinned.push(pfn);
                }
                Err(e) => {
                    return PartialPin {
                        pfns: pinned,
                        events,
                        error: Some(e),
                    };
                }
            }
        }
        PartialPin {
            pfns: pinned,
            events,
            error: None,
        }
    }

    /// Release DMA pins taken by [`Memory::pin_user_pages`].
    pub fn unpin_pages(&mut self, pfns: &[Pfn]) {
        self.unpin_pages_partial(pfns);
    }

    /// Batched release of an arbitrary run of DMA pins: one "syscall"
    /// whatever the page count, returning the number of pages released.
    ///
    /// This is the unpin-side twin of [`Memory::pin_user_pages_partial`]:
    /// the driver's deferred-drain path hands it whole invalidated page
    /// runs so a trim storm costs one call per run, not one per page.
    pub fn unpin_pages_partial(&mut self, pfns: &[Pfn]) -> u64 {
        self.unpin_calls += 1;
        for &pfn in pfns {
            self.frames.unpin(pfn);
        }
        pfns.len() as u64
    }

    /// Swap one resident page out to disk. Fails if the page is pinned —
    /// this is exactly the guarantee pinning exists to provide.
    pub fn swap_out(&mut self, id: AsId, vpn: Vpn) -> Result<Vec<NotifierEvent>, MemError> {
        let space = self.space(id)?;
        let notifier = space.notifier;
        let pte = space.ptes.get(&vpn.0).copied();
        match pte {
            Some(Pte::Resident { pfn, cow }) => {
                if self.frames.is_pinned(pfn) {
                    return Err(MemError::PagePinned(vpn.base()));
                }
                if cow && self.frames.refcount(pfn) > 1 {
                    // Shared COW pages stay resident in this simple model.
                    return Err(MemError::PagePinned(vpn.base()));
                }
                let mut data = vec![0u8; PAGE_SIZE as usize].into_boxed_slice();
                self.frames.read(pfn, 0, &mut data);
                let slot = self.swap.store(data)?;
                self.frames.put(pfn);
                self.space_mut(id)?
                    .ptes
                    .insert(vpn.0, Pte::Swapped { slot });
                Ok(if notifier {
                    vec![NotifierEvent {
                        space: id,
                        range: VpnRange::new(vpn, vpn.next()),
                        cause: InvalidateCause::SwapOut,
                    }]
                } else {
                    Vec::new()
                })
            }
            _ => Err(MemError::NotResident(vpn.base())),
        }
    }

    /// Migrate one resident page to a different physical frame (as memory
    /// compaction / NUMA balancing would). Fails if pinned.
    pub fn migrate(&mut self, id: AsId, vpn: Vpn) -> Result<Vec<NotifierEvent>, MemError> {
        let space = self.space(id)?;
        let notifier = space.notifier;
        let pte = space.ptes.get(&vpn.0).copied();
        match pte {
            Some(Pte::Resident { pfn, cow }) => {
                if self.frames.is_pinned(pfn) {
                    return Err(MemError::PagePinned(vpn.base()));
                }
                let new = self.frames.alloc()?;
                self.frames.copy_frame(pfn, new);
                self.frames.put(pfn);
                self.space_mut(id)?
                    .ptes
                    .insert(vpn.0, Pte::Resident { pfn: new, cow });
                Ok(if notifier {
                    vec![NotifierEvent {
                        space: id,
                        range: VpnRange::new(vpn, vpn.next()),
                        cause: InvalidateCause::Migrate,
                    }]
                } else {
                    Vec::new()
                })
            }
            _ => Err(MemError::NotResident(vpn.base())),
        }
    }

    /// Fork `parent` into a new space sharing all resident pages
    /// copy-on-write. Swapped pages are duplicated. (Linux fires no
    /// notifier on fork itself; hazards surface at the later COW breaks.)
    pub fn fork_space(&mut self, parent: AsId) -> Result<AsId, MemError> {
        let (vmas, ptes) = {
            let p = self.space(parent)?;
            (p.vmas.clone(), p.ptes.clone())
        };
        let child = self.create_space();
        let mut child_ptes = BTreeMap::new();
        for (vpn, pte) in &ptes {
            match *pte {
                Pte::Resident { pfn, .. } => {
                    self.frames.get(pfn);
                    child_ptes.insert(*vpn, Pte::Resident { pfn, cow: true });
                }
                Pte::Swapped { slot } => {
                    let dup = self.swap.duplicate(slot)?;
                    child_ptes.insert(*vpn, Pte::Swapped { slot: dup });
                }
            }
        }
        // Mark the parent's resident pages COW as well.
        {
            let p = self.space_mut(parent)?;
            for pte in p.ptes.values_mut() {
                if let Pte::Resident { cow, .. } = pte {
                    *cow = true;
                }
            }
        }
        let c = self.space_mut(child)?;
        c.vmas = vmas;
        c.ptes = child_ptes;
        Ok(child)
    }

    /// The resident frame backing `vpn`, if any (driver-side lookup).
    pub fn resident_pfn(&self, id: AsId, vpn: Vpn) -> Option<Pfn> {
        match self.space(id).ok()?.ptes.get(&vpn.0)? {
            Pte::Resident { pfn, .. } => Some(*pfn),
            Pte::Swapped { .. } => None,
        }
    }

    /// True if `id` names a live (created and not destroyed) address space.
    pub fn space_exists(&self, id: AsId) -> bool {
        self.spaces.get(id.0 as usize).is_some_and(Option::is_some)
    }

    /// Ids of every live address space, in id order.
    pub fn space_ids(&self) -> Vec<AsId> {
        self.spaces
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_some())
            .map(|(i, _)| AsId(i as u32))
            .collect()
    }

    /// Pages of `[addr, addr+len)` that are resident right now, in address
    /// order — lets harnesses target swap-out/migration deterministically.
    pub fn resident_vpns_in(&self, id: AsId, addr: VirtAddr, len: u64) -> Vec<Vpn> {
        let Ok(space) = self.space(id) else {
            return Vec::new();
        };
        let range = VpnRange::covering(addr, len.max(1));
        space
            .ptes
            .range(range.as_raw())
            .filter(|(_, pte)| matches!(pte, Pte::Resident { .. }))
            .map(|(&vpn, _)| Vpn(vpn))
            .collect()
    }

    /// Direct physical read (what the driver does with pinned pages: "the
    /// kernel may remap it at a temporary virtual location and memcpy").
    pub fn read_phys(&self, pfn: Pfn, offset: u64, buf: &mut [u8]) {
        self.frames.read(pfn, offset, buf);
    }

    /// Direct physical write.
    pub fn write_phys(&mut self, pfn: Pfn, offset: u64, data: &[u8]) {
        self.frames.write(pfn, offset, data);
    }

    /// Access to frame-pool statistics.
    pub fn frames(&self) -> &FrameAllocator {
        &self.frames
    }

    /// Pages currently in swap.
    pub fn swap_used(&self) -> usize {
        self.swap.used
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn memory() -> Memory {
        Memory::new(1024, 256)
    }

    #[test]
    fn mmap_write_read_roundtrip() {
        let mut m = memory();
        let a = m.create_space();
        let addr = m.mmap(a, 3 * PAGE_SIZE, Prot::ReadWrite).unwrap();
        let data: Vec<u8> = (0..PAGE_SIZE * 2 + 100).map(|i| (i % 251) as u8).collect();
        let ev = m.write(a, addr.add(50), &data).unwrap();
        assert!(ev.is_empty());
        let mut back = vec![0u8; data.len()];
        m.read(a, addr.add(50), &mut back).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn demand_paging_allocates_lazily() {
        let mut m = memory();
        let a = m.create_space();
        let addr = m.mmap(a, 100 * PAGE_SIZE, Prot::ReadWrite).unwrap();
        assert_eq!(m.frames().allocated(), 0);
        m.write(a, addr, b"x").unwrap();
        assert_eq!(m.frames().allocated(), 1);
        m.write(a, addr.add(PAGE_SIZE * 50), b"y").unwrap();
        assert_eq!(m.frames().allocated(), 2);
    }

    #[test]
    fn unmapped_access_faults() {
        let mut m = memory();
        let a = m.create_space();
        let mut buf = [0u8; 4];
        assert!(matches!(
            m.read(a, VirtAddr(0x5000_0000), &mut buf),
            Err(MemError::BadAddress(_))
        ));
    }

    #[test]
    fn readonly_mapping_rejects_writes() {
        let mut m = memory();
        let a = m.create_space();
        let addr = m.mmap(a, PAGE_SIZE, Prot::ReadOnly).unwrap();
        assert!(matches!(
            m.write(a, addr, b"nope"),
            Err(MemError::ProtectionFault(_))
        ));
        let mut buf = [0u8; 4];
        m.read(a, addr, &mut buf).unwrap();
    }

    #[test]
    fn munmap_emits_notifier_event_when_registered() {
        let mut m = memory();
        let a = m.create_space();
        let addr = m.mmap(a, 4 * PAGE_SIZE, Prot::ReadWrite).unwrap();
        m.write(a, addr, &[1; 4096]).unwrap();
        // No notifier: silent.
        let ev = m.munmap(a, addr, PAGE_SIZE).unwrap();
        assert!(ev.is_empty());
        m.register_notifier(a).unwrap();
        let ev = m.munmap(a, addr.add(PAGE_SIZE), PAGE_SIZE).unwrap();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].cause, InvalidateCause::Unmap);
        assert_eq!(ev[0].range.len(), 1);
        assert_eq!(ev[0].space, a);
    }

    #[test]
    fn munmap_frees_frames() {
        let mut m = memory();
        let a = m.create_space();
        let addr = m.mmap(a, 4 * PAGE_SIZE, Prot::ReadWrite).unwrap();
        m.write(a, addr, &vec![7u8; 4 * PAGE_SIZE as usize])
            .unwrap();
        assert_eq!(m.frames().allocated(), 4);
        m.munmap(a, addr, 4 * PAGE_SIZE).unwrap();
        assert_eq!(m.frames().allocated(), 0);
    }

    #[test]
    fn pinned_page_survives_munmap() {
        let mut m = memory();
        let a = m.create_space();
        let addr = m.mmap(a, PAGE_SIZE, Prot::ReadWrite).unwrap();
        m.write(a, addr, b"persist").unwrap();
        let (pfns, _) = m.pin_user_pages(a, addr, PAGE_SIZE).unwrap();
        m.munmap(a, addr, PAGE_SIZE).unwrap();
        // The mapping is gone but the driver can still read the frame.
        let mut buf = [0u8; 7];
        m.read_phys(pfns[0], 0, &mut buf);
        assert_eq!(&buf, b"persist");
        m.unpin_pages(&pfns);
        assert_eq!(m.frames().allocated(), 0);
    }

    #[test]
    fn pin_prevents_swap_and_migration() {
        let mut m = memory();
        let a = m.create_space();
        let addr = m.mmap(a, PAGE_SIZE, Prot::ReadWrite).unwrap();
        m.write(a, addr, b"data").unwrap();
        let (pfns, _) = m.pin_user_pages(a, addr, PAGE_SIZE).unwrap();
        assert!(matches!(
            m.swap_out(a, addr.vpn()),
            Err(MemError::PagePinned(_))
        ));
        assert!(matches!(
            m.migrate(a, addr.vpn()),
            Err(MemError::PagePinned(_))
        ));
        m.unpin_pages(&pfns);
        m.register_notifier(a).unwrap();
        let ev = m.migrate(a, addr.vpn()).unwrap();
        assert_eq!(ev[0].cause, InvalidateCause::Migrate);
    }

    #[test]
    fn swap_out_and_back_preserves_data() {
        let mut m = memory();
        let a = m.create_space();
        let addr = m.mmap(a, PAGE_SIZE, Prot::ReadWrite).unwrap();
        m.write(a, addr, b"swapped bytes").unwrap();
        m.register_notifier(a).unwrap();
        let ev = m.swap_out(a, addr.vpn()).unwrap();
        assert_eq!(ev[0].cause, InvalidateCause::SwapOut);
        assert_eq!(m.swap_used(), 1);
        assert_eq!(m.frames().allocated(), 0);
        let mut buf = [0u8; 13];
        m.read(a, addr, &mut buf).unwrap(); // faults the page back in
        assert_eq!(&buf, b"swapped bytes");
        assert_eq!(m.swap_used(), 0);
    }

    #[test]
    fn migration_changes_frame_keeps_data() {
        let mut m = memory();
        let a = m.create_space();
        let addr = m.mmap(a, PAGE_SIZE, Prot::ReadWrite).unwrap();
        m.write(a, addr, b"moving").unwrap();
        let before = m.resident_pfn(a, addr.vpn()).unwrap();
        m.migrate(a, addr.vpn()).unwrap();
        let after = m.resident_pfn(a, addr.vpn()).unwrap();
        assert_ne!(before, after);
        let mut buf = [0u8; 6];
        m.read(a, addr, &mut buf).unwrap();
        assert_eq!(&buf, b"moving");
    }

    #[test]
    fn fork_shares_then_cow_breaks_on_write() {
        let mut m = memory();
        let parent = m.create_space();
        let addr = m.mmap(parent, PAGE_SIZE, Prot::ReadWrite).unwrap();
        m.write(parent, addr, b"original").unwrap();
        let child = m.fork_space(parent).unwrap();
        // Shared frame.
        assert_eq!(
            m.resident_pfn(parent, addr.vpn()),
            m.resident_pfn(child, addr.vpn())
        );
        assert_eq!(m.frames().allocated(), 1);
        m.register_notifier(parent).unwrap();
        // Parent write breaks COW and fires the notifier.
        let ev = m.write(parent, addr, b"PARENT!!").unwrap();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].cause, InvalidateCause::CowBreak);
        assert_ne!(
            m.resident_pfn(parent, addr.vpn()),
            m.resident_pfn(child, addr.vpn())
        );
        // Child still sees the original bytes.
        let mut buf = [0u8; 8];
        m.read(child, addr, &mut buf).unwrap();
        assert_eq!(&buf, b"original");
        let mut buf = [0u8; 8];
        m.read(parent, addr, &mut buf).unwrap();
        assert_eq!(&buf, b"PARENT!!");
    }

    #[test]
    fn sole_owner_cow_write_does_not_copy() {
        let mut m = memory();
        let parent = m.create_space();
        let addr = m.mmap(parent, PAGE_SIZE, Prot::ReadWrite).unwrap();
        m.write(parent, addr, b"x").unwrap();
        let child = m.fork_space(parent).unwrap();
        m.destroy_space(child).unwrap();
        let before = m.resident_pfn(parent, addr.vpn()).unwrap();
        m.write(parent, addr, b"y").unwrap();
        assert_eq!(m.resident_pfn(parent, addr.vpn()).unwrap(), before);
    }

    #[test]
    fn gup_breaks_cow_eagerly() {
        // Pinning a COW-shared page must give the pinner a private copy
        // (FOLL_WRITE semantics) so later parent writes cannot detach the
        // pinned frame silently.
        let mut m = memory();
        let parent = m.create_space();
        let addr = m.mmap(parent, PAGE_SIZE, Prot::ReadWrite).unwrap();
        m.write(parent, addr, b"shared").unwrap();
        let child = m.fork_space(parent).unwrap();
        m.register_notifier(parent).unwrap();
        let (pfns, ev) = m.pin_user_pages(parent, addr, PAGE_SIZE).unwrap();
        assert_eq!(ev.len(), 1, "pin broke COW");
        assert_eq!(ev[0].cause, InvalidateCause::CowBreak);
        // Parent's pinned frame is now private; parent writes land in it.
        m.write(parent, addr, b"parent").unwrap();
        let mut buf = [0u8; 6];
        m.read_phys(pfns[0], 0, &mut buf);
        assert_eq!(&buf, b"parent");
        // Child unaffected.
        let mut buf = [0u8; 6];
        m.read(child, addr, &mut buf).unwrap();
        assert_eq!(&buf, b"shared");
        m.unpin_pages(&pfns);
    }

    #[test]
    fn pin_failure_rolls_back() {
        let mut m = Memory::new(2, 0);
        let a = m.create_space();
        let addr = m.mmap(a, 4 * PAGE_SIZE, Prot::ReadWrite).unwrap();
        // Only 2 frames available for 4 pages.
        assert!(matches!(
            m.pin_user_pages(a, addr, 4 * PAGE_SIZE),
            Err(MemError::OutOfMemory)
        ));
        assert_eq!(m.frames().pinned_pages(), 0);
    }

    #[test]
    fn partial_pin_reports_leading_pages_and_error() {
        let mut m = Memory::new(2, 0);
        let a = m.create_space();
        let addr = m.mmap(a, 4 * PAGE_SIZE, Prot::ReadWrite).unwrap();
        // 2 frames for 4 pages: the first two pin, the third fails.
        let partial = m.pin_user_pages_partial(a, addr, 4 * PAGE_SIZE);
        assert_eq!(partial.pfns.len(), 2);
        assert!(matches!(partial.error, Some(MemError::OutOfMemory)));
        // No internal rollback: the caller owns the partial pins.
        assert_eq!(m.frames().pinned_pages(), 2);
        m.unpin_pages(&partial.pfns);
        assert_eq!(m.frames().pinned_pages(), 0);
    }

    #[test]
    fn partial_pin_success_matches_per_page_pins() {
        let mut m = memory();
        let a = m.create_space();
        let addr = m.mmap(a, 4 * PAGE_SIZE, Prot::ReadWrite).unwrap();
        let calls0 = m.pin_calls();
        let batch = m.pin_user_pages_partial(a, addr, 4 * PAGE_SIZE);
        assert!(batch.error.is_none());
        assert_eq!(m.pin_calls() - calls0, 1, "one call pins the whole run");
        let mut per_page = Vec::new();
        for i in 0..4 {
            let (pfns, _) = m
                .pin_user_pages(a, addr.add(i * PAGE_SIZE), PAGE_SIZE)
                .unwrap();
            per_page.extend(pfns);
        }
        assert_eq!(batch.pfns, per_page);
        assert_eq!(m.pin_calls() - calls0, 5);
        m.unpin_pages(&batch.pfns);
        m.unpin_pages(&per_page);
        assert_eq!(m.frames().pinned_pages(), 0);
    }

    #[test]
    fn destroy_space_releases_everything() {
        let mut m = memory();
        let a = m.create_space();
        let addr = m.mmap(a, 8 * PAGE_SIZE, Prot::ReadWrite).unwrap();
        m.write(a, addr, &vec![3u8; 8 * PAGE_SIZE as usize])
            .unwrap();
        m.swap_out(a, addr.vpn()).unwrap();
        m.register_notifier(a).unwrap();
        let ev = m.destroy_space(a).unwrap();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].cause, InvalidateCause::Release);
        assert_eq!(m.frames().allocated(), 0);
        assert_eq!(m.swap_used(), 0);
        assert!(matches!(
            m.mmap(a, 1, Prot::ReadWrite),
            Err(MemError::NoSuchSpace)
        ));
    }

    #[test]
    fn space_ids_are_reused() {
        let mut m = memory();
        let a = m.create_space();
        m.destroy_space(a).unwrap();
        let b = m.create_space();
        assert_eq!(a, b);
    }

    #[test]
    fn mmap_addresses_do_not_overlap() {
        let mut m = memory();
        let a = m.create_space();
        let x = m.mmap(a, 10 * PAGE_SIZE, Prot::ReadWrite).unwrap();
        let y = m.mmap(a, 10 * PAGE_SIZE, Prot::ReadWrite).unwrap();
        assert!(y.0 >= x.0 + 10 * PAGE_SIZE || x.0 >= y.0 + 10 * PAGE_SIZE);
    }

    #[test]
    fn munmap_then_mmap_reuses_address() {
        // The malloc/free/malloc reuse pattern the pinning cache depends on:
        // a freed range is handed out again for an equal-size request.
        let mut m = memory();
        let a = m.create_space();
        let x = m.mmap(a, 16 * PAGE_SIZE, Prot::ReadWrite).unwrap();
        m.munmap(a, x, 16 * PAGE_SIZE).unwrap();
        let y = m.mmap(a, 16 * PAGE_SIZE, Prot::ReadWrite).unwrap();
        assert_eq!(x, y);
    }

    #[test]
    fn mmap_at_rejects_busy_range() {
        let mut m = memory();
        let a = m.create_space();
        let x = m
            .mmap_at(a, VirtAddr(0x10_0000), PAGE_SIZE * 2, Prot::ReadWrite)
            .unwrap();
        assert!(matches!(
            m.mmap_at(a, x, PAGE_SIZE, Prot::ReadWrite),
            Err(MemError::RangeBusy(_))
        ));
    }

    #[test]
    fn unpin_pages_partial_is_one_call_and_counts_pages() {
        let mut m = memory();
        let a = m.create_space();
        let addr = m.mmap(a, 8 * PAGE_SIZE, Prot::ReadWrite).unwrap();
        let (pfns, _) = m.pin_user_pages(a, addr, 8 * PAGE_SIZE).unwrap();
        assert_eq!(m.frames().pinned_pages(), 8);

        // Release an arbitrary 3-page run out of the middle: one syscall,
        // three pages, the other five stay pinned.
        let before = m.unpin_calls();
        assert_eq!(m.unpin_pages_partial(&pfns[2..5]), 3);
        assert_eq!(m.unpin_calls(), before + 1);
        assert_eq!(m.frames().pinned_pages(), 5);
        for (i, &pfn) in pfns.iter().enumerate() {
            assert_eq!(m.frames().is_pinned(pfn), !(2..5).contains(&i), "page {i}");
        }

        // The classic wrapper delegates: one more call, everything free.
        m.unpin_pages(&pfns[..2]);
        m.unpin_pages(&pfns[5..]);
        assert_eq!(m.unpin_calls(), before + 3);
        assert_eq!(m.frames().pinned_pages(), 0);
    }
}
