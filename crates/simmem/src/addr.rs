//! Addresses, pages, and ranges.
//!
//! The substrate uses 4 KiB pages like the paper's x86 hosts. Virtual
//! addresses are per-address-space; physical frame numbers ([`Pfn`]) index
//! the node-wide frame pool.

use std::fmt;
use std::ops::Range;

/// Page size in bytes (4 KiB, as on the paper's x86 hosts).
pub const PAGE_SIZE: u64 = 4096;
/// log2 of [`PAGE_SIZE`].
pub const PAGE_SHIFT: u32 = 12;

/// A virtual address within one address space.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtAddr(pub u64);

/// A virtual page number (`VirtAddr >> PAGE_SHIFT`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Vpn(pub u64);

/// A physical frame number indexing the node's frame pool.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Pfn(pub u32);

impl VirtAddr {
    /// The page containing this address.
    #[inline]
    pub fn vpn(self) -> Vpn {
        Vpn(self.0 >> PAGE_SHIFT)
    }

    /// Byte offset within the page.
    #[inline]
    pub fn page_offset(self) -> u64 {
        self.0 & (PAGE_SIZE - 1)
    }

    /// True if page-aligned.
    #[inline]
    pub fn is_page_aligned(self) -> bool {
        self.page_offset() == 0
    }

    /// Round down to the page boundary.
    #[inline]
    pub fn page_floor(self) -> VirtAddr {
        VirtAddr(self.0 & !(PAGE_SIZE - 1))
    }

    /// Round up to the next page boundary.
    #[inline]
    pub fn page_ceil(self) -> VirtAddr {
        VirtAddr(self.0.checked_add(PAGE_SIZE - 1).expect("address overflow") & !(PAGE_SIZE - 1))
    }

    /// Offset this address by `n` bytes.
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn add(self, n: u64) -> VirtAddr {
        VirtAddr(self.0.checked_add(n).expect("address overflow"))
    }
}

impl Vpn {
    /// First byte of this page.
    #[inline]
    pub fn base(self) -> VirtAddr {
        VirtAddr(self.0 << PAGE_SHIFT)
    }

    /// Next page.
    #[inline]
    pub fn next(self) -> Vpn {
        Vpn(self.0 + 1)
    }
}

impl fmt::Debug for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "va:{:#x}", self.0)
    }
}

/// A half-open range of virtual pages `[start, end)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct VpnRange {
    /// First page in the range.
    pub start: Vpn,
    /// One past the last page.
    pub end: Vpn,
}

impl VpnRange {
    /// Construct; empty ranges are allowed (start == end).
    ///
    /// # Panics
    /// Panics if `start > end`.
    pub fn new(start: Vpn, end: Vpn) -> Self {
        assert!(start <= end, "inverted VpnRange");
        VpnRange { start, end }
    }

    /// The smallest page range covering the byte range `[addr, addr+len)`.
    /// A zero-length byte range yields an empty page range.
    pub fn covering(addr: VirtAddr, len: u64) -> Self {
        if len == 0 {
            return VpnRange::new(addr.vpn(), addr.vpn());
        }
        let start = addr.page_floor().vpn();
        let end = addr.add(len - 1).page_floor().vpn().next();
        VpnRange::new(start, end)
    }

    /// Number of pages.
    pub fn len(&self) -> u64 {
        self.end.0 - self.start.0
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// True if `vpn` lies inside.
    pub fn contains(&self, vpn: Vpn) -> bool {
        self.start <= vpn && vpn < self.end
    }

    /// True if the two ranges share at least one page.
    pub fn overlaps(&self, other: &VpnRange) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// The intersection, empty if disjoint.
    pub fn intersect(&self, other: &VpnRange) -> VpnRange {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        if start <= end {
            VpnRange::new(start, end)
        } else {
            VpnRange::new(start, start)
        }
    }

    /// Iterate pages in order.
    pub fn iter(&self) -> impl Iterator<Item = Vpn> {
        (self.start.0..self.end.0).map(Vpn)
    }

    /// As a raw `Range<u64>` of page numbers.
    pub fn as_raw(&self) -> Range<u64> {
        self.start.0..self.end.0
    }
}

/// Split a byte range `[addr, addr+len)` into per-page `(vpn, offset,
/// len_in_page)` chunks — the shape every copy loop in the stack needs.
pub fn page_chunks(addr: VirtAddr, len: u64) -> impl Iterator<Item = (Vpn, u64, u64)> {
    let mut cur = addr;
    let mut remaining = len;
    std::iter::from_fn(move || {
        if remaining == 0 {
            return None;
        }
        let vpn = cur.vpn();
        let off = cur.page_offset();
        let in_page = (PAGE_SIZE - off).min(remaining);
        cur = cur.add(in_page);
        remaining -= in_page;
        Some((vpn, off, in_page))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vpn_and_offsets() {
        let a = VirtAddr(0x12345);
        assert_eq!(a.vpn(), Vpn(0x12));
        assert_eq!(a.page_offset(), 0x345);
        assert!(!a.is_page_aligned());
        assert_eq!(a.page_floor(), VirtAddr(0x12000));
        assert_eq!(a.page_ceil(), VirtAddr(0x13000));
        assert!(VirtAddr(0x13000).is_page_aligned());
        assert_eq!(VirtAddr(0x13000).page_ceil(), VirtAddr(0x13000));
    }

    #[test]
    fn covering_ranges() {
        // One byte -> one page.
        let r = VpnRange::covering(VirtAddr(0x1000), 1);
        assert_eq!((r.start, r.end), (Vpn(1), Vpn(2)));
        // Exactly one page.
        let r = VpnRange::covering(VirtAddr(0x1000), PAGE_SIZE);
        assert_eq!((r.start, r.end), (Vpn(1), Vpn(2)));
        // One byte past a page boundary -> two pages.
        let r = VpnRange::covering(VirtAddr(0x1000), PAGE_SIZE + 1);
        assert_eq!((r.start, r.end), (Vpn(1), Vpn(3)));
        // Unaligned start crossing a boundary.
        let r = VpnRange::covering(VirtAddr(0x1fff), 2);
        assert_eq!((r.start, r.end), (Vpn(1), Vpn(3)));
        // Empty.
        let r = VpnRange::covering(VirtAddr(0x1234), 0);
        assert!(r.is_empty());
    }

    #[test]
    fn range_set_ops() {
        let a = VpnRange::new(Vpn(10), Vpn(20));
        let b = VpnRange::new(Vpn(15), Vpn(25));
        let c = VpnRange::new(Vpn(20), Vpn(30));
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c)); // half-open: touching is not overlapping
        let i = a.intersect(&b);
        assert_eq!((i.start, i.end), (Vpn(15), Vpn(20)));
        assert!(a.intersect(&c).is_empty());
        assert_eq!(a.len(), 10);
        assert!(a.contains(Vpn(10)));
        assert!(!a.contains(Vpn(20)));
    }

    #[test]
    fn page_chunks_cover_exactly() {
        let chunks: Vec<_> = page_chunks(VirtAddr(0x1f00), 0x300).collect();
        assert_eq!(chunks, vec![(Vpn(1), 0xf00, 0x100), (Vpn(2), 0, 0x200)]);
        let total: u64 = chunks.iter().map(|c| c.2).sum();
        assert_eq!(total, 0x300);
        assert_eq!(page_chunks(VirtAddr(0), 0).count(), 0);
    }

    #[test]
    fn page_chunks_large_span() {
        let len = 3 * PAGE_SIZE + 17;
        let chunks: Vec<_> = page_chunks(VirtAddr(0x2010), len).collect();
        let total: u64 = chunks.iter().map(|c| c.2).sum();
        assert_eq!(total, len);
        // Interior chunks are full pages.
        for c in &chunks[1..chunks.len() - 1] {
            assert_eq!(c.2, PAGE_SIZE);
            assert_eq!(c.1, 0);
        }
    }
}
