//! The physical frame pool with byte-backed frames.
//!
//! Every frame carries real bytes so the whole stack can be checked for
//! end-to-end data integrity (a registration cache that goes stale produces
//! *observable corruption* in tests, exactly the failure mode the paper's
//! MMU-notifier design eliminates).
//!
//! Reference counting mirrors Linux `struct page`:
//! * `refcount` — how many mappings / pinners hold the frame alive,
//! * `pin_count` — how many of those references are DMA pins
//!   (`get_user_pages`). A pinned frame may not be swapped or migrated,
//!   and it survives `munmap` until the last pinner releases it.

use crate::addr::{Pfn, PAGE_SIZE};
use crate::error::MemError;

struct Frame {
    data: Box<[u8]>,
    refcount: u32,
    pin_count: u32,
}

/// Fixed-capacity pool of physical frames.
pub struct FrameAllocator {
    frames: Vec<Option<Frame>>,
    free: Vec<Pfn>,
    allocated: usize,
    pinned_pages: usize,
    /// High-water mark of simultaneously pinned pages.
    pinned_peak: usize,
}

impl FrameAllocator {
    /// A pool of `capacity` frames.
    pub fn new(capacity: usize) -> Self {
        let free = (0..capacity as u32).rev().map(Pfn).collect();
        FrameAllocator {
            frames: (0..capacity).map(|_| None).collect(),
            free,
            allocated: 0,
            pinned_pages: 0,
            pinned_peak: 0,
        }
    }

    /// Allocate a zeroed frame with refcount 1.
    pub fn alloc(&mut self) -> Result<Pfn, MemError> {
        let pfn = self.free.pop().ok_or(MemError::OutOfMemory)?;
        let slot = &mut self.frames[pfn.0 as usize];
        debug_assert!(slot.is_none());
        *slot = Some(Frame {
            data: vec![0u8; PAGE_SIZE as usize].into_boxed_slice(),
            refcount: 1,
            pin_count: 0,
        });
        self.allocated += 1;
        Ok(pfn)
    }

    fn frame(&self, pfn: Pfn) -> &Frame {
        self.frames[pfn.0 as usize]
            .as_ref()
            .unwrap_or_else(|| panic!("use of freed frame {pfn:?}"))
    }

    fn frame_mut(&mut self, pfn: Pfn) -> &mut Frame {
        self.frames[pfn.0 as usize]
            .as_mut()
            .unwrap_or_else(|| panic!("use of freed frame {pfn:?}"))
    }

    /// Take an additional reference (new mapping sharing the frame).
    pub fn get(&mut self, pfn: Pfn) {
        self.frame_mut(pfn).refcount += 1;
    }

    /// Drop a reference; the frame is freed when the count reaches zero.
    ///
    /// # Panics
    /// Panics if the frame is freed while still pinned with its last
    /// reference — pinners hold their own reference, so this indicates a
    /// refcounting bug in the caller.
    pub fn put(&mut self, pfn: Pfn) {
        let f = self.frame_mut(pfn);
        assert!(f.refcount > 0, "refcount underflow on {pfn:?}");
        f.refcount -= 1;
        if f.refcount == 0 {
            assert_eq!(f.pin_count, 0, "freeing pinned frame {pfn:?}");
            self.frames[pfn.0 as usize] = None;
            self.free.push(pfn);
            self.allocated -= 1;
        }
    }

    /// Pin the frame for DMA: takes a reference *and* raises the pin count.
    pub fn pin(&mut self, pfn: Pfn) {
        let f = self.frame_mut(pfn);
        f.refcount += 1;
        f.pin_count += 1;
        self.pinned_pages += 1;
        self.pinned_peak = self.pinned_peak.max(self.pinned_pages);
    }

    /// Release a DMA pin (drops the pinner's reference too).
    pub fn unpin(&mut self, pfn: Pfn) {
        {
            let f = self.frame_mut(pfn);
            assert!(f.pin_count > 0, "unpin of unpinned frame {pfn:?}");
            f.pin_count -= 1;
        }
        self.pinned_pages -= 1;
        self.put(pfn);
    }

    /// True if the frame has at least one DMA pin.
    pub fn is_pinned(&self, pfn: Pfn) -> bool {
        self.frame(pfn).pin_count > 0
    }

    /// Current reference count (for tests/assertions).
    pub fn refcount(&self, pfn: Pfn) -> u32 {
        self.frame(pfn).refcount
    }

    /// Read bytes from the frame at `offset`.
    ///
    /// # Panics
    /// Panics if the access crosses the frame boundary or targets a freed
    /// frame — both are driver bugs, not recoverable conditions.
    pub fn read(&self, pfn: Pfn, offset: u64, buf: &mut [u8]) {
        let f = self.frame(pfn);
        let off = offset as usize;
        buf.copy_from_slice(&f.data[off..off + buf.len()]);
    }

    /// Write bytes into the frame at `offset`.
    pub fn write(&mut self, pfn: Pfn, offset: u64, data: &[u8]) {
        let f = self.frame_mut(pfn);
        let off = offset as usize;
        f.data[off..off + data.len()].copy_from_slice(data);
    }

    /// Copy a whole frame's contents onto another frame (COW break,
    /// migration).
    pub fn copy_frame(&mut self, src: Pfn, dst: Pfn) {
        assert_ne!(src, dst);
        let mut tmp = vec![0u8; PAGE_SIZE as usize];
        self.read(src, 0, &mut tmp);
        self.write(dst, 0, &tmp);
    }

    /// Number of frames currently allocated.
    pub fn allocated(&self) -> usize {
        self.allocated
    }

    /// Number of free frames.
    pub fn free_frames(&self) -> usize {
        self.free.len()
    }

    /// Number of page pins currently outstanding (counts multiplicity).
    pub fn pinned_pages(&self) -> usize {
        self.pinned_pages
    }

    /// High-water mark of outstanding pins.
    pub fn pinned_peak(&self) -> usize {
        self.pinned_peak
    }

    /// Pool capacity in frames.
    pub fn capacity(&self) -> usize {
        self.frames.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_cycle() {
        let mut fa = FrameAllocator::new(4);
        let a = fa.alloc().unwrap();
        let b = fa.alloc().unwrap();
        assert_ne!(a, b);
        assert_eq!(fa.allocated(), 2);
        fa.put(a);
        assert_eq!(fa.allocated(), 1);
        let c = fa.alloc().unwrap();
        assert_eq!(c, a, "freed frame is reused");
        fa.put(b);
        fa.put(c);
        assert_eq!(fa.allocated(), 0);
        assert_eq!(fa.free_frames(), 4);
    }

    #[test]
    fn out_of_memory() {
        let mut fa = FrameAllocator::new(1);
        let _a = fa.alloc().unwrap();
        assert!(matches!(fa.alloc(), Err(MemError::OutOfMemory)));
    }

    #[test]
    fn frames_are_zeroed_on_alloc() {
        let mut fa = FrameAllocator::new(2);
        let a = fa.alloc().unwrap();
        fa.write(a, 0, &[0xff; 16]);
        fa.put(a);
        let b = fa.alloc().unwrap();
        assert_eq!(b, a);
        let mut buf = [0xaa; 16];
        fa.read(b, 0, &mut buf);
        assert_eq!(buf, [0u8; 16]);
    }

    #[test]
    fn pin_keeps_frame_alive_past_unmap() {
        let mut fa = FrameAllocator::new(2);
        let a = fa.alloc().unwrap(); // mapping ref
        fa.write(a, 100, b"payload");
        fa.pin(a); // DMA pin
        fa.put(a); // mapping goes away (munmap)
        assert_eq!(fa.allocated(), 1, "pinned frame survives");
        let mut buf = [0u8; 7];
        fa.read(a, 100, &mut buf);
        assert_eq!(&buf, b"payload");
        fa.unpin(a);
        assert_eq!(fa.allocated(), 0);
    }

    #[test]
    fn pin_statistics() {
        let mut fa = FrameAllocator::new(4);
        let a = fa.alloc().unwrap();
        let b = fa.alloc().unwrap();
        fa.pin(a);
        fa.pin(b);
        fa.pin(a); // double pin of the same frame counts twice
        assert_eq!(fa.pinned_pages(), 3);
        assert_eq!(fa.pinned_peak(), 3);
        fa.unpin(a);
        fa.unpin(b);
        assert_eq!(fa.pinned_pages(), 1);
        assert_eq!(fa.pinned_peak(), 3);
        assert!(fa.is_pinned(a));
        fa.unpin(a);
        assert!(!fa.is_pinned(a));
    }

    #[test]
    fn copy_frame_copies_bytes() {
        let mut fa = FrameAllocator::new(2);
        let a = fa.alloc().unwrap();
        let b = fa.alloc().unwrap();
        fa.write(a, 0, b"hello");
        fa.copy_frame(a, b);
        let mut buf = [0u8; 5];
        fa.read(b, 0, &mut buf);
        assert_eq!(&buf, b"hello");
    }

    #[test]
    #[should_panic(expected = "use of freed frame")]
    fn use_after_free_is_caught() {
        let mut fa = FrameAllocator::new(1);
        let a = fa.alloc().unwrap();
        fa.put(a);
        let mut buf = [0u8; 1];
        fa.read(a, 0, &mut buf);
    }

    #[test]
    #[should_panic(expected = "unpin of unpinned frame")]
    fn unbalanced_unpin_is_caught() {
        let mut fa = FrameAllocator::new(1);
        let a = fa.alloc().unwrap();
        fa.unpin(a);
    }
}
