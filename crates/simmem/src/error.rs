//! Error type for the memory substrate.

use std::fmt;

use crate::addr::VirtAddr;

/// Errors surfaced by [`crate::Memory`] operations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MemError {
    /// The physical frame pool is exhausted.
    OutOfMemory,
    /// Access to an address with no VMA backing it (SIGSEGV-equivalent).
    BadAddress(VirtAddr),
    /// Write access to a read-only mapping.
    ProtectionFault(VirtAddr),
    /// Operation on an unknown or destroyed address space.
    NoSuchSpace,
    /// mmap request could not find a free virtual range.
    OutOfVirtualSpace,
    /// The page is pinned and may not be swapped or migrated.
    PagePinned(VirtAddr),
    /// The page is not resident (e.g. migrate of a non-present page).
    NotResident(VirtAddr),
    /// Overlapping fixed-address mmap.
    RangeBusy(VirtAddr),
    /// Swap space exhausted.
    OutOfSwap,
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::OutOfMemory => write!(f, "out of physical memory"),
            MemError::BadAddress(a) => write!(f, "bad address {a:?}"),
            MemError::ProtectionFault(a) => write!(f, "protection fault at {a:?}"),
            MemError::NoSuchSpace => write!(f, "no such address space"),
            MemError::OutOfVirtualSpace => write!(f, "virtual address space exhausted"),
            MemError::PagePinned(a) => write!(f, "page at {a:?} is pinned"),
            MemError::NotResident(a) => write!(f, "page at {a:?} is not resident"),
            MemError::RangeBusy(a) => write!(f, "range at {a:?} is already mapped"),
            MemError::OutOfSwap => write!(f, "swap space exhausted"),
        }
    }
}

impl std::error::Error for MemError {}
