//! Collective-communication algorithms, compiled to per-rank scripts.
//!
//! The algorithms mirror the simple tuned defaults of Open MPI's `coll`
//! framework circa 2009: binomial trees for broadcast/reduce, a ring for
//! allgather(v), recursive reduce+broadcast for allreduce, reduce+scatter
//! for reduce_scatter (documented approximation), and direct pairwise
//! exchange for alltoall. Reduction arithmetic is charged as CPU time at
//! a configurable rate.

use simcore::{Bandwidth, SimDuration};

use crate::script::{Op, Script, Step};

/// Builds one job: `n` rank scripts that stay step-aligned.
pub struct JobBuilder {
    /// Number of ranks.
    pub n: usize,
    /// The per-rank scripts under construction.
    pub scripts: Vec<Script>,
    /// Rate at which reduction arithmetic runs (bytes/s of combined data).
    pub reduce_bw: Bandwidth,
    next_tag: u32,
}

impl JobBuilder {
    /// A fresh job of `n` ranks.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1);
        JobBuilder {
            n,
            scripts: (0..n).map(|_| Script::default()).collect(),
            reduce_bw: Bandwidth::from_gb_per_sec(2.0),
            next_tag: 1,
        }
    }

    /// Allocate a buffer of `size` bytes on every rank; returns its index.
    /// `init(rank)` gives the fill salt (None = uninitialized).
    pub fn alloc(&mut self, size: u64, init: impl Fn(usize) -> Option<u8>) -> usize {
        for (r, s) in self.scripts.iter_mut().enumerate() {
            s.buffers.push(size);
            s.init.push(init(r));
        }
        self.scripts[0].buffers.len() - 1
    }

    /// A fresh tag (collectives use distinct tags so iterations cannot
    /// cross-match).
    pub fn tag(&mut self) -> u32 {
        self.next_tag += 1;
        self.next_tag
    }

    /// Append one step to every rank, built by `f(rank)`.
    pub fn step_all(&mut self, f: impl Fn(usize) -> Vec<Op>) {
        for (r, s) in self.scripts.iter_mut().enumerate() {
            s.push(Step { ops: f(r) });
        }
    }

    /// Current step count (all ranks are aligned).
    pub fn mark(&self) -> usize {
        self.scripts[0].steps.len()
    }

    /// Reduction CPU time for `len` combined bytes.
    fn reduce_cost(&self, len: u64) -> SimDuration {
        self.reduce_bw.time_for_bytes(len)
    }

    /// Compute phase of `dur` on every rank.
    pub fn compute_all(&mut self, dur: SimDuration) {
        self.step_all(|_| vec![Op::Compute { dur }]);
    }

    /// Free+malloc buffer `buf` on every rank (defeats the pinning cache
    /// when the allocator returns fresh pages; exercises MMU-notifier
    /// invalidation when it returns the same address).
    pub fn realloc_all(&mut self, buf: usize) {
        self.step_all(|_| vec![Op::Realloc { buf }]);
    }

    /// IMB PingPong between ranks 0 and 1: one round trip per call.
    pub fn pingpong(&mut self, buf_a: usize, buf_b: usize, len: u64) {
        assert!(self.n >= 2);
        let t1 = self.tag();
        let t2 = self.tag();
        self.step_all(|r| match r {
            0 => vec![Op::Send {
                to: 1,
                tag: t1,
                buf: buf_a,
                offset: 0,
                len,
            }],
            1 => vec![Op::Recv {
                from: 0,
                tag: t1,
                buf: buf_a,
                offset: 0,
                len,
            }],
            _ => vec![],
        });
        self.step_all(|r| match r {
            0 => vec![Op::Recv {
                from: 1,
                tag: t2,
                buf: buf_b,
                offset: 0,
                len,
            }],
            1 => vec![Op::Send {
                to: 0,
                tag: t2,
                buf: buf_b,
                offset: 0,
                len,
            }],
            _ => vec![],
        });
    }

    /// IMB SendRecv: every rank sends to its right neighbour and receives
    /// from its left, simultaneously (periodic chain).
    pub fn sendrecv_ring(&mut self, sbuf: usize, rbuf: usize, len: u64) {
        let n = self.n;
        let tag = self.tag();
        self.step_all(|r| {
            vec![
                Op::Send {
                    to: (r + 1) % n,
                    tag,
                    buf: sbuf,
                    offset: 0,
                    len,
                },
                Op::Recv {
                    from: (r + n - 1) % n,
                    tag,
                    buf: rbuf,
                    offset: 0,
                    len,
                },
            ]
        });
    }

    /// IMB Exchange: send to and receive from both neighbours.
    pub fn exchange(&mut self, sbuf: usize, rbuf: usize, len: u64) {
        let n = self.n;
        let tl = self.tag();
        let tr = self.tag();
        self.step_all(|r| {
            let left = (r + n - 1) % n;
            let right = (r + 1) % n;
            vec![
                Op::Send {
                    to: left,
                    tag: tl,
                    buf: sbuf,
                    offset: 0,
                    len,
                },
                Op::Send {
                    to: right,
                    tag: tr,
                    buf: sbuf,
                    offset: 0,
                    len,
                },
                Op::Recv {
                    from: right,
                    tag: tl,
                    buf: rbuf,
                    offset: 0,
                    len,
                },
                Op::Recv {
                    from: left,
                    tag: tr,
                    buf: rbuf,
                    offset: 0,
                    len,
                },
            ]
        });
    }

    /// Binomial-tree broadcast of `len` bytes from `root` out of `buf`.
    pub fn bcast(&mut self, root: usize, buf: usize, len: u64) {
        let n = self.n;
        if n == 1 {
            return;
        }
        let tag = self.tag();
        let rounds = usize::BITS - (n - 1).leading_zeros();
        for k in 0..rounds {
            let stride = 1usize << k;
            self.step_all(|r| {
                let vr = (r + n - root) % n;
                if vr < stride && vr + stride < n {
                    let peer = (vr + stride + root) % n;
                    vec![Op::Send {
                        to: peer,
                        tag,
                        buf,
                        offset: 0,
                        len,
                    }]
                } else if (stride..2 * stride).contains(&vr) && vr < n {
                    let peer = (vr - stride + root) % n;
                    vec![Op::Recv {
                        from: peer,
                        tag,
                        buf,
                        offset: 0,
                        len,
                    }]
                } else {
                    vec![]
                }
            });
        }
    }

    /// Binomial-tree reduction of `len` bytes into `root`'s `buf`;
    /// `scratch` receives partial results before they are combined.
    pub fn reduce(&mut self, root: usize, buf: usize, scratch: usize, len: u64) {
        let n = self.n;
        if n == 1 {
            return;
        }
        let tag = self.tag();
        let rounds = usize::BITS - (n - 1).leading_zeros();
        let cost = self.reduce_cost(len);
        for k in 0..rounds {
            let stride = 1usize << k;
            self.step_all(|r| {
                let vr = (r + n - root) % n;
                if vr % (2 * stride) == stride {
                    let peer = (vr - stride + root) % n;
                    vec![Op::Send {
                        to: peer,
                        tag: tag + k,
                        buf,
                        offset: 0,
                        len,
                    }]
                } else if vr.is_multiple_of(2 * stride) && vr + stride < n {
                    let peer = (vr + stride + root) % n;
                    vec![Op::Recv {
                        from: peer,
                        tag: tag + k,
                        buf: scratch,
                        offset: 0,
                        len,
                    }]
                } else {
                    vec![]
                }
            });
            // Combine after the data lands (MPI_Reduce semantics).
            self.step_all(|r| {
                let vr = (r + n - root) % n;
                if vr.is_multiple_of(2 * stride) && vr + stride < n {
                    vec![Op::Compute { dur: cost }]
                } else {
                    vec![]
                }
            });
        }
        self.next_tag += rounds;
    }

    /// Allreduce = reduce to rank 0 + broadcast (the classic fallback;
    /// recursive doubling matters little at the 2–8 ranks studied here).
    pub fn allreduce(&mut self, buf: usize, scratch: usize, len: u64) {
        self.reduce(0, buf, scratch, len);
        self.bcast(0, buf, len);
    }

    /// Recursive-doubling allreduce: log2(n) rounds of pairwise exchange +
    /// combine. Only valid for power-of-two rank counts (Open MPI's tuned
    /// choice for small power-of-two communicators).
    ///
    /// # Panics
    /// Panics if `n` is not a power of two.
    pub fn allreduce_rdouble(&mut self, buf: usize, scratch: usize, len: u64) {
        let n = self.n;
        assert!(n.is_power_of_two(), "recursive doubling needs 2^k ranks");
        if n == 1 {
            return;
        }
        let cost = self.reduce_cost(len);
        let rounds = n.trailing_zeros();
        for k in 0..rounds {
            let tag = self.tag();
            let stride = 1usize << k;
            self.step_all(|r| {
                let peer = r ^ stride;
                vec![
                    Op::Send {
                        to: peer,
                        tag,
                        buf,
                        offset: 0,
                        len,
                    },
                    Op::Recv {
                        from: peer,
                        tag,
                        buf: scratch,
                        offset: 0,
                        len,
                    },
                ]
            });
            self.compute_all(cost);
        }
    }

    /// Ring allgatherv: rank `r` contributes `counts[r]` bytes from `sbuf`;
    /// every rank assembles all pieces (at `counts` prefix offsets) in
    /// `rbuf`.
    pub fn allgatherv(&mut self, sbuf: usize, rbuf: usize, counts: &[u64]) {
        let n = self.n;
        assert_eq!(counts.len(), n);
        let offsets: Vec<u64> = counts
            .iter()
            .scan(0, |acc, c| {
                let o = *acc;
                *acc += c;
                Some(o)
            })
            .collect();
        let tag_self = self.tag();
        // Each rank places its own piece via the loopback path.
        let counts_v = counts.to_vec();
        let offs = offsets.clone();
        self.step_all(|r| {
            vec![
                Op::Send {
                    to: r,
                    tag: tag_self,
                    buf: sbuf,
                    offset: 0,
                    len: counts_v[r],
                },
                Op::Recv {
                    from: r,
                    tag: tag_self,
                    buf: rbuf,
                    offset: offs[r],
                    len: counts_v[r],
                },
            ]
        });
        // n-1 ring steps; piece (r - s) travels rightward. After the first
        // step a rank forwards out of its assembly buffer.
        for s in 0..n - 1 {
            let tag = self.tag();
            let counts_v = counts.to_vec();
            let offs = offsets.clone();
            self.step_all(|r| {
                let send_piece = (r + n - s) % n;
                let recv_piece = (r + n - s - 1) % n;
                let (sb, so) = if s == 0 {
                    (sbuf, 0)
                } else {
                    (rbuf, offs[send_piece])
                };
                vec![
                    Op::Send {
                        to: (r + 1) % n,
                        tag,
                        buf: sb,
                        offset: so,
                        len: counts_v[send_piece],
                    },
                    Op::Recv {
                        from: (r + n - 1) % n,
                        tag,
                        buf: rbuf,
                        offset: offs[recv_piece],
                        len: counts_v[recv_piece],
                    },
                ]
            });
        }
    }

    /// Reduce_scatter approximated as binomial reduce to rank 0 followed by
    /// a linear scatter of the segments (see DESIGN.md).
    pub fn reduce_scatter(&mut self, buf: usize, scratch: usize, counts: &[u64]) {
        let n = self.n;
        assert_eq!(counts.len(), n);
        let total: u64 = counts.iter().sum();
        self.reduce(0, buf, scratch, total);
        let offsets: Vec<u64> = counts
            .iter()
            .scan(0, |acc, c| {
                let o = *acc;
                *acc += c;
                Some(o)
            })
            .collect();
        let tag = self.tag();
        let counts_v = counts.to_vec();
        self.step_all(|r| {
            if r == 0 {
                let mut ops: Vec<Op> = (1..n)
                    .map(|peer| Op::Send {
                        to: peer,
                        tag,
                        buf,
                        offset: offsets[peer],
                        len: counts_v[peer],
                    })
                    .collect();
                // Root keeps its own segment in place.
                ops.push(Op::Compute {
                    dur: SimDuration::from_nanos(200),
                });
                ops
            } else {
                vec![Op::Recv {
                    from: 0,
                    tag,
                    buf: scratch,
                    offset: 0,
                    len: counts_v[r],
                }]
            }
        });
    }

    /// Direct pairwise alltoallv: `counts[j]` is the number of bytes every
    /// rank sends *to rank j* (its segment for `j` sits at the prefix-sum
    /// offset of `sbuf`). Rank `r` thus receives `counts[r]` bytes from
    /// each of the `n` ranks, assembled peer-major in `rbuf` (which must
    /// hold `n * counts[r]` bytes).
    pub fn alltoallv(&mut self, sbuf: usize, rbuf: usize, counts: &[u64]) {
        let n = self.n;
        assert_eq!(counts.len(), n);
        let offsets: Vec<u64> = counts
            .iter()
            .scan(0, |acc, c| {
                let o = *acc;
                *acc += c;
                Some(o)
            })
            .collect();
        let tag = self.tag();
        let counts_v = counts.to_vec();
        self.step_all(|r| {
            let mut ops = Vec::with_capacity(2 * n);
            for peer in 0..n {
                ops.push(Op::Send {
                    to: peer,
                    tag,
                    buf: sbuf,
                    offset: offsets[peer],
                    len: counts_v[peer],
                });
                ops.push(Op::Recv {
                    from: peer,
                    tag,
                    buf: rbuf,
                    offset: peer as u64 * counts_v[r],
                    len: counts_v[r],
                });
            }
            ops
        });
    }

    /// Dissemination barrier (8-byte tokens).
    pub fn barrier(&mut self) {
        let n = self.n;
        if n == 1 {
            return;
        }
        let rounds = usize::BITS - (n - 1).leading_zeros();
        for k in 0..rounds {
            let tag = self.tag();
            let stride = 1usize << k;
            self.step_all(|r| {
                vec![
                    Op::Send {
                        to: (r + stride) % n,
                        tag,
                        buf: 0,
                        offset: 0,
                        len: 8,
                    },
                    Op::Recv {
                        from: (r + n - stride) % n,
                        tag,
                        buf: 0,
                        offset: 0,
                        len: 8,
                    },
                ]
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripts_stay_step_aligned() {
        let mut b = JobBuilder::new(4);
        let buf = b.alloc(1 << 20, |_| Some(0x11));
        let scratch = b.alloc(1 << 20, |_| None);
        b.bcast(0, buf, 1 << 20);
        b.reduce(0, buf, scratch, 1 << 20);
        b.allreduce(buf, scratch, 1 << 16);
        b.barrier();
        let lens: Vec<usize> = b.scripts.iter().map(|s| s.steps.len()).collect();
        assert!(lens.windows(2).all(|w| w[0] == w[1]), "{lens:?}");
    }

    #[test]
    fn bcast_structure_binomial() {
        let mut b = JobBuilder::new(8);
        let buf = b.alloc(4096, |_| None);
        b.bcast(0, buf, 4096);
        // 3 rounds for 8 ranks.
        assert_eq!(b.scripts[0].steps.len(), 3);
        // Root sends in every round, never receives.
        for step in &b.scripts[0].steps {
            assert!(step.ops.iter().all(|o| matches!(o, Op::Send { .. })));
            assert_eq!(step.ops.len(), 1);
        }
        // Every non-root receives exactly once across all rounds.
        for r in 1..8 {
            let recvs: usize = b.scripts[r]
                .steps
                .iter()
                .flat_map(|s| &s.ops)
                .filter(|o| matches!(o, Op::Recv { .. }))
                .count();
            assert_eq!(recvs, 1, "rank {r}");
        }
        // Total sends = n - 1.
        let sends: usize = b
            .scripts
            .iter()
            .flat_map(|s| &s.steps)
            .flat_map(|s| &s.ops)
            .filter(|o| matches!(o, Op::Send { .. }))
            .count();
        assert_eq!(sends, 7);
    }

    #[test]
    fn bcast_nonzero_root_and_non_power_of_two() {
        for n in [3usize, 5, 6, 7] {
            for root in 0..n {
                let mut b = JobBuilder::new(n);
                let buf = b.alloc(4096, |_| None);
                b.bcast(root, buf, 4096);
                let sends: usize = b
                    .scripts
                    .iter()
                    .flat_map(|s| &s.steps)
                    .flat_map(|s| &s.ops)
                    .filter(|o| matches!(o, Op::Send { .. }))
                    .count();
                assert_eq!(sends, n - 1, "n={n} root={root}");
                // Sends and receives pair up exactly.
                let recvs: usize = b
                    .scripts
                    .iter()
                    .flat_map(|s| &s.steps)
                    .flat_map(|s| &s.ops)
                    .filter(|o| matches!(o, Op::Recv { .. }))
                    .count();
                assert_eq!(recvs, n - 1);
            }
        }
    }

    #[test]
    fn reduce_structure() {
        let mut b = JobBuilder::new(8);
        let buf = b.alloc(4096, |_| None);
        let scratch = b.alloc(4096, |_| None);
        b.reduce(0, buf, scratch, 4096);
        // Every non-root sends exactly once; root receives log2(8)=3 times.
        for r in 1..8 {
            let sends: usize = b.scripts[r]
                .steps
                .iter()
                .flat_map(|s| &s.ops)
                .filter(|o| matches!(o, Op::Send { .. }))
                .count();
            assert_eq!(sends, 1, "rank {r}");
        }
        let root_recvs: usize = b.scripts[0]
            .steps
            .iter()
            .flat_map(|s| &s.ops)
            .filter(|o| matches!(o, Op::Recv { .. }))
            .count();
        assert_eq!(root_recvs, 3);
    }

    #[test]
    fn allgatherv_moves_every_piece() {
        let n = 4;
        let counts = vec![1000, 2000, 3000, 4000];
        let mut b = JobBuilder::new(n);
        let sbuf = b.alloc(4096, |_| None);
        let rbuf = b.alloc(10_240, |_| None);
        b.allgatherv(sbuf, rbuf, &counts);
        // Self-place + (n-1) ring steps.
        assert_eq!(b.scripts[0].steps.len(), n);
        // Each rank receives total_bytes - 0 (own comes via loopback too).
        for r in 0..n {
            let recv_bytes: u64 = b.scripts[r]
                .steps
                .iter()
                .flat_map(|s| &s.ops)
                .filter_map(|o| match o {
                    Op::Recv { len, .. } => Some(*len),
                    _ => None,
                })
                .sum();
            assert_eq!(recv_bytes, 10_000, "rank {r}");
        }
    }

    #[test]
    fn recursive_doubling_structure() {
        let mut b = JobBuilder::new(8);
        let buf = b.alloc(4096, |_| None);
        let scratch = b.alloc(4096, |_| None);
        b.allreduce_rdouble(buf, scratch, 4096);
        // 3 comm rounds + 3 compute rounds, every rank sends exactly once
        // per comm round.
        assert_eq!(b.scripts[0].steps.len(), 6);
        for script in &b.scripts {
            let sends: usize = script
                .steps
                .iter()
                .flat_map(|s| &s.ops)
                .filter(|o| matches!(o, Op::Send { .. }))
                .count();
            assert_eq!(sends, 3);
        }
    }

    #[test]
    #[should_panic(expected = "needs 2^k ranks")]
    fn recursive_doubling_rejects_odd_ranks() {
        let mut b = JobBuilder::new(6);
        let buf = b.alloc(4096, |_| None);
        let scratch = b.alloc(4096, |_| None);
        b.allreduce_rdouble(buf, scratch, 4096);
    }

    #[test]
    fn pairwise_ops_balance() {
        // Global invariant for every collective: (to, tag, len) multiset of
        // sends equals (from, tag, len) multiset of receives.
        let n = 5;
        let mut b = JobBuilder::new(n);
        let s = b.alloc(1 << 16, |_| None);
        let r = b.alloc(1 << 20, |_| None);
        let scratch = b.alloc(1 << 20, |_| None);
        b.sendrecv_ring(s, r, 4096);
        b.exchange(s, r, 4096);
        b.bcast(2, s, 4096);
        b.reduce(1, s, scratch, 4096);
        b.allgatherv(s, r, &[100, 200, 300, 400, 500]);
        b.alltoallv(s, r, &[10, 20, 30, 40, 50]);
        b.barrier();

        let mut sends = Vec::new();
        let mut recvs = Vec::new();
        for (rank, script) in b.scripts.iter().enumerate() {
            for step in &script.steps {
                for op in &step.ops {
                    match op {
                        Op::Send { to, tag, len, .. } => sends.push((rank, *to, *tag, *len)),
                        Op::Recv { from, tag, len, .. } => recvs.push((*from, rank, *tag, *len)),
                        _ => {}
                    }
                }
            }
        }
        sends.sort_unstable();
        recvs.sort_unstable();
        assert_eq!(sends, recvs);
    }
}
