//! Script-driven processes: the execution model for MPI-style workloads.
//!
//! A [`Script`] is a per-rank program — a sequence of [`Step`]s, each a set
//! of operations issued together and completed together (a barrier within
//! the rank, like a blocking `MPI_Waitall`). Collective algorithms compile
//! into per-rank scripts; the [`ScriptProcess`] executes one on the engine.
//!
//! Matching keys encode `(source_rank << 32) | tag` so receives can match
//! either a specific source (exact) or any source (mask off the high bits).

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use openmx_core::engine::{AppEvent, Ctx, ProcId, Process};
use openmx_core::RequestId;
use simcore::{SimDuration, SimTime};
use simmem::VirtAddr;

/// One operation within a step.
#[derive(Clone, Debug)]
pub enum Op {
    /// Send `len` bytes from buffer `buf` at `offset` to rank `to`.
    Send {
        /// Destination rank.
        to: usize,
        /// Message tag.
        tag: u32,
        /// Source buffer index.
        buf: usize,
        /// Byte offset within the buffer.
        offset: u64,
        /// Bytes to send.
        len: u64,
    },
    /// Receive `len` bytes from rank `from` into buffer `buf` at `offset`.
    Recv {
        /// Source rank.
        from: usize,
        /// Message tag.
        tag: u32,
        /// Destination buffer index.
        buf: usize,
        /// Byte offset within the buffer.
        offset: u64,
        /// Buffer capacity for this receive.
        len: u64,
    },
    /// Receive from any source (tag-only matching).
    RecvAny {
        /// Message tag.
        tag: u32,
        /// Destination buffer index.
        buf: usize,
        /// Byte offset within the buffer.
        offset: u64,
        /// Buffer capacity for this receive.
        len: u64,
    },
    /// Burn CPU (reduction arithmetic, application compute phase).
    Compute {
        /// CPU time to burn.
        dur: SimDuration,
    },
    /// Free buffer `buf` and allocate a fresh one of the same size —
    /// the malloc/free churn that defeats or exercises the pinning cache.
    Realloc {
        /// Buffer index to recycle.
        buf: usize,
    },
}

/// A set of operations issued together; the step completes when all do.
#[derive(Clone, Debug, Default)]
pub struct Step {
    /// The operations of this step.
    pub ops: Vec<Op>,
}

impl Step {
    /// A step with one op.
    pub fn one(op: Op) -> Step {
        Step { ops: vec![op] }
    }
}

/// A per-rank program.
#[derive(Clone, Debug, Default)]
pub struct Script {
    /// Buffer sizes to allocate at start.
    pub buffers: Vec<u64>,
    /// Fill patterns: `Some(salt)` initializes buffer bytes to
    /// `(i as u8) ^ salt` for end-to-end verification.
    pub init: Vec<Option<u8>>,
    /// The steps, executed in order.
    pub steps: Vec<Step>,
}

impl Script {
    /// A script with `n` buffers of the given sizes, uninitialized.
    pub fn with_buffers(sizes: &[u64]) -> Script {
        Script {
            buffers: sizes.to_vec(),
            init: vec![None; sizes.len()],
            steps: Vec::new(),
        }
    }

    /// Append a step.
    pub fn push(&mut self, step: Step) {
        self.steps.push(step);
    }
}

/// What one rank recorded during its run.
#[derive(Clone, Debug, Default)]
pub struct RankRecord {
    /// Completion time of each step.
    pub step_done: Vec<SimTime>,
    /// When the script finished.
    pub finished: Option<SimTime>,
    /// Addresses of the script buffers (for post-run verification).
    pub buffer_addrs: Vec<VirtAddr>,
    /// Any request failures observed.
    pub failures: Vec<&'static str>,
}

/// Shared recorder filled in by every rank.
pub type Recorder = Rc<RefCell<Vec<RankRecord>>>;

/// Create a recorder for `ranks` ranks.
pub fn new_recorder(ranks: usize) -> Recorder {
    Rc::new(RefCell::new(vec![RankRecord::default(); ranks]))
}

/// Build the matching key for (source rank, tag).
pub fn key(src_rank: usize, tag: u32) -> u64 {
    ((src_rank as u64) << 32) | tag as u64
}

/// Mask for tag-only (any-source) matching.
pub const ANY_SOURCE_MASK: u64 = 0x0000_0000_ffff_ffff;

/// Executes a [`Script`] as an engine [`Process`].
pub struct ScriptProcess {
    rank: usize,
    /// rank -> ProcId mapping (identity in simple runs, but explicit).
    ranks: Vec<ProcId>,
    script: Script,
    recorder: Recorder,
    // runtime state
    bufs: Vec<VirtAddr>,
    step: usize,
    outstanding: HashMap<RequestId, ()>,
    computes_outstanding: u32,
}

impl ScriptProcess {
    /// A process executing `script` as `rank` of the job described by
    /// `ranks` (index = rank, value = engine ProcId).
    pub fn new(rank: usize, ranks: Vec<ProcId>, script: Script, recorder: Recorder) -> Self {
        ScriptProcess {
            rank,
            ranks,
            script,
            recorder,
            bufs: Vec::new(),
            step: 0,
            outstanding: HashMap::new(),
            computes_outstanding: 0,
        }
    }

    fn issue_step(&mut self, ctx: &mut Ctx<'_>) {
        while self.step < self.script.steps.len() {
            let ops = self.script.steps[self.step].ops.clone();
            for op in ops {
                match op {
                    Op::Send {
                        to,
                        tag,
                        buf,
                        offset,
                        len,
                    } => {
                        let req = ctx.isend(
                            self.ranks[to],
                            key(self.rank, tag),
                            self.bufs[buf].add(offset),
                            len,
                        );
                        self.outstanding.insert(req, ());
                    }
                    Op::Recv {
                        from,
                        tag,
                        buf,
                        offset,
                        len,
                    } => {
                        let req = ctx.irecv(key(from, tag), !0, self.bufs[buf].add(offset), len);
                        self.outstanding.insert(req, ());
                    }
                    Op::RecvAny {
                        tag,
                        buf,
                        offset,
                        len,
                    } => {
                        let req = ctx.irecv(
                            key(0, tag),
                            ANY_SOURCE_MASK,
                            self.bufs[buf].add(offset),
                            len,
                        );
                        self.outstanding.insert(req, ());
                    }
                    Op::Compute { dur } => {
                        ctx.compute(dur, self.step as u64);
                        self.computes_outstanding += 1;
                    }
                    Op::Realloc { buf } => {
                        // Free + malloc of the same size: typically returns
                        // the same virtual address backed by fresh frames.
                        let size = self.script.buffers[buf];
                        ctx.free(self.bufs[buf]);
                        self.bufs[buf] = ctx.malloc(size);
                        self.recorder.borrow_mut()[self.rank].buffer_addrs[buf] = self.bufs[buf];
                    }
                }
            }
            if self.outstanding.is_empty() && self.computes_outstanding == 0 {
                // Purely local step (e.g. realloc only): complete at once.
                self.recorder.borrow_mut()[self.rank]
                    .step_done
                    .push(ctx.now());
                self.step += 1;
                continue;
            }
            return;
        }
        // Script finished.
        self.recorder.borrow_mut()[self.rank].finished = Some(ctx.now());
        ctx.stop();
    }

    fn maybe_advance(&mut self, ctx: &mut Ctx<'_>) {
        if self.outstanding.is_empty() && self.computes_outstanding == 0 {
            self.recorder.borrow_mut()[self.rank]
                .step_done
                .push(ctx.now());
            self.step += 1;
            self.issue_step(ctx);
        }
    }
}

impl Process for ScriptProcess {
    fn start(&mut self, ctx: &mut Ctx<'_>) {
        for (i, &size) in self.script.buffers.iter().enumerate() {
            let addr = ctx.malloc(size);
            if let Some(salt) = self.script.init[i] {
                let data: Vec<u8> = (0..size).map(|j| (j as u8) ^ salt).collect();
                ctx.write_buf(addr, &data);
            }
            self.bufs.push(addr);
        }
        self.recorder.borrow_mut()[self.rank].buffer_addrs = self.bufs.clone();
        self.issue_step(ctx);
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: AppEvent) {
        match event {
            AppEvent::SendDone(req) | AppEvent::RecvDone(req, _) => {
                let was = self.outstanding.remove(&req);
                assert!(was.is_some(), "completion for unknown request");
                self.maybe_advance(ctx);
            }
            AppEvent::ComputeDone(_) => {
                self.computes_outstanding -= 1;
                self.maybe_advance(ctx);
            }
            AppEvent::Failed(req, reason) => {
                self.recorder.borrow_mut()[self.rank].failures.push(reason);
                // A late failure (e.g. an eager send erroring after its
                // SendDone) names a request that is no longer outstanding;
                // it must only be recorded, not re-complete the step.
                if self.outstanding.remove(&req).is_some() {
                    self.maybe_advance(ctx);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_encoding_separates_sources() {
        assert_ne!(key(0, 5), key(1, 5));
        assert_eq!(key(3, 5) & ANY_SOURCE_MASK, key(7, 5) & ANY_SOURCE_MASK);
        assert_ne!(key(3, 5) & ANY_SOURCE_MASK, key(3, 6) & ANY_SOURCE_MASK);
    }

    #[test]
    fn script_builder() {
        let mut s = Script::with_buffers(&[1024, 2048]);
        assert_eq!(s.buffers.len(), 2);
        s.push(Step::one(Op::Compute {
            dur: SimDuration::from_micros(1),
        }));
        assert_eq!(s.steps.len(), 1);
    }
}
