//! # openmx-mpi — an MPI-flavoured layer over the Open-MX simulation
//!
//! The paper evaluates its pinning optimizations through Open MPI running
//! the Intel MPI Benchmarks and NAS Parallel Benchmarks. This crate
//! recreates that software layer on top of [`openmx_core`]:
//!
//! * [`script`] — the execution model: per-rank programs of steps
//!   (post-all / wait-all), with send/recv/compute/realloc operations and
//!   a shared recorder for timing and verification;
//! * [`collectives`] — broadcast, reduce, allreduce, allgatherv,
//!   reduce_scatter, alltoallv, sendrecv, exchange and barrier, compiled
//!   to step-aligned per-rank scripts (binomial trees / rings, matching
//!   the Open MPI tuned defaults of the paper's era);
//! * [`imb`] — the IMB kernels of Table 2 plus PingPong (Figs. 6–7), with
//!   the IMB measurement methodology (warmup, timed window, max-over-ranks);
//! * [`npb`] — the NPB IS (integer sort) communication kernel, the paper's
//!   large-message application benchmark.

#![warn(missing_docs)]

pub mod collectives;
pub mod imb;
pub mod npb;
pub mod script;

pub use collectives::JobBuilder;
pub use imb::{imb_job, run_imb, run_job, summarize, ImbKernel, ImbResult};
pub use npb::{is_job, IsConfig};
pub use script::{new_recorder, Op, RankRecord, Recorder, Script, ScriptProcess, Step};
