//! Intel MPI Benchmarks (IMB) kernels and the job runner.
//!
//! Each kernel builds the same communication pattern IMB-MPI1 measures:
//! a warmup phase, then `iters` timed repetitions of the collective. The
//! runner reports the average per-iteration time (max across ranks, as
//! IMB does) and end-to-end data checks where the pattern allows them.

use openmx_core::engine::{Cluster, ProcId};
use openmx_core::OpenMxConfig;
use simcore::{SimDuration, SimTime};

use crate::collectives::JobBuilder;
use crate::script::{new_recorder, RankRecord, Script, ScriptProcess};

/// The IMB kernels reproduced from the paper's Table 2 (plus PingPong for
/// Figs. 6–7).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ImbKernel {
    /// IMB PingPong (2 ranks).
    PingPong,
    /// IMB Sendrecv (periodic chain).
    SendRecv,
    /// IMB Allgatherv.
    Allgatherv,
    /// IMB Bcast.
    Bcast,
    /// IMB Reduce.
    Reduce,
    /// IMB Allreduce.
    Allreduce,
    /// IMB Reduce_scatter.
    ReduceScatter,
    /// IMB Exchange.
    Exchange,
}

impl ImbKernel {
    /// Kernel name as IMB prints it.
    pub fn name(self) -> &'static str {
        match self {
            ImbKernel::PingPong => "PingPong",
            ImbKernel::SendRecv => "SendRecv",
            ImbKernel::Allgatherv => "Allgatherv",
            ImbKernel::Bcast => "Broadcast",
            ImbKernel::Reduce => "Reduce",
            ImbKernel::Allreduce => "Allreduce",
            ImbKernel::ReduceScatter => "Reduce_scatter",
            ImbKernel::Exchange => "Exchange",
        }
    }

    /// All Table 2 kernels, in the paper's row order.
    pub fn table2() -> [ImbKernel; 7] {
        [
            ImbKernel::SendRecv,
            ImbKernel::Allgatherv,
            ImbKernel::Bcast,
            ImbKernel::Reduce,
            ImbKernel::Allreduce,
            ImbKernel::ReduceScatter,
            ImbKernel::Exchange,
        ]
    }

    /// Append one repetition of this kernel to the job.
    fn append(self, b: &mut JobBuilder, bufs: &KernelBufs, msg: u64) {
        let n = b.n;
        match self {
            ImbKernel::PingPong => b.pingpong(bufs.a, bufs.b, msg),
            ImbKernel::SendRecv => b.sendrecv_ring(bufs.a, bufs.b, msg),
            ImbKernel::Allgatherv => {
                let counts = vec![msg; n];
                b.allgatherv(bufs.a, bufs.b, &counts);
            }
            ImbKernel::Bcast => b.bcast(0, bufs.a, msg),
            ImbKernel::Reduce => b.reduce(0, bufs.a, bufs.b, msg),
            ImbKernel::Allreduce => b.allreduce(bufs.a, bufs.b, msg),
            ImbKernel::ReduceScatter => {
                let counts = vec![msg / n as u64; n];
                b.reduce_scatter(bufs.a, bufs.b, &counts);
            }
            ImbKernel::Exchange => b.exchange(bufs.a, bufs.b, msg),
        }
    }
}

struct KernelBufs {
    a: usize,
    b: usize,
}

/// Build the full IMB job: warmup + timed iterations.
/// Returns the scripts and the step index where timing starts.
pub fn imb_job(
    kernel: ImbKernel,
    ranks: usize,
    msg: u64,
    warmup: u32,
    iters: u32,
) -> (Vec<Script>, usize) {
    let mut b = JobBuilder::new(ranks);
    // Buffers sized to hold the largest kernel footprint (allgatherv
    // assembles n pieces).
    let big = msg * ranks as u64 + 4096;
    let a = b.alloc(big, |r| Some(r as u8));
    let bb = b.alloc(big, |_| None);
    let bufs = KernelBufs { a, b: bb };
    for _ in 0..warmup {
        kernel.append(&mut b, &bufs, msg);
    }
    b.barrier();
    let mark = b.mark();
    for _ in 0..iters {
        kernel.append(&mut b, &bufs, msg);
    }
    (b.scripts, mark)
}

/// Where each rank runs: block distribution over nodes, as mpirun does
/// with slots (`ppn` ranks per node).
pub fn rank_node(rank: usize, ppn: usize) -> usize {
    rank / ppn
}

/// Instantiate a cluster, run the per-rank scripts, return the cluster and
/// records. Ranks map to ProcIds in order.
pub fn run_job(
    cfg: &OpenMxConfig,
    nodes: usize,
    ppn: usize,
    scripts: Vec<Script>,
) -> (Cluster, Vec<RankRecord>) {
    let ranks = scripts.len();
    assert!(ranks <= nodes * ppn, "not enough slots");
    let recorder = new_recorder(ranks);
    let mut cl = Cluster::new(cfg.clone(), nodes);
    let ids: Vec<ProcId> = (0..ranks as u32).map(ProcId).collect();
    for (rank, script) in scripts.into_iter().enumerate() {
        let p = ScriptProcess::new(rank, ids.clone(), script, recorder.clone());
        let pid = cl.add_process(rank_node(rank, ppn), Box::new(p));
        assert_eq!(pid, ids[rank]);
    }
    cl.run(Some(SimTime::from_nanos(600_000_000_000)));
    let records = recorder.borrow().clone();
    (cl, records)
}

/// Result of one IMB measurement.
#[derive(Clone, Copy, Debug)]
pub struct ImbResult {
    /// Average time per timed iteration (max over ranks, IMB-style).
    pub avg_iter: SimDuration,
    /// Whole-job wall time (used for Table 2's execution-time deltas).
    pub total: SimDuration,
}

/// Run one IMB kernel measurement.
pub fn run_imb(
    cfg: &OpenMxConfig,
    nodes: usize,
    ppn: usize,
    kernel: ImbKernel,
    msg: u64,
    warmup: u32,
    iters: u32,
) -> ImbResult {
    let ranks = if kernel == ImbKernel::PingPong {
        2
    } else {
        nodes * ppn
    };
    let (scripts, mark) = imb_job(kernel, ranks, msg, warmup, iters);
    let (_cl, records) = run_job(cfg, nodes, ppn, scripts);
    summarize(&records, mark, iters)
}

/// Reduce rank records to an [`ImbResult`].
pub fn summarize(records: &[RankRecord], mark: usize, iters: u32) -> ImbResult {
    for (r, rec) in records.iter().enumerate() {
        assert!(
            rec.failures.is_empty(),
            "rank {r} had failures: {:?}",
            rec.failures
        );
        assert!(rec.finished.is_some(), "rank {r} did not finish");
    }
    // Timed window: from the barrier step (mark) to the end, max over
    // ranks at both edges.
    let start = records
        .iter()
        .map(|r| r.step_done[mark - 1])
        .max()
        .expect("ranks");
    let end = records
        .iter()
        .map(|r| r.finished.expect("finished"))
        .max()
        .expect("ranks");
    let window = end.duration_since(start);
    ImbResult {
        avg_iter: window / iters as u64,
        total: end.duration_since(SimTime::ZERO),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openmx_core::PinningMode;

    fn cfg(mode: PinningMode) -> OpenMxConfig {
        OpenMxConfig::with_mode(mode)
    }

    #[test]
    fn pingpong_kernel_runs_and_times() {
        let r = run_imb(
            &cfg(PinningMode::Cached),
            2,
            1,
            ImbKernel::PingPong,
            1 << 20,
            2,
            5,
        );
        // 2 x 1 MiB per iteration at ~1 GiB/s: the round trip must be
        // around 2 ms (very loose sanity bounds).
        let us = r.avg_iter.as_micros_f64();
        assert!((1000.0..5000.0).contains(&us), "avg_iter = {us} us");
    }

    #[test]
    fn all_table2_kernels_complete_on_two_nodes() {
        for kernel in ImbKernel::table2() {
            let r = run_imb(
                &cfg(PinningMode::OverlappedCached),
                2,
                1,
                kernel,
                256 * 1024,
                1,
                3,
            );
            assert!(
                r.avg_iter > SimDuration::ZERO,
                "{} produced zero time",
                kernel.name()
            );
        }
    }

    #[test]
    fn kernels_complete_with_two_ranks_per_node() {
        for kernel in [
            ImbKernel::SendRecv,
            ImbKernel::Allreduce,
            ImbKernel::Exchange,
        ] {
            let r = run_imb(&cfg(PinningMode::Cached), 2, 2, kernel, 128 * 1024, 1, 2);
            assert!(r.avg_iter > SimDuration::ZERO, "{}", kernel.name());
        }
    }

    #[test]
    fn cache_beats_pin_per_comm_on_sendrecv() {
        let base = run_imb(
            &cfg(PinningMode::PinPerComm),
            2,
            1,
            ImbKernel::SendRecv,
            1 << 20,
            2,
            8,
        );
        let cached = run_imb(
            &cfg(PinningMode::Cached),
            2,
            1,
            ImbKernel::SendRecv,
            1 << 20,
            2,
            8,
        );
        assert!(
            cached.avg_iter < base.avg_iter,
            "cache {:?} should beat pin-per-comm {:?}",
            cached.avg_iter,
            base.avg_iter
        );
    }

    #[test]
    fn rank_node_block_distribution() {
        assert_eq!(rank_node(0, 2), 0);
        assert_eq!(rank_node(1, 2), 0);
        assert_eq!(rank_node(2, 2), 1);
        assert_eq!(rank_node(3, 2), 1);
    }
}
