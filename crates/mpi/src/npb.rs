//! The NAS Parallel Benchmarks IS (Integer Sort) communication kernel.
//!
//! NPB IS is the large-message-intensive benchmark of the paper's Table 2
//! (`is.C.4`: class C, 4 processes). Each iteration of the real code does:
//!
//! 1. local key generation / bucket counting (compute),
//! 2. an `MPI_Allreduce` of the bucket histograms (small message),
//! 3. an `MPI_Alltoallv` redistributing the keys (large messages),
//! 4. local ranking of the received keys (compute).
//!
//! We reproduce that communication skeleton with the same message-size
//! *structure*. Class C is 2^27 keys over 4 ranks (512 MiB of key data);
//! the simulated frame pool holds 256 MiB/node, so the default scale-down
//! keeps per-peer alltoallv messages deep in rendezvous territory (≥ 4 MiB)
//! while fitting comfortably — the pinning behaviour under study depends
//! on messages being large, not on the absolute key count (see DESIGN.md).

use simcore::{Bandwidth, SimDuration};

use crate::collectives::JobBuilder;
use crate::script::Script;

/// IS kernel parameters.
#[derive(Clone, Copy, Debug)]
pub struct IsConfig {
    /// Number of ranks (NPB `is.C.4` uses 4).
    pub ranks: usize,
    /// Keys per rank (4 bytes each). Class C would be `2^27 / ranks`.
    pub keys_per_rank: u64,
    /// Number of sort iterations (NPB class C does 10).
    pub iterations: u32,
    /// Local key-processing rate (keys/second) for the compute phases.
    pub keys_per_sec: f64,
}

impl IsConfig {
    /// A scaled-down `is.C.4`: 4 ranks, 2^22 keys/rank (16 MiB of keys
    /// each, 4 MiB per peer per alltoallv), 10 iterations.
    pub fn c4_scaled() -> Self {
        IsConfig {
            ranks: 4,
            keys_per_rank: 1 << 22,
            iterations: 10,
            keys_per_sec: 250e6,
        }
    }

    /// Bytes of keys each rank holds.
    pub fn bytes_per_rank(&self) -> u64 {
        self.keys_per_rank * 4
    }

    /// Bytes sent to each peer in the alltoallv (uniform distribution).
    pub fn bytes_per_peer(&self) -> u64 {
        self.bytes_per_rank() / self.ranks as u64
    }
}

/// Build the per-rank IS scripts. Returns `(scripts, timed_mark)` where
/// `timed_mark` is the step index after the warmup iteration.
pub fn is_job(cfg: &IsConfig) -> (Vec<Script>, usize) {
    let n = cfg.ranks;
    let mut b = JobBuilder::new(n);
    b.reduce_bw = Bandwidth::from_gb_per_sec(2.0);

    let keys = b.alloc(cfg.bytes_per_rank() + 4096, |r| Some(r as u8));
    let recv_keys = b.alloc(cfg.bytes_per_rank() + 4096, |_| None);
    // 1024 buckets x 8 bytes: the small allreduce.
    let hist = b.alloc(8 * 1024, |_| Some(0x33));
    let hist_scratch = b.alloc(8 * 1024, |_| None);

    let count_time = SimDuration::from_secs_f64(cfg.keys_per_rank as f64 / cfg.keys_per_sec);
    let rank_time = SimDuration::from_secs_f64(1.5 * cfg.keys_per_rank as f64 / cfg.keys_per_sec);
    let counts = vec![cfg.bytes_per_peer(); n];

    let one_iteration = |b: &mut JobBuilder| {
        b.compute_all(count_time);
        b.allreduce(hist, hist_scratch, 8 * 1024);
        b.alltoallv(keys, recv_keys, &counts);
        b.compute_all(rank_time);
    };

    // One untimed warmup iteration, then the timed ones (NPB itself times
    // all iterations after an untimed warm-up pass).
    one_iteration(&mut b);
    b.barrier();
    let mark = b.mark();
    for _ in 0..cfg.iterations {
        one_iteration(&mut b);
    }
    (b.scripts, mark)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::imb::{run_job, summarize};
    use openmx_core::{OpenMxConfig, PinningMode};

    #[test]
    fn is_scaled_config_sizes() {
        let c = IsConfig::c4_scaled();
        assert_eq!(c.bytes_per_rank(), 16 << 20);
        assert_eq!(c.bytes_per_peer(), 4 << 20);
        assert!(
            c.bytes_per_peer() >= 32 * 1024,
            "must stay rendezvous-sized"
        );
    }

    #[test]
    fn is_kernel_runs_on_two_nodes() {
        let mut c = IsConfig::c4_scaled();
        c.keys_per_rank = 1 << 20; // lighter for the unit test
        c.iterations = 2;
        let (scripts, mark) = is_job(&c);
        assert_eq!(scripts.len(), 4);
        let cfg = OpenMxConfig::with_mode(PinningMode::Cached);
        let (cl, records) = run_job(&cfg, 2, 2, scripts);
        let res = summarize(&records, mark, c.iterations);
        assert!(res.avg_iter > SimDuration::ZERO);
        assert_eq!(cl.counters().get("requests_failed"), 0);
        // The alltoallv must have used the rendezvous path.
        assert!(cl.counters().get("rndv_msgs_tx") > 0);
        // ...and the intra-node pairs the shm path.
        assert!(cl.counters().get("shm_msgs_tx") > 0);
    }
}
