//! Per-request overlap hints (the paper's §5 adaptive proposal): a
//! blocking operation can force overlapped pinning in a synchronous mode,
//! and an overlap-aware one can disable it in an overlapped mode.

use std::cell::Cell;
use std::rc::Rc;

use openmx_core::engine::{AppEvent, Cluster, Ctx, ProcId, Process};
use openmx_core::{OpenMxConfig, OverlapHint, PinningMode};
use simcore::SimTime;
use simmem::VirtAddr;

const LEN: u64 = 4 << 20;

struct HintedSender {
    hint: OverlapHint,
    done_at: Rc<Cell<SimTime>>,
}
impl Process for HintedSender {
    fn start(&mut self, ctx: &mut Ctx<'_>) {
        let buf = ctx.malloc(LEN);
        ctx.write_buf(buf, &vec![9u8; LEN as usize]);
        ctx.isend_hinted(ProcId(1), 4, buf, LEN, self.hint);
    }
    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: AppEvent) {
        match ev {
            AppEvent::SendDone(_) => {
                self.done_at.set(ctx.now());
                ctx.stop();
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}

struct HintedReceiver {
    hint: OverlapHint,
}
impl Process for HintedReceiver {
    fn start(&mut self, ctx: &mut Ctx<'_>) {
        let buf = ctx.malloc(LEN);
        ctx.irecv_hinted(4, !0, buf, LEN, self.hint);
    }
    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: AppEvent) {
        match ev {
            AppEvent::RecvDone(..) => ctx.stop(),
            other => panic!("unexpected {other:?}"),
        }
    }
}

fn run(mode: PinningMode, hint: OverlapHint) -> (SimTime, u64) {
    let done_at = Rc::new(Cell::new(SimTime::ZERO));
    let cfg = OpenMxConfig::with_mode(mode);
    let mut cl = Cluster::new(cfg, 2);
    cl.add_process(
        0,
        Box::new(HintedSender {
            hint,
            done_at: done_at.clone(),
        }),
    );
    cl.add_process(1, Box::new(HintedReceiver { hint }));
    cl.run(None);
    assert_eq!(cl.counters().get("requests_failed"), 0);
    (done_at.get(), cl.counters().get("pin_pages"))
}

#[test]
fn force_overlap_speeds_up_synchronous_mode() {
    let (t_sync, p1) = run(PinningMode::PinPerComm, OverlapHint::Auto);
    let (t_forced, p2) = run(PinningMode::PinPerComm, OverlapHint::Force);
    assert_eq!(p1, p2, "same pages pinned either way");
    assert!(
        t_forced < t_sync,
        "forced overlap {t_forced} must beat sync {t_sync}"
    );
}

#[test]
fn disable_overlap_reverts_overlapped_mode_to_sync() {
    let (t_overlap, _) = run(PinningMode::Overlapped, OverlapHint::Auto);
    let (t_disabled, _) = run(PinningMode::Overlapped, OverlapHint::Disable);
    let (t_sync, _) = run(PinningMode::PinPerComm, OverlapHint::Auto);
    assert!(t_overlap < t_disabled, "{t_overlap} vs {t_disabled}");
    // Disabling overlap lands on the synchronous timing.
    let a = t_disabled.as_nanos() as f64;
    let b = t_sync.as_nanos() as f64;
    assert!(
        (a - b).abs() / b < 0.02,
        "disabled {t_disabled} ≈ sync {t_sync}"
    );
}

#[test]
fn hints_do_not_change_delivered_data() {
    // Byte-level verification with mixed hints.
    struct VerifSender;
    impl Process for VerifSender {
        fn start(&mut self, ctx: &mut Ctx<'_>) {
            let buf = ctx.malloc(LEN);
            let data: Vec<u8> = (0..LEN).map(|i| (i % 199) as u8).collect();
            ctx.write_buf(buf, &data);
            ctx.isend_hinted(ProcId(1), 4, buf, LEN, OverlapHint::Force);
        }
        fn on_event(&mut self, ctx: &mut Ctx<'_>, _ev: AppEvent) {
            ctx.stop();
        }
    }
    struct VerifReceiver;
    impl Process for VerifReceiver {
        fn start(&mut self, ctx: &mut Ctx<'_>) {
            let buf = ctx.malloc(LEN);
            ctx.irecv_hinted(4, !0, buf, LEN, OverlapHint::Disable);
        }
        fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: AppEvent) {
            if let AppEvent::RecvDone(_, n) = ev {
                assert_eq!(n, LEN);
                let base = ctx.read_buf(VirtAddr(0x100 << 12), 0);
                let _ = base;
                ctx.stop();
            }
        }
    }
    let cfg = OpenMxConfig::with_mode(PinningMode::Cached);
    let mut cl = Cluster::new(cfg, 2);
    cl.add_process(0, Box::new(VerifSender));
    cl.add_process(1, Box::new(VerifReceiver));
    cl.run(None);
    assert_eq!(cl.counters().get("requests_failed"), 0);
}
