//! Integration tests for the observability subsystem: the tracer must
//! capture the exact §3.3 overlap-miss recovery sequence, and the Chrome
//! trace exporter must turn pin bursts into loadable spans.

use openmx_core::engine::{AppEvent, Cluster, Ctx, ProcId, Process};
use openmx_core::obs::{chrome_trace_json, csv};
use openmx_core::{OpenMxConfig, PinningMode};
use simcore::SimDuration;
use simmem::VirtAddr;

/// One-way stream: sends `msgs` messages of `len` bytes to proc 1.
struct Sender {
    len: u64,
    sent: u32,
    msgs: u32,
    buf: VirtAddr,
}

struct Receiver {
    len: u64,
    got: u32,
    msgs: u32,
    buf: VirtAddr,
}

impl Process for Sender {
    fn start(&mut self, ctx: &mut Ctx<'_>) {
        self.buf = ctx.malloc(self.len);
        ctx.write_buf(self.buf, &vec![0x5a; self.len as usize]);
        ctx.isend(ProcId(1), 7, self.buf, self.len);
    }
    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: AppEvent) {
        if let AppEvent::SendDone(_) = ev {
            self.sent += 1;
            if self.sent < self.msgs {
                ctx.isend(ProcId(1), 7, self.buf, self.len);
            } else {
                ctx.stop();
            }
        }
    }
}

impl Process for Receiver {
    fn start(&mut self, ctx: &mut Ctx<'_>) {
        self.buf = ctx.malloc(self.len);
        ctx.irecv(7, !0, self.buf, self.len);
    }
    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: AppEvent) {
        if let AppEvent::RecvDone(..) = ev {
            self.got += 1;
            if self.got < self.msgs {
                ctx.irecv(7, !0, self.buf, self.len);
            } else {
                ctx.stop();
            }
        }
    }
}

/// Overlapped pinning with the receive bottom half colocated on the
/// pinning core (the paper's §4.3 overload scenario): pull replies outrun
/// the pin cursor, so misses are guaranteed.
fn forced_miss_cfg() -> OpenMxConfig {
    let mut cfg = OpenMxConfig::with_mode(PinningMode::Overlapped);
    cfg.colocate_with_bh = true;
    // Recover via the pull-stall timer quickly so the run stays short.
    cfg.retransmit_timeout = SimDuration::from_millis(5);
    cfg
}

fn run_stream(cfg: OpenMxConfig, len: u64, msgs: u32) -> Cluster {
    let mut cl = Cluster::new(cfg, 2);
    cl.enable_trace();
    cl.add_process(
        0,
        Box::new(Sender {
            len,
            sent: 0,
            msgs,
            buf: VirtAddr(0),
        }),
    );
    cl.add_process(
        1,
        Box::new(Receiver {
            len,
            got: 0,
            msgs,
            buf: VirtAddr(0),
        }),
    );
    cl.run(None);
    cl
}

/// Asserts `needles` appear in `haystack` in order (not necessarily
/// adjacent) and returns the matched positions.
fn assert_subsequence(haystack: &[&str], needles: &[&str]) {
    let mut it = haystack.iter();
    for n in needles {
        assert!(
            it.any(|k| k == n),
            "event sequence missing {n:?} (in order {needles:?});\nsaw: {haystack:?}"
        );
    }
}

#[test]
fn overlap_miss_recovery_sequence_is_traced() {
    let cl = run_stream(forced_miss_cfg(), 4 << 20, 2);

    let misses = cl.counters().get("overlap_miss_rx");
    assert!(misses > 0, "scenario must force at least one overlap miss");
    assert_eq!(cl.metrics().overlap_misses(), misses);
    assert!(cl.metrics().overlap_miss_rate() > 0.0);

    // The §3.3 story on the receiver node, in event order: a pin burst
    // starts, a pull reply outruns the cursor (miss), the frame is
    // dropped, a retransmission recovers it, and the pin completes.
    let rx_kinds: Vec<&str> = cl
        .tracer()
        .iter()
        .filter(|r| r.node == 1)
        .map(|r| r.event.kind())
        .collect();
    assert_subsequence(
        &rx_kinds,
        &[
            "pin_start",
            "overlap_miss_rx",
            "packet_drop",
            "retransmit",
            "pin_complete",
        ],
    );
}

#[test]
fn chrome_trace_export_has_pin_spans_and_miss_events() {
    let cl = run_stream(forced_miss_cfg(), 4 << 20, 2);
    let json = chrome_trace_json(cl.tracer());
    assert!(json.starts_with("{\"traceEvents\":["));
    assert!(json.ends_with("],\"otherData\":{\"dropped_events\":\"0\"}}"));
    assert!(
        json.contains("\"name\":\"pin\",\"ph\":\"X\""),
        "paired pin bursts must export as complete spans"
    );
    assert!(
        json.contains("\"name\":\"overlap_miss_rx\""),
        "forced misses must appear as instant events"
    );

    let text = csv(cl.tracer());
    let mut lines = text.lines();
    assert_eq!(lines.next(), Some("time_ns,node,proc,kind,detail"));
    assert!(lines.clone().any(|l| l.contains("overlap_miss_rx")));
    // Header + one row per record + the dropped_events footer.
    assert_eq!(text.lines().count() - 2, cl.tracer().len());
    assert_eq!(text.lines().last(), Some("# dropped_events=0"));
}

#[test]
fn clean_overlapped_run_records_pin_latency_without_misses() {
    // Regular affinity: the overlap works as designed — pins finish inside
    // the rendezvous round trip and nothing drops.
    let cfg = OpenMxConfig::with_mode(PinningMode::Overlapped);
    let cl = run_stream(cfg, 1 << 20, 2);
    assert_eq!(cl.metrics().overlap_misses(), 0);
    assert!(
        cl.metrics().pin_latency.count() > 0,
        "pins must be recorded"
    );
    let p50 = cl.metrics().pin_latency.quantile(0.5);
    assert!(p50 > SimDuration::ZERO);
    // Every pin_start on the tracer has a matching pin_complete.
    let starts = cl
        .tracer()
        .iter()
        .filter(|r| r.event.kind() == "pin_start")
        .count();
    let completes = cl
        .tracer()
        .iter()
        .filter(|r| r.event.kind() == "pin_complete")
        .count();
    assert!(starts > 0);
    assert_eq!(starts, completes);
}

#[test]
fn backoff_decisions_and_injected_faults_are_traced() {
    use openmx_core::obs::TraceEvent;
    use simnet::{FaultConfig, FaultProfile};

    let mut cfg = OpenMxConfig::with_mode(PinningMode::OverlappedCached);
    let mut faults = FaultConfig::clean();
    let hostile = FaultProfile {
        duplicate: 0.5,
        loss: 0.05,
        ..FaultProfile::default()
    };
    faults.set_link(0, 1, hostile);
    faults.set_link(1, 0, hostile);
    cfg.net.faults = faults;
    cfg.retransmit_timeout = SimDuration::from_millis(20);
    let cl = run_stream(cfg, 1 << 20, 2);

    let has = |pred: &dyn Fn(&TraceEvent) -> bool| cl.tracer().iter().any(|r| pred(&r.event));
    assert!(
        has(&|e| matches!(e, TraceEvent::Backoff { .. })),
        "adaptive timer arms must be traced"
    );
    assert!(
        has(&|e| matches!(e, TraceEvent::FaultInjected { .. })),
        "injected faults must be traced"
    );
    assert!(cl.metrics().faults_injected() > 0);
    // The rto_applied histogram mirrors the Backoff trace events.
    let backoffs = cl
        .tracer()
        .iter()
        .filter(|r| r.event.kind() == "backoff")
        .count() as u64;
    assert_eq!(cl.metrics().rto_applied.count(), backoffs);
}

#[test]
fn tracer_disabled_by_default_and_capacity_bounds_memory() {
    let cfg = OpenMxConfig::with_mode(PinningMode::Overlapped);
    let mut cl = Cluster::new(cfg, 2);
    assert!(!cl.tracer().is_enabled());
    cl.enable_trace_with_capacity(8);
    cl.add_process(
        0,
        Box::new(Sender {
            len: 1 << 20,
            sent: 0,
            msgs: 1,
            buf: VirtAddr(0),
        }),
    );
    cl.add_process(
        1,
        Box::new(Receiver {
            len: 1 << 20,
            got: 0,
            msgs: 1,
            buf: VirtAddr(0),
        }),
    );
    cl.run(None);
    assert_eq!(cl.tracer().len(), 8, "ring must stay at capacity");
    assert!(cl.tracer().dropped() > 0, "overflow must be counted");
}
