//! Integration tests for causal transfer tracing: one rendezvous
//! transfer under packet loss must fold into a single correlated
//! cross-node span tree whose critical-path attribution partitions the
//! end-to-end latency exactly.

use openmx_core::engine::{AppEvent, Cluster, Ctx, ProcId, Process};
use openmx_core::obs::{build_spans, per_proc_latency};
use openmx_core::{OpenMxConfig, PinningMode};
use simcore::SimDuration;
use simmem::VirtAddr;
use simnet::{FaultConfig, FaultProfile};

struct Sender {
    len: u64,
    sent: u32,
    msgs: u32,
    buf: VirtAddr,
}

struct Receiver {
    len: u64,
    got: u32,
    msgs: u32,
    buf: VirtAddr,
}

impl Process for Sender {
    fn start(&mut self, ctx: &mut Ctx<'_>) {
        self.buf = ctx.malloc(self.len);
        ctx.write_buf(self.buf, &vec![0x5a; self.len as usize]);
        ctx.isend(ProcId(1), 7, self.buf, self.len);
    }
    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: AppEvent) {
        if let AppEvent::SendDone(_) = ev {
            self.sent += 1;
            if self.sent < self.msgs {
                ctx.isend(ProcId(1), 7, self.buf, self.len);
            } else {
                ctx.stop();
            }
        }
    }
}

impl Process for Receiver {
    fn start(&mut self, ctx: &mut Ctx<'_>) {
        self.buf = ctx.malloc(self.len);
        ctx.irecv(7, !0, self.buf, self.len);
    }
    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: AppEvent) {
        if let AppEvent::RecvDone(..) = ev {
            self.got += 1;
            if self.got < self.msgs {
                ctx.irecv(7, !0, self.buf, self.len);
            } else {
                ctx.stop();
            }
        }
    }
}

fn run_stream(cfg: OpenMxConfig, len: u64, msgs: u32) -> Cluster {
    let mut cl = Cluster::new(cfg, 2);
    cl.enable_trace();
    cl.add_process(
        0,
        Box::new(Sender {
            len,
            sent: 0,
            msgs,
            buf: VirtAddr(0),
        }),
    );
    cl.add_process(
        1,
        Box::new(Receiver {
            len,
            got: 0,
            msgs,
            buf: VirtAddr(0),
        }),
    );
    cl.run(None);
    cl
}

/// Overlapped pinning, 5% i.i.d. loss on both directions of the 0↔1 link.
fn lossy_cfg() -> OpenMxConfig {
    let mut cfg = OpenMxConfig::with_mode(PinningMode::Overlapped);
    let mut faults = FaultConfig::clean();
    let lossy = FaultProfile {
        loss: 0.05,
        ..FaultProfile::default()
    };
    faults.set_link(0, 1, lossy);
    faults.set_link(1, 0, lossy);
    cfg.net.faults = faults;
    cfg.retransmit_timeout = SimDuration::from_millis(20);
    cfg
}

/// The acceptance scenario: ONE rendezvous transfer under 5% loss folds
/// into a SINGLE span tree with records from both nodes, and
/// pin_wait + wire + retransmit_backoff + host_overhead equals the
/// transfer's end-to-end latency (the partition is exact, so "within one
/// virtual tick" holds with zero slack).
#[test]
fn lossy_rndv_produces_one_exact_cross_node_span() {
    let cl = run_stream(lossy_cfg(), 1 << 20, 1);
    assert!(
        cl.counters().get("net_frames_lost") > 0,
        "the 5% loss links must actually drop frames"
    );

    let spans = build_spans(cl.tracer());
    assert_eq!(
        spans.len(),
        1,
        "one transfer must correlate into exactly one span tree"
    );
    let s = &spans[0];
    assert_eq!(
        s.nodes,
        vec![0, 1],
        "the span must contain records from both the sender and receiver node"
    );
    assert!(s.events > 4, "rndv + pulls + completion events expected");

    let cp = &s.critical_path;
    assert_eq!(
        cp.pin_wait_ns + cp.wire_ns + cp.retransmit_backoff_ns + cp.host_overhead_ns,
        s.duration_ns(),
        "attribution must partition the end-to-end latency exactly"
    );
    assert!(
        cp.wire_ns > 0,
        "a 1 MiB pull phase must spend time on the wire"
    );

    // The span begins at the sender's rendezvous transmission (the timer
    // arm's backoff record and the rndv_tx share that instant) and covers
    // the whole causal chain.
    let first = cl
        .tracer()
        .iter()
        .find(|r| r.event.xfer().is_some())
        .unwrap();
    assert_eq!(first.node, 0, "the causal chain starts on the sender node");
    assert!(matches!(first.kind(), "backoff" | "rndv_tx"));
    assert_eq!(s.start_ns, first.time.as_nanos());
}

/// Forced overlap miss + retransmission recovery: the miss recovery goes
/// through the pull-stall timer, so the attribution must charge a nonzero
/// share to retransmit backoff — and still sum exactly.
#[test]
fn forced_miss_attribution_charges_backoff_and_sums_exactly() {
    let mut cfg = OpenMxConfig::with_mode(PinningMode::Overlapped);
    cfg.colocate_with_bh = true;
    cfg.retransmit_timeout = SimDuration::from_millis(5);
    let cl = run_stream(cfg, 4 << 20, 2);
    assert!(cl.metrics().overlap_misses() > 0, "misses must be forced");

    let spans = build_spans(cl.tracer());
    assert_eq!(spans.len(), 2, "two transfers, two spans");
    let total_backoff: u64 = spans
        .iter()
        .map(|s| s.critical_path.retransmit_backoff_ns)
        .sum();
    assert!(
        total_backoff > 0,
        "miss recovery via the stall timer must be attributed to backoff"
    );
    for s in &spans {
        assert_eq!(
            s.critical_path.total_ns(),
            s.duration_ns(),
            "xfer {}: attribution must be exact",
            s.xfer.0
        );
        assert!(
            s.children.iter().any(|c| c.name == "overlap_window"),
            "xfer {}: the rndv→first-pull overlap window must be a child span",
            s.xfer.0
        );
    }

    let stats = per_proc_latency(&spans);
    assert_eq!(stats.len(), 1, "both transfers initiated by proc 0");
    assert_eq!(stats[0].count, 2);
    assert!(stats[0].p50_ns > 0 && stats[0].p50_ns <= stats[0].p99_ns);
}

/// The tracer ring's evicted-record count must be mirrored into the
/// metrics registry, so exports and post-mortems are self-describing
/// about truncation.
#[test]
fn dropped_events_mirrored_into_metrics() {
    let cfg = OpenMxConfig::with_mode(PinningMode::Overlapped);
    let mut cl = Cluster::new(cfg, 2);
    cl.enable_trace_with_capacity(8);
    cl.add_process(
        0,
        Box::new(Sender {
            len: 1 << 20,
            sent: 0,
            msgs: 1,
            buf: VirtAddr(0),
        }),
    );
    cl.add_process(
        1,
        Box::new(Receiver {
            len: 1 << 20,
            got: 0,
            msgs: 1,
            buf: VirtAddr(0),
        }),
    );
    cl.run(None);
    assert!(cl.tracer().dropped() > 0);
    assert_eq!(cl.metrics().dropped_events(), cl.tracer().dropped());
}
