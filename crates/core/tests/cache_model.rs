//! Randomized differential test of [`RegionCache`] against a naive
//! reference model.
//!
//! The model is a flat `Vec` with linear scans and explicit LRU stamps —
//! slow but obviously correct. Both implementations are driven through
//! the same seeded op sequence (lookup / insert / remove / drain) over a
//! small key universe so collisions, replacements and evictions all
//! happen often, and every response is compared. A descriptor-conservation
//! ledger additionally checks that every inserted id is handed back
//! exactly once (evicted, replaced, removed or drained) or still cached
//! at the end — i.e. the cache can never leak a driver declaration.

use openmx_core::cache::{CacheOutcome, RegionCache};
use openmx_core::driver::RegionId;
use openmx_core::region::Segment;
use simcore::SimRng;
use simmem::VirtAddr;
use std::collections::BTreeSet;

/// Naive reference: (key, id, lru-stamp) triples, linear everything.
struct ModelCache {
    capacity: usize,
    entries: Vec<(Vec<Segment>, RegionId, u64)>,
    clock: u64,
}

impl ModelCache {
    fn new(capacity: usize) -> Self {
        ModelCache {
            capacity,
            entries: Vec::new(),
            clock: 0,
        }
    }

    fn lookup(&mut self, key: &[Segment]) -> Option<RegionId> {
        self.clock += 1;
        for (k, id, stamp) in &mut self.entries {
            if k == key {
                *stamp = self.clock;
                return Some(*id);
            }
        }
        None
    }

    fn insert(&mut self, key: Vec<Segment>, id: RegionId) -> Option<RegionId> {
        if self.capacity == 0 {
            return None;
        }
        self.clock += 1;
        for (k, old, stamp) in &mut self.entries {
            if *k == key {
                let replaced = *old;
                *old = id;
                *stamp = self.clock;
                return if replaced == id { None } else { Some(replaced) };
            }
        }
        self.entries.push((key, id, self.clock));
        if self.entries.len() > self.capacity {
            // Stamps are unique (the clock ticks on every op), so the
            // LRU victim is unambiguous.
            let victim = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, _, stamp))| *stamp)
                .map(|(i, _)| i)
                .unwrap();
            let (_, id, _) = self.entries.remove(victim);
            return Some(id);
        }
        None
    }

    fn remove_by_id(&mut self, id: RegionId) -> bool {
        match self.entries.iter().position(|(_, rid, _)| *rid == id) {
            Some(i) => {
                self.entries.remove(i);
                true
            }
            None => false,
        }
    }

    fn drain(&mut self) -> Vec<RegionId> {
        self.entries.drain(..).map(|(_, id, _)| id).collect()
    }

    fn cached_ids(&self) -> Vec<RegionId> {
        let mut ids: Vec<RegionId> = self.entries.iter().map(|(_, id, _)| *id).collect();
        ids.sort_by_key(|r| r.0);
        ids
    }
}

fn key_universe() -> Vec<Vec<Segment>> {
    // Small on purpose: repeated lookups/inserts of the same keys are the
    // interesting cases. Includes multi-segment keys and a shared-prefix
    // pair to make sure the whole vector is the key.
    let seg = |addr: u64, len: u64| Segment {
        addr: VirtAddr(addr),
        len,
    };
    vec![
        vec![seg(0x1000, 4096)],
        vec![seg(0x1000, 8192)],
        vec![seg(0x2000, 4096)],
        vec![seg(0x3000, 12288)],
        vec![seg(0x1000, 4096), seg(0x2000, 4096)],
        vec![seg(0x1000, 4096), seg(0x2000, 8192)],
        vec![seg(0x5000, 4096), seg(0x7000, 4096), seg(0x9000, 4096)],
    ]
}

/// Drive both caches through one seeded op sequence and compare every
/// response plus the final contents; return the conservation ledger
/// outcome (ids handed back + ids still cached).
fn run_one(seed: u64, capacity: usize, ops: usize) {
    let keys = key_universe();
    let mut rng = SimRng::new(seed).derive_stream("cache-model");
    let mut real = RegionCache::new(capacity);
    let mut model = ModelCache::new(capacity);

    let mut next_id = 0u32;
    let mut issued: BTreeSet<RegionId> = BTreeSet::new();
    let mut returned: Vec<RegionId> = Vec::new();

    for opno in 0..ops {
        match rng.below(10) {
            // Lookup (the common path).
            0..=4 => {
                let key = &keys[rng.below(keys.len() as u64) as usize];
                let got = real.lookup(key);
                let want = model.lookup(key);
                match (got, want) {
                    (CacheOutcome::Hit(a), Some(b)) => {
                        assert_eq!(a, b, "seed {seed} op {opno}: hit id diverged")
                    }
                    (CacheOutcome::Miss, None) => {}
                    other => panic!("seed {seed} op {opno}: lookup diverged: {other:?}"),
                }
            }
            // Insert a fresh descriptor (miss-then-declare path).
            5..=7 => {
                let key = keys[rng.below(keys.len() as u64) as usize].clone();
                next_id += 1;
                let id = RegionId(next_id);
                issued.insert(id);
                let got = real.insert(key.clone(), id);
                let want = model.insert(key, id);
                assert_eq!(got, want, "seed {seed} op {opno}: insert diverged");
                returned.extend(got);
            }
            // Remove a random ever-issued id (space-death path).
            8 => {
                if issued.is_empty() {
                    continue;
                }
                let pick = rng.below(issued.len() as u64) as usize;
                let id = *issued.iter().nth(pick).unwrap();
                let got = real.remove_by_id(id);
                let want = model.remove_by_id(id);
                assert_eq!(got, want, "seed {seed} op {opno}: remove diverged");
                if got {
                    returned.push(id);
                }
            }
            // Drain (endpoint close), then keep going on the empty cache.
            _ => {
                let mut got = real.drain();
                let mut want = model.drain();
                got.sort_by_key(|r| r.0);
                want.sort_by_key(|r| r.0);
                assert_eq!(got, want, "seed {seed} op {opno}: drain diverged");
                returned.extend(got);
                assert!(real.is_empty());
            }
        }
        assert_eq!(
            real.cached_ids(),
            model.cached_ids(),
            "seed {seed} op {opno}: contents diverged"
        );
        assert_eq!(real.len(), model.entries.len());
        assert!(real.len() <= capacity);
    }

    // Conservation: every issued id was handed back exactly once, or is
    // still cached (and never both). A double return would double-free a
    // driver declaration; a missing one would leak it.
    let cached: BTreeSet<RegionId> = real.cached_ids().into_iter().collect();
    let mut seen: BTreeSet<RegionId> = BTreeSet::new();
    for id in &returned {
        assert!(seen.insert(*id), "seed {seed}: id {id:?} returned twice");
        assert!(
            !cached.contains(id),
            "seed {seed}: id {id:?} both returned and still cached"
        );
    }
    if capacity > 0 {
        for id in &issued {
            assert!(
                seen.contains(id) || cached.contains(id),
                "seed {seed}: id {id:?} leaked (never returned, not cached)"
            );
        }
    }
}

#[test]
fn cache_matches_reference_model() {
    for seed in 0..40 {
        let capacity = [1, 2, 3, 4, 8][seed as usize % 5];
        run_one(seed, capacity, 400);
    }
}

#[test]
fn cache_matches_reference_model_zero_capacity() {
    // Degenerate but supported: caching disabled, every lookup misses,
    // inserts hand ownership straight back (as None — caller keeps it).
    run_one(1234, 0, 200);
}

#[test]
fn cache_matches_reference_model_large_capacity() {
    // Capacity above the key universe: no evictions, only replacements.
    for seed in 100..110 {
        run_one(seed, 16, 300);
    }
}
