//! Deeper protocol tests: matching order, wildcard sources, concurrent
//! use of one buffer, posting order symmetry, loopback, and multi-process
//! nodes.

use std::cell::RefCell;
use std::rc::Rc;

use openmx_core::engine::{AppEvent, Cluster, Ctx, ProcId, Process};
use openmx_core::{OpenMxConfig, PinningMode};
use simmem::VirtAddr;

/// Harness process driven by closures, to keep the scenarios compact.
type StartFn = Box<dyn FnMut(&mut Ctx<'_>)>;
type EventFn = Box<dyn FnMut(&mut Ctx<'_>, AppEvent)>;

struct Closures {
    start: StartFn,
    event: EventFn,
}
impl Process for Closures {
    fn start(&mut self, ctx: &mut Ctx<'_>) {
        (self.start)(ctx)
    }
    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: AppEvent) {
        (self.event)(ctx, ev)
    }
}

fn proc_of(
    start: impl FnMut(&mut Ctx<'_>) + 'static,
    event: impl FnMut(&mut Ctx<'_>, AppEvent) + 'static,
) -> Box<dyn Process> {
    Box::new(Closures {
        start: Box::new(start),
        event: Box::new(event),
    })
}

fn cluster(mode: PinningMode, nodes: usize) -> Cluster {
    Cluster::new(OpenMxConfig::with_mode(mode), nodes)
}

#[test]
fn any_source_recv_matches_arrivals_from_different_senders() {
    // Rank 2 posts two wildcard receives; ranks 0 and 1 each send once.
    let got: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
    let mut cl = cluster(PinningMode::Cached, 3);
    const LEN: u64 = 100 * 1024;
    const TAG_MASK: u64 = 0x0000_0000_ffff_ffff;

    for sender in 0..2u32 {
        cl.add_process(
            sender as usize,
            proc_of(
                move |ctx| {
                    let buf = ctx.malloc(LEN);
                    ctx.write_buf(buf, &vec![sender as u8 + 1; LEN as usize]);
                    // match key = (rank << 32) | tag so wildcards can mask.
                    let key = ((sender as u64) << 32) | 7;
                    ctx.isend(ProcId(2), key, buf, LEN);
                },
                |ctx, ev| {
                    if let AppEvent::SendDone(_) = ev {
                        ctx.stop();
                    }
                },
            ),
        );
    }
    let got2 = got.clone();
    let bufs: Rc<RefCell<Vec<VirtAddr>>> = Rc::new(RefCell::new(Vec::new()));
    let bufs2 = bufs.clone();
    let mut remaining = 2;
    cl.add_process(
        2,
        proc_of(
            move |ctx| {
                for _ in 0..2 {
                    let b = ctx.malloc(LEN);
                    bufs2.borrow_mut().push(b);
                    ctx.irecv(7, TAG_MASK, b, LEN);
                }
            },
            move |ctx, ev| {
                if let AppEvent::RecvDone(_, n) = ev {
                    got2.borrow_mut().push(n);
                    remaining -= 1;
                    if remaining == 0 {
                        // Both senders' payloads landed (order may vary).
                        let mut firsts: Vec<u8> = bufs
                            .borrow()
                            .iter()
                            .map(|&b| ctx.read_buf(b, 1)[0])
                            .collect();
                        firsts.sort_unstable();
                        assert_eq!(firsts, vec![1, 2]);
                        ctx.stop();
                    }
                }
            },
        ),
    );
    cl.run(None);
    assert_eq!(got.borrow().len(), 2);
    assert_eq!(cl.counters().get("requests_failed"), 0);
}

#[test]
fn concurrent_sends_from_one_buffer_share_the_cached_region() {
    // Two outstanding sends of the same buffer to two peers: the cached
    // region's use_count handles overlap; one pin serves both.
    let mut cl = cluster(PinningMode::Cached, 3);
    const LEN: u64 = 512 * 1024;
    let mut done = 0;
    cl.add_process(
        0,
        proc_of(
            |ctx| {
                let buf = ctx.malloc(LEN);
                ctx.write_buf(buf, &vec![0xEE; LEN as usize]);
                ctx.isend(ProcId(1), 1, buf, LEN);
                ctx.isend(ProcId(2), 2, buf, LEN);
            },
            move |ctx, ev| {
                if let AppEvent::SendDone(_) = ev {
                    done += 1;
                    if done == 2 {
                        ctx.stop();
                    }
                }
            },
        ),
    );
    for peer in 1..3u32 {
        cl.add_process(
            peer as usize,
            proc_of(
                move |ctx| {
                    let buf = ctx.malloc(LEN);
                    ctx.irecv(peer as u64, !0, buf, LEN);
                },
                |ctx, ev| {
                    if let AppEvent::RecvDone(_, n) = ev {
                        assert_eq!(n, LEN);
                        ctx.stop();
                    }
                },
            ),
        );
    }
    cl.run(None);
    let c = cl.counters();
    assert_eq!(c.get("requests_failed"), 0);
    // One pin of the sender buffer (128 pages) + one per receiver.
    assert_eq!(
        cl.node_counters(0).get("pin_pages"),
        LEN / 4096,
        "the second send must reuse the already-pinned region"
    );
}

#[test]
fn send_first_and_recv_first_orders_both_deliver() {
    // Unexpected-rndv path vs posted-first path must both work; use a
    // compute delay to force each ordering.
    for recv_late in [false, true] {
        let mut cl = cluster(PinningMode::OverlappedCached, 2);
        const LEN: u64 = 256 * 1024;
        cl.add_process(
            0,
            proc_of(
                |ctx| {
                    let buf = ctx.malloc(LEN);
                    ctx.write_buf(buf, &vec![0x3C; LEN as usize]);
                    ctx.isend(ProcId(1), 5, buf, LEN);
                },
                |ctx, ev| {
                    if let AppEvent::SendDone(_) = ev {
                        ctx.stop();
                    }
                },
            ),
        );
        let delay = if recv_late {
            simcore::SimDuration::from_millis(5)
        } else {
            simcore::SimDuration::from_nanos(1)
        };
        cl.add_process(
            1,
            proc_of(
                move |ctx| {
                    ctx.compute(delay, 1);
                },
                move |ctx, ev| match ev {
                    AppEvent::ComputeDone(_) => {
                        let buf = ctx.malloc(LEN);
                        ctx.irecv(5, !0, buf, LEN);
                    }
                    AppEvent::RecvDone(_, n) => {
                        assert_eq!(n, LEN);
                        ctx.stop();
                    }
                    other => panic!("unexpected {other:?}"),
                },
            ),
        );
        cl.run(None);
        assert_eq!(
            cl.counters().get("requests_failed"),
            0,
            "recv_late={recv_late}"
        );
    }
}

#[test]
fn loopback_send_to_self_works() {
    let mut cl = cluster(PinningMode::Cached, 1);
    const LEN: u64 = 64 * 1024;
    let mut recv_seen = false;
    cl.add_process(
        0,
        proc_of(
            |ctx| {
                let sbuf = ctx.malloc(LEN);
                let rbuf = ctx.malloc(LEN);
                ctx.write_buf(sbuf, &vec![0x99; LEN as usize]);
                ctx.irecv(3, !0, rbuf, LEN);
                ctx.isend(ProcId(0), 3, sbuf, LEN);
            },
            move |ctx, ev| match ev {
                AppEvent::RecvDone(_, n) => {
                    assert_eq!(n, LEN);
                    recv_seen = true;
                }
                AppEvent::SendDone(_) => {
                    if recv_seen {
                        ctx.stop();
                    }
                }
                other => panic!("unexpected {other:?}"),
            },
        ),
    );
    cl.run(None);
    assert_eq!(cl.counters().get("shm_msgs_tx"), 1);
}

#[test]
fn four_processes_on_one_node_all_pairs() {
    // All-pairs shm traffic on a single node: 4 procs, each sends to the
    // next, all data through the shared-memory path.
    let mut cl = cluster(PinningMode::Cached, 1);
    const LEN: u64 = 200 * 1024;
    for me in 0..4u32 {
        let peer = (me + 1) % 4;
        let from = (me + 3) % 4;
        let mut got = false;
        let mut sent = false;
        cl.add_process(
            0,
            proc_of(
                move |ctx| {
                    let sbuf = ctx.malloc(LEN);
                    let rbuf = ctx.malloc(LEN);
                    ctx.write_buf(sbuf, &vec![me as u8; LEN as usize]);
                    ctx.irecv(((from as u64) << 8) | 1, !0, rbuf, LEN);
                    ctx.isend(ProcId(peer), ((me as u64) << 8) | 1, sbuf, LEN);
                },
                move |ctx, ev| {
                    match ev {
                        AppEvent::RecvDone(..) => got = true,
                        AppEvent::SendDone(_) => sent = true,
                        other => panic!("unexpected {other:?}"),
                    }
                    if got && sent {
                        ctx.stop();
                    }
                },
            ),
        );
    }
    cl.run(None);
    let c = cl.counters();
    assert_eq!(c.get("shm_msgs_tx"), 4);
    assert_eq!(c.get("rndv_msgs_tx"), 0, "single node: no wire traffic");
    assert_eq!(c.get("requests_failed"), 0);
}

#[test]
fn fifo_matching_between_same_pair() {
    // Two same-tag messages from one sender must land in posting order.
    let mut cl = cluster(PinningMode::Cached, 2);
    const LEN: u64 = 128 * 1024;
    let mut sent = 0;
    cl.add_process(
        0,
        proc_of(
            |ctx| {
                let b1 = ctx.malloc(LEN);
                let b2 = ctx.malloc(LEN);
                ctx.write_buf(b1, &vec![1; LEN as usize]);
                ctx.write_buf(b2, &vec![2; LEN as usize]);
                ctx.isend(ProcId(1), 9, b1, LEN);
                ctx.isend(ProcId(1), 9, b2, LEN);
            },
            move |ctx, ev| {
                if let AppEvent::SendDone(_) = ev {
                    sent += 1;
                    if sent == 2 {
                        ctx.stop();
                    }
                }
            },
        ),
    );
    let order: Rc<RefCell<Vec<u8>>> = Rc::new(RefCell::new(Vec::new()));
    let order2 = order.clone();
    let bufs: Rc<RefCell<Vec<VirtAddr>>> = Rc::new(RefCell::new(Vec::new()));
    let bufs2 = bufs.clone();
    let mut done = 0;
    cl.add_process(
        1,
        proc_of(
            move |ctx| {
                for _ in 0..2 {
                    let b = ctx.malloc(LEN);
                    bufs2.borrow_mut().push(b);
                    ctx.irecv(9, !0, b, LEN);
                }
            },
            move |ctx, ev| {
                if let AppEvent::RecvDone(..) = ev {
                    done += 1;
                    if done == 2 {
                        for &b in bufs.borrow().iter() {
                            order2.borrow_mut().push(ctx.read_buf(b, 1)[0]);
                        }
                        ctx.stop();
                    }
                }
            },
        ),
    );
    cl.run(None);
    assert_eq!(*order.borrow(), vec![1, 2], "FIFO per-pair ordering");
}

#[test]
fn vectorial_send_gathers_segments() {
    // An iovec-style send of three scattered, unaligned segments arrives
    // as one contiguous message — both through the rendezvous (zero-copy
    // gather from pinned pages) and the eager path.
    use openmx_core::Segment;
    for per_seg in [100 * 1024u64 /* rndv */, 5 * 1024 /* eager */] {
        let total = 3 * per_seg;
        let got: Rc<RefCell<Vec<u8>>> = Rc::new(RefCell::new(Vec::new()));
        let got2 = got.clone();
        let mut cl = cluster(PinningMode::OverlappedCached, 2);
        cl.add_process(
            0,
            proc_of(
                move |ctx| {
                    let a = ctx.malloc(per_seg + 8192);
                    let b = ctx.malloc(per_seg + 8192);
                    let c = ctx.malloc(per_seg + 8192);
                    // Unaligned starts, distinct fill per segment.
                    let segs = [
                        Segment {
                            addr: a.add(13),
                            len: per_seg,
                        },
                        Segment {
                            addr: b.add(4099),
                            len: per_seg,
                        },
                        Segment {
                            addr: c.add(1),
                            len: per_seg,
                        },
                    ];
                    for (i, s) in segs.iter().enumerate() {
                        let fill: Vec<u8> =
                            (0..s.len).map(|j| (j as u8) ^ (0x10 + i as u8)).collect();
                        ctx.write_buf(s.addr, &fill);
                    }
                    ctx.isendv(ProcId(1), 11, &segs);
                },
                |ctx, ev| {
                    if let AppEvent::SendDone(_) = ev {
                        ctx.stop();
                    }
                },
            ),
        );
        cl.add_process(
            1,
            proc_of(
                move |ctx| {
                    let buf = ctx.malloc(total);
                    ctx.irecv(11, !0, buf, total);
                },
                move |ctx, ev| {
                    if let AppEvent::RecvDone(_, n) = ev {
                        assert_eq!(n, total);
                        // Receiver buffer address: re-derive via read of
                        // the only allocation: we saved nothing, so read
                        // through a fresh lookup is impossible — instead
                        // capture at malloc time in the closure below.
                        ctx.stop();
                        let _ = &got2;
                    }
                },
            ),
        );
        cl.run(None);
        assert_eq!(cl.counters().get("requests_failed"), 0, "per_seg={per_seg}");
    }
}

#[test]
fn vectorial_send_data_verified() {
    use openmx_core::Segment;
    let per_seg = 80 * 1024u64;
    let total = 2 * per_seg;
    let rbuf_addr: Rc<RefCell<VirtAddr>> = Rc::new(RefCell::new(VirtAddr(0)));
    let rb = rbuf_addr.clone();
    let ok = Rc::new(RefCell::new(false));
    let ok2 = ok.clone();
    let mut cl = cluster(PinningMode::Cached, 2);
    cl.add_process(
        0,
        proc_of(
            move |ctx| {
                let a = ctx.malloc(per_seg + 4096);
                let b = ctx.malloc(per_seg + 4096);
                let segs = [
                    Segment {
                        addr: a.add(7),
                        len: per_seg,
                    },
                    Segment {
                        addr: b.add(513),
                        len: per_seg,
                    },
                ];
                ctx.write_buf(segs[0].addr, &vec![0xA1; per_seg as usize]);
                ctx.write_buf(segs[1].addr, &vec![0xB2; per_seg as usize]);
                ctx.isendv(ProcId(1), 12, &segs);
            },
            |ctx, ev| {
                if let AppEvent::SendDone(_) = ev {
                    ctx.stop();
                }
            },
        ),
    );
    cl.add_process(
        1,
        proc_of(
            move |ctx| {
                let buf = ctx.malloc(total);
                *rb.borrow_mut() = buf;
                ctx.irecv(12, !0, buf, total);
            },
            move |ctx, ev| {
                if let AppEvent::RecvDone(_, n) = ev {
                    assert_eq!(n, total);
                    let addr = *rbuf_addr.borrow();
                    let data = ctx.read_buf(addr, total);
                    let half = per_seg as usize;
                    assert!(data[..half].iter().all(|&v| v == 0xA1));
                    assert!(data[half..].iter().all(|&v| v == 0xB2));
                    *ok2.borrow_mut() = true;
                    ctx.stop();
                }
            },
        ),
    );
    cl.run(None);
    assert!(*ok.borrow());
}

#[test]
fn control_frame_loss_recovery_matrix() {
    // Deterministically drop the first N frames for N = 1..8: this kills,
    // in turn, the rndv, each initial pull request, early pull replies —
    // every control path must recover via retransmission.
    for n in 1..=8u64 {
        let mut cfg = OpenMxConfig::with_mode(PinningMode::OverlappedCached);
        cfg.net.drop_first = n;
        cfg.retransmit_timeout = simcore::SimDuration::from_millis(10);
        let mut cl = Cluster::new(cfg, 2);
        const LEN: u64 = 256 * 1024;
        cl.add_process(
            0,
            proc_of(
                |ctx| {
                    let buf = ctx.malloc(LEN);
                    ctx.write_buf(buf, &vec![0x55; LEN as usize]);
                    ctx.isend(ProcId(1), 4, buf, LEN);
                },
                |ctx, ev| {
                    if let AppEvent::SendDone(_) = ev {
                        ctx.stop();
                    }
                },
            ),
        );
        let ok = Rc::new(RefCell::new(false));
        let ok2 = ok.clone();
        cl.add_process(
            1,
            proc_of(
                |ctx| {
                    let buf = ctx.malloc(LEN);
                    ctx.irecv(4, !0, buf, LEN);
                },
                move |ctx, ev| {
                    if let AppEvent::RecvDone(_, len) = ev {
                        assert_eq!(len, LEN);
                        *ok2.borrow_mut() = true;
                        ctx.stop();
                    }
                },
            ),
        );
        cl.run(Some(simcore::SimTime::from_nanos(30_000_000_000)));
        assert!(*ok.borrow(), "drop_first={n}: transfer must recover");
        assert_eq!(cl.counters().get("requests_failed"), 0, "drop_first={n}");
    }
}
