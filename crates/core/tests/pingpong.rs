//! End-to-end engine tests: pingpong transfers across every pinning mode,
//! with byte-level data verification.

use openmx_core::engine::{AppEvent, Cluster, Ctx, ProcId, Process};
use openmx_core::{OpenMxConfig, PinningMode};
use simcore::SimTime;
use simmem::VirtAddr;

/// Sends `iters` messages of `len` bytes to proc 1 and waits for the echo.
struct Pinger {
    len: u64,
    iters: u32,
    done: u32,
    buf: VirtAddr,
    rbuf: VirtAddr,
    verify: bool,
}

/// Echoes everything back.
struct Ponger {
    len: u64,
    iters: u32,
    done: u32,
    buf: VirtAddr,
}

fn pattern(len: u64, salt: u8) -> Vec<u8> {
    (0..len).map(|i| (i as u8) ^ salt).collect()
}

impl Process for Pinger {
    fn start(&mut self, ctx: &mut Ctx<'_>) {
        self.buf = ctx.malloc(self.len);
        self.rbuf = ctx.malloc(self.len);
        ctx.write_buf(self.buf, &pattern(self.len, 0xA5));
        ctx.irecv(1, !0, self.rbuf, self.len);
        ctx.isend(ProcId(1), 0, self.buf, self.len);
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: AppEvent) {
        match ev {
            AppEvent::RecvDone(_, n) => {
                assert_eq!(n, self.len);
                if self.verify {
                    let got = ctx.read_buf(self.rbuf, self.len);
                    assert_eq!(got, pattern(self.len, 0xA5), "echo corrupted");
                }
                self.done += 1;
                if self.done < self.iters {
                    ctx.irecv(1, !0, self.rbuf, self.len);
                    ctx.isend(ProcId(1), 0, self.buf, self.len);
                } else {
                    ctx.stop();
                }
            }
            AppEvent::SendDone(_) => {}
            other => panic!("pinger: unexpected {other:?}"),
        }
    }
}

impl Process for Ponger {
    fn start(&mut self, ctx: &mut Ctx<'_>) {
        self.buf = ctx.malloc(self.len);
        ctx.irecv(0, !0, self.buf, self.len);
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: AppEvent) {
        match ev {
            AppEvent::RecvDone(_, n) => {
                assert_eq!(n, self.len);
                ctx.isend(ProcId(0), 1, self.buf, self.len);
            }
            AppEvent::SendDone(_) => {
                self.done += 1;
                if self.done < self.iters {
                    ctx.irecv(0, !0, self.buf, self.len);
                } else {
                    ctx.stop();
                }
            }
            other => panic!("ponger: unexpected {other:?}"),
        }
    }
}

/// Run a verified pingpong; returns (cluster, final time).
fn pingpong(mode: PinningMode, len: u64, iters: u32, ioat: bool) -> (Cluster, SimTime) {
    let mut cfg = OpenMxConfig::with_mode(mode);
    cfg.use_ioat = ioat;
    let mut cl = Cluster::new(cfg, 2);
    cl.add_process(
        0,
        Box::new(Pinger {
            len,
            iters,
            done: 0,
            buf: VirtAddr(0),
            rbuf: VirtAddr(0),
            verify: true,
        }),
    );
    cl.add_process(
        1,
        Box::new(Ponger {
            len,
            iters,
            done: 0,
            buf: VirtAddr(0),
        }),
    );
    let end = cl.run(Some(SimTime::from_nanos(60_000_000_000)));
    (cl, end)
}

#[test]
fn eager_pingpong_delivers_correct_data() {
    let (cl, end) = pingpong(PinningMode::PinPerComm, 4 * 1024, 5, false);
    assert!(end > SimTime::ZERO);
    let c = cl.counters();
    assert_eq!(c.get("eager_msgs_tx"), 10, "5 pings + 5 pongs, all eager");
    assert_eq!(c.get("rndv_msgs_tx"), 0);
    assert_eq!(c.get("requests_failed"), 0);
}

#[test]
fn rndv_pingpong_all_modes_verify() {
    for mode in PinningMode::all() {
        let (cl, _) = pingpong(mode, 1 << 20, 3, false);
        let c = cl.counters();
        assert_eq!(c.get("requests_failed"), 0, "{mode:?}");
        assert_eq!(c.get("rndv_msgs_tx"), 6, "{mode:?}: all large transfers");
        assert_eq!(c.get("pull_stall_timeouts"), 0, "{mode:?}: no stalls");
    }
}

#[test]
fn rndv_pingpong_with_ioat_verifies() {
    for mode in [PinningMode::PinPerComm, PinningMode::OverlappedCached] {
        let (cl, _) = pingpong(mode, 1 << 20, 3, true);
        assert_eq!(cl.counters().get("requests_failed"), 0, "{mode:?}");
    }
}

#[test]
fn unaligned_sizes_survive_all_modes() {
    for mode in PinningMode::all() {
        for len in [32 * 1024, 65_537, 1_000_003] {
            let (cl, _) = pingpong(mode, len, 2, false);
            assert_eq!(
                cl.counters().get("requests_failed"),
                0,
                "{mode:?} len={len}"
            );
        }
    }
}

#[test]
fn cached_mode_hits_cache_on_reuse() {
    let (cl, _) = pingpong(PinningMode::Cached, 1 << 20, 10, false);
    // Pinger: 10 sends of buf + 10 recvs of rbuf -> first use of each
    // misses, the rest hit.
    let stats = cl.cache_stats(ProcId(0));
    assert_eq!(stats.misses, 2, "one per distinct buffer");
    assert_eq!(stats.hits, 18);
    // Pinning happened once per buffer, not once per iteration.
    let c = cl.counters();
    let pages_per_buffer = (1u64 << 20) / 4096;
    // Pinger has two buffers; the ponger reuses one buffer for both recv
    // and send (same cache key) -> 3 distinct regions pinned once each.
    assert_eq!(c.get("pin_pages"), 3 * pages_per_buffer);
}

#[test]
fn pin_per_comm_pins_every_iteration() {
    let (cl, _) = pingpong(PinningMode::PinPerComm, 1 << 20, 10, false);
    let c = cl.counters();
    let pages_per_buffer = (1u64 << 20) / 4096;
    // 10 iterations x (send pin + recv pin) on each side = 40 pins total.
    assert_eq!(c.get("pin_pages"), 40 * pages_per_buffer);
    assert_eq!(c.get("unpin_pages"), 40 * pages_per_buffer);
}

#[test]
fn permanent_mode_never_unpins() {
    let (cl, _) = pingpong(PinningMode::Permanent, 1 << 20, 10, false);
    let c = cl.counters();
    assert_eq!(c.get("unpin_pages"), 0);
    let pages_per_buffer = (1u64 << 20) / 4096;
    assert_eq!(c.get("pin_pages"), 3 * pages_per_buffer);
}

#[test]
fn overlapped_mode_is_faster_than_pin_per_comm() {
    let (_, t_sync) = pingpong(PinningMode::PinPerComm, 4 << 20, 5, false);
    let (_, t_overlap) = pingpong(PinningMode::Overlapped, 4 << 20, 5, false);
    let (_, t_cache) = pingpong(PinningMode::Cached, 4 << 20, 5, false);
    assert!(
        t_overlap < t_sync,
        "overlap {t_overlap} should beat sync {t_sync}"
    );
    assert!(
        t_cache < t_sync,
        "cache {t_cache} should beat sync {t_sync}"
    );
}

#[test]
fn overlap_misses_are_rare_under_normal_load() {
    let (cl, _) = pingpong(PinningMode::Overlapped, 16 << 20, 3, false);
    let c = cl.counters();
    let frames = c.get("frames_rx");
    let misses = c.get("overlap_miss_rx") + c.get("overlap_miss_tx");
    assert!(frames > 10_000, "16MB x 3 x 2 dirs is many frames");
    // Paper §4.3: less than 1 in 10 000 under regular load.
    assert!(
        (misses as f64) < (frames as f64) * 1e-4 + 1.0,
        "misses={misses} frames={frames}"
    );
    assert_eq!(c.get("requests_failed"), 0);
}

#[test]
fn deterministic_across_runs() {
    let (cl1, t1) = pingpong(PinningMode::OverlappedCached, 1 << 20, 4, true);
    let (cl2, t2) = pingpong(PinningMode::OverlappedCached, 1 << 20, 4, true);
    assert_eq!(t1, t2, "same config + seed => same virtual time");
    let c1: Vec<_> = cl1.counters().iter().collect();
    let c2: Vec<_> = cl2.counters().iter().collect();
    assert_eq!(c1, c2);
}
