//! Crash fault-domain regressions: transfers touching a dead peer must
//! reach a clean `Failed` completion through the watchdog short-circuit,
//! never hang in retry loops, and frames from dead incarnations must be
//! fenced at arrival.

use std::cell::RefCell;
use std::rc::Rc;

use openmx_core::engine::{AppEvent, Cluster, Ctx, ProcId, Process};
use openmx_core::{OpenMxConfig, PinningMode};
use simcore::SimTime;

type StartFn = Box<dyn FnMut(&mut Ctx<'_>)>;
type EventFn = Box<dyn FnMut(&mut Ctx<'_>, AppEvent)>;

struct Closures {
    start: StartFn,
    event: EventFn,
}
impl Process for Closures {
    fn start(&mut self, ctx: &mut Ctx<'_>) {
        (self.start)(ctx)
    }
    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: AppEvent) {
        (self.event)(ctx, ev)
    }
}

fn proc_of(
    start: impl FnMut(&mut Ctx<'_>) + 'static,
    event: impl FnMut(&mut Ctx<'_>, AppEvent) + 'static,
) -> Box<dyn Process> {
    Box::new(Closures {
        start: Box::new(start),
        event: Box::new(event),
    })
}

fn idle() -> Box<dyn Process> {
    proc_of(|_| {}, |_, _| {})
}

/// Regression: a rendezvous sender whose peer dies between the rndv
/// notify and the first pull request used to grind through the full
/// retry budget before erroring. The rndv watchdog must now observe the
/// dead endpoint on its first fire and short-circuit to a clean failure.
#[test]
fn rndv_sender_short_circuits_when_peer_dies_before_pull() {
    const LEN: u64 = 256 * 1024;
    let failures: Rc<RefCell<Vec<String>>> = Rc::new(RefCell::new(Vec::new()));
    let failures2 = failures.clone();

    let mut cl = Cluster::new(OpenMxConfig::with_mode(PinningMode::Cached), 2);
    cl.add_process(
        0,
        proc_of(
            |ctx| {
                let buf = ctx.malloc(LEN);
                ctx.write_buf(buf, &vec![0xab; LEN as usize]);
                ctx.isend(ProcId(1), 7, buf, LEN);
            },
            move |ctx, ev| match ev {
                AppEvent::Failed(_, reason) => {
                    failures2.borrow_mut().push(reason.to_string());
                    ctx.stop();
                }
                AppEvent::SendDone(_) => panic!("send to a dead peer must not complete"),
                _ => {}
            },
        ),
    );
    // The receiver never posts a matching recv, so no pull ever starts.
    cl.add_process(1, idle());

    // Let the rendezvous go on the wire, then kill the receiver.
    cl.step_until(SimTime::from_nanos(200_000));
    cl.crash_proc(ProcId(1));
    let end = cl.run(Some(SimTime::from_nanos(60_000_000_000)));

    assert_eq!(
        failures.borrow().as_slice(),
        ["peer crashed"],
        "sender must observe exactly one clean peer-crash failure"
    );
    let c = cl.counters();
    assert!(c.get("peer_dead_aborts") >= 1, "watchdog short-circuit");
    assert_eq!(c.get("requests_failed"), 1);
    assert!(
        c.get("rndv_retrans") <= 1,
        "short-circuit must not burn the retry budget ({} retrans)",
        c.get("rndv_retrans")
    );
    assert!(
        end < SimTime::from_nanos(5_000_000_000),
        "failure must land in watchdog time, not retry-exhaustion time (at {end:?})"
    );
}

/// An eager frame racing a crash is fenced at arrival (the dead
/// incarnation must not receive it), and the unacked sender is failed by
/// the eager watchdog instead of retransmitting forever.
#[test]
fn eager_frame_racing_a_crash_is_fenced_and_sender_aborts() {
    const LEN: u64 = 2048;
    let failures: Rc<RefCell<Vec<String>>> = Rc::new(RefCell::new(Vec::new()));
    let failures2 = failures.clone();

    let mut cl = Cluster::new(OpenMxConfig::with_mode(PinningMode::Cached), 2);
    cl.add_process(
        0,
        proc_of(
            |ctx| {
                let buf = ctx.malloc(LEN);
                ctx.write_buf(buf, &vec![0x5a; LEN as usize]);
                ctx.isend(ProcId(1), 9, buf, LEN);
            },
            move |ctx, ev| {
                if let AppEvent::Failed(_, reason) = ev {
                    failures2.borrow_mut().push(reason.to_string());
                    ctx.stop();
                }
            },
        ),
    );
    cl.add_process(1, idle());

    // Crash while the eager frame is still in flight: it must be fenced
    // at arrival, so the ack never comes back.
    cl.step_until(SimTime::from_nanos(500));
    cl.crash_proc(ProcId(1));
    cl.run(Some(SimTime::from_nanos(60_000_000_000)));

    assert_eq!(failures.borrow().as_slice(), ["peer crashed"]);
    let c = cl.counters();
    assert!(
        c.get("frames_fenced") >= 1,
        "in-flight frame must be fenced at the dead endpoint"
    );
    assert!(c.get("peer_dead_aborts") >= 1);
}
