//! Golden-file round-trip tests for the trace exporters: the Chrome JSON
//! and CSV formats are parsed back (by structural string scanning — the
//! formats are flat and hand-assembled, so no JSON library is needed) and
//! checked for event count, ordering, and field stability.

use openmx_core::driver::RegionId;
use openmx_core::engine::ProcId;
use openmx_core::obs::{chrome_spans_json, chrome_trace_json, csv, Tracer};
use openmx_core::obs::{TraceEvent, TraceRecord};
use openmx_core::wire::{MsgId, XferId};
use simcore::SimTime;

fn rec(ns: u64, node: usize, proc: Option<u32>, event: TraceEvent) -> TraceRecord {
    TraceRecord {
        time: SimTime::from_nanos(ns),
        node,
        proc: proc.map(ProcId),
        event,
    }
}

/// A small fixed tracer used by every test in this file.
fn fixture() -> Tracer {
    let mut t = Tracer::enabled(16);
    t.record(rec(
        1_000,
        0,
        Some(0),
        TraceEvent::RndvTx {
            msg: MsgId(1),
            xfer: XferId(1),
            len: 4096,
        },
    ));
    t.record(rec(
        2_000,
        1,
        Some(1),
        TraceEvent::RndvRx {
            msg: MsgId(1),
            xfer: XferId(1),
            len: 4096,
        },
    ));
    t.record(rec(
        2_500,
        1,
        None,
        TraceEvent::PinStart {
            region: RegionId(3),
            target_pages: 1,
        },
    ));
    t.record(rec(
        3_000,
        1,
        None,
        TraceEvent::PinComplete {
            region: RegionId(3),
            cursor_pages: 1,
        },
    ));
    t.record(rec(
        4_000,
        0,
        Some(0),
        TraceEvent::SendDone {
            msg: MsgId(1),
            xfer: XferId(1),
        },
    ));
    t
}

/// The exact serialized forms — any accidental format change (key rename,
/// ordering change, stamp move) trips these goldens.
#[test]
fn golden_chrome_json() {
    let json = chrome_trace_json(&fixture());
    let expected = concat!(
        "{\"traceEvents\":[",
        "{\"name\":\"rndv_tx\",\"ph\":\"i\",\"s\":\"t\",\"ts\":1.000,\"pid\":0,\"tid\":1,\"args\":{\"detail\":\"msg 1 len 4096\"}},",
        "{\"name\":\"rndv_rx\",\"ph\":\"i\",\"s\":\"t\",\"ts\":2.000,\"pid\":1,\"tid\":2,\"args\":{\"detail\":\"msg 1 len 4096\"}},",
        "{\"name\":\"pin\",\"ph\":\"X\",\"ts\":2.500,\"dur\":0.500,\"pid\":1,\"tid\":0,\"args\":{\"region\":3,\"cursor_pages\":1}},",
        "{\"name\":\"send_done\",\"ph\":\"i\",\"s\":\"t\",\"ts\":4.000,\"pid\":0,\"tid\":1,\"args\":{\"detail\":\"msg 1\"}}",
        "],\"otherData\":{\"dropped_events\":\"0\"}}",
    );
    assert_eq!(json, expected);
}

#[test]
fn golden_csv() {
    let text = csv(&fixture());
    let expected = "time_ns,node,proc,kind,detail\n\
                    1000,0,0,rndv_tx,\"msg 1 len 4096\"\n\
                    2000,1,1,rndv_rx,\"msg 1 len 4096\"\n\
                    2500,1,,pin_start,\"region 3 target 1 pages\"\n\
                    3000,1,,pin_complete,\"region 3 cursor 1 pages\"\n\
                    4000,0,0,send_done,\"msg 1\"\n\
                    # dropped_events=0\n";
    assert_eq!(text, expected);
}

/// Parse the Chrome JSON back: one object per `{"name":...}` occurrence,
/// timestamps non-decreasing within each emission order, and the pin
/// start/complete pair collapsed into exactly one `ph:"X"` span.
#[test]
fn chrome_json_round_trip() {
    let t = fixture();
    let json = chrome_trace_json(&t);

    let names: Vec<&str> = json
        .match_indices("\"name\":\"")
        .map(|(i, pat)| {
            let rest = &json[i + pat.len()..];
            &rest[..rest.find('"').unwrap()]
        })
        .collect();
    // 5 records − the pin pair collapsed into one span = 4 events.
    assert_eq!(names, vec!["rndv_tx", "rndv_rx", "pin", "send_done"]);

    let ts: Vec<f64> = json
        .match_indices("\"ts\":")
        .map(|(i, pat)| {
            let rest = &json[i + pat.len()..];
            let end = rest.find(',').unwrap();
            rest[..end].parse::<f64>().unwrap()
        })
        .collect();
    assert_eq!(ts.len(), 4);
    assert!(ts.windows(2).all(|w| w[0] <= w[1]), "ts must be ordered");

    assert_eq!(json.matches("\"ph\":\"X\"").count(), 1);
    assert_eq!(json.matches("\"ph\":\"i\"").count(), 3);
}

/// Parse the CSV back: header + one row per record + the footer; fields
/// split stably on the first four commas; times ordered.
#[test]
fn csv_round_trip() {
    let t = fixture();
    let text = csv(&t);
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 1 + t.len() + 1);
    assert_eq!(lines[0], "time_ns,node,proc,kind,detail");
    assert_eq!(
        *lines.last().unwrap(),
        format!("# dropped_events={}", t.dropped())
    );

    let mut prev_ns = 0u64;
    for (row, orig) in lines[1..lines.len() - 1].iter().zip(t.iter()) {
        let fields: Vec<&str> = row.splitn(5, ',').collect();
        assert_eq!(fields.len(), 5);
        let ns: u64 = fields[0].parse().unwrap();
        assert_eq!(ns, orig.time.as_nanos());
        assert!(ns >= prev_ns);
        prev_ns = ns;
        assert_eq!(fields[1].parse::<usize>().unwrap(), orig.node);
        match orig.proc {
            Some(p) => assert_eq!(fields[2].parse::<u32>().unwrap(), p.0),
            None => assert!(fields[2].is_empty()),
        }
        assert_eq!(fields[3], orig.kind());
        assert_eq!(
            fields[4],
            format!("\"{}\"", orig.detail().replace('"', "\"\""))
        );
    }
}

/// The span exporter's B/E events must nest: per pid, every B has a
/// matching E on the same tid, and B precedes E in stream order.
#[test]
fn span_chrome_json_b_e_nesting() {
    let t = fixture();
    let spans = openmx_core::obs::build_spans(&t);
    assert_eq!(spans.len(), 1);
    let json = chrome_spans_json(&spans);

    let mut open: Vec<String> = Vec::new();
    for (i, pat) in json.match_indices("\"ph\":\"") {
        let ph = &json[i + pat.len()..i + pat.len() + 1];
        // Walk back to this object's start to grab its name.
        let obj_start = json[..i].rfind('{').unwrap();
        let obj = &json[obj_start..];
        let k = obj.find("\"name\":\"").unwrap();
        let rest = &obj[k + 8..];
        let name = rest[..rest.find('"').unwrap()].to_string();
        match ph {
            "B" => open.push(name),
            "E" => {
                let top = open.pop().expect("E without open B");
                assert_eq!(top, name, "B/E must nest LIFO");
            }
            _ => {} // metadata
        }
    }
    assert!(open.is_empty(), "every B must be closed");
}
