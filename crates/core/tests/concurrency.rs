//! The real-thread race harness for the concurrent driver (ISSUE 8 /
//! ROADMAP item 5): N pinner threads race M notifier/undeclare threads, a
//! cross-space notifier-storm thread, a reclamation churn thread and
//! lock-free reader threads over one shared [`ConcurrentDriver`].
//!
//! Oracles, asserted at join for every seeded schedule:
//! - **Epoch quiescence / use-after-free**: guard counters on every region
//!   are zero, every retired region was reclaimed after its grace period,
//!   no reader ever observed a poisoned region, no reclaim ever saw a live
//!   reader (`EpochStats` + `quiescent_violations`).
//! - **Pin accounting**: driver pinned pages == frame-pool pinned pages,
//!   and zero after undeclaring everything.
//! - **Index consistency**: sharded interval index == full-table scan.
//! - **Deferred-queue hygiene**: no stale pages after a final drain.
//!
//! The differential test serializes mutators through a world lock (readers
//! still free-run), records the linearized op log with every op's result,
//! then replays it into the single-threaded [`Driver`]: DriverStats must
//! be bit-identical and every logged op result must match.
//!
//! Mutation self-tests prove each oracle catches what it claims: drop the
//! epoch guard pin, reclaim without a grace period, skip the generation
//! bump, skip the deferred-queue insert, poison a shard lock.
//!
//! Thread interleaving is real (OS threads, no harness scheduler); the
//! *schedules* are seeded — each seed fixes every thread's op stream, so a
//! failing seed replays the same workload even though the interleaving
//! may differ. The oracles are interleaving-independent by construction.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering::SeqCst};
use std::sync::Mutex;

use openmx_core::driver::{Driver, RegionId};
use openmx_core::region::Segment;
use openmx_core::sync::{
    ConcurrentDriver, DriverMutation, EpochCollector, EpochMutation, Retired, SharedRegionCache,
};
use openmx_core::{CacheOutcome, DeclareError};
use simmem::{AsId, Memory, Prot, VirtAddr, Vpn, VpnRange, PAGE_SIZE};

/// Dep-free deterministic PRNG (same xorshift used across the repo).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

const ARENA_PAGES: u64 = 64;
const TEMPLATES: u64 = 4;
const TEMPLATE_PAGES: u64 = 12;
const MUTATORS: usize = 4;
const READERS: usize = 2;
const TABLE_CAP: usize = 256;
const SHARDS: usize = 8;

/// Region template `k` inside an arena: templates 0..3 at page offsets
/// 0/14/28/42, template 3 vectorial (two segments) so the interval index
/// sees multi-segment regions.
fn template_segments(arena: VirtAddr, k: u64) -> Vec<Segment> {
    let base = arena.add(k * 14 * PAGE_SIZE);
    if k == TEMPLATES - 1 {
        vec![
            Segment {
                addr: base,
                len: (TEMPLATE_PAGES / 2) * PAGE_SIZE,
            },
            Segment {
                addr: base.add((TEMPLATE_PAGES / 2 + 2) * PAGE_SIZE),
                len: (TEMPLATE_PAGES / 2) * PAGE_SIZE,
            },
        ]
    } else {
        vec![Segment {
            addr: base,
            len: TEMPLATE_PAGES * PAGE_SIZE,
        }]
    }
}

struct Arena {
    space: AsId,
    base: VirtAddr,
}

/// Shared-memory setup: one `Memory`, one registered space + arena per
/// mutator. The memory sits behind a mutex — it models the mm layer
/// (`mmap_sem`): page-table ops serialize, driver structures do not.
fn setup(mutators: usize) -> (Memory, Vec<Arena>) {
    let mut mem = Memory::new(8192, 64);
    let mut arenas = Vec::new();
    for _ in 0..mutators {
        let space = mem.create_space();
        mem.register_notifier(space).unwrap();
        let base = mem
            .mmap(space, ARENA_PAGES * PAGE_SIZE, Prot::ReadWrite)
            .unwrap();
        arenas.push(Arena { space, base });
    }
    (mem, arenas)
}

/// Unmap a small window and feed the notifier events to the driver —
/// under the memory lock, like a real notifier callback running inside
/// the unmap path. Usually remaps the window right after (malloc churn);
/// sometimes leaves it unmapped.
fn churn_window(
    rng: &mut Rng,
    driver: &ConcurrentDriver,
    h: &openmx_core::EpochHandle<'_, openmx_core::sync::ConcRegion>,
    mem: &mut Memory,
    arena: &Arena,
) {
    let w = 1 + rng.below(4);
    let p = rng.below(ARENA_PAGES - w);
    let addr = arena.base.add(p * PAGE_SIZE);
    let len = w * PAGE_SIZE;
    let Ok(events) = mem.munmap(arena.space, addr, len) else {
        return;
    };
    for ev in &events {
        driver.handle_invalidate(h, mem, ev);
    }
    if rng.below(10) < 7 {
        let _ = mem.mmap_at(arena.space, addr, len, Prot::ReadWrite);
    }
}

/// One storm run: 8 spawned OS threads (4 pinner/undeclare mutators, 1
/// cross-space notifier storm, 1 reclamation churn, 2 lock-free readers)
/// over one driver. Returns nothing — every oracle asserts inline or at
/// join.
fn storm_run(seed: u64, ops_per_mutator: usize) {
    let driver = ConcurrentDriver::new(TABLE_CAP, SHARDS);
    let (mem, arenas) = setup(MUTATORS);
    let mem = Mutex::new(mem);
    let active = AtomicUsize::new(MUTATORS + 1); // mutators + notifier storm
    let probes_ok = AtomicU64::new(0);

    std::thread::scope(|s| {
        for (t, arena) in arenas.iter().enumerate().take(MUTATORS) {
            let driver = &driver;
            let mem = &mem;
            let active = &active;
            s.spawn(move || {
                let h = driver.register_thread();
                let mut rng = Rng::new(seed ^ (0x9e37_79b9 * (t as u64 + 1)));
                let mut mine: HashMap<u64, RegionId> = HashMap::new();
                for _ in 0..ops_per_mutator {
                    match rng.below(100) {
                        0..=24 => {
                            let k = rng.below(TEMPLATES);
                            if let std::collections::hash_map::Entry::Vacant(e) = mine.entry(k) {
                                let segs = template_segments(arena.base, k);
                                if let Ok(id) = driver.declare(&h, arena.space, &segs) {
                                    e.insert(id);
                                }
                            }
                        }
                        25..=59 => {
                            let k = rng.below(TEMPLATES);
                            if let Some(&id) = mine.get(&k) {
                                let mut guard = mem.lock().unwrap();
                                let _ = driver.pin_next_chunk(&h, &mut guard, id, 4);
                            }
                        }
                        60..=74 => {
                            let mut guard = mem.lock().unwrap();
                            churn_window(&mut rng, driver, &h, &mut guard, arena);
                        }
                        75..=84 => {
                            let k = rng.below(TEMPLATES);
                            if let Some(id) = mine.remove(&k) {
                                let mut guard = mem.lock().unwrap();
                                driver.undeclare(&h, &mut guard, id);
                            }
                        }
                        85..=91 => {
                            let mut guard = mem.lock().unwrap();
                            driver.drain_deferred(&h, &mut guard);
                        }
                        92 => {
                            // Crash-reap this tenant: one sweep undeclares
                            // every region of the space through the
                            // graveyard path.
                            let mut guard = mem.lock().unwrap();
                            driver.teardown_space(&h, &mut guard, arena.space);
                            drop(guard);
                            mine.clear();
                        }
                        _ => {
                            // Reader ops from a mutator thread: reentrancy
                            // across the pin/probe surface.
                            let k = rng.below(TEMPLATES);
                            if let Some(&id) = mine.get(&k) {
                                driver.probe(&h, id);
                                driver.pinned_through(&h, id, 0, PAGE_SIZE);
                            }
                        }
                    }
                }
                active.fetch_sub(1, SeqCst);
            });
        }

        // Cross-space notifier storm: munmap/invalidate windows in every
        // mutator's space — the "M notifier threads" racing the pinners.
        {
            let driver = &driver;
            let mem = &mem;
            let active = &active;
            let arenas = &arenas;
            s.spawn(move || {
                let h = driver.register_thread();
                let mut rng = Rng::new(seed ^ 0xdead_beef);
                for _ in 0..ops_per_mutator {
                    let arena = &arenas[rng.below(MUTATORS as u64) as usize];
                    let mut guard = mem.lock().unwrap();
                    churn_window(&mut rng, driver, &h, &mut guard, arena);
                    if rng.below(4) == 0 {
                        driver.drain_deferred(&h, &mut guard);
                    }
                }
                active.fetch_sub(1, SeqCst);
            });
        }

        // Reclamation churn: force epoch advances and collection while
        // everyone else runs.
        {
            let driver = &driver;
            let active = &active;
            s.spawn(move || {
                while active.load(SeqCst) > 0 {
                    driver.epoch_collector().collect();
                    std::hint::spin_loop();
                }
            });
        }

        // Lock-free readers: hammer probe / pinned_through /
        // regions_intersecting across the whole table, including ids being
        // concurrently undeclared and reclaimed.
        for r in 0..READERS {
            let driver = &driver;
            let active = &active;
            let probes_ok = &probes_ok;
            let arenas = &arenas;
            s.spawn(move || {
                let h = driver.register_thread();
                let mut rng = Rng::new(seed ^ (0xabcd_ef01 * (r as u64 + 3)));
                let mut ok = 0;
                while active.load(SeqCst) > 0 {
                    let id = RegionId(rng.below(TABLE_CAP as u64) as u32);
                    if let Some(p) = driver.probe(&h, id) {
                        // Sanity on a racing snapshot: the cursor never
                        // exceeds the region's geometry.
                        assert!(p.valid_pages <= p.total_pages);
                        ok += 1;
                    }
                    driver.pinned_through(&h, id, 0, 3 * PAGE_SIZE);
                    let arena = &arenas[rng.below(MUTATORS as u64) as usize];
                    let start = arena.base.vpn().0 + rng.below(ARENA_PAGES - 4);
                    let range = VpnRange::new(Vpn(start), Vpn(start + 4));
                    driver.regions_intersecting(&h, arena.space, &range);
                }
                probes_ok.fetch_add(ok, SeqCst);
            });
        }
    });

    // --- Join-time oracles ---
    let h = driver.register_thread();
    let mut mem = mem.into_inner().unwrap();

    // Deferred-queue hygiene: one final drain leaves nothing stale.
    driver.drain_deferred(&h, &mut mem);
    assert_eq!(
        driver.stale_pages_total(&h),
        0,
        "seed {seed}: stale pages survived the final drain"
    );

    // Pin accounting: driver view == frame-pool view.
    assert_eq!(
        driver.pinned_pages_total(&h),
        mem.frames().pinned_pages() as u64,
        "seed {seed}: driver/frame-pool pin accounting diverged"
    );

    // Index consistency: sharded index == full-table scan, on windows
    // across every space.
    let mut rng = Rng::new(seed ^ 0x51ca_fe77);
    for arena in &arenas {
        for _ in 0..8 {
            let start = arena.base.vpn().0 + rng.below(ARENA_PAGES - 6);
            let range = VpnRange::new(Vpn(start), Vpn(start + 6));
            assert_eq!(
                driver.regions_intersecting(&h, arena.space, &range),
                driver.regions_intersecting_naive(&h, arena.space, &range),
                "seed {seed}: index diverged from naive scan"
            );
        }
    }

    // Undeclare everything; pins must return to zero.
    for i in 0..TABLE_CAP as u32 {
        driver.undeclare(&h, &mut mem, RegionId(i));
    }
    assert_eq!(driver.pinned_pages_total(&h), 0);
    assert_eq!(mem.frames().pinned_pages(), 0, "seed {seed}: leaked pins");
    assert_eq!(driver.declared_count(), 0);

    // Epoch quiescence: with all guards released, a bounded collect loop
    // must reclaim every retirement; every oracle counter must be clean.
    drop(h);
    for _ in 0..8 {
        driver.epoch_collector().collect();
    }
    let violations = driver.epoch_collector().quiescent_violations();
    assert!(
        violations.is_empty(),
        "seed {seed}: epoch oracle violations: {violations:?}"
    );
    // No lock was ever poisoned in a clean run.
    assert_eq!(driver.lock_poisoned(), 0);
}

/// CI smoke: ≥ 100 seeded schedules × 8 real OS threads. `RACE_SEEDS`
/// scales the sweep up for the nightly job.
#[test]
fn storm_seed_sweep() {
    let seeds: u64 = std::env::var("RACE_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(100);
    let ops = if seeds > 100 { 150 } else { 120 };
    for seed in 0..seeds {
        storm_run(0xA11CE ^ (seed * 0x1_0001), ops);
    }
}

/// A couple of long, hot runs: fewer seeds, much more churn per seed.
#[test]
fn storm_deep_runs() {
    for seed in [0xFEED_F00D, 0x00DD_BA11] {
        storm_run(seed, 600);
    }
}

// ---------------------------------------------------------------------------
// Differential: linearized concurrent run vs single-threaded replay
// ---------------------------------------------------------------------------

/// One linearized op with its observed result; replay must reproduce both.
#[derive(Debug, PartialEq, Eq)]
enum Op {
    Declare {
        arena: usize,
        k: u64,
        got: Result<RegionId, DeclareError>,
    },
    Pin {
        id: RegionId,
        max: u64,
        /// `(pages_pinned, complete)` on success; `None` for a pin error
        /// (rollback) — either way replay must agree.
        got: Option<Option<(u64, bool)>>,
    },
    Churn {
        arena: usize,
        page: u64,
        pages: u64,
        remap: bool,
        /// Invalidation hits per event, flattened.
        got: Vec<(RegionId, u64)>,
    },
    Undeclare {
        id: RegionId,
        got: Option<u64>,
    },
    Drain {
        got: (Vec<(RegionId, u64)>, Vec<RegionId>),
    },
}

/// Concurrent run with mutators serialized through the world lock (the op
/// log *is* the linearization); readers and the collector still free-run
/// against the epoch machinery. Returns the log and the driver's stats.
fn differential_concurrent(
    seed: u64,
    ops_per_mutator: usize,
) -> (Vec<Op>, openmx_core::DriverStats) {
    let driver = ConcurrentDriver::new(TABLE_CAP, SHARDS);
    let (mem, arenas) = setup(MUTATORS);
    let world = Mutex::new((mem, Vec::<Op>::new()));
    let active = AtomicUsize::new(MUTATORS);

    std::thread::scope(|s| {
        for (t, arena) in arenas.iter().enumerate() {
            let driver = &driver;
            let world = &world;
            let active = &active;
            s.spawn(move || {
                let h = driver.register_thread();
                let mut rng = Rng::new(seed ^ (0x9e37_79b9 * (t as u64 + 1)));
                let mut mine: HashMap<u64, RegionId> = HashMap::new();
                for _ in 0..ops_per_mutator {
                    // The world lock spans the whole op, driver call
                    // included: the log order is a true linearization.
                    let mut w = world.lock().unwrap();
                    let (mem, log) = &mut *w;
                    match rng.below(100) {
                        0..=29 => {
                            let k = rng.below(TEMPLATES);
                            if let std::collections::hash_map::Entry::Vacant(e) = mine.entry(k) {
                                let segs = template_segments(arena.base, k);
                                let got = driver.declare(&h, arena.space, &segs);
                                if let Ok(id) = got {
                                    e.insert(id);
                                }
                                log.push(Op::Declare { arena: t, k, got });
                            }
                        }
                        30..=59 => {
                            let k = rng.below(TEMPLATES);
                            if let Some(&id) = mine.get(&k) {
                                let got = driver
                                    .pin_next_chunk(&h, mem, id, 4)
                                    .map(|r| r.ok().map(|p| (p.pages_pinned, p.complete)));
                                log.push(Op::Pin { id, max: 4, got });
                            }
                        }
                        60..=74 => {
                            let pages = 1 + rng.below(4);
                            let page = rng.below(ARENA_PAGES - pages);
                            let remap = rng.below(10) < 7;
                            let addr = arena.base.add(page * PAGE_SIZE);
                            let len = pages * PAGE_SIZE;
                            let mut got = Vec::new();
                            if let Ok(events) = mem.munmap(arena.space, addr, len) {
                                for ev in &events {
                                    got.extend(driver.handle_invalidate(&h, mem, ev));
                                }
                            }
                            if remap {
                                let _ = mem.mmap_at(arena.space, addr, len, Prot::ReadWrite);
                            }
                            log.push(Op::Churn {
                                arena: t,
                                page,
                                pages,
                                remap,
                                got,
                            });
                        }
                        75..=87 => {
                            let k = rng.below(TEMPLATES);
                            if let Some(id) = mine.remove(&k) {
                                let got = driver.undeclare(&h, mem, id);
                                log.push(Op::Undeclare { id, got });
                            }
                        }
                        _ => {
                            let got = driver.drain_deferred(&h, mem);
                            log.push(Op::Drain { got });
                        }
                    }
                }
                active.fetch_sub(1, SeqCst);
            });
        }

        // Free-running lock-free load against the same driver: stats and
        // the log must be oblivious to it.
        for r in 0..READERS {
            let driver = &driver;
            let active = &active;
            s.spawn(move || {
                let h = driver.register_thread();
                let mut rng = Rng::new(seed ^ (0x1234_5678 * (r as u64 + 5)));
                while active.load(SeqCst) > 0 {
                    let id = RegionId(rng.below(TABLE_CAP as u64) as u32);
                    driver.probe(&h, id);
                    driver.pinned_through(&h, id, 0, PAGE_SIZE);
                }
            });
        }
        {
            let driver = &driver;
            let active = &active;
            s.spawn(move || {
                while active.load(SeqCst) > 0 {
                    driver.epoch_collector().collect();
                    std::hint::spin_loop();
                }
            });
        }
    });

    let (_, log) = world.into_inner().unwrap();
    let stats = driver.stats();

    // The linearized run still passes the storm oracles.
    for _ in 0..8 {
        driver.epoch_collector().collect();
    }
    let violations = driver.epoch_collector().quiescent_violations();
    assert!(violations.is_empty(), "epoch violations: {violations:?}");

    (log, stats)
}

/// Replay the linearized log into the single-threaded driver and assert
/// every op result matches, then return its stats for the bit-identity
/// check.
fn replay_single_threaded(log: &[Op]) -> openmx_core::DriverStats {
    let mut driver = Driver::new(None);
    let (mut mem, arenas) = setup(MUTATORS);
    for (i, op) in log.iter().enumerate() {
        match op {
            Op::Declare { arena, k, got } => {
                let segs = template_segments(arenas[*arena].base, *k);
                let re = driver.declare(arenas[*arena].space, &segs);
                assert_eq!(&re, got, "op {i}: declare diverged");
            }
            Op::Pin { id, max, got } => {
                let re = driver
                    .try_region_mut(*id)
                    .map(|r| r.pin_next_chunk(&mut mem, *max))
                    .map(|r| r.ok().map(|p| (p.pages_pinned, p.complete)));
                assert_eq!(&re, got, "op {i}: pin diverged");
            }
            Op::Churn {
                arena,
                page,
                pages,
                remap,
                got,
            } => {
                let a = &arenas[*arena];
                let addr = a.base.add(page * PAGE_SIZE);
                let len = pages * PAGE_SIZE;
                let mut re = Vec::new();
                if let Ok(events) = mem.munmap(a.space, addr, len) {
                    for ev in &events {
                        re.extend(driver.handle_invalidate(&mut mem, ev));
                    }
                }
                if *remap {
                    let _ = mem.mmap_at(a.space, addr, len, Prot::ReadWrite);
                }
                assert_eq!(&re, got, "op {i}: invalidation hits diverged");
            }
            Op::Undeclare { id, got } => {
                let re = driver
                    .is_declared(*id)
                    .then(|| driver.undeclare(&mut mem, *id));
                assert_eq!(&re, got, "op {i}: undeclare diverged");
            }
            Op::Drain { got } => {
                let re = driver.drain_deferred(&mut mem);
                assert_eq!(&re, got, "op {i}: drain diverged");
            }
        }
    }
    driver.stats()
}

/// The tentpole differential: concurrent run (readers racing) and
/// single-threaded replay of its linearized log produce *bit-identical*
/// DriverStats, and every individual op result matches.
#[test]
fn differential_replay_stats_identical() {
    let mut total = openmx_core::DriverStats::default();
    for seed in 0..16u64 {
        let (log, concurrent_stats) = differential_concurrent(0xD1FF ^ (seed * 0xBEEF), 150);
        let replay_stats = replay_single_threaded(&log);
        assert_eq!(
            concurrent_stats, replay_stats,
            "seed {seed}: DriverStats diverged between concurrent driver and replay"
        );
        total.notifier_events += concurrent_stats.notifier_events;
        total.notifier_deferred += concurrent_stats.notifier_deferred;
        total.notifier_cancelled += concurrent_stats.notifier_cancelled;
        total.notifier_drain_batches += concurrent_stats.notifier_drain_batches;
    }
    // Guard against a vacuous pass: the sweep must actually have driven
    // the notifier machinery, both arms of it.
    assert!(total.notifier_events > 0 && total.notifier_deferred > 0);
    assert!(total.notifier_cancelled > 0 && total.notifier_drain_batches > 0);
}

// ---------------------------------------------------------------------------
// Mutation self-tests: prove the oracles catch what they claim
// ---------------------------------------------------------------------------

/// Minimal retired object for collector-level mutation rigs.
struct Obj {
    live: AtomicU64,
    readers: AtomicU64,
}
impl Obj {
    fn boxed() -> std::ptr::NonNull<Obj> {
        std::ptr::NonNull::from(Box::leak(Box::new(Obj {
            live: AtomicU64::new(1),
            readers: AtomicU64::new(0),
        })))
    }
}
impl Retired for Obj {
    fn readers(&self) -> u64 {
        self.readers.load(SeqCst)
    }
    fn poison(&self) {
        self.live.store(0, SeqCst);
    }
}

/// Mutation: guards that skip the epoch announcement. A reader inside a
/// critical section becomes invisible to the collector, which reclaims
/// the object under its feet — the reader-side poison check must fire.
#[test]
fn mutation_skip_guard_pin_is_caught() {
    let c = EpochCollector::<Obj>::with_mutation(Some(EpochMutation::SkipGuardPin));
    let h = c.register();
    let ptr = Obj::boxed();
    let guard = h.pin(); // mutated: announces nothing
    c.retire(ptr);
    for _ in 0..4 {
        c.collect();
    }
    // The collector believed the system quiescent and reclaimed. The
    // reader is still inside its critical section and now observes the
    // poisoned liveness word — exactly the use-after-free the oracle
    // exists to catch.
    let live = unsafe { ptr.as_ref() }.live.load(SeqCst);
    assert_eq!(live, 0, "mutated collector failed to reclaim early");
    c.note_uaf_observed();
    drop(guard);
    let v = c.quiescent_violations();
    assert!(
        v.iter().any(|s| s.contains("poisoned")),
        "uaf oracle did not fire: {v:?}"
    );
}

/// Control for the above: with no mutation, the identical schedule does
/// NOT reclaim under the guard (regression-proofs the self-test itself).
#[test]
fn control_guard_pin_protects() {
    let c = EpochCollector::<Obj>::new();
    let h = c.register();
    let ptr = Obj::boxed();
    let guard = h.pin();
    c.retire(ptr);
    for _ in 0..4 {
        c.collect();
    }
    assert_eq!(unsafe { ptr.as_ref() }.live.load(SeqCst), 1);
    drop(guard);
}

/// Mutation: reclaim ignores the grace period. A reader that bumped the
/// region's guard counter mid-read is caught by the collector-side
/// busy-reclaim oracle.
#[test]
fn mutation_reclaim_without_grace_is_caught() {
    let c = EpochCollector::<Obj>::with_mutation(Some(EpochMutation::ReclaimWithoutGrace));
    let h = c.register();
    let ptr = Obj::boxed();
    let _guard = h.pin();
    // Reader is mid-read: guard counter held high.
    unsafe { ptr.as_ref() }.readers.fetch_add(1, SeqCst);
    c.retire(ptr);
    c.collect(); // mutated: frees immediately, despite announced epoch
    assert_eq!(c.stats().busy_reclaims, 1, "busy-reclaim oracle missed");
    unsafe { ptr.as_ref() }.readers.fetch_sub(1, SeqCst);
    let v = c.quiescent_violations();
    assert!(
        v.iter().any(|s| s.contains("live reader")),
        "missing: {v:?}"
    );
}

/// Serial protocol sequence that defers an unpin and then drains — the
/// spine of the two driver-mutation self-tests below.
fn run_protocol_sequence(
    driver: &ConcurrentDriver,
    mem: &mut Memory,
    arena: &Arena,
) -> (RegionId, Vec<(RegionId, u64)>) {
    let h = driver.register_thread();
    let id = driver
        .declare(&h, arena.space, &template_segments(arena.base, 0))
        .unwrap();
    while let Some(Ok(p)) = driver.pin_next_chunk(&h, mem, id, 4) {
        if p.complete {
            break;
        }
    }
    let addr = arena.base.add(2 * PAGE_SIZE);
    let events = mem.munmap(arena.space, addr, 3 * PAGE_SIZE).unwrap();
    let mut hits = Vec::new();
    for ev in &events {
        hits.extend(driver.handle_invalidate(&h, mem, ev));
    }
    (id, hits)
}

/// Mutation: invalidate forgets the generation bump. The differential
/// state check (concurrent generation vs single-threaded replay) catches
/// it.
#[test]
fn mutation_skip_generation_bump_is_caught() {
    let (mut mem, arenas) = setup(1);
    let driver = ConcurrentDriver::with_mutation(
        TABLE_CAP,
        SHARDS,
        Some(DriverMutation::SkipGenerationBump),
    );
    let (id, hits) = run_protocol_sequence(&driver, &mut mem, &arenas[0]);
    assert!(!hits.is_empty(), "rig must produce an invalidation hit");
    let h = driver.register_thread();
    let mutated_gen = driver.region_generation(&h, id).unwrap();

    // Single-threaded reference of the same sequence.
    let (mut mem2, arenas2) = setup(1);
    let mut reference = Driver::new(None);
    let rid = reference
        .declare(arenas2[0].space, &template_segments(arenas2[0].base, 0))
        .unwrap();
    loop {
        let p = reference
            .region_mut(rid)
            .pin_next_chunk(&mut mem2, 4)
            .unwrap();
        if p.complete {
            break;
        }
    }
    let addr = arenas2[0].base.add(2 * PAGE_SIZE);
    for ev in &mem2.munmap(arenas2[0].space, addr, 3 * PAGE_SIZE).unwrap() {
        reference.handle_invalidate(&mut mem2, ev);
    }
    let reference_gen = reference.region(rid).generation;

    assert_ne!(
        mutated_gen, reference_gen,
        "differential oracle failed to catch the skipped generation bump"
    );
}

/// Mutation: invalidate forgets the deferred-queue insert. The join-time
/// "no stale pages after final drain" oracle catches it: the stale suffix
/// never drains.
#[test]
fn mutation_skip_deferred_queue_is_caught() {
    let (mut mem, arenas) = setup(1);
    let driver =
        ConcurrentDriver::with_mutation(TABLE_CAP, SHARDS, Some(DriverMutation::SkipDeferredQueue));
    let (_, hits) = run_protocol_sequence(&driver, &mut mem, &arenas[0]);
    assert!(!hits.is_empty());
    let h = driver.register_thread();
    driver.drain_deferred(&h, &mut mem);
    assert!(
        driver.stale_pages_total(&h) > 0,
        "stale-page oracle failed to catch the skipped queue insert"
    );
    // And the unmutated driver passes the same oracle on the same rig.
    let (mut mem2, arenas2) = setup(1);
    let clean = ConcurrentDriver::new(TABLE_CAP, SHARDS);
    let (_, hits) = run_protocol_sequence(&clean, &mut mem2, &arenas2[0]);
    assert!(!hits.is_empty());
    let h2 = clean.register_thread();
    clean.drain_deferred(&h2, &mut mem2);
    assert_eq!(clean.stale_pages_total(&h2), 0);
}

/// Mutation: crash teardown "frees" a mid-epoch region in place — the
/// liveness word is poisoned while the slot is still published, skipping
/// the unlink, the batched unpin and the collector's graveyard. The
/// reader-side poison check catches it on the very next guarded load
/// (`uaf_observed`), and the dead tenant's pages stay pinned.
#[test]
fn mutation_teardown_direct_free_is_caught() {
    let (mut mem, arenas) = setup(1);
    let driver = ConcurrentDriver::with_mutation(
        TABLE_CAP,
        SHARDS,
        Some(DriverMutation::TeardownDirectFree),
    );
    let h = driver.register_thread();
    let arena = &arenas[0];
    let id = driver
        .declare(&h, arena.space, &template_segments(arena.base, 0))
        .unwrap();
    while let Some(Ok(p)) = driver.pin_next_chunk(&h, &mut mem, id, 4) {
        if p.complete {
            break;
        }
    }
    let (regions, pages) = driver.teardown_space(&h, &mut mem, arena.space);
    assert_eq!(
        (regions, pages),
        (0, 0),
        "mutated teardown must not reap properly"
    );
    // The slot still points at the poisoned region: the next lock-free
    // probe observes the freed liveness word and trips the uaf oracle.
    assert!(driver.probe(&h, id).is_none());
    let violations = driver.epoch_collector().quiescent_violations();
    assert!(
        violations.iter().any(|v| v.contains("poisoned")),
        "uaf oracle failed to catch the direct free: {violations:?}"
    );
    // And the dead tenant's pages were never unpinned: orphan pins.
    assert!(mem.frames().pinned_pages() > 0);

    // Control: the clean driver's teardown goes through the graveyard and
    // leaves every oracle silent.
    let (mut mem2, arenas2) = setup(1);
    let clean = ConcurrentDriver::new(TABLE_CAP, SHARDS);
    let h2 = clean.register_thread();
    let arena2 = &arenas2[0];
    let id2 = clean
        .declare(&h2, arena2.space, &template_segments(arena2.base, 0))
        .unwrap();
    while let Some(Ok(p)) = clean.pin_next_chunk(&h2, &mut mem2, id2, 4) {
        if p.complete {
            break;
        }
    }
    let (regions, pages) = clean.teardown_space(&h2, &mut mem2, arena2.space);
    assert_eq!(regions, 1);
    assert!(pages > 0);
    assert!(clean.probe(&h2, id2).is_none());
    assert_eq!(clean.pinned_pages_total(&h2), 0);
    assert_eq!(mem2.frames().pinned_pages(), 0);
    drop(h2);
    for _ in 0..8 {
        clean.epoch_collector().collect();
    }
    let violations = clean.epoch_collector().quiescent_violations();
    assert!(
        violations.is_empty(),
        "clean teardown violated epoch oracles: {violations:?}"
    );
}

// ---------------------------------------------------------------------------
// Lock-poison graceful degradation (satellite 6)
// ---------------------------------------------------------------------------

/// A poisoned shard lock must degrade to counted failures — declare
/// refuses, notifier routing skips — never a propagated panic, and the
/// rest of the driver keeps working.
#[test]
fn poisoned_shard_degrades_gracefully() {
    let (mut mem, arenas) = setup(1);
    let driver = ConcurrentDriver::new(TABLE_CAP, 1); // one shard: poison hits everything
    let h = driver.register_thread();
    let arena = &arenas[0];
    let id = driver
        .declare(&h, arena.space, &template_segments(arena.base, 0))
        .unwrap();
    while let Some(Ok(p)) = driver.pin_next_chunk(&h, &mut mem, id, 4) {
        if p.complete {
            break;
        }
    }
    driver.poison_shard_for_test(arena.space);

    // Declare on the poisoned shard: counted graceful refusal.
    assert_eq!(
        driver.declare(&h, arena.space, &template_segments(arena.base, 1)),
        Err(DeclareError::DriverUnavailable)
    );
    // Notifier routing: no candidates from a poisoned shard, no panic.
    let addr = arena.base.add(2 * PAGE_SIZE);
    let events = mem.munmap(arena.space, addr, PAGE_SIZE).unwrap();
    for ev in &events {
        driver.handle_invalidate(&h, &mut mem, ev);
    }
    // Slot-table paths are independent of the shard lock and keep working.
    assert!(driver.probe(&h, id).is_some());
    assert!(driver.undeclare(&h, &mut mem, id).is_some());
    assert!(driver.lock_poisoned() >= 2, "poison hits were not counted");
}

/// Same for the shared region cache: a poisoned shard is a counted miss,
/// and an insert that cannot cache hands the id back for undeclare.
#[test]
fn poisoned_cache_shard_degrades_gracefully() {
    let cache = SharedRegionCache::new(1, 8);
    let segs = vec![Segment {
        addr: VirtAddr(0x1000),
        len: PAGE_SIZE,
    }];
    assert_eq!(cache.insert(segs.clone(), RegionId(7)), None);
    assert_eq!(cache.lookup(&segs), CacheOutcome::Hit(RegionId(7)));
    cache.poison_shard_for_test(&segs);
    assert_eq!(cache.lookup(&segs), CacheOutcome::Miss);
    assert_eq!(cache.insert(segs.clone(), RegionId(8)), Some(RegionId(8)));
    assert!(cache.lock_poisoned() >= 2);
}

/// Multi-thread smoke for the sharded cache: concurrent insert/lookup
/// churn across shards, then the aggregate invariants hold.
#[test]
fn shared_cache_concurrent_churn() {
    let cache = SharedRegionCache::new(4, 8);
    std::thread::scope(|s| {
        for t in 0..4u32 {
            let cache = &cache;
            s.spawn(move || {
                let mut rng = Rng::new(0xCACE ^ (t as u64 + 1));
                for i in 0..500u32 {
                    let key = rng.below(64);
                    let segs = vec![Segment {
                        addr: VirtAddr((key + 1) * 0x10_0000),
                        len: PAGE_SIZE,
                    }];
                    match cache.lookup(&segs) {
                        CacheOutcome::Hit(_) => {}
                        CacheOutcome::Miss => {
                            cache.insert(segs, RegionId(t * 1000 + i));
                        }
                    }
                }
            });
        }
    });
    let stats = cache.stats();
    assert_eq!(stats.hits + stats.misses, 4 * 500);
    assert!(cache.len() <= 4 * 8, "per-shard LRU capacity exceeded");
    assert_eq!(cache.lock_poisoned(), 0);
    let ids = cache.cached_ids();
    assert_eq!(ids.len(), cache.len(), "duplicate ids across shards");
}
