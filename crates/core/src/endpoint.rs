//! Endpoints: MX-style message matching (posted receives vs. unexpected
//! messages) plus the receive-side eager reassembly buffers.
//!
//! Matching follows MX semantics: a posted receive carries `match_info`
//! and a `mask`; an incoming message with key `k` matches when
//! `k & mask == match_info & mask`. Both queues are FIFO, so matching is
//! deterministic.

use std::collections::{HashSet, VecDeque};

use simmem::VirtAddr;

use crate::engine::ProcId;
use crate::wire::{MsgId, XferId};

/// Network-visible address of an endpoint (one per process).
///
/// The address carries the process's *incarnation*: a counter bumped on
/// every crash/restart cycle. Every wire frame is stamped with the
/// incarnations its sender knew at transmit time, and the receive path
/// fences any frame whose stamps disagree with the live endpoints — a
/// restarted process never interprets pre-crash traffic, and peers never
/// interpret traffic from a previous incarnation of a restarted process.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EndpointAddr {
    /// The owning process.
    pub proc: ProcId,
    /// The process incarnation this address names (0 until first restart).
    pub incarnation: u32,
}

/// Application-visible handle of a posted operation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RequestId(pub u64);

/// A receive posted by the application, waiting for a message.
#[derive(Clone, Copy, Debug)]
pub struct PostedRecv {
    /// Application handle.
    pub req: RequestId,
    /// Matching key.
    pub match_info: u64,
    /// Matching mask (`!0` = exact match).
    pub mask: u64,
    /// Destination buffer.
    pub addr: VirtAddr,
    /// Destination buffer capacity.
    pub len: u64,
}

impl PostedRecv {
    fn matches(&self, key: u64) -> bool {
        key & self.mask == self.match_info & self.mask
    }
}

/// Eager-message reassembly state (ring-buffer contents in real Open-MX).
#[derive(Clone, Debug)]
pub struct EagerRx {
    /// Sender's transfer id.
    pub msg: MsgId,
    /// Causal-trace id of the transfer.
    pub xfer: XferId,
    /// Sending endpoint.
    pub src: EndpointAddr,
    /// Matching key.
    pub match_info: u64,
    /// Full message length.
    pub total_len: u64,
    /// Reassembled bytes.
    pub buffer: Vec<u8>,
    /// Per-fragment received flags.
    pub got: Vec<bool>,
    /// Fragments still missing.
    pub frags_left: u32,
}

impl EagerRx {
    /// Fresh reassembly state for a message of `total_len` bytes in
    /// `frag_count` fragments.
    pub fn new(
        msg: MsgId,
        xfer: XferId,
        src: EndpointAddr,
        match_info: u64,
        total_len: u64,
        frag_count: u32,
    ) -> Self {
        EagerRx {
            msg,
            xfer,
            src,
            match_info,
            total_len,
            buffer: vec![0u8; total_len as usize],
            got: vec![false; frag_count as usize],
            frags_left: frag_count,
        }
    }

    /// Absorb one fragment; duplicate fragments are ignored. Returns true
    /// when the message became complete.
    pub fn absorb(&mut self, frag: u32, offset: u64, data: &[u8]) -> bool {
        let idx = frag as usize;
        let off = offset as usize;
        // Out-of-range coordinates (corrupt or hostile frames) are dropped
        // rather than panicking the whole engine.
        if idx >= self.got.len() || off + data.len() > self.buffer.len() || self.got[idx] {
            return false;
        }
        self.got[idx] = true;
        self.frags_left -= 1;
        self.buffer[off..off + data.len()].copy_from_slice(data);
        self.frags_left == 0
    }

    /// Has this fragment already been absorbed? (Duplicate probe.)
    pub fn has_frag(&self, frag: u32) -> bool {
        self.got.get(frag as usize).copied().unwrap_or(false)
    }

    /// True when all fragments arrived.
    pub fn complete(&self) -> bool {
        self.frags_left == 0
    }
}

/// A message that arrived before its receive was posted.
#[derive(Clone, Debug)]
pub enum Unexpected {
    /// Eager message (possibly still reassembling).
    Eager(EagerRx),
    /// Rendezvous announcement.
    Rndv {
        /// Sender transfer id.
        msg: MsgId,
        /// Causal-trace id of the transfer.
        xfer: XferId,
        /// Sending endpoint.
        src: EndpointAddr,
        /// Matching key.
        match_info: u64,
        /// Announced message length.
        total_len: u64,
    },
    /// Intra-node (shared-memory) message, data already materialized.
    Shm {
        /// Sender transfer id.
        msg: MsgId,
        /// Causal-trace id of the transfer.
        xfer: XferId,
        /// Sending endpoint.
        src: EndpointAddr,
        /// Matching key.
        match_info: u64,
        /// Message bytes.
        data: Vec<u8>,
    },
}

impl Unexpected {
    /// The matching key of this message.
    pub fn match_info(&self) -> u64 {
        match self {
            Unexpected::Eager(e) => e.match_info,
            Unexpected::Rndv { match_info, .. } | Unexpected::Shm { match_info, .. } => *match_info,
        }
    }

    /// The sender transfer id.
    pub fn msg_id(&self) -> MsgId {
        match self {
            Unexpected::Eager(e) => e.msg,
            Unexpected::Rndv { msg, .. } | Unexpected::Shm { msg, .. } => *msg,
        }
    }
}

/// One process's endpoint: matching queues and duplicate suppression.
pub struct Endpoint {
    posted: VecDeque<PostedRecv>,
    unexpected: VecDeque<Unexpected>,
    /// Eager/rndv messages already fully handled — duplicates (from
    /// retransmission) of these are re-acked and dropped.
    completed: HashSet<MsgId>,
}

impl Default for Endpoint {
    fn default() -> Self {
        Self::new()
    }
}

impl Endpoint {
    /// An endpoint with empty queues.
    pub fn new() -> Self {
        Endpoint {
            posted: VecDeque::new(),
            unexpected: VecDeque::new(),
            completed: HashSet::new(),
        }
    }

    /// Post a receive. If an unexpected message matches (FIFO order), it is
    /// removed and returned; otherwise the receive queues.
    pub fn post_recv(&mut self, recv: PostedRecv) -> Option<Unexpected> {
        if let Some(pos) = self
            .unexpected
            .iter()
            .position(|u| recv.matches(u.match_info()))
        {
            return self.unexpected.remove(pos);
        }
        self.posted.push_back(recv);
        None
    }

    /// An incoming message with key `key` claims the first matching posted
    /// receive, removing it.
    pub fn match_incoming(&mut self, key: u64) -> Option<PostedRecv> {
        let pos = self.posted.iter().position(|p| p.matches(key))?;
        self.posted.remove(pos)
    }

    /// Queue a message that found no posted receive.
    pub fn push_unexpected(&mut self, msg: Unexpected) {
        self.unexpected.push_back(msg);
    }

    /// Find an in-progress unexpected eager reassembly by sender msg id.
    pub fn unexpected_eager_mut(&mut self, msg: MsgId) -> Option<&mut EagerRx> {
        self.unexpected.iter_mut().find_map(|u| match u {
            Unexpected::Eager(e) if e.msg == msg => Some(e),
            _ => None,
        })
    }

    /// True if an unexpected rndv with this id is already queued
    /// (duplicate-rndv suppression).
    pub fn has_unexpected(&self, msg: MsgId) -> bool {
        self.unexpected.iter().any(|u| u.msg_id() == msg)
    }

    /// Record a fully handled message id for duplicate suppression.
    pub fn mark_completed(&mut self, msg: MsgId) {
        self.completed.insert(msg);
    }

    /// Was this message id already fully handled?
    pub fn is_completed(&self, msg: MsgId) -> bool {
        self.completed.contains(&msg)
    }

    /// Queue depths `(posted, unexpected)` — for tests and stats.
    pub fn depths(&self) -> (usize, usize) {
        (self.posted.len(), self.unexpected.len())
    }

    /// Fence the unexpected queue after a peer crash: drop every parked
    /// message sent by `src` (all of it predates the crash — the dead
    /// incarnation must never match a future receive). Returns how many
    /// messages were dropped.
    pub fn purge_unexpected_from(&mut self, src: ProcId) -> usize {
        let before = self.unexpected.len();
        self.unexpected.retain(|u| {
            let from = match u {
                Unexpected::Eager(e) => e.src,
                Unexpected::Rndv { src, .. } | Unexpected::Shm { src, .. } => *src,
            };
            from.proc != src
        });
        before - self.unexpected.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(p: u32) -> EndpointAddr {
        EndpointAddr {
            proc: ProcId(p),
            incarnation: 0,
        }
    }

    fn recv(req: u64, match_info: u64, mask: u64) -> PostedRecv {
        PostedRecv {
            req: RequestId(req),
            match_info,
            mask,
            addr: VirtAddr(0x1000),
            len: 64,
        }
    }

    #[test]
    fn exact_matching_fifo() {
        let mut ep = Endpoint::new();
        assert!(ep.post_recv(recv(1, 42, !0)).is_none());
        assert!(ep.post_recv(recv(2, 42, !0)).is_none());
        let m = ep.match_incoming(42).unwrap();
        assert_eq!(m.req, RequestId(1), "first posted matches first");
        let m = ep.match_incoming(42).unwrap();
        assert_eq!(m.req, RequestId(2));
        assert!(ep.match_incoming(42).is_none());
    }

    #[test]
    fn masked_matching() {
        let mut ep = Endpoint::new();
        // Match only on the low 32 bits (e.g. tag, ignoring source).
        ep.post_recv(recv(1, 0x0000_0000_0000_0007, 0x0000_0000_ffff_ffff));
        assert!(ep.match_incoming(0xdead_beef_0000_0007).is_some());
        assert!(ep.match_incoming(0xdead_beef_0000_0008).is_none());
    }

    #[test]
    fn unexpected_claimed_by_later_post() {
        let mut ep = Endpoint::new();
        ep.push_unexpected(Unexpected::Rndv {
            msg: MsgId(5),
            xfer: XferId(5),
            src: addr(1),
            match_info: 9,
            total_len: 1 << 20,
        });
        let got = ep.post_recv(recv(1, 9, !0)).expect("should claim rndv");
        assert_eq!(got.msg_id(), MsgId(5));
        assert_eq!(ep.depths(), (0, 0));
    }

    #[test]
    fn unexpected_fifo_order() {
        let mut ep = Endpoint::new();
        for i in 0..3 {
            ep.push_unexpected(Unexpected::Shm {
                msg: MsgId(i),
                xfer: XferId(i),
                src: addr(1),
                match_info: 9,
                data: vec![],
            });
        }
        let got = ep.post_recv(recv(1, 9, !0)).unwrap();
        assert_eq!(got.msg_id(), MsgId(0));
    }

    #[test]
    fn eager_reassembly() {
        let mut e = EagerRx::new(MsgId(1), XferId(1), addr(0), 7, 10, 3);
        assert!(!e.absorb(0, 0, &[1, 2, 3, 4]));
        assert!(!e.absorb(2, 8, &[9, 10]));
        // Duplicate is idempotent.
        assert!(!e.absorb(0, 0, &[1, 2, 3, 4]));
        assert!(e.absorb(1, 4, &[5, 6, 7, 8]));
        assert!(e.complete());
        assert_eq!(e.buffer, vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
    }

    #[test]
    fn completed_dedup() {
        let mut ep = Endpoint::new();
        assert!(!ep.is_completed(MsgId(3)));
        ep.mark_completed(MsgId(3));
        assert!(ep.is_completed(MsgId(3)));
    }

    #[test]
    fn find_unexpected_eager_in_progress() {
        let mut ep = Endpoint::new();
        ep.push_unexpected(Unexpected::Eager(EagerRx::new(
            MsgId(4),
            XferId(4),
            addr(2),
            1,
            100,
            2,
        )));
        assert!(ep.unexpected_eager_mut(MsgId(4)).is_some());
        assert!(ep.unexpected_eager_mut(MsgId(5)).is_none());
        assert!(ep.has_unexpected(MsgId(4)));
    }
}
