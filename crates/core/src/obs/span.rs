//! The span builder: folds the flat trace stream into per-transfer
//! cross-node span trees with critical-path attribution.
//!
//! Every transfer carries an [`XferId`] through the whole wire protocol
//! (rndv, pull req/reply, eager fragments, acks, notifies), so the
//! sender- and receiver-side [`TraceRecord`]s of one transfer correlate
//! into a single [`XferSpan`] even though they were recorded on different
//! nodes. On top of the raw tree, [`build_spans`] computes a
//! **critical-path attribution**: the transfer's end-to-end latency is
//! partitioned *exactly* — the four components always sum to the span
//! duration — into
//!
//! * `pin_wait` — a protocol action sat queued behind the pin cursor
//!   (between `pin_wait_start` and `pin_wait_end`);
//! * `wire` — waiting on the fabric (the gap ended with a frame arriving
//!   or being served: rndv rx, pull progress, overlap-miss detection,
//!   completion acks);
//! * `retransmit_backoff` — waiting out a retransmission timeout (the gap
//!   ended with a retransmit firing or the retry budget exhausting);
//! * `host_overhead` — everything else (copies, matching, bookkeeping).
//!
//! This is the per-transfer phase breakdown NP-RDMA-style evaluations
//! need: "for this 256 KiB send, how much of the latency was pin wait vs.
//! network vs. backoff?" becomes a field lookup.
//!
//! The module also renders span trees as nested Chrome-trace duration
//! events ([`chrome_spans_json`]) and packages post-mortem dumps for the
//! flight recorder ([`post_mortem_json`]).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::engine::ProcId;
use crate::obs::event::{TraceEvent, TraceRecord};
use crate::obs::metrics::Metrics;
use crate::obs::tracer::Tracer;
use crate::wire::XferId;

/// Critical-path attribution of one transfer's end-to-end latency.
///
/// The four components partition the span exactly:
/// `pin_wait_ns + wire_ns + retransmit_backoff_ns + host_overhead_ns ==`
/// [`XferSpan::duration_ns`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CriticalPath {
    /// Nanoseconds a protocol action waited on the pin cursor.
    pub pin_wait_ns: u64,
    /// Nanoseconds waiting on the fabric.
    pub wire_ns: u64,
    /// Nanoseconds waiting out retransmission timeouts.
    pub retransmit_backoff_ns: u64,
    /// Nanoseconds of host-side work (copies, matching, bookkeeping).
    pub host_overhead_ns: u64,
}

impl CriticalPath {
    /// Sum of all components — equals the span's end-to-end latency.
    pub fn total_ns(&self) -> u64 {
        self.pin_wait_ns + self.wire_ns + self.retransmit_backoff_ns + self.host_overhead_ns
    }
}

/// A child interval of a transfer span (one phase, retransmit chain,
/// pin wait, or pull block).
#[derive(Clone, Debug)]
pub struct ChildSpan {
    /// Phase label (`rndv`, `overlap_window`, `pin_wait`, `pull_block N`,
    /// `notify`, `retransmit_chain`).
    pub name: String,
    /// Start, nanoseconds of virtual time.
    pub start_ns: u64,
    /// End, nanoseconds of virtual time.
    pub end_ns: u64,
    /// Node the interval was observed on (opening record's node).
    pub node: usize,
}

/// One correlated cross-node transfer span.
#[derive(Clone, Debug)]
pub struct XferSpan {
    /// The transfer's causal-trace id.
    pub xfer: XferId,
    /// Earliest correlated record, nanoseconds.
    pub start_ns: u64,
    /// Latest correlated record, nanoseconds.
    pub end_ns: u64,
    /// Distinct nodes that contributed records (sorted).
    pub nodes: Vec<usize>,
    /// Process that initiated the transfer (first attributed record's
    /// process).
    pub initiator: Option<ProcId>,
    /// Correlated records folded into this span.
    pub events: usize,
    /// Phase intervals (rndv leg, overlap window, pin waits, pull blocks,
    /// completion, retransmit chains).
    pub children: Vec<ChildSpan>,
    /// Where the latency went.
    pub critical_path: CriticalPath,
}

impl XferSpan {
    /// End-to-end latency in nanoseconds (first to last correlated record).
    pub fn duration_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }
}

/// Is this event kind the *end of a wait on the fabric*? Used to classify
/// inter-event gaps: a gap that ends with one of these was spent on the
/// wire (frame propagation / serving), not on the host.
fn ends_wire_wait(ev: &TraceEvent) -> bool {
    matches!(
        ev,
        TraceEvent::RndvRx { .. }
            | TraceEvent::BlockDone { .. }
            | TraceEvent::SendDone { .. }
            | TraceEvent::OverlapMissTx { .. }
            | TraceEvent::OverlapMissRx { .. }
            | TraceEvent::PacketDrop { .. }
    )
}

/// Is this event kind the *end of a retransmission backoff*? A gap that
/// ends with a retransmit firing (or the retry budget exhausting) was
/// spent waiting out the timeout.
fn ends_backoff_wait(ev: &TraceEvent) -> bool {
    matches!(
        ev,
        TraceEvent::Retransmit { .. } | TraceEvent::RetryExhausted { .. }
    )
}

/// Fold the tracer's flat record stream into per-transfer spans, one per
/// [`XferId`] observed, sorted by id.
///
/// Correlation is purely by `xfer`: records from every node land in the
/// same span. Attribution partitions the span's `[start, end]` into the
/// gaps between its (time-sorted) records and classifies each gap:
/// `pin_wait` while a pin-wait interval is open, otherwise by the kind of
/// the record that ends the gap (see [`CriticalPath`]). Because every
/// nanosecond lands in exactly one class, the components sum to the
/// end-to-end latency by construction.
pub fn build_spans(tracer: &Tracer) -> Vec<XferSpan> {
    // Gather records per transfer, in recorded (time) order.
    let mut per_xfer: BTreeMap<XferId, Vec<&TraceRecord>> = BTreeMap::new();
    for rec in tracer.iter() {
        if let Some(x) = rec.event.xfer() {
            per_xfer.entry(x).or_default().push(rec);
        }
    }

    let mut spans = Vec::with_capacity(per_xfer.len());
    for (xfer, mut recs) in per_xfer {
        recs.sort_by_key(|r| r.time.as_nanos());
        let start_ns = recs[0].time.as_nanos();
        let end_ns = recs[recs.len() - 1].time.as_nanos();

        let mut nodes: Vec<usize> = recs.iter().map(|r| r.node).collect();
        nodes.sort_unstable();
        nodes.dedup();

        // --- critical-path attribution over inter-record gaps ---
        let mut cp = CriticalPath::default();
        let mut open_pin_waits = 0u32;
        for pair in recs.windows(2) {
            let gap = pair[1].time.as_nanos() - pair[0].time.as_nanos();
            match &pair[0].event {
                TraceEvent::PinWaitStart { .. } => open_pin_waits += 1,
                TraceEvent::PinWaitEnd { .. } => open_pin_waits = open_pin_waits.saturating_sub(1),
                _ => {}
            }
            if open_pin_waits > 0 {
                cp.pin_wait_ns += gap;
            } else if ends_wire_wait(&pair[1].event) {
                cp.wire_ns += gap;
            } else if ends_backoff_wait(&pair[1].event) {
                cp.retransmit_backoff_ns += gap;
            } else {
                cp.host_overhead_ns += gap;
            }
        }

        // --- child phase intervals ---
        let mut children = Vec::new();
        let mut rndv_tx: Option<(u64, usize)> = None;
        let mut first_pull_req: Option<u64> = None;
        let mut pin_wait_open: Vec<(u64, usize)> = Vec::new();
        let mut block_open: BTreeMap<u32, (u64, usize)> = BTreeMap::new();
        let mut recv_done: Option<(u64, usize)> = None;
        let mut retrans: Vec<(u64, usize)> = Vec::new();
        for r in &recs {
            let ns = r.time.as_nanos();
            match &r.event {
                TraceEvent::RndvTx { .. } => rndv_tx = Some((ns, r.node)),
                TraceEvent::RndvRx { .. } => {
                    if let Some((t0, node)) = rndv_tx {
                        children.push(ChildSpan {
                            name: "rndv".to_string(),
                            start_ns: t0,
                            end_ns: ns,
                            node,
                        });
                    }
                }
                TraceEvent::PullReq { block, .. } => {
                    if first_pull_req.is_none() {
                        first_pull_req = Some(ns);
                        if let Some((t0, node)) = rndv_tx {
                            children.push(ChildSpan {
                                name: "overlap_window".to_string(),
                                start_ns: t0,
                                end_ns: ns,
                                node,
                            });
                        }
                    }
                    block_open.entry(*block).or_insert((ns, r.node));
                }
                TraceEvent::BlockDone { block, .. } => {
                    if let Some((t0, node)) = block_open.remove(block) {
                        children.push(ChildSpan {
                            name: format!("pull_block {block}"),
                            start_ns: t0,
                            end_ns: ns,
                            node,
                        });
                    }
                }
                TraceEvent::PinWaitStart { .. } => pin_wait_open.push((ns, r.node)),
                TraceEvent::PinWaitEnd { .. } => {
                    if let Some((t0, node)) = pin_wait_open.pop() {
                        children.push(ChildSpan {
                            name: "pin_wait".to_string(),
                            start_ns: t0,
                            end_ns: ns,
                            node,
                        });
                    }
                }
                TraceEvent::RecvDone { .. } => recv_done = Some((ns, r.node)),
                TraceEvent::SendDone { .. } => {
                    if let Some((t0, node)) = recv_done {
                        children.push(ChildSpan {
                            name: "notify".to_string(),
                            start_ns: t0,
                            end_ns: ns,
                            node,
                        });
                    }
                }
                TraceEvent::Retransmit { .. } | TraceEvent::RetryExhausted { .. } => {
                    retrans.push((ns, r.node));
                }
                _ => {}
            }
        }
        if let (Some(&(first, node)), Some(&(last, _))) = (retrans.first(), retrans.last()) {
            children.push(ChildSpan {
                name: format!("retransmit_chain x{}", retrans.len()),
                start_ns: first,
                end_ns: last,
                node,
            });
        }
        children.sort_by_key(|c| (c.start_ns, c.end_ns));

        spans.push(XferSpan {
            xfer,
            start_ns,
            end_ns,
            nodes,
            initiator: recs.iter().find_map(|r| r.proc),
            events: recs.len(),
            children,
            critical_path: cp,
        });
    }
    spans
}

/// End-to-end latency percentiles of one process's transfers.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ProcLatencyStats {
    /// The initiating process.
    pub proc: ProcId,
    /// Transfers attributed to it.
    pub count: usize,
    /// Median end-to-end latency, nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile end-to-end latency, nanoseconds.
    pub p99_ns: u64,
    /// 99.9th-percentile end-to-end latency, nanoseconds.
    pub p999_ns: u64,
}

/// Nearest-rank percentile over a sorted slice.
fn pct(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Per-process p50/p99/p999 end-to-end latency over a span set — the SLO
/// shape: each transfer is attributed to its initiating process.
pub fn per_proc_latency(spans: &[XferSpan]) -> Vec<ProcLatencyStats> {
    let mut per_proc: BTreeMap<ProcId, Vec<u64>> = BTreeMap::new();
    for s in spans {
        if let Some(p) = s.initiator {
            per_proc.entry(p).or_default().push(s.duration_ns());
        }
    }
    per_proc
        .into_iter()
        .map(|(proc, mut lats)| {
            lats.sort_unstable();
            ProcLatencyStats {
                proc,
                count: lats.len(),
                p50_ns: pct(&lats, 0.50),
                p99_ns: pct(&lats, 0.99),
                p999_ns: pct(&lats, 0.999),
            }
        })
        .collect()
}

/// Nanoseconds → Chrome trace timestamp (microseconds, fractional).
fn ts_us(ns: u64) -> f64 {
    ns as f64 / 1e3
}

/// Render a span set as nested Chrome-trace **duration** events (`B`/`E`
/// pairs): one track group per transfer (`pid` = the `XferId`), the root
/// span on `tid` 0 and each child phase on its own named thread, so
/// Perfetto shows the overlap window, pin waits and pull blocks as nested
/// bars instead of a dust of instants.
pub fn chrome_spans_json(spans: &[XferSpan]) -> String {
    let mut events: Vec<String> = Vec::new();
    for s in spans {
        let pid = s.xfer.0;
        events.push(format!(
            r#"{{"name":"process_name","ph":"M","pid":{pid},"args":{{"name":"xfer {pid}"}}}}"#
        ));
        events.push(format!(
            r#"{{"name":"thread_name","ph":"M","pid":{pid},"tid":0,"args":{{"name":"transfer"}}}}"#
        ));
        let cp = &s.critical_path;
        events.push(format!(
            r#"{{"name":"xfer {pid}","ph":"B","ts":{:.3},"pid":{pid},"tid":0,"args":{{"events":{},"nodes":{},"pin_wait_ns":{},"wire_ns":{},"retransmit_backoff_ns":{},"host_overhead_ns":{}}}}}"#,
            ts_us(s.start_ns),
            s.events,
            s.nodes.len(),
            cp.pin_wait_ns,
            cp.wire_ns,
            cp.retransmit_backoff_ns,
            cp.host_overhead_ns,
        ));
        for (i, c) in s.children.iter().enumerate() {
            let tid = i as u64 + 1;
            events.push(format!(
                r#"{{"name":"thread_name","ph":"M","pid":{pid},"tid":{tid},"args":{{"name":"{}"}}}}"#,
                c.name
            ));
            events.push(format!(
                r#"{{"name":"{}","ph":"B","ts":{:.3},"pid":{pid},"tid":{tid},"args":{{"node":{}}}}}"#,
                c.name,
                ts_us(c.start_ns),
                c.node,
            ));
            events.push(format!(
                r#"{{"name":"{}","ph":"E","ts":{:.3},"pid":{pid},"tid":{tid}}}"#,
                c.name,
                ts_us(c.end_ns),
            ));
        }
        events.push(format!(
            r#"{{"name":"xfer {pid}","ph":"E","ts":{:.3},"pid":{pid},"tid":0}}"#,
            ts_us(s.end_ns),
        ));
    }
    let mut out = String::from("{\"traceEvents\":[");
    out.push_str(&events.join(","));
    out.push_str("]}");
    out
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Package a failure into a post-mortem JSON document: the flight
/// recorder's dump format.
///
/// Contains the failure `reason`, an optional `repro` string (the
/// simtest schedule encoding), a metrics snapshot, and the last `last_n`
/// correlated spans (by end time) each with its critical-path breakdown.
/// Works with a disabled tracer too — the dump is then metrics-only
/// (`spans` is empty), which is how chaos jobs (tracing off) still ship
/// state with every failure.
pub fn post_mortem_json(
    reason: &str,
    repro: Option<&str>,
    tracer: &Tracer,
    metrics: &Metrics,
    last_n: usize,
) -> String {
    let mut spans = build_spans(tracer);
    spans.sort_by_key(|s| s.end_ns);
    let tail: Vec<&XferSpan> = spans.iter().rev().take(last_n).collect();

    let mut out = String::from("{");
    let _ = write!(out, "\"reason\":\"{}\",", json_escape(reason));
    match repro {
        Some(r) => {
            let _ = write!(out, "\"repro\":\"{}\",", json_escape(r));
        }
        None => out.push_str("\"repro\":null,"),
    }
    let _ = write!(
        out,
        "\"metrics\":{{\"retransmits\":{},\"overlap_misses\":{},\"overlap_miss_rate\":{:.6},\"dup_frames_rx\":{},\"faults_injected\":{},\"dropped_events\":{},\"pin_bursts\":{},\"rndv_rtts\":{}}},",
        metrics.retransmits(),
        metrics.overlap_misses(),
        metrics.overlap_miss_rate(),
        metrics.dup_frames_rx(),
        metrics.faults_injected(),
        metrics.dropped_events(),
        metrics.pin_latency.count(),
        metrics.rndv_rtt.count(),
    );
    let _ = write!(
        out,
        "\"trace\":{{\"records\":{},\"dropped_events\":{}}},",
        tracer.len(),
        tracer.dropped(),
    );
    out.push_str("\"spans\":[");
    let mut first = true;
    // `tail` is newest-first from the rev(); emit oldest-first.
    for s in tail.into_iter().rev() {
        if !first {
            out.push(',');
        }
        first = false;
        let cp = &s.critical_path;
        let _ = write!(
            out,
            "{{\"xfer\":{},\"start_ns\":{},\"end_ns\":{},\"duration_ns\":{},\"events\":{},\"nodes\":{},\"pin_wait_ns\":{},\"wire_ns\":{},\"retransmit_backoff_ns\":{},\"host_overhead_ns\":{},\"children\":[",
            s.xfer.0,
            s.start_ns,
            s.end_ns,
            s.duration_ns(),
            s.events,
            s.nodes.len(),
            cp.pin_wait_ns,
            cp.wire_ns,
            cp.retransmit_backoff_ns,
            cp.host_overhead_ns,
        );
        for (i, c) in s.children.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"start_ns\":{},\"end_ns\":{}}}",
                json_escape(&c.name),
                c.start_ns,
                c.end_ns,
            );
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::RegionId;
    use crate::wire::{MsgId, PullId};
    use simcore::SimTime;

    fn rec(ns: u64, node: usize, proc: u32, event: TraceEvent) -> TraceRecord {
        TraceRecord {
            time: SimTime::from_nanos(ns),
            node,
            proc: Some(ProcId(proc)),
            event,
        }
    }

    /// A synthetic two-node rendezvous with a pin wait and a retransmit:
    /// checks correlation, child extraction, and that the attribution
    /// partitions the latency exactly.
    #[test]
    fn synthetic_rndv_attribution_is_exact() {
        let mut t = Tracer::enabled(64);
        let x = XferId(1);
        let msg = MsgId(1);
        let pull = PullId(1);
        t.record(rec(
            0,
            0,
            0,
            TraceEvent::RndvTx {
                msg,
                xfer: x,
                len: 4096,
            },
        ));
        t.record(rec(
            1_000,
            1,
            1,
            TraceEvent::RndvRx {
                msg,
                xfer: x,
                len: 4096,
            },
        ));
        t.record(rec(
            1_100,
            1,
            1,
            TraceEvent::PinWaitStart {
                xfer: x,
                region: RegionId(9),
            },
        ));
        t.record(rec(
            1_600,
            1,
            1,
            TraceEvent::PinWaitEnd {
                xfer: x,
                region: RegionId(9),
            },
        ));
        t.record(rec(
            1_700,
            1,
            1,
            TraceEvent::PullReq {
                msg,
                xfer: x,
                block: 0,
            },
        ));
        t.record(rec(
            4_000,
            1,
            1,
            TraceEvent::Retransmit {
                kind: crate::obs::RetransKind::PullStall,
                id: pull.0,
                xfer: x,
            },
        ));
        t.record(rec(
            5_000,
            1,
            1,
            TraceEvent::BlockDone {
                pull,
                xfer: x,
                block: 0,
            },
        ));
        t.record(rec(
            5_200,
            1,
            1,
            TraceEvent::RecvDone {
                msg,
                xfer: x,
                len: 4096,
            },
        ));
        t.record(rec(6_000, 0, 0, TraceEvent::SendDone { msg, xfer: x }));

        let spans = build_spans(&t);
        assert_eq!(spans.len(), 1);
        let s = &spans[0];
        assert_eq!(s.xfer, x);
        assert_eq!(s.nodes, vec![0, 1]);
        assert_eq!(s.events, 9);
        assert_eq!(s.duration_ns(), 6_000);
        let cp = &s.critical_path;
        // Gap classes: 0→1000 wire (rndv_rx), 1000→1100 host, 1100→1600
        // pin wait, 1600→1700 host, 1700→4000 backoff (retransmit),
        // 4000→5000 wire (block_done), 5000→5200 host, 5200→6000 wire
        // (send_done).
        assert_eq!(cp.pin_wait_ns, 500);
        assert_eq!(cp.wire_ns, 1_000 + 1_000 + 800);
        assert_eq!(cp.retransmit_backoff_ns, 2_300);
        assert_eq!(cp.host_overhead_ns, 100 + 100 + 200);
        assert_eq!(cp.total_ns(), s.duration_ns());

        let names: Vec<&str> = s.children.iter().map(|c| c.name.as_str()).collect();
        assert!(names.contains(&"rndv"));
        assert!(names.contains(&"overlap_window"));
        assert!(names.contains(&"pin_wait"));
        assert!(names.contains(&"pull_block 0"));
        assert!(names.contains(&"notify"));
        assert!(names.iter().any(|n| n.starts_with("retransmit_chain")));

        let ow = s
            .children
            .iter()
            .find(|c| c.name == "overlap_window")
            .unwrap();
        assert_eq!((ow.start_ns, ow.end_ns), (0, 1_700));
        let pw = s.children.iter().find(|c| c.name == "pin_wait").unwrap();
        assert_eq!((pw.start_ns, pw.end_ns), (1_100, 1_600));
    }

    #[test]
    fn spans_separate_by_xfer_and_ignore_unrelated_events() {
        let mut t = Tracer::enabled(64);
        for (i, x) in [XferId(1), XferId(2)].iter().enumerate() {
            let msg = MsgId(i as u64 + 1);
            let base = i as u64 * 100;
            t.record(rec(
                base,
                0,
                0,
                TraceEvent::RndvTx {
                    msg,
                    xfer: *x,
                    len: 1,
                },
            ));
            t.record(rec(
                base + 10,
                1,
                1,
                TraceEvent::RndvRx {
                    msg,
                    xfer: *x,
                    len: 1,
                },
            ));
        }
        // Events without an xfer never correlate.
        t.record(rec(5, 0, 0, TraceEvent::CacheMiss));
        let spans = build_spans(&t);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].xfer, XferId(1));
        assert_eq!(spans[1].xfer, XferId(2));
        assert_eq!(spans[0].events, 2);
        assert_eq!(spans[0].critical_path.total_ns(), spans[0].duration_ns());
    }

    #[test]
    fn per_proc_percentiles() {
        let mut t = Tracer::enabled(256);
        for i in 0..100u64 {
            let x = XferId(i + 1);
            let msg = MsgId(i + 1);
            let base = i * 10_000;
            t.record(rec(
                base,
                0,
                0,
                TraceEvent::RndvTx {
                    msg,
                    xfer: x,
                    len: 1,
                },
            ));
            // Latencies 1..=100 us.
            t.record(rec(
                base + (i + 1) * 1_000,
                1,
                1,
                TraceEvent::SendDone { msg, xfer: x },
            ));
        }
        let spans = build_spans(&t);
        let stats = per_proc_latency(&spans);
        assert_eq!(stats.len(), 1);
        let s = &stats[0];
        assert_eq!(s.proc, ProcId(0));
        assert_eq!(s.count, 100);
        assert_eq!(s.p50_ns, 50_000);
        assert_eq!(s.p99_ns, 99_000);
        assert_eq!(s.p999_ns, 100_000);
    }

    #[test]
    fn chrome_spans_are_balanced_b_e_pairs() {
        let mut t = Tracer::enabled(64);
        let x = XferId(3);
        let msg = MsgId(3);
        t.record(rec(
            0,
            0,
            0,
            TraceEvent::RndvTx {
                msg,
                xfer: x,
                len: 1,
            },
        ));
        t.record(rec(
            500,
            1,
            1,
            TraceEvent::RndvRx {
                msg,
                xfer: x,
                len: 1,
            },
        ));
        t.record(rec(900, 0, 0, TraceEvent::SendDone { msg, xfer: x }));
        let json = chrome_spans_json(&build_spans(&t));
        assert!(json.starts_with("{\"traceEvents\":["));
        assert_eq!(
            json.matches("\"ph\":\"B\"").count(),
            json.matches("\"ph\":\"E\"").count()
        );
        assert!(json.contains("\"pid\":3"));
        assert!(json.contains("\"name\":\"xfer 3\""));
    }

    #[test]
    fn post_mortem_works_without_tracing() {
        let t = Tracer::disabled();
        let m = Metrics::new();
        let json = post_mortem_json("invariant violated", Some("repro:abc"), &t, &m, 8);
        assert!(json.starts_with("{\"reason\":\"invariant violated\""));
        assert!(json.contains("\"repro\":\"repro:abc\""));
        assert!(json.contains("\"spans\":[]"));
        assert!(json.ends_with("}"));
    }

    #[test]
    fn post_mortem_keeps_last_n_spans() {
        let mut t = Tracer::enabled(256);
        for i in 0..10u64 {
            let x = XferId(i + 1);
            let msg = MsgId(i + 1);
            t.record(rec(
                i * 100,
                0,
                0,
                TraceEvent::RndvTx {
                    msg,
                    xfer: x,
                    len: 1,
                },
            ));
            t.record(rec(
                i * 100 + 50,
                0,
                0,
                TraceEvent::SendDone { msg, xfer: x },
            ));
        }
        let m = Metrics::new();
        let json = post_mortem_json("boom", None, &t, &m, 3);
        // Only the 3 newest transfers survive, oldest-first.
        assert!(!json.contains("\"xfer\":7,"));
        assert!(json.contains("\"xfer\":8,"));
        assert!(json.contains("\"xfer\":9,"));
        assert!(json.contains("\"xfer\":10,"));
        let p8 = json.find("\"xfer\":8,").unwrap();
        let p10 = json.find("\"xfer\":10,").unwrap();
        assert!(p8 < p10);
    }
}
