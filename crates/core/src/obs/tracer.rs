//! The bounded ring-buffer tracer owned by the cluster.

use std::collections::VecDeque;

use super::event::TraceRecord;

/// Default ring capacity: plenty for a figure-sized run, bounded enough
/// to keep long overload experiments at a fixed memory footprint.
pub const DEFAULT_CAPACITY: usize = 1 << 16;

/// A bounded ring buffer of [`TraceRecord`]s.
///
/// Disabled (the default), [`Tracer::record`] is a branch and nothing
/// else. Enabled, each record is an O(1) push; once `capacity` records are
/// held the oldest is evicted and counted in [`Tracer::dropped`].
#[derive(Clone, Debug, Default)]
pub struct Tracer {
    enabled: bool,
    capacity: usize,
    buf: VecDeque<TraceRecord>,
    dropped: u64,
}

impl Tracer {
    /// A disabled tracer (records are discarded for free).
    pub fn disabled() -> Self {
        Tracer::default()
    }

    /// An enabled tracer holding at most `capacity` records.
    ///
    /// # Panics
    /// Panics if `capacity` is 0.
    pub fn enabled(capacity: usize) -> Self {
        assert!(capacity > 0, "tracer capacity must be positive");
        Tracer {
            enabled: true,
            capacity,
            buf: VecDeque::with_capacity(capacity.min(4096)),
            dropped: 0,
        }
    }

    /// Is recording on?
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record one event (no-op when disabled).
    pub fn record(&mut self, rec: TraceRecord) {
        if !self.enabled {
            return;
        }
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(rec);
    }

    /// Records currently held, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceRecord> + '_ {
        self.buf.iter()
    }

    /// Records currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing is recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Ring capacity (0 when disabled).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Discard everything recorded so far (capacity and enablement keep).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::super::event::TraceEvent;
    use super::*;
    use simcore::SimTime;

    fn rec(i: u64) -> TraceRecord {
        TraceRecord {
            time: SimTime::from_nanos(i),
            node: 0,
            proc: None,
            event: TraceEvent::Retransmit {
                kind: super::super::RetransKind::Rndv,
                id: i,
                xfer: crate::wire::XferId(i),
            },
        }
    }

    #[test]
    fn disabled_records_nothing() {
        let mut t = Tracer::disabled();
        assert!(!t.is_enabled());
        for i in 0..100 {
            t.record(rec(i));
        }
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn ring_wraparound_keeps_newest() {
        let mut t = Tracer::enabled(4);
        for i in 0..10u64 {
            t.record(rec(i));
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.dropped(), 6);
        let times: Vec<u64> = t.iter().map(|r| r.time.as_nanos()).collect();
        // Oldest evicted first: the newest 4 survive, in order.
        assert_eq!(times, vec![6, 7, 8, 9]);
    }

    #[test]
    fn exact_capacity_does_not_drop() {
        let mut t = Tracer::enabled(5);
        for i in 0..5u64 {
            t.record(rec(i));
        }
        assert_eq!(t.len(), 5);
        assert_eq!(t.dropped(), 0);
        let times: Vec<u64> = t.iter().map(|r| r.time.as_nanos()).collect();
        assert_eq!(times, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn clear_resets_but_keeps_enablement() {
        let mut t = Tracer::enabled(2);
        t.record(rec(1));
        t.record(rec(2));
        t.record(rec(3));
        assert_eq!(t.dropped(), 1);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 0);
        assert!(t.is_enabled());
        t.record(rec(4));
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        Tracer::enabled(0);
    }
}
