//! Typed trace events covering the pinning lifecycle and the rendezvous
//! protocol.
//!
//! Events carry only `Copy` scalar fields so constructing one is cheap
//! enough to do unconditionally; the human-readable [`TraceRecord::detail`]
//! string is only built when a consumer asks for it.

use simcore::SimTime;

use crate::driver::RegionId;
use crate::engine::ProcId;
use crate::wire::{MsgId, PullId, XferId};

/// Which retransmission machinery fired.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RetransKind {
    /// Sender re-sent the rendezvous (no pull request arrived in time).
    Rndv,
    /// Sender re-sent an eager message (no ack in time).
    Eager,
    /// Receiver re-requested stalled pull blocks (timeout).
    PullStall,
    /// Receiver re-sent the completion notify (no ack in time).
    Notify,
    /// Receiver optimistically re-requested an earlier block after
    /// out-of-order progress revealed a hole (§4.3).
    OptimisticRereq,
}

impl RetransKind {
    /// Stable lowercase label.
    pub fn label(&self) -> &'static str {
        match self {
            RetransKind::Rndv => "rndv",
            RetransKind::Eager => "eager",
            RetransKind::PullStall => "pull_stall",
            RetransKind::Notify => "notify",
            RetransKind::OptimisticRereq => "optimistic_rereq",
        }
    }
}

/// Which fabric misbehavior the fault-injection layer produced.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultKind {
    /// Gilbert–Elliott bad-state (bursty) loss.
    BurstLoss,
    /// A frame was delivered twice.
    Duplicate,
    /// A frame was delayed past its in-order slot.
    Reorder,
    /// Scripted link death swallowed a frame.
    LinkDown,
}

impl FaultKind {
    /// Stable lowercase label.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::BurstLoss => "burst_loss",
            FaultKind::Duplicate => "duplicate",
            FaultKind::Reorder => "reorder",
            FaultKind::LinkDown => "link_down",
        }
    }
}

/// One step of the pinning lifecycle or rendezvous protocol.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum TraceEvent {
    /// A region was declared to the driver (never pins).
    RegionDeclare {
        /// The new descriptor.
        region: RegionId,
        /// Pages the region spans.
        pages: u64,
    },
    /// A region was undeclared (descriptor released).
    RegionUndeclare {
        /// The released descriptor.
        region: RegionId,
    },
    /// A pin plan started driving the region's pin cursor toward a target.
    PinStart {
        /// Region being pinned.
        region: RegionId,
        /// Pages the cursor is heading for.
        target_pages: u64,
    },
    /// One pin chunk completed; the cursor advanced.
    PinChunk {
        /// Region being pinned.
        region: RegionId,
        /// Pages pinned by this chunk.
        pages: u64,
        /// Cursor position after the chunk.
        cursor_pages: u64,
    },
    /// The pin cursor reached its target; the plan is quiescent.
    PinComplete {
        /// Region that finished pinning.
        region: RegionId,
        /// Final cursor position.
        cursor_pages: u64,
    },
    /// Sender-side overlap miss: a pull request touched pages the pin
    /// cursor has not reached; those frames were withheld.
    OverlapMissTx {
        /// The send transfer.
        msg: MsgId,
        /// Causal-trace id of the transfer.
        xfer: XferId,
        /// The pull block that could not be fully served.
        block: u32,
    },
    /// Receiver-side overlap miss: a pull reply landed on unpinned pages.
    OverlapMissRx {
        /// The pull transaction.
        pull: PullId,
        /// Causal-trace id of the transfer.
        xfer: XferId,
        /// Byte offset of the offending frame.
        offset: u64,
    },
    /// A data packet was dropped because its landing pages were unpinned
    /// (the §3.3 drop; re-request recovers it).
    PacketDrop {
        /// The pull transaction.
        pull: PullId,
        /// Causal-trace id of the transfer.
        xfer: XferId,
        /// Byte offset of the dropped frame.
        offset: u64,
    },
    /// A retransmission / re-request fired.
    Retransmit {
        /// Which machinery.
        kind: RetransKind,
        /// The transfer it belongs to (`MsgId` or `PullId` raw value).
        id: u64,
        /// Causal-trace id of the transfer.
        xfer: XferId,
    },
    /// An adaptive retransmission timeout was computed for a timer arm.
    Backoff {
        /// Which machinery the timer belongs to.
        kind: RetransKind,
        /// The transfer (`MsgId` or `PullId` raw value).
        id: u64,
        /// Causal-trace id of the transfer.
        xfer: XferId,
        /// Attempt number driving the exponential term (0 = first arm).
        attempt: u32,
        /// The timeout applied, nanoseconds.
        rto_nanos: u64,
    },
    /// The fault-injection fabric misbehaved on purpose.
    FaultInjected {
        /// What it did.
        kind: FaultKind,
    },
    /// A transfer exhausted its retry budget and failed cleanly.
    RetryExhausted {
        /// Which machinery gave up.
        kind: RetransKind,
        /// The transfer (`MsgId` or `PullId` raw value).
        id: u64,
        /// Causal-trace id of the transfer.
        xfer: XferId,
    },
    /// The MMU notifier invalidated (unpinned) a region.
    NotifierInvalidate {
        /// Region that lost its pins.
        region: RegionId,
        /// Pages released.
        pages: u64,
    },
    /// An invalidation hit was parked in the deferred-unpin queue instead
    /// of being serviced inside the notifier event (pins stay attached,
    /// the stale pages become protocol-invisible until the drain).
    NotifierDefer {
        /// Region whose tail went stale.
        region: RegionId,
        /// Pages newly marked stale by this event.
        pages: u64,
    },
    /// A deferred unpin dissolved at drain time: the region was re-pinned
    /// over the invalidated range before the epoch closed.
    NotifierCancel {
        /// Region whose pending unpin was cancelled.
        region: RegionId,
    },
    /// The deferred-unpin queue released a region's stale pages in the
    /// epoch-close (or pressure) batch.
    NotifierDrain {
        /// Region drained.
        region: RegionId,
        /// Pages released.
        pages: u64,
    },
    /// Pages unpinned to stay under the pinned-page ceiling.
    PressureUnpin {
        /// The evicted region.
        region: RegionId,
        /// Pages released.
        pages: u64,
    },
    /// A pin pass denied because the tenant's hard cap left no headroom
    /// even after self-eviction; its transfers fail cleanly.
    PinDenied {
        /// Region whose pin pass was denied.
        region: RegionId,
        /// Pages the denied chunk asked for.
        pages: u64,
    },
    /// An in-use region restarted pinning after an invalidation.
    Repin {
        /// Region being repinned.
        region: RegionId,
        /// Pages the restarted plan is heading for.
        target_pages: u64,
    },
    /// Region-cache hit: declaration syscall skipped.
    CacheHit {
        /// The cached descriptor.
        region: RegionId,
    },
    /// Region-cache miss: a fresh declaration was needed.
    CacheMiss,
    /// Region-cache eviction (LRU).
    CacheEvict {
        /// The evicted descriptor.
        region: RegionId,
    },
    /// Rendezvous sent (sender side).
    RndvTx {
        /// The send transfer.
        msg: MsgId,
        /// Causal-trace id of the transfer.
        xfer: XferId,
        /// Message length in bytes.
        len: u64,
    },
    /// Rendezvous matched a posted receive (receiver side).
    RndvRx {
        /// The transfer.
        msg: MsgId,
        /// Causal-trace id of the transfer.
        xfer: XferId,
        /// Bytes that will cross the fabric.
        len: u64,
    },
    /// A pull block was requested for the first time.
    PullReq {
        /// The transfer.
        msg: MsgId,
        /// Causal-trace id of the transfer.
        xfer: XferId,
        /// Block index.
        block: u32,
    },
    /// A pull block completed (all frames placed or parked).
    BlockDone {
        /// The pull transaction.
        pull: PullId,
        /// Causal-trace id of the transfer.
        xfer: XferId,
        /// Block index.
        block: u32,
    },
    /// The sender saw the notify: transfer done on the send side.
    SendDone {
        /// The transfer.
        msg: MsgId,
        /// Causal-trace id of the transfer.
        xfer: XferId,
    },
    /// The receiver placed every frame: transfer done on the receive side.
    RecvDone {
        /// The transfer.
        msg: MsgId,
        /// Causal-trace id of the transfer.
        xfer: XferId,
        /// Bytes delivered.
        len: u64,
    },
    /// A transfer started waiting on the pin cursor: a protocol action
    /// (send rndv / start pulling) was queued behind an unmet pin
    /// threshold. Paired with [`TraceEvent::PinWaitEnd`].
    PinWaitStart {
        /// The waiting transfer.
        xfer: XferId,
        /// The region whose cursor is being waited on.
        region: RegionId,
    },
    /// The pin cursor reached the threshold and released the waiting
    /// transfer's queued action.
    PinWaitEnd {
        /// The transfer that stopped waiting.
        xfer: XferId,
        /// The region whose cursor satisfied the wait.
        region: RegionId,
    },
    /// Application-level annotation (via `Ctx::annotate`).
    AppMark {
        /// Caller-chosen label.
        label: &'static str,
    },
    /// A process crashed: its endpoint closed, its transfers were torn
    /// down, and the driver reaped every pin it owned.
    ProcCrash {
        /// The process that died.
        proc: ProcId,
        /// The incarnation that died.
        incarnation: u32,
        /// Pages the driver unpinned while reaping the dead tenant.
        reaped_pages: u64,
    },
    /// A process came back from a crash with a bumped incarnation.
    ProcRestart {
        /// The restarted process.
        proc: ProcId,
        /// The new (post-bump) incarnation.
        incarnation: u32,
    },
    /// A frame stamped with a stale incarnation (or addressed to a dead
    /// endpoint) was fenced at arrival instead of being interpreted.
    FencedDrop {
        /// The frame's source process.
        src: ProcId,
        /// The frame's destination process.
        dst: ProcId,
        /// Causal-trace id of the transfer the frame belonged to.
        xfer: XferId,
    },
}

impl TraceEvent {
    /// Stable snake_case tag, usable for filtering and as the CSV/Chrome
    /// event name. One tag per variant; documented in DESIGN.md.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::RegionDeclare { .. } => "region_declare",
            TraceEvent::RegionUndeclare { .. } => "region_undeclare",
            TraceEvent::PinStart { .. } => "pin_start",
            TraceEvent::PinChunk { .. } => "pin_chunk",
            TraceEvent::PinComplete { .. } => "pin_complete",
            TraceEvent::OverlapMissTx { .. } => "overlap_miss_tx",
            TraceEvent::OverlapMissRx { .. } => "overlap_miss_rx",
            TraceEvent::PacketDrop { .. } => "packet_drop",
            TraceEvent::Retransmit { .. } => "retransmit",
            TraceEvent::Backoff { .. } => "backoff",
            TraceEvent::FaultInjected { .. } => "fault_injected",
            TraceEvent::RetryExhausted { .. } => "retry_exhausted",
            TraceEvent::NotifierInvalidate { .. } => "notifier_invalidate",
            TraceEvent::NotifierDefer { .. } => "notifier_defer",
            TraceEvent::NotifierCancel { .. } => "notifier_cancel",
            TraceEvent::NotifierDrain { .. } => "notifier_drain",
            TraceEvent::PressureUnpin { .. } => "pressure_unpin",
            TraceEvent::PinDenied { .. } => "pin_denied",
            TraceEvent::Repin { .. } => "repin",
            TraceEvent::CacheHit { .. } => "cache_hit",
            TraceEvent::CacheMiss => "cache_miss",
            TraceEvent::CacheEvict { .. } => "cache_evict",
            TraceEvent::RndvTx { .. } => "rndv_tx",
            TraceEvent::RndvRx { .. } => "rndv_rx",
            TraceEvent::PullReq { .. } => "pull_req",
            TraceEvent::BlockDone { .. } => "block_done",
            TraceEvent::SendDone { .. } => "send_done",
            TraceEvent::RecvDone { .. } => "recv_done",
            TraceEvent::PinWaitStart { .. } => "pin_wait_start",
            TraceEvent::PinWaitEnd { .. } => "pin_wait_end",
            TraceEvent::AppMark { .. } => "app_mark",
            TraceEvent::ProcCrash { .. } => "proc_crash",
            TraceEvent::ProcRestart { .. } => "proc_restart",
            TraceEvent::FencedDrop { .. } => "fenced_drop",
        }
    }

    /// Human-readable detail string (built on demand, not on record).
    pub fn detail(&self) -> String {
        match self {
            TraceEvent::RegionDeclare { region, pages } => {
                format!("region {} pages {pages}", region.0)
            }
            TraceEvent::RegionUndeclare { region } => format!("region {}", region.0),
            TraceEvent::PinStart {
                region,
                target_pages,
            } => {
                format!("region {} target {target_pages} pages", region.0)
            }
            TraceEvent::PinChunk {
                region,
                pages,
                cursor_pages,
            } => {
                format!("region {} +{pages} cursor {cursor_pages} pages", region.0)
            }
            TraceEvent::PinComplete {
                region,
                cursor_pages,
            } => {
                format!("region {} cursor {cursor_pages} pages", region.0)
            }
            TraceEvent::OverlapMissTx { msg, block, .. } => {
                format!("msg {} block {block}", msg.0)
            }
            TraceEvent::OverlapMissRx { pull, offset, .. } => {
                format!("pull {} offset {offset}", pull.0)
            }
            TraceEvent::PacketDrop { pull, offset, .. } => {
                format!("pull {} offset {offset}", pull.0)
            }
            TraceEvent::Retransmit { kind, id, .. } => format!("{} id {id}", kind.label()),
            TraceEvent::Backoff {
                kind,
                id,
                attempt,
                rto_nanos,
                ..
            } => {
                format!(
                    "{} id {id} attempt {attempt} rto {rto_nanos} ns",
                    kind.label()
                )
            }
            TraceEvent::FaultInjected { kind } => kind.label().to_string(),
            TraceEvent::RetryExhausted { kind, id, .. } => format!("{} id {id}", kind.label()),
            TraceEvent::NotifierInvalidate { region, pages } => {
                format!("region {} unpinned {pages} pages", region.0)
            }
            TraceEvent::NotifierDefer { region, pages } => {
                format!("region {} deferred {pages} pages", region.0)
            }
            TraceEvent::NotifierCancel { region } => format!("region {}", region.0),
            TraceEvent::NotifierDrain { region, pages } => {
                format!("region {} released {pages} pages", region.0)
            }
            TraceEvent::PressureUnpin { region, pages } => {
                format!("region {} unpinned {pages} pages", region.0)
            }
            TraceEvent::PinDenied { region, pages } => {
                format!("region {} denied {pages} pages (quota)", region.0)
            }
            TraceEvent::Repin {
                region,
                target_pages,
            } => {
                format!("region {} target {target_pages} pages", region.0)
            }
            TraceEvent::CacheHit { region } => format!("region {}", region.0),
            TraceEvent::CacheMiss => String::new(),
            TraceEvent::CacheEvict { region } => format!("region {}", region.0),
            TraceEvent::RndvTx { msg, len, .. } => format!("msg {} len {len}", msg.0),
            TraceEvent::RndvRx { msg, len, .. } => format!("msg {} len {len}", msg.0),
            TraceEvent::PullReq { msg, block, .. } => format!("msg {} block {block}", msg.0),
            TraceEvent::BlockDone { pull, block, .. } => format!("pull {} block {block}", pull.0),
            TraceEvent::SendDone { msg, .. } => format!("msg {}", msg.0),
            TraceEvent::RecvDone { msg, len, .. } => format!("msg {} len {len}", msg.0),
            TraceEvent::PinWaitStart { xfer, region } => {
                format!("xfer {} region {}", xfer.0, region.0)
            }
            TraceEvent::PinWaitEnd { xfer, region } => {
                format!("xfer {} region {}", xfer.0, region.0)
            }
            TraceEvent::AppMark { label } => (*label).to_string(),
            TraceEvent::ProcCrash {
                proc,
                incarnation,
                reaped_pages,
            } => {
                format!(
                    "proc {} incarnation {incarnation} reaped {reaped_pages} pages",
                    proc.0
                )
            }
            TraceEvent::ProcRestart { proc, incarnation } => {
                format!("proc {} incarnation {incarnation}", proc.0)
            }
            TraceEvent::FencedDrop { src, dst, .. } => {
                format!("src proc {} dst proc {}", src.0, dst.0)
            }
        }
    }

    /// The region this event is about, when it has one (used to pair
    /// pin-start/pin-complete into spans).
    pub fn region(&self) -> Option<RegionId> {
        match self {
            TraceEvent::RegionDeclare { region, .. }
            | TraceEvent::RegionUndeclare { region }
            | TraceEvent::PinStart { region, .. }
            | TraceEvent::PinChunk { region, .. }
            | TraceEvent::PinComplete { region, .. }
            | TraceEvent::NotifierInvalidate { region, .. }
            | TraceEvent::NotifierDefer { region, .. }
            | TraceEvent::NotifierCancel { region }
            | TraceEvent::NotifierDrain { region, .. }
            | TraceEvent::PressureUnpin { region, .. }
            | TraceEvent::PinDenied { region, .. }
            | TraceEvent::Repin { region, .. }
            | TraceEvent::CacheHit { region }
            | TraceEvent::CacheEvict { region }
            | TraceEvent::PinWaitStart { region, .. }
            | TraceEvent::PinWaitEnd { region, .. } => Some(*region),
            _ => None,
        }
    }
}

impl TraceEvent {
    /// The transfer this event belongs to, when it names one (used by the
    /// span builder to correlate sender- and receiver-side records).
    pub fn xfer(&self) -> Option<XferId> {
        match self {
            TraceEvent::OverlapMissTx { xfer, .. }
            | TraceEvent::OverlapMissRx { xfer, .. }
            | TraceEvent::PacketDrop { xfer, .. }
            | TraceEvent::Retransmit { xfer, .. }
            | TraceEvent::Backoff { xfer, .. }
            | TraceEvent::RetryExhausted { xfer, .. }
            | TraceEvent::RndvTx { xfer, .. }
            | TraceEvent::RndvRx { xfer, .. }
            | TraceEvent::PullReq { xfer, .. }
            | TraceEvent::BlockDone { xfer, .. }
            | TraceEvent::SendDone { xfer, .. }
            | TraceEvent::RecvDone { xfer, .. }
            | TraceEvent::PinWaitStart { xfer, .. }
            | TraceEvent::PinWaitEnd { xfer, .. }
            | TraceEvent::FencedDrop { xfer, .. } => Some(*xfer),
            _ => None,
        }
    }
}

/// A [`TraceEvent`] stamped with when and where it happened.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct TraceRecord {
    /// Simulated instant.
    pub time: SimTime,
    /// Node index.
    pub node: usize,
    /// Process involved, when attributable.
    pub proc: Option<ProcId>,
    /// What happened.
    pub event: TraceEvent,
}

impl TraceRecord {
    /// Shorthand for `self.event.kind()`.
    pub fn kind(&self) -> &'static str {
        self.event.kind()
    }

    /// Shorthand for `self.event.detail()`.
    pub fn detail(&self) -> String {
        self.event.detail()
    }
}
