//! Observability: the unified pinning-lifecycle tracing and metrics layer.
//!
//! The paper's entire argument is about *when* things happen — pinning
//! overlapped with the rendezvous round trip, overlap misses recovered by
//! retransmission, notifier invalidations racing communications. This
//! module makes all of it observable as first-class data instead of
//! ad-hoc printing:
//!
//! * [`TraceEvent`] / [`TraceRecord`] — one typed event per step of the
//!   pinning lifecycle (declare, pin-start/chunk/complete, overlap miss,
//!   packet drop, retransmit, invalidation, pressure unpin, repin, cache
//!   hit/miss/evict) and of the rendezvous protocol, stamped with
//!   [`simcore::SimTime`], node and process;
//! * [`Tracer`] — a bounded ring buffer owned by the
//!   [`Cluster`](crate::Cluster): a no-op when disabled, O(1) per event
//!   when enabled, oldest events evicted first;
//! * [`Metrics`] — always-on latency registry built on
//!   [`simcore::FixedHistogram`] / [`simcore::OnlineStats`]: pin latency,
//!   rendezvous round trip, overlap-window width, overlap-miss rate;
//! * [`export`] — Chrome trace-event JSON (loadable in Perfetto / (chrome
//!   or edge)://tracing) and CSV.
//!
//! Named stats structs ([`DriverStats`], [`CacheStats`]) replace the old
//! anonymous tuple returns of `Driver::stats()` / `RegionCache::stats()`.

pub mod event;
pub mod export;
pub mod metrics;
pub mod span;
pub mod tracer;

pub use event::{FaultKind, RetransKind, TraceEvent, TraceRecord};
pub use export::{chrome_trace_json, csv};
pub use metrics::Metrics;
pub use span::{
    build_spans, chrome_spans_json, per_proc_latency, post_mortem_json, ChildSpan, CriticalPath,
    ProcLatencyStats, XferSpan,
};
pub use tracer::Tracer;

/// Driver-side pinning counters (was an anonymous `(u64, u64)` tuple).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct DriverStats {
    /// Pages unpinned to stay under the pinned-page ceiling (§3.1).
    pub pressure_unpinned_pages: u64,
    /// MMU-notifier events handled. This used to be a single
    /// `notifier_invalidations` counter that was documented as an event
    /// count but bumped once per *region* unpinned — the split keeps the
    /// trace and metrics exporters honest about both rates.
    pub notifier_events: u64,
    /// Regions unpinned by MMU-notifier events (≥ one event can unpin
    /// several regions; most events unpin none).
    pub notifier_region_unpins: u64,
    /// Candidate regions the notifier interval index routed events to
    /// (index effectiveness: candidates ≪ declared regions).
    pub notifier_index_candidates: u64,
    /// Region invalidation hits whose unpin was deferred to the flush
    /// epoch instead of being serviced inside the notifier event.
    pub notifier_deferred: u64,
    /// Deferred unpins cancelled because the region was re-pinned over
    /// the invalidated range before the epoch drained (allocator churn
    /// turned into a no-op).
    pub notifier_cancelled: u64,
    /// Batched drains of the deferred-unpin queue (epoch close or
    /// pin-budget pressure).
    pub notifier_drain_batches: u64,
    /// LRU heap entries examined by pressure eviction (eviction
    /// effectiveness: pops stay near evictions instead of scaling with
    /// the region table).
    pub evict_lru_pops: u64,
}

/// Per-tenant pinning accounting (the multi-tenant half of the driver
/// stats): how many pages each process has pinned, how often its pin
/// passes were denied for quota, and how eviction pressure flowed
/// between tenants.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct TenantStats {
    /// Pages currently pinned and attributed to this tenant.
    pub pinned_pages: u64,
    /// High-water mark of `pinned_pages`.
    pub peak_pinned_pages: u64,
    /// Pin passes denied because the tenant's hard cap left no headroom.
    pub quota_denials: u64,
    /// Pages this tenant's pressure evicted from *other* tenants — the
    /// noisy-neighbor damage it caused.
    pub evictions_inflicted_on_others: u64,
    /// Pages other tenants' pressure evicted from this one — the
    /// noisy-neighbor damage it absorbed.
    pub evictions_suffered_from_others: u64,
}

/// Region-cache effectiveness counters (was an anonymous `(u64, u64)`).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to declare a fresh region.
    pub misses: u64,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]`; 0 when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}
