//! Trace exporters: Chrome trace-event JSON (Perfetto-loadable) and CSV.
//!
//! Both exporters are pure functions of a [`Tracer`] snapshot; neither
//! touches the filesystem, so callers decide where bytes go. The JSON is
//! hand-assembled (the trace-event format is flat and tiny; no serializer
//! is needed) and loads in Perfetto (<https://ui.perfetto.dev>) or
//! `chrome://tracing`.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::driver::RegionId;
use crate::obs::event::TraceEvent;
use crate::obs::tracer::Tracer;

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Nanoseconds → trace-event timestamp (microseconds, fractional).
fn ts_us(ns: u64) -> f64 {
    ns as f64 / 1e3
}

/// Export the tracer's contents as Chrome trace-event JSON.
///
/// Pinning shows up as duration spans: each `pin_start` is paired with the
/// next `pin_complete` for the same `(node, region)` into a `ph:"X"`
/// complete event named `pin`, so the overlap between pinning and the
/// rendezvous round trip is visible as a bar on the timeline. Every other
/// record becomes a `ph:"i"` instant. Tracks are `pid` = node index and
/// `tid` = process id + 1 (0 for events not attributable to a process,
/// e.g. driver work).
///
/// The ring's evicted-record count is stamped into `otherData` as
/// `dropped_events`, so a truncated trace is self-describing.
pub fn chrome_trace_json(tracer: &Tracer) -> String {
    let mut events: Vec<String> = Vec::with_capacity(tracer.len());
    // (node, region) -> index into `events` of a pending pin_start, plus
    // its start ns, so pin_complete can rewrite it as a span in place.
    let mut open_pins: HashMap<(usize, RegionId), (usize, u64)> = HashMap::new();

    for rec in tracer.iter() {
        let pid = rec.node;
        let tid = rec.proc.map(|p| p.0 as u64 + 1).unwrap_or(0);
        let ns = rec.time.as_nanos();
        match rec.event {
            TraceEvent::PinStart { region, .. } => {
                // Placeholder instant; upgraded to a span on pin_complete.
                let idx = events.len();
                events.push(format!(
                    r#"{{"name":"pin_start","ph":"i","s":"t","ts":{:.3},"pid":{pid},"tid":{tid},"args":{{"detail":"{}"}}}}"#,
                    ts_us(ns),
                    json_escape(&rec.detail()),
                ));
                open_pins.insert((rec.node, region), (idx, ns));
            }
            TraceEvent::PinComplete {
                region,
                cursor_pages,
            } => {
                if let Some((idx, start_ns)) = open_pins.remove(&(rec.node, region)) {
                    events[idx] = format!(
                        r#"{{"name":"pin","ph":"X","ts":{:.3},"dur":{:.3},"pid":{pid},"tid":{tid},"args":{{"region":{},"cursor_pages":{cursor_pages}}}}}"#,
                        ts_us(start_ns),
                        ts_us(ns - start_ns),
                        region.0,
                    );
                } else {
                    events.push(format!(
                        r#"{{"name":"pin_complete","ph":"i","s":"t","ts":{:.3},"pid":{pid},"tid":{tid},"args":{{"detail":"{}"}}}}"#,
                        ts_us(ns),
                        json_escape(&rec.detail()),
                    ));
                }
            }
            ref ev => {
                events.push(format!(
                    r#"{{"name":"{}","ph":"i","s":"t","ts":{:.3},"pid":{pid},"tid":{tid},"args":{{"detail":"{}"}}}}"#,
                    ev.kind(),
                    ts_us(ns),
                    json_escape(&ev.detail()),
                ));
            }
        }
    }

    let mut out = String::from("{\"traceEvents\":[");
    out.push_str(&events.join(","));
    let _ = write!(
        out,
        "],\"otherData\":{{\"dropped_events\":\"{}\"}}}}",
        tracer.dropped()
    );
    out
}

/// Export the tracer's contents as CSV with header
/// `time_ns,node,proc,kind,detail` (proc empty when unattributed; detail
/// double-quoted with embedded quotes doubled). The last line is a
/// `# dropped_events=N` comment stamping the ring's evicted-record count,
/// so a truncated trace is self-describing.
pub fn csv(tracer: &Tracer) -> String {
    let mut out = String::from("time_ns,node,proc,kind,detail\n");
    for rec in tracer.iter() {
        let proc = rec.proc.map(|p| p.0.to_string()).unwrap_or_default();
        let detail = rec.detail().replace('"', "\"\"");
        let _ = writeln!(
            out,
            "{},{},{},{},\"{}\"",
            rec.time.as_nanos(),
            rec.node,
            proc,
            rec.kind(),
            detail,
        );
    }
    let _ = writeln!(out, "# dropped_events={}", tracer.dropped());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ProcId;
    use crate::obs::event::TraceRecord;
    use simcore::SimTime;

    fn rec(ns: u64, node: usize, proc: Option<u32>, event: TraceEvent) -> TraceRecord {
        TraceRecord {
            time: SimTime::from_nanos(ns),
            node,
            proc: proc.map(ProcId),
            event,
        }
    }

    #[test]
    fn pin_pairs_become_spans() {
        let mut t = Tracer::enabled(16);
        let region = RegionId(7);
        t.record(rec(
            1_000,
            0,
            Some(0),
            TraceEvent::PinStart {
                region,
                target_pages: 4,
            },
        ));
        t.record(rec(
            1_500,
            0,
            Some(0),
            TraceEvent::PinChunk {
                region,
                pages: 2,
                cursor_pages: 2,
            },
        ));
        t.record(rec(
            3_000,
            0,
            Some(0),
            TraceEvent::PinComplete {
                region,
                cursor_pages: 4,
            },
        ));
        let json = chrome_trace_json(&t);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("],\"otherData\":{\"dropped_events\":\"0\"}}"));
        // The start/complete pair collapsed into one complete-event span.
        assert!(
            json.contains(r#""name":"pin","ph":"X","ts":1.000,"dur":2.000"#),
            "{json}"
        );
        assert!(!json.contains(r#""name":"pin_start""#));
        assert!(json.contains(r#""name":"pin_chunk""#));
    }

    #[test]
    fn unmatched_pin_start_stays_an_instant() {
        let mut t = Tracer::enabled(16);
        t.record(rec(
            500,
            1,
            None,
            TraceEvent::PinStart {
                region: RegionId(1),
                target_pages: 8,
            },
        ));
        let json = chrome_trace_json(&t);
        assert!(json.contains(r#""name":"pin_start","ph":"i""#));
        assert!(json.contains(r#""pid":1,"tid":0"#));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut t = Tracer::enabled(16);
        t.record(rec(42, 2, Some(3), TraceEvent::CacheMiss));
        t.record(rec(99, 0, None, TraceEvent::AppMark { label: "phase one" }));
        let text = csv(&t);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "time_ns,node,proc,kind,detail");
        assert_eq!(lines[1], "42,2,3,cache_miss,\"\"");
        assert_eq!(lines[2], "99,0,,app_mark,\"phase one\"");
        assert_eq!(lines[3], "# dropped_events=0");
    }

    #[test]
    fn exports_stamp_dropped_events() {
        let mut t = Tracer::enabled(1);
        t.record(rec(1, 0, None, TraceEvent::CacheMiss));
        t.record(rec(2, 0, None, TraceEvent::CacheMiss));
        t.record(rec(3, 0, None, TraceEvent::CacheMiss));
        assert_eq!(t.dropped(), 2);
        let json = chrome_trace_json(&t);
        assert!(json.ends_with("],\"otherData\":{\"dropped_events\":\"2\"}}"));
        let text = csv(&t);
        assert_eq!(text.lines().last().unwrap(), "# dropped_events=2");
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
