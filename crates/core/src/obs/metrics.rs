//! The always-on metrics registry: latency histograms and derived rates.

use simcore::{FixedHistogram, OnlineStats, SimDuration};

/// Cluster-wide latency metrics, recorded whether or not tracing is on
/// (every record is a fixed-cost histogram increment).
///
/// * **Pin latency** — pin-start to pin-complete of one pin plan burst:
///   how long the driver took to walk the cursor to its target.
/// * **Rendezvous round trip** — rendezvous transmission to the matching
///   notify: the full large-message transaction as the sender sees it.
/// * **Overlap window** — rendezvous transmission to the first pull
///   request: the round trip the paper hides pinning behind (§3.3).
/// * **Overlap-miss rate** — dropped-for-unpinned frames over all pull
///   reply frames: how often the transfer outran the pin cursor.
#[derive(Clone, Debug)]
pub struct Metrics {
    /// Pin-start → pin-complete, per pin plan burst.
    pub pin_latency: FixedHistogram,
    /// Rendezvous → notify, per large-message send.
    pub rndv_rtt: FixedHistogram,
    /// Rendezvous → first pull request, per large-message send.
    pub overlap_window: FixedHistogram,
    /// Pages covered per completed pin burst.
    pub pin_burst_pages: OnlineStats,
    /// Adaptive retransmission timeouts applied at timer arms.
    pub rto_applied: FixedHistogram,
    /// Pull-reply frames that landed on unpinned pages and were dropped.
    overlap_misses: u64,
    /// Pull-reply frames accepted (pinned landing pages).
    pull_frames_ok: u64,
    /// Retransmissions / re-requests fired (all machineries).
    retransmits: u64,
    /// Duplicate frames received and discarded by the protocol.
    dup_frames_rx: u64,
    /// Faults the fabric injected on purpose (loss, dup, reorder, death).
    faults_injected: u64,
    /// Region invalidation hits whose unpin was deferred to the epoch.
    notifier_deferred: u64,
    /// Deferred unpins cancelled by a repin before the epoch drained.
    notifier_cancelled: u64,
    /// Batched drains of the deferred-unpin queue.
    notifier_drain_batches: u64,
    /// Trace records evicted from the tracer ring because it was full.
    dropped_events: u64,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

impl Metrics {
    /// Fresh registry with bucket geometries sized for the paper's
    /// platforms (10 µs pin buckets, 100 µs round-trip buckets, 1 µs
    /// overlap-window buckets; out-of-range values are still counted and
    /// report exact maxima).
    pub fn new() -> Self {
        Metrics {
            pin_latency: FixedHistogram::new(SimDuration::from_millis(100), 10_000),
            rndv_rtt: FixedHistogram::new(SimDuration::from_secs(1), 10_000),
            overlap_window: FixedHistogram::new(SimDuration::from_millis(10), 10_000),
            pin_burst_pages: OnlineStats::new(),
            rto_applied: FixedHistogram::new(SimDuration::from_millis(10), 10_000),
            overlap_misses: 0,
            pull_frames_ok: 0,
            retransmits: 0,
            dup_frames_rx: 0,
            faults_injected: 0,
            notifier_deferred: 0,
            notifier_cancelled: 0,
            notifier_drain_batches: 0,
            dropped_events: 0,
        }
    }

    /// Count one dropped-for-unpinned pull frame.
    pub fn record_overlap_miss(&mut self) {
        self.overlap_misses += 1;
    }

    /// Count one accepted pull frame.
    pub fn record_pull_frame_ok(&mut self) {
        self.pull_frames_ok += 1;
    }

    /// Count one retransmission / re-request.
    pub fn record_retransmit(&mut self) {
        self.retransmits += 1;
    }

    /// Count one duplicate frame discarded by the protocol.
    pub fn record_dup_frame(&mut self) {
        self.dup_frames_rx += 1;
    }

    /// Count one injected fabric fault.
    pub fn record_fault_injected(&mut self) {
        self.faults_injected += 1;
    }

    /// Retransmissions fired so far (all machineries).
    pub fn retransmits(&self) -> u64 {
        self.retransmits
    }

    /// Duplicate frames discarded so far.
    pub fn dup_frames_rx(&self) -> u64 {
        self.dup_frames_rx
    }

    /// Faults injected by the fabric so far.
    pub fn faults_injected(&self) -> u64 {
        self.faults_injected
    }

    /// Count one invalidation hit whose unpin was deferred to the epoch.
    pub fn record_notifier_deferred(&mut self) {
        self.notifier_deferred += 1;
    }

    /// Count one deferred unpin cancelled by a repin before the drain.
    pub fn record_notifier_cancelled(&mut self) {
        self.notifier_cancelled += 1;
    }

    /// Count one batched drain of the deferred-unpin queue.
    pub fn record_notifier_drain_batch(&mut self) {
        self.notifier_drain_batches += 1;
    }

    /// Invalidation hits deferred to the epoch so far.
    pub fn notifier_deferred(&self) -> u64 {
        self.notifier_deferred
    }

    /// Deferred unpins cancelled before draining so far.
    pub fn notifier_cancelled(&self) -> u64 {
        self.notifier_cancelled
    }

    /// Deferred-queue drain batches so far.
    pub fn notifier_drain_batches(&self) -> u64 {
        self.notifier_drain_batches
    }

    /// Mirror the tracer's evicted-record count into the registry so every
    /// metrics snapshot (and every export stamped from it) is
    /// self-describing about trace truncation.
    pub fn set_dropped_events(&mut self, n: u64) {
        self.dropped_events = n;
    }

    /// Trace records evicted from the tracer ring because it was full.
    pub fn dropped_events(&self) -> u64 {
        self.dropped_events
    }

    /// Frames dropped because their landing pages were unpinned.
    pub fn overlap_misses(&self) -> u64 {
        self.overlap_misses
    }

    /// Dropped frames over all pull frames seen; 0 when no pull traffic.
    pub fn overlap_miss_rate(&self) -> f64 {
        let total = self.overlap_misses + self.pull_frames_ok;
        if total == 0 {
            0.0
        } else {
            self.overlap_misses as f64 / total as f64
        }
    }

    /// Merge another registry (parallel-sweep reduction).
    pub fn merge(&mut self, other: &Metrics) {
        self.pin_latency.merge(&other.pin_latency);
        self.rndv_rtt.merge(&other.rndv_rtt);
        self.overlap_window.merge(&other.overlap_window);
        self.pin_burst_pages.merge(&other.pin_burst_pages);
        self.rto_applied.merge(&other.rto_applied);
        self.overlap_misses += other.overlap_misses;
        self.pull_frames_ok += other.pull_frames_ok;
        self.retransmits += other.retransmits;
        self.dup_frames_rx += other.dup_frames_rx;
        self.faults_injected += other.faults_injected;
        self.notifier_deferred += other.notifier_deferred;
        self.notifier_cancelled += other.notifier_cancelled;
        self.notifier_drain_batches += other.notifier_drain_batches;
        self.dropped_events += other.dropped_events;
    }

    /// One-line pin-latency summary for the bench harness:
    /// `p50/p95/p99 µs over n bursts`.
    pub fn pin_latency_summary(&self) -> String {
        if self.pin_latency.count() == 0 {
            return "no pin bursts".to_string();
        }
        format!(
            "pin p50 {:.1} us, p95 {:.1} us, p99 {:.1} us ({} bursts)",
            self.pin_latency.quantile(0.50).as_micros_f64(),
            self.pin_latency.quantile(0.95).as_micros_f64(),
            self.pin_latency.quantile(0.99).as_micros_f64(),
            self.pin_latency.count(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_rate_arithmetic() {
        let mut m = Metrics::new();
        assert_eq!(m.overlap_miss_rate(), 0.0);
        for _ in 0..3 {
            m.record_overlap_miss();
        }
        for _ in 0..7 {
            m.record_pull_frame_ok();
        }
        assert_eq!(m.overlap_misses(), 3);
        assert!((m.overlap_miss_rate() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Metrics::new();
        let mut b = Metrics::new();
        a.pin_latency.record(SimDuration::from_micros(100));
        b.pin_latency.record(SimDuration::from_micros(300));
        b.record_overlap_miss();
        a.merge(&b);
        assert_eq!(a.pin_latency.count(), 2);
        assert_eq!(a.overlap_misses(), 1);
        assert!(a.pin_latency_summary().contains("2 bursts"));
    }
}
