//! Configuration: host CPU cost profiles (Table 1) and the stack knobs.

use simcore::{Bandwidth, SimDuration};
use simnet::NetConfig;

/// Cost model of one host CPU, calibrated against the paper's Table 1.
///
/// `pin_base` / `pin_per_page` are the *combined* pin+unpin costs the paper
/// reports; [`CpuProfile::PIN_FRACTION`] says how much of each lands on the
/// pin (`get_user_pages`) side vs. the unpin (`put_page`) side.
#[derive(Clone, Debug)]
pub struct CpuProfile {
    /// Marketing name, as in Table 1.
    pub name: &'static str,
    /// Clock, GHz (reporting only).
    pub ghz: f64,
    /// Base overhead of one pin+unpin cycle (Table 1 "Base µs").
    pub pin_base: SimDuration,
    /// Per-page overhead of pin+unpin (Table 1 "ns/page").
    pub pin_per_page: SimDuration,
    /// Sustained kernel memcpy bandwidth (receive-side copies).
    pub memcpy_bw: Bandwidth,
    /// Fixed bottom-half cost of processing one received frame.
    pub pkt_processing: SimDuration,
    /// Per-frame transmit setup (descriptor + doorbell).
    pub tx_setup: SimDuration,
    /// One system call (enter + exit).
    pub syscall: SimDuration,
    /// One user-space region-cache lookup.
    pub cache_lookup: SimDuration,
}

impl CpuProfile {
    /// Fraction of the pin+unpin cost charged to the pin side
    /// (`get_user_pages` walks page tables and faults; `put_page` is cheap).
    pub const PIN_FRACTION: f64 = 2.0 / 3.0;

    fn frac(d: SimDuration, f: f64) -> SimDuration {
        SimDuration::from_nanos((d.as_nanos() as f64 * f).round() as u64)
    }

    /// Cost of pinning `pages` pages in one batch (first batch of a region
    /// pays the base cost; pass `first = false` for later chunks).
    pub fn pin_cost(&self, pages: u64, first: bool) -> SimDuration {
        let base = if first {
            Self::frac(self.pin_base, Self::PIN_FRACTION)
        } else {
            SimDuration::ZERO
        };
        base + Self::frac(self.pin_per_page, Self::PIN_FRACTION).times(pages)
    }

    /// Cost of unpinning `pages` pages.
    pub fn unpin_cost(&self, pages: u64) -> SimDuration {
        Self::frac(self.pin_base, 1.0 - Self::PIN_FRACTION)
            + Self::frac(self.pin_per_page, 1.0 - Self::PIN_FRACTION).times(pages)
    }

    /// Combined pin+unpin cost of a whole region — what Table 1 reports.
    pub fn pin_unpin_cost(&self, pages: u64) -> SimDuration {
        self.pin_base + self.pin_per_page.times(pages)
    }

    /// The equivalent "pinning throughput" of Table 1's last column.
    pub fn pin_throughput(&self) -> Bandwidth {
        Bandwidth::from_bytes_per_sec(
            simmem::PAGE_SIZE as f64 * 1e9 / self.pin_per_page.as_nanos() as f64,
        )
    }

    /// Time for the CPU to copy `bytes` (receive path without I/OAT).
    pub fn memcpy_cost(&self, bytes: u64) -> SimDuration {
        self.memcpy_bw.time_for_bytes(bytes)
    }

    /// Table 1 row 1: dual-core Opteron 265, 1.8 GHz.
    pub fn opteron_265() -> Self {
        CpuProfile {
            name: "Opteron 265",
            ghz: 1.8,
            pin_base: SimDuration::from_nanos(4200),
            pin_per_page: SimDuration::from_nanos(720),
            memcpy_bw: Bandwidth::from_gb_per_sec(0.9),
            pkt_processing: SimDuration::from_nanos(900),
            tx_setup: SimDuration::from_nanos(500),
            syscall: SimDuration::from_nanos(400),
            cache_lookup: SimDuration::from_nanos(200),
        }
    }

    /// Table 1 row 2: quad-core Opteron 8347, 1.9 GHz.
    pub fn opteron_8347() -> Self {
        CpuProfile {
            name: "Opteron 8347",
            ghz: 1.9,
            pin_base: SimDuration::from_nanos(2200),
            pin_per_page: SimDuration::from_nanos(330),
            memcpy_bw: Bandwidth::from_gb_per_sec(1.1),
            pkt_processing: SimDuration::from_nanos(600),
            tx_setup: SimDuration::from_nanos(350),
            syscall: SimDuration::from_nanos(300),
            cache_lookup: SimDuration::from_nanos(150),
        }
    }

    /// Table 1 row 3: Xeon E5435, 2.33 GHz.
    pub fn xeon_e5435() -> Self {
        CpuProfile {
            name: "Xeon E5435",
            ghz: 2.33,
            pin_base: SimDuration::from_nanos(2300),
            pin_per_page: SimDuration::from_nanos(250),
            memcpy_bw: Bandwidth::from_gb_per_sec(1.2),
            pkt_processing: SimDuration::from_nanos(450),
            tx_setup: SimDuration::from_nanos(280),
            syscall: SimDuration::from_nanos(250),
            cache_lookup: SimDuration::from_nanos(120),
        }
    }

    /// Table 1 row 4: Xeon E5460, 3.16 GHz — the host all of the paper's
    /// figures were measured on.
    pub fn xeon_e5460() -> Self {
        CpuProfile {
            name: "Xeon E5460",
            ghz: 3.16,
            pin_base: SimDuration::from_nanos(1300),
            pin_per_page: SimDuration::from_nanos(150),
            memcpy_bw: Bandwidth::from_gb_per_sec(1.15),
            pkt_processing: SimDuration::from_nanos(350),
            tx_setup: SimDuration::from_nanos(220),
            syscall: SimDuration::from_nanos(200),
            cache_lookup: SimDuration::from_nanos(100),
        }
    }

    /// All four Table 1 hosts, in table order.
    pub fn table1_hosts() -> Vec<CpuProfile> {
        vec![
            Self::opteron_265(),
            Self::opteron_8347(),
            Self::xeon_e5435(),
            Self::xeon_e5460(),
        ]
    }
}

/// The five pinning strategies under study (paper §2–§4).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum PinningMode {
    /// Pin the whole region synchronously at each communication, unpin at
    /// completion ("pin once per communication" / "regular pinning").
    PinPerComm,
    /// Pin at first declaration, never unpin — the upper bound of Fig. 6.
    Permanent,
    /// Decoupled on-demand pinning cache: regions stay declared and pinned
    /// across communications; MMU notifiers / LRU / pressure unpin.
    Cached,
    /// Overlapped pinning: the initiating message is sent *before* pinning;
    /// pin chunks proceed concurrently with the rendezvous round-trip.
    /// Unpins at completion (no cache).
    Overlapped,
    /// Overlapped pinning + pinning cache ("overlapped pinning cache").
    OverlappedCached,
}

impl PinningMode {
    /// Does this mode keep regions pinned across communications?
    pub fn caches(self) -> bool {
        matches!(
            self,
            PinningMode::Permanent | PinningMode::Cached | PinningMode::OverlappedCached
        )
    }

    /// Does this mode send the initiating message before pinning?
    pub fn overlaps(self) -> bool {
        matches!(
            self,
            PinningMode::Overlapped | PinningMode::OverlappedCached
        )
    }

    /// Label used in figures/tables.
    pub fn label(self) -> &'static str {
        match self {
            PinningMode::PinPerComm => "pin-per-comm",
            PinningMode::Permanent => "permanent",
            PinningMode::Cached => "cache",
            PinningMode::Overlapped => "overlapped",
            PinningMode::OverlappedCached => "overlapped+cache",
        }
    }

    /// All five modes.
    pub fn all() -> [PinningMode; 5] {
        [
            PinningMode::PinPerComm,
            PinningMode::Permanent,
            PinningMode::Cached,
            PinningMode::Overlapped,
            PinningMode::OverlappedCached,
        ]
    }
}

/// Full stack configuration for a simulated cluster.
#[derive(Clone, Debug)]
pub struct OpenMxConfig {
    /// Host CPU cost model.
    pub profile: CpuProfile,
    /// Fabric parameters.
    pub net: NetConfig,
    /// Pinning strategy.
    pub pinning: PinningMode,
    /// Offload receive copies to the I/OAT DMA engine.
    pub use_ioat: bool,
    /// Use MMU notifiers to invalidate stale pins (turning this off
    /// reproduces the unreliable user-space-cache failure mode).
    pub use_mmu_notifiers: bool,
    /// Messages below this go through the eager path (MXoE spec: 32 kB).
    pub eager_threshold: u64,
    /// Bytes per pull block (one pull request covers one block).
    pub pull_block: u64,
    /// Outstanding pull blocks per transfer.
    pub pull_window: u32,
    /// Pages pinned per on-demand chunk (overlap granularity).
    pub pin_chunk_pages: u64,
    /// Issue one `pin_user_pages` call per page instead of batching each
    /// contiguous run of a chunk into a single call. Differential-test
    /// oracle for the batched path; the simulated cost model is identical,
    /// only the number of `Memory` pin calls differs.
    pub per_page_pin: bool,
    /// User-space region cache capacity (LRU above this).
    pub cache_capacity: usize,
    /// Driver-enforced ceiling on pinned pages per node; exceeding it
    /// triggers pressure unpinning of idle cached regions.
    pub pinned_pages_limit: Option<usize>,
    /// Per-tenant pin quota (soft share + hard cap). With it set, pressure
    /// eviction is weighted-fair — tenants pinned past their soft share
    /// pay first — and a pin pass that would push its tenant past the
    /// hard cap self-evicts the tenant's idle regions or fails cleanly
    /// with a quota denial. `None` keeps the single-tenant semantics.
    pub pin_quota: Option<crate::PinQuota>,
    /// How long a deferred-unpin flush epoch stays open after the first
    /// deferral: notifier invalidation hits park in the driver's deferred
    /// queue and drain in one batch when this timer fires (or earlier,
    /// under pin-budget pressure). Allocator churn that re-pins the range
    /// within the epoch cancels the unpin entirely.
    pub notifier_epoch: SimDuration,
    /// §4.3 mitigation: pin this many pages synchronously before sending
    /// the initiating message in overlapped modes (0 = off).
    pub presync_pages: u64,
    /// Bind application processes to the interrupt (bottom-half) core —
    /// the §4.3 overload topology. Off by default: processes start at
    /// core 1 while interrupts stay on core 0, the usual irq affinity.
    pub colocate_with_bh: bool,
    /// Re-request missing pull frames as soon as higher-sequence frames
    /// arrive (paper §4.3 footnote), instead of waiting for the timeout.
    pub optimistic_rerequest: bool,
    /// Retransmission timeout (paper: 1 s). With adaptive retransmission
    /// this is the *ceiling*; the working timeout comes from the RTT
    /// estimator and exponential backoff.
    pub retransmit_timeout: SimDuration,
    /// Max protocol retries before a request fails with a clean error.
    pub max_retries: u32,
    /// Adapt retransmission timeouts to the measured fabric RTT
    /// (Jacobson/Karels) with exponential backoff per attempt, instead of
    /// re-arming the fixed `retransmit_timeout` every time.
    pub adaptive_retransmit: bool,
    /// Backoff multiplier per retry attempt (adaptive mode).
    pub retransmit_backoff: f64,
    /// Floor on the adaptive timeout: an RTT estimate from a fast fabric
    /// must not retransmit so eagerly that queueing jitter looks like loss.
    pub retransmit_min: SimDuration,
    /// Deterministic jitter fraction applied to adaptive timeouts (breaks
    /// retransmission synchronization between transfers).
    pub retransmit_jitter: f64,
    /// Cores per node (application processes round-robin onto cores 1..;
    /// core 0 also runs the interrupt bottom half).
    pub cores_per_node: usize,
    /// Physical frames per node.
    pub frames_per_node: usize,
    /// Swap pages per node.
    pub swap_per_node: usize,
    /// RNG seed for the whole experiment.
    pub seed: u64,
}

impl OpenMxConfig {
    /// The paper's measurement platform: Xeon E5460 + Myri-10G, MXoE
    /// defaults, notifier-backed cache off (mode chooses), I/OAT off.
    pub fn paper_default() -> Self {
        OpenMxConfig {
            profile: CpuProfile::xeon_e5460(),
            net: NetConfig::myri_10g(),
            pinning: PinningMode::PinPerComm,
            use_ioat: false,
            use_mmu_notifiers: true,
            eager_threshold: 32 * 1024,
            pull_block: 64 * 1024,
            pull_window: 2,
            pin_chunk_pages: 32,
            per_page_pin: false,
            cache_capacity: 64,
            pinned_pages_limit: None,
            pin_quota: None,
            notifier_epoch: SimDuration::from_micros(100),
            presync_pages: 0,
            colocate_with_bh: false,
            optimistic_rerequest: true,
            retransmit_timeout: SimDuration::from_secs(1),
            max_retries: 16,
            adaptive_retransmit: true,
            retransmit_backoff: 2.0,
            retransmit_min: SimDuration::from_millis(1),
            retransmit_jitter: 0.1,
            cores_per_node: 4,
            frames_per_node: 64 * 1024, // 256 MiB per node
            swap_per_node: 16 * 1024,
            seed: 0x0123_4567_89ab_cdef,
        }
    }

    /// Same platform with a chosen pinning mode.
    pub fn with_mode(mode: PinningMode) -> Self {
        OpenMxConfig {
            pinning: mode,
            ..Self::paper_default()
        }
    }

    /// Check the retransmission and fabric knobs are coherent. Called by
    /// the engine at cluster construction.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_retries < 1 {
            return Err("max_retries must be >= 1".to_string());
        }
        if self.retransmit_backoff < 1.0 {
            return Err(format!(
                "retransmit_backoff = {} must be >= 1.0",
                self.retransmit_backoff
            ));
        }
        if self.notifier_epoch.is_zero() {
            return Err("notifier_epoch must be > 0".to_string());
        }
        if !(0.0..=1.0).contains(&self.retransmit_jitter) {
            return Err(format!(
                "retransmit_jitter = {} not in [0, 1]",
                self.retransmit_jitter
            ));
        }
        if self.retransmit_min.is_zero() || self.retransmit_min > self.retransmit_timeout {
            return Err(format!(
                "retransmit_min = {} must be in (0, retransmit_timeout = {}]",
                self.retransmit_min, self.retransmit_timeout
            ));
        }
        if let Some(q) = self.pin_quota {
            if q.soft_share < 1 {
                return Err("pin_quota.soft_share must be >= 1".to_string());
            }
            if q.hard_cap < q.soft_share {
                return Err(format!(
                    "pin_quota.hard_cap = {} must be >= soft_share = {}",
                    q.hard_cap, q.soft_share
                ));
            }
        }
        self.net.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_pin_throughputs_match_paper() {
        // Paper Table 1 last column: 5.5, 12, 16, 26.5 GB/s.
        let expect = [5.5, 12.0, 16.0, 26.5];
        for (profile, want) in CpuProfile::table1_hosts().iter().zip(expect) {
            let got = profile.pin_throughput().bytes_per_sec() / 1e9;
            let err = (got - want).abs() / want;
            assert!(
                err < 0.06,
                "{}: pin throughput {got:.1} GB/s vs paper {want}",
                profile.name
            );
        }
    }

    #[test]
    fn pin_unpin_decomposition_sums() {
        let p = CpuProfile::xeon_e5460();
        for pages in [1u64, 16, 256, 4096] {
            let total = p.pin_cost(pages, true) + p.unpin_cost(pages);
            let want = p.pin_unpin_cost(pages);
            let diff = total.as_nanos().abs_diff(want.as_nanos());
            assert!(diff <= 2, "pages={pages}: {total} vs {want}");
        }
    }

    #[test]
    fn later_chunks_skip_base_cost() {
        let p = CpuProfile::xeon_e5460();
        let first = p.pin_cost(32, true);
        let later = p.pin_cost(32, false);
        assert!(first > later);
        assert_eq!(
            first - later,
            CpuProfile::frac(p.pin_base, CpuProfile::PIN_FRACTION)
        );
    }

    #[test]
    fn e5460_expected_1mb_pin_cost() {
        // 1 MiB = 256 pages: 1.3 us + 256 * 150 ns = 39.7 us for the full
        // pin+unpin cycle — the §4.1 "5% of a ~900 us transfer" argument.
        let p = CpuProfile::xeon_e5460();
        let cost = p.pin_unpin_cost(256);
        assert_eq!(cost.as_nanos(), 1_300 + 256 * 150);
    }

    #[test]
    fn validation_accepts_defaults_and_rejects_bad_knobs() {
        assert!(OpenMxConfig::paper_default().validate().is_ok());
        let mut c = OpenMxConfig::paper_default();
        c.max_retries = 0;
        assert!(c.validate().is_err());
        let mut c = OpenMxConfig::paper_default();
        c.retransmit_backoff = 0.5;
        assert!(c.validate().is_err());
        let mut c = OpenMxConfig::paper_default();
        c.retransmit_jitter = 1.5;
        assert!(c.validate().is_err());
        let mut c = OpenMxConfig::paper_default();
        c.retransmit_min = c.retransmit_timeout + SimDuration::from_nanos(1);
        assert!(c.validate().is_err());
        let mut c = OpenMxConfig::paper_default();
        c.notifier_epoch = SimDuration::ZERO;
        assert!(c.validate().is_err());
        let mut c = OpenMxConfig::paper_default();
        c.net.loss_probability = 2.0;
        assert!(c.validate().is_err());
        let mut c = OpenMxConfig::paper_default();
        c.pin_quota = Some(crate::PinQuota {
            soft_share: 0,
            hard_cap: 8,
        });
        assert!(c.validate().is_err());
        c.pin_quota = Some(crate::PinQuota {
            soft_share: 16,
            hard_cap: 8,
        });
        assert!(c.validate().is_err());
        c.pin_quota = Some(crate::PinQuota {
            soft_share: 16,
            hard_cap: 64,
        });
        assert!(c.validate().is_ok());
    }

    #[test]
    fn mode_predicates() {
        use PinningMode::*;
        assert!(!PinPerComm.caches() && !PinPerComm.overlaps());
        assert!(Permanent.caches() && !Permanent.overlaps());
        assert!(Cached.caches() && !Cached.overlaps());
        assert!(!Overlapped.caches() && Overlapped.overlaps());
        assert!(OverlappedCached.caches() && OverlappedCached.overlaps());
        assert_eq!(PinningMode::all().len(), 5);
    }
}
