//! The user-space region cache (§3.2).
//!
//! Lives in the Open-MX *library*, above the driver: it translates a
//! vector of user segments into the integer descriptor the driver
//! understands, and keeps recently used declarations alive so repeat
//! communications skip the declaration system call entirely. Eviction is
//! LRU. The cache never needs to hear about invalidations — that is the
//! whole point of decoupling: the driver unpins behind its back and
//! repins on next use, while the descriptor stays valid.

use std::collections::HashMap;

use crate::driver::RegionId;
use crate::obs::CacheStats;
use crate::region::Segment;

/// Outcome of a cache lookup.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CacheOutcome {
    /// The segments were already declared; reuse this descriptor.
    Hit(RegionId),
    /// Not cached; the caller must declare a region and then call
    /// [`RegionCache::insert`].
    Miss,
}

/// LRU cache of declared regions, keyed by the exact segment vector.
pub struct RegionCache {
    capacity: usize,
    map: HashMap<Vec<Segment>, (RegionId, u64)>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl RegionCache {
    /// A cache holding at most `capacity` declared regions (0 disables
    /// caching: every lookup misses and nothing is retained).
    pub fn new(capacity: usize) -> Self {
        RegionCache {
            capacity,
            map: HashMap::new(),
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Look up a segment vector, refreshing its LRU position on hit.
    pub fn lookup(&mut self, segments: &[Segment]) -> CacheOutcome {
        self.clock += 1;
        if let Some((id, stamp)) = self.map.get_mut(segments) {
            *stamp = self.clock;
            self.hits += 1;
            CacheOutcome::Hit(*id)
        } else {
            self.misses += 1;
            CacheOutcome::Miss
        }
    }

    /// Insert a freshly declared region. If the cache is over capacity the
    /// least recently used entry is evicted and returned — the caller must
    /// undeclare it with the driver. Re-inserting an already-cached segment
    /// vector returns the *replaced* descriptor the same way: dropping it
    /// silently would leak the old declaration in the driver forever.
    pub fn insert(&mut self, segments: Vec<Segment>, id: RegionId) -> Option<RegionId> {
        if self.capacity == 0 {
            // Caching disabled: the caller keeps sole ownership.
            return None;
        }
        self.clock += 1;
        if let Some((replaced, _)) = self.map.insert(segments, (id, self.clock)) {
            // Replacement cannot overflow capacity (the key was present),
            // so the displaced descriptor is the only one to hand back.
            return if replaced == id { None } else { Some(replaced) };
        }
        if self.map.len() > self.capacity {
            let victim_key = self
                .map
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| k.clone())
                .expect("cache not empty");
            let (victim, _) = self.map.remove(&victim_key).expect("victim exists");
            return Some(victim);
        }
        None
    }

    /// Remove a specific descriptor (e.g. the driver reported the region's
    /// space died). Returns true if it was present.
    pub fn remove_by_id(&mut self, id: RegionId) -> bool {
        let key = self
            .map
            .iter()
            .find(|(_, (rid, _))| *rid == id)
            .map(|(k, _)| k.clone());
        match key {
            Some(k) => {
                self.map.remove(&k);
                true
            }
            None => false,
        }
    }

    /// Drain every entry (endpoint close). Caller undeclares them all.
    pub fn drain(&mut self) -> Vec<RegionId> {
        self.map.drain().map(|(_, (id, _))| id).collect()
    }

    /// Descriptors currently cached, sorted — deterministic introspection
    /// for invariant oracles (the map itself iterates in hash order).
    pub fn cached_ids(&self) -> Vec<RegionId> {
        let mut ids: Vec<RegionId> = self.map.values().map(|(id, _)| *id).collect();
        ids.sort_by_key(|r| r.0);
        ids
    }

    /// Hit/miss counters so far.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
        }
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simmem::VirtAddr;

    fn seg(addr: u64, len: u64) -> Segment {
        Segment {
            addr: VirtAddr(addr),
            len,
        }
    }

    #[test]
    fn hit_after_insert() {
        let mut c = RegionCache::new(4);
        let s = vec![seg(0x1000, 4096)];
        assert_eq!(c.lookup(&s), CacheOutcome::Miss);
        assert_eq!(c.insert(s.clone(), RegionId(7)), None);
        assert_eq!(c.lookup(&s), CacheOutcome::Hit(RegionId(7)));
        assert_eq!(c.stats(), CacheStats { hits: 1, misses: 1 });
    }

    #[test]
    fn different_segments_are_different_entries() {
        let mut c = RegionCache::new(4);
        c.insert(vec![seg(0x1000, 4096)], RegionId(1));
        c.insert(vec![seg(0x1000, 8192)], RegionId(2));
        c.insert(vec![seg(0x2000, 4096)], RegionId(3));
        assert_eq!(
            c.lookup(&[seg(0x1000, 4096)]),
            CacheOutcome::Hit(RegionId(1))
        );
        assert_eq!(
            c.lookup(&[seg(0x1000, 8192)]),
            CacheOutcome::Hit(RegionId(2))
        );
        // Vectorial key includes all segments.
        assert_eq!(
            c.lookup(&[seg(0x1000, 4096), seg(0x2000, 4096)]),
            CacheOutcome::Miss
        );
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = RegionCache::new(2);
        c.insert(vec![seg(0x1000, 1)], RegionId(1));
        c.insert(vec![seg(0x2000, 1)], RegionId(2));
        // Touch #1 so #2 becomes LRU.
        assert_eq!(c.lookup(&[seg(0x1000, 1)]), CacheOutcome::Hit(RegionId(1)));
        let evicted = c.insert(vec![seg(0x3000, 1)], RegionId(3));
        assert_eq!(evicted, Some(RegionId(2)));
        assert_eq!(c.lookup(&[seg(0x2000, 1)]), CacheOutcome::Miss);
        assert_eq!(c.lookup(&[seg(0x1000, 1)]), CacheOutcome::Hit(RegionId(1)));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = RegionCache::new(0);
        let s = vec![seg(0x1000, 1)];
        assert_eq!(c.insert(s.clone(), RegionId(1)), None);
        assert_eq!(c.lookup(&s), CacheOutcome::Miss);
        assert!(c.is_empty());
    }

    #[test]
    fn duplicate_insert_returns_replaced_id() {
        // Regression: the replaced descriptor used to be dropped on the
        // floor, leaking the old declaration in the driver forever.
        let mut c = RegionCache::new(4);
        let s = vec![seg(0x1000, 4096)];
        assert_eq!(c.insert(s.clone(), RegionId(1)), None);
        assert_eq!(c.insert(s.clone(), RegionId(2)), Some(RegionId(1)));
        assert_eq!(c.lookup(&s), CacheOutcome::Hit(RegionId(2)));
        assert_eq!(c.len(), 1);
        // Re-inserting the *same* descriptor is a refresh, not a leak.
        assert_eq!(c.insert(s.clone(), RegionId(2)), None);
        assert_eq!(c.cached_ids(), vec![RegionId(2)]);
    }

    #[test]
    fn cached_ids_are_sorted() {
        let mut c = RegionCache::new(4);
        c.insert(vec![seg(0x3000, 1)], RegionId(9));
        c.insert(vec![seg(0x1000, 1)], RegionId(2));
        c.insert(vec![seg(0x2000, 1)], RegionId(5));
        assert_eq!(c.cached_ids(), vec![RegionId(2), RegionId(5), RegionId(9)]);
    }

    #[test]
    fn remove_by_id_and_drain() {
        let mut c = RegionCache::new(4);
        c.insert(vec![seg(0x1000, 1)], RegionId(1));
        c.insert(vec![seg(0x2000, 1)], RegionId(2));
        assert!(c.remove_by_id(RegionId(1)));
        assert!(!c.remove_by_id(RegionId(1)));
        let mut rest = c.drain();
        rest.sort_by_key(|r| r.0);
        assert_eq!(rest, vec![RegionId(2)]);
        assert!(c.is_empty());
    }
}
