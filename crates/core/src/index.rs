//! Per-address-space interval index from segment page ranges to region
//! ids, shared by the single-threaded [`crate::driver::Driver`] and the
//! sharded concurrent driver in [`crate::sync`].
//!
//! Keys are `(start_vpn, region_id)` so one region can contribute
//! several (even same-start) segments; the value is the exclusive end vpn
//! (the max, if a region has two segments starting on the same page).
//!
//! Queries exploit `max_pages`, a monotone upper bound on the page length
//! of any range ever inserted: a range intersecting `[s, e)` must start in
//! `[s - max_pages + 1, e)`, so one bounded `BTreeMap::range` scan finds
//! every intersecting entry and nothing needs a tree rotation on delete.

use std::collections::{BTreeMap, BTreeSet};

use simmem::VpnRange;

#[derive(Default)]
pub(crate) struct SpaceIndex {
    ranges: BTreeMap<(u64, u32), u64>,
    max_pages: u64,
}

impl SpaceIndex {
    pub(crate) fn insert(&mut self, start: u64, end: u64, id: u32) {
        let e = self.ranges.entry((start, id)).or_insert(end);
        *e = (*e).max(end);
        self.max_pages = self.max_pages.max(end.saturating_sub(start));
    }

    pub(crate) fn remove(&mut self, start: u64, id: u32) {
        self.ranges.remove(&(start, id));
    }

    /// Region ids with a segment range intersecting `range`, ascending.
    pub(crate) fn intersecting(&self, range: &VpnRange, out: &mut BTreeSet<u32>) {
        let (s, e) = (range.start.0, range.end.0);
        let lo = s.saturating_sub(self.max_pages.saturating_sub(1));
        for (&(_, id), &end) in self.ranges.range((lo, 0)..(e, 0)) {
            if end > s {
                out.insert(id);
            }
        }
    }
}
