//! The kernel-side driver state: region table, notifier handling,
//! pinned-page pressure (§3.1).
//!
//! The driver owns *all* pinning decisions. User space only ever sees the
//! integer [`RegionId`]; whether the pages behind it are pinned right now
//! is invisible above the system-call boundary. Invalidation arrives from
//! the MMU notifier as [`simmem::NotifierEvent`]s and is resolved entirely
//! in here — no upcall, no user-space synchronization.

use simcore::SimTime;
use simmem::{Memory, NotifierEvent};

use crate::obs::DriverStats;
use crate::region::{DriverRegion, Segment};

/// The integer descriptor user space holds for a declared region.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RegionId(pub u32);

/// Per-node driver state.
pub struct Driver {
    regions: Vec<Option<DriverRegion>>,
    /// Ceiling on pinned pages; `None` = unlimited.
    pinned_limit: Option<usize>,
    /// Pages unpinned due to memory pressure (counter).
    pressure_unpins: u64,
    /// Regions invalidated by MMU notifier (counter).
    notifier_invalidations: u64,
}

impl Driver {
    /// An empty driver with an optional pinned-page ceiling.
    pub fn new(pinned_limit: Option<usize>) -> Self {
        Driver {
            regions: Vec::new(),
            pinned_limit,
            pressure_unpins: 0,
            notifier_invalidations: 0,
        }
    }

    /// Declare a region (the only time segments cross the syscall
    /// boundary). Never pins.
    pub fn declare(&mut self, space: simmem::AsId, segments: &[Segment]) -> RegionId {
        let region = DriverRegion::new(space, segments);
        if let Some(idx) = self.regions.iter().position(Option::is_none) {
            self.regions[idx] = Some(region);
            RegionId(idx as u32)
        } else {
            self.regions.push(Some(region));
            RegionId(self.regions.len() as u32 - 1)
        }
    }

    /// Undeclare, releasing any pins. Returns pages released.
    ///
    /// # Panics
    /// Panics with the `unknown region` message on any id that does not
    /// name a declared region — including ids beyond the table (a hostile
    /// or buggy caller must not be able to trigger a raw index
    /// out-of-bounds), and if the region is still in use by a
    /// communication.
    pub fn undeclare(&mut self, mem: &mut Memory, id: RegionId) -> u64 {
        let mut region = self
            .regions
            .get_mut(id.0 as usize)
            .and_then(Option::take)
            .unwrap_or_else(|| panic!("undeclare of unknown region {id:?}"));
        assert_eq!(region.use_count, 0, "undeclare of in-use region {id:?}");
        region.unpin_all(mem)
    }

    /// Borrow a declared region.
    ///
    /// # Panics
    /// Panics with the `unknown region` message on undeclared *and*
    /// never-allocated ids alike; use [`Driver::try_region`] to probe.
    pub fn region(&self, id: RegionId) -> &DriverRegion {
        self.try_region(id)
            .unwrap_or_else(|| panic!("unknown region {id:?}"))
    }

    /// Mutably borrow a declared region.
    ///
    /// # Panics
    /// Panics with the `unknown region` message on undeclared *and*
    /// never-allocated ids alike; use [`Driver::try_region_mut`] to probe.
    pub fn region_mut(&mut self, id: RegionId) -> &mut DriverRegion {
        self.try_region_mut(id)
            .unwrap_or_else(|| panic!("unknown region {id:?}"))
    }

    /// Borrow a region if `id` names a declared one.
    pub fn try_region(&self, id: RegionId) -> Option<&DriverRegion> {
        self.regions.get(id.0 as usize).and_then(Option::as_ref)
    }

    /// Mutably borrow a region if `id` names a declared one.
    pub fn try_region_mut(&mut self, id: RegionId) -> Option<&mut DriverRegion> {
        self.regions.get_mut(id.0 as usize).and_then(Option::as_mut)
    }

    /// True if `id` names a declared region.
    pub fn is_declared(&self, id: RegionId) -> bool {
        self.regions.get(id.0 as usize).is_some_and(Option::is_some)
    }

    /// Every declared region with its id, in id order (invariant oracles).
    pub fn iter_regions(&self) -> impl Iterator<Item = (RegionId, &DriverRegion)> {
        self.regions
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.as_ref().map(|r| (RegionId(i as u32), r)))
    }

    /// Sum of pinned pages across every declared region. With all pinning
    /// flowing through regions this must equal the frame pool's
    /// `pinned_pages()` at every event boundary — the harness's pin
    /// accounting invariant.
    pub fn pinned_pages_total(&self) -> u64 {
        self.iter_regions().map(|(_, r)| r.pinned_pages()).sum()
    }

    /// MMU-notifier callback: unpin every region whose pages intersect the
    /// invalidated range. The regions stay declared — they will repin on
    /// next use (possibly onto different frames). Returns the affected
    /// region ids and how many pages each released.
    pub fn handle_invalidate(
        &mut self,
        mem: &mut Memory,
        event: &NotifierEvent,
    ) -> Vec<(RegionId, u64)> {
        let mut hit = Vec::new();
        for (idx, slot) in self.regions.iter_mut().enumerate() {
            let Some(region) = slot else { continue };
            if region.space != event.space {
                continue;
            }
            if region.unpinned() && !region.pinning_in_progress {
                continue;
            }
            if region.layout.intersects(&event.range) {
                let pages = region.unpin_all(mem);
                self.notifier_invalidations += 1;
                hit.push((RegionId(idx as u32), pages));
            }
        }
        hit
    }

    /// Before pinning `needed` more pages, enforce the pinned-page ceiling
    /// by unpinning idle (use_count == 0) regions, least recently used
    /// first ("if there are too many pinned pages … it may also request
    /// some unpinning", §3.1). Returns the regions it unpinned.
    pub fn pressure_evict(
        &mut self,
        mem: &mut Memory,
        needed: u64,
        _now: SimTime,
    ) -> Vec<(RegionId, u64)> {
        let Some(limit) = self.pinned_limit else {
            return Vec::new();
        };
        let mut evicted = Vec::new();
        while mem.frames().pinned_pages() as u64 + needed > limit as u64 {
            // Idle pinned region with the oldest last_use. A region whose
            // pin pass is currently running is not idle: evicting it would
            // race the repin it is in the middle of (the cursor grows right
            // back, and the eviction bought nothing).
            let victim = self
                .regions
                .iter()
                .enumerate()
                .filter_map(|(i, r)| r.as_ref().map(|r| (i, r)))
                .filter(|(_, r)| r.use_count == 0 && !r.unpinned() && !r.pinning_in_progress)
                .min_by_key(|(_, r)| r.last_use)
                .map(|(i, _)| i);
            let Some(idx) = victim else { break };
            let region = self.regions[idx].as_mut().expect("victim exists");
            let pages = region.unpin_all(mem);
            self.pressure_unpins += pages;
            evicted.push((RegionId(idx as u32), pages));
        }
        evicted
    }

    /// Pressure/notifier counters.
    pub fn stats(&self) -> DriverStats {
        DriverStats {
            pressure_unpinned_pages: self.pressure_unpins,
            notifier_invalidations: self.notifier_invalidations,
        }
    }

    /// Number of declared regions.
    pub fn declared_count(&self) -> usize {
        self.regions.iter().filter(|r| r.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simmem::{Prot, VirtAddr, PAGE_SIZE};

    fn setup() -> (Memory, simmem::AsId, VirtAddr) {
        let mut mem = Memory::new(1024, 0);
        let space = mem.create_space();
        mem.register_notifier(space).unwrap();
        let addr = mem.mmap(space, 32 * PAGE_SIZE, Prot::ReadWrite).unwrap();
        (mem, space, addr)
    }

    #[test]
    fn declare_ids_are_reused() {
        let (mut mem, space, addr) = setup();
        let mut d = Driver::new(None);
        let a = d.declare(
            space,
            &[Segment {
                addr,
                len: PAGE_SIZE,
            }],
        );
        let b = d.declare(
            space,
            &[Segment {
                addr: addr.add(PAGE_SIZE),
                len: PAGE_SIZE,
            }],
        );
        assert_ne!(a, b);
        d.undeclare(&mut mem, a);
        let c = d.declare(
            space,
            &[Segment {
                addr,
                len: PAGE_SIZE,
            }],
        );
        assert_eq!(a, c);
        assert_eq!(d.declared_count(), 2);
    }

    #[test]
    fn invalidate_unpins_intersecting_regions_only() {
        let (mut mem, space, addr) = setup();
        let mut d = Driver::new(None);
        let r1 = d.declare(
            space,
            &[Segment {
                addr,
                len: 4 * PAGE_SIZE,
            }],
        );
        let r2 = d.declare(
            space,
            &[Segment {
                addr: addr.add(8 * PAGE_SIZE),
                len: 4 * PAGE_SIZE,
            }],
        );
        d.region_mut(r1).pin_next_chunk(&mut mem, 100).unwrap();
        d.region_mut(r2).pin_next_chunk(&mut mem, 100).unwrap();
        assert_eq!(mem.frames().pinned_pages(), 8);

        // munmap of the first buffer fires a notifier covering r1 only.
        let events = mem.munmap(space, addr, 4 * PAGE_SIZE).unwrap();
        assert_eq!(events.len(), 1);
        let hit = d.handle_invalidate(&mut mem, &events[0]);
        assert_eq!(hit, vec![(r1, 4)]);
        assert_eq!(mem.frames().pinned_pages(), 4);
        assert!(d.region(r1).unpinned());
        assert!(d.region(r2).fully_pinned());
        // r1 stays *declared* — it may repin later (after a remap).
        assert!(d.is_declared(r1));
    }

    #[test]
    fn repin_after_invalidate_sees_new_mapping() {
        let (mut mem, space, addr) = setup();
        let mut d = Driver::new(None);
        let r = d.declare(
            space,
            &[Segment {
                addr,
                len: 2 * PAGE_SIZE,
            }],
        );
        mem.write(space, addr, b"first").unwrap();
        d.region_mut(r).pin_next_chunk(&mut mem, 100).unwrap();

        // free + malloc-again at the same VA (same size reuses the range).
        let events = mem.munmap(space, addr, 2 * PAGE_SIZE).unwrap();
        for ev in &events {
            d.handle_invalidate(&mut mem, ev);
        }
        let again = mem.mmap(space, 2 * PAGE_SIZE, Prot::ReadWrite).unwrap();
        assert_eq!(again, addr);
        mem.write(space, addr, b"second").unwrap();

        // The driver repins on next use and reads the *new* data.
        d.region_mut(r).pin_next_chunk(&mut mem, 100).unwrap();
        let mut buf = [0u8; 6];
        d.region(r).read(&mem, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"second");
        d.region_mut(r).unpin_all(&mut mem);
    }

    #[test]
    fn pressure_evicts_idle_lru_regions() {
        let (mut mem, space, addr) = setup();
        let mut d = Driver::new(Some(8));
        let r1 = d.declare(
            space,
            &[Segment {
                addr,
                len: 4 * PAGE_SIZE,
            }],
        );
        let r2 = d.declare(
            space,
            &[Segment {
                addr: addr.add(4 * PAGE_SIZE),
                len: 4 * PAGE_SIZE,
            }],
        );
        d.region_mut(r1).pin_next_chunk(&mut mem, 100).unwrap();
        d.region_mut(r1).last_use = SimTime::from_nanos(10);
        d.region_mut(r2).pin_next_chunk(&mut mem, 100).unwrap();
        d.region_mut(r2).last_use = SimTime::from_nanos(20);
        assert_eq!(mem.frames().pinned_pages(), 8);

        // Need 4 more pages: r1 (older) must go.
        let evicted = d.pressure_evict(&mut mem, 4, SimTime::from_nanos(30));
        assert_eq!(evicted, vec![(r1, 4)]);
        assert_eq!(mem.frames().pinned_pages(), 4);

        // In-use regions are never victims.
        d.region_mut(r2).use_count = 1;
        let evicted = d.pressure_evict(&mut mem, 100, SimTime::from_nanos(40));
        assert!(evicted.is_empty());
        assert_eq!(d.stats().pressure_unpinned_pages, 4);
    }

    #[test]
    fn garbage_ids_probe_gracefully() {
        // A never-allocated id (way beyond the table) must hit the same
        // `unknown region` path as an undeclared one — never a raw index
        // out-of-bounds panic.
        let (_, space, addr) = setup();
        let mut d = Driver::new(None);
        let bogus = RegionId(9999);
        assert!(!d.is_declared(bogus));
        assert!(d.try_region(bogus).is_none());
        assert!(d.try_region_mut(bogus).is_none());
        let r = d.declare(
            space,
            &[Segment {
                addr,
                len: PAGE_SIZE,
            }],
        );
        assert!(d.try_region(r).is_some());
        assert_eq!(d.iter_regions().count(), 1);
    }

    #[test]
    #[should_panic(expected = "unknown region RegionId(9999)")]
    fn region_of_garbage_id_panics_with_unknown_region() {
        let d = Driver::new(None);
        d.region(RegionId(9999));
    }

    #[test]
    #[should_panic(expected = "unknown region RegionId(9999)")]
    fn region_mut_of_garbage_id_panics_with_unknown_region() {
        let mut d = Driver::new(None);
        d.region_mut(RegionId(9999));
    }

    #[test]
    #[should_panic(expected = "undeclare of unknown region RegionId(9999)")]
    fn undeclare_of_garbage_id_panics_with_unknown_region() {
        let (mut mem, _, _) = setup();
        let mut d = Driver::new(None);
        d.undeclare(&mut mem, RegionId(9999));
    }

    #[test]
    fn invalidate_during_pin_in_progress_is_reported() {
        // An unmap can land while a region's pin pass is queued on a core
        // but before any page is pinned. The region is "unpinned", yet the
        // invalidation must still be surfaced so the engine restarts the
        // pin plan against the new mapping instead of pinning stale state.
        let (mut mem, space, addr) = setup();
        let mut d = Driver::new(None);
        let r = d.declare(
            space,
            &[Segment {
                addr,
                len: 2 * PAGE_SIZE,
            }],
        );
        d.region_mut(r).pinning_in_progress = true;
        let events = mem.munmap(space, addr, 2 * PAGE_SIZE).unwrap();
        let hit = d.handle_invalidate(&mut mem, &events[0]);
        assert_eq!(hit, vec![(r, 0)]);
        assert!(
            !d.region(r).pinning_in_progress,
            "unpin_all resets the flag"
        );
        // Same race with pages already behind the cursor: they come off.
        let again = mem.mmap(space, 2 * PAGE_SIZE, Prot::ReadWrite).unwrap();
        assert_eq!(again, addr);
        d.region_mut(r).pin_next_chunk(&mut mem, 1).unwrap();
        d.region_mut(r).pinning_in_progress = true;
        let events = mem.munmap(space, addr, 2 * PAGE_SIZE).unwrap();
        let hit = d.handle_invalidate(&mut mem, &events[0]);
        assert_eq!(hit, vec![(r, 1)]);
        assert_eq!(mem.frames().pinned_pages(), 0);
    }

    #[test]
    fn invalidation_range_is_filtered_by_address_space() {
        // Two spaces map the same virtual range (VAs are per-space), each
        // with a declared, pinned region over it. A notifier event names a
        // space; only that space's region may be invalidated even though
        // the other region's layout intersects the range numerically.
        let mut mem = Memory::new(1024, 0);
        let s1 = mem.create_space();
        let s2 = mem.create_space();
        mem.register_notifier(s1).unwrap();
        mem.register_notifier(s2).unwrap();
        let a1 = mem.mmap(s1, 4 * PAGE_SIZE, Prot::ReadWrite).unwrap();
        let a2 = mem.mmap(s2, 4 * PAGE_SIZE, Prot::ReadWrite).unwrap();
        assert_eq!(a1, a2, "fresh spaces hand out the same base address");
        let mut d = Driver::new(None);
        let r1 = d.declare(
            s1,
            &[Segment {
                addr: a1,
                len: 4 * PAGE_SIZE,
            }],
        );
        let r2 = d.declare(
            s2,
            &[Segment {
                addr: a2,
                len: 4 * PAGE_SIZE,
            }],
        );
        d.region_mut(r1).pin_next_chunk(&mut mem, 100).unwrap();
        d.region_mut(r2).pin_next_chunk(&mut mem, 100).unwrap();
        assert_eq!(mem.frames().pinned_pages(), 8);

        // s1's unmap straddles both regions' numeric ranges.
        let events = mem.munmap(s1, a1, 4 * PAGE_SIZE).unwrap();
        let hit = d.handle_invalidate(&mut mem, &events[0]);
        assert_eq!(hit, vec![(r1, 4)]);
        assert!(d.region(r1).unpinned());
        assert!(d.region(r2).fully_pinned(), "other space untouched");
        assert_eq!(mem.frames().pinned_pages(), 4);
    }

    #[test]
    fn pressure_eviction_skips_region_mid_repin() {
        // A repin racing memory pressure: the older region is mid-pin
        // (in_progress), so eviction must take the younger idle one — and
        // give up entirely when only in-progress regions remain, rather
        // than unpinning pages the racing pin pass immediately re-pins.
        let (mut mem, space, addr) = setup();
        let mut d = Driver::new(Some(6));
        let r1 = d.declare(
            space,
            &[Segment {
                addr,
                len: 4 * PAGE_SIZE,
            }],
        );
        let r2 = d.declare(
            space,
            &[Segment {
                addr: addr.add(4 * PAGE_SIZE),
                len: 4 * PAGE_SIZE,
            }],
        );
        d.region_mut(r1).pin_next_chunk(&mut mem, 100).unwrap();
        d.region_mut(r1).last_use = SimTime::from_nanos(10);
        d.region_mut(r1).pinning_in_progress = true;
        d.region_mut(r2).pin_next_chunk(&mut mem, 100).unwrap();
        d.region_mut(r2).last_use = SimTime::from_nanos(20);

        // r1 is older but repinning: r2 must be the victim.
        let evicted = d.pressure_evict(&mut mem, 4, SimTime::from_nanos(30));
        assert_eq!(evicted, vec![(r2, 4)]);
        assert!(d.region(r1).fully_pinned());

        // Only the in-progress region is left: no victim, no livelock.
        let evicted = d.pressure_evict(&mut mem, 100, SimTime::from_nanos(40));
        assert!(evicted.is_empty());
        assert_eq!(mem.frames().pinned_pages(), 4);
    }

    #[test]
    #[should_panic(expected = "in-use region")]
    fn undeclare_in_use_panics() {
        let (mut mem, space, addr) = setup();
        let mut d = Driver::new(None);
        let r = d.declare(
            space,
            &[Segment {
                addr,
                len: PAGE_SIZE,
            }],
        );
        d.region_mut(r).use_count = 1;
        d.undeclare(&mut mem, r);
    }
}
