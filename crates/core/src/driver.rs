//! The kernel-side driver state: region table, notifier handling,
//! pinned-page pressure (§3.1).
//!
//! The driver owns *all* pinning decisions. User space only ever sees the
//! integer [`RegionId`]; whether the pages behind it are pinned right now
//! is invisible above the system-call boundary. Invalidation arrives from
//! the MMU notifier as [`simmem::NotifierEvent`]s and is resolved entirely
//! in here — no upcall, no user-space synchronization.
//!
//! Every per-event operation here is sublinear in the number of declared
//! regions: notifier events route through a per-address-space interval
//! index instead of a table scan, pressure eviction pops a lazily
//! invalidated LRU heap instead of re-scanning for the minimum, and
//! `declare` reuses slots from a free list instead of probing the table.
//!
//! Notifier unpinning is *deferred and coalesced*: an invalidation marks
//! the hit pages stale (generation-stamped, protocol-invisible, frames
//! still attached) and queues the region; the release runs in batches at
//! epoch close or under pin-budget pressure, and a region re-pinned
//! before the drain cancels its pending unpin entirely. See DESIGN.md §15.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, HashMap};

use simcore::SimTime;
use simmem::{AsId, InvalidateCause, MemError, Memory, NotifierEvent, VpnRange};

use crate::engine::ProcId;
use crate::index::SpaceIndex;
use crate::obs::{DriverStats, TenantStats};
use crate::region::{DeclareError, DriverRegion, PinProgress, Segment};

/// The integer descriptor user space holds for a declared region.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RegionId(pub u32);

/// Per-tenant pin quota (§3.1 made multi-tenant): every process sharing
/// the driver gets a *soft share* of the pinned-page budget and a *hard
/// cap* it can never exceed. Under global pressure, tenants pinned past
/// their soft share pay first (deficit-weighted eviction); a pin pass
/// that would push its tenant past the hard cap first evicts the
/// tenant's own idle regions and, failing that, is denied cleanly.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PinQuota {
    /// Fair share of pinned pages per tenant; being over it makes the
    /// tenant the preferred pressure-eviction victim.
    pub soft_share: u64,
    /// Hard ceiling on one tenant's pinned pages (`>= soft_share`).
    pub hard_cap: u64,
}

/// Per-tenant accounting: the attributed pinned-page count, its own LRU
/// heap of idle evictable regions, and the fairness counters.
#[derive(Default)]
struct Tenant {
    /// Pages currently pinned and attributed to this tenant.
    pinned: u64,
    /// High-water mark of `pinned`.
    peak: u64,
    /// Pin passes denied because the hard cap left no headroom.
    denials: u64,
    /// Pages this tenant's pressure evicted from *other* tenants.
    inflicted: u64,
    /// Pages other tenants' pressure evicted from this one.
    suffered: u64,
    /// Idle-pinned-region LRU keyed on `(last_use, id)`, lazily
    /// invalidated exactly like the old global heap.
    lru: BinaryHeap<Reverse<(SimTime, u32)>>,
}

/// Per-node driver state.
pub struct Driver {
    regions: Vec<Option<DriverRegion>>,
    /// Free slots in `regions`; min-heap so ids are reused lowest-first,
    /// exactly like the table scan this replaces.
    free_slots: BinaryHeap<Reverse<u32>>,
    /// Per-address-space interval index for notifier routing.
    index: HashMap<AsId, SpaceIndex>,
    /// Per-tenant state: attributed pin counts, fairness counters, and
    /// the per-tenant idle-region LRU heaps that together replace the old
    /// single global heap. With one tenant (every raw `declare`) the
    /// min-over-tops victim selection degenerates to exactly the old
    /// global pop order.
    tenants: BTreeMap<ProcId, Tenant>,
    /// Declared regions (maintained so the heap-size bound is O(1)).
    live_regions: usize,
    /// Ceiling on pinned pages; `None` = unlimited.
    pinned_limit: Option<usize>,
    /// Per-tenant quota; `None` = single-tenant semantics.
    quota: Option<PinQuota>,
    /// Fault-injection hook: report the quota as absent to the engine's
    /// enforcement while the invariant oracle still knows it — proves the
    /// `QuotaExceeded` oracle fires when enforcement is broken.
    quota_disabled: bool,
    /// Regions with a deferred unpin pending: their stale suffix is still
    /// attached, awaiting the batched drain at epoch close or under
    /// pin-budget pressure. The coalesced-VA-range queue of the design is
    /// folded into the regions themselves — each region's stale watermark
    /// *is* the merge of every range that hit it this epoch, so the queue
    /// only needs the region ids.
    pending: BTreeSet<u32>,
    /// Pages unpinned due to memory pressure (counter).
    pressure_unpins: u64,
    /// MMU-notifier events handled (counter).
    notifier_events: u64,
    /// Regions unpinned by notifier events (counter).
    notifier_region_unpins: u64,
    /// Candidate regions the interval index routed events to (counter).
    notifier_index_candidates: u64,
    /// Region hits whose unpin was deferred instead of eager (counter).
    notifier_deferred: u64,
    /// Deferred unpins that resolved to nothing at drain time because the
    /// range was re-pinned first — the malloc-trim no-op (counter).
    notifier_cancelled: u64,
    /// Batched drains of the deferred queue (counter).
    notifier_drain_batches: u64,
    /// LRU heap entries examined by pressure eviction (counter).
    evict_lru_pops: u64,
}

impl Driver {
    /// An empty driver with an optional pinned-page ceiling.
    pub fn new(pinned_limit: Option<usize>) -> Self {
        Driver {
            regions: Vec::new(),
            free_slots: BinaryHeap::new(),
            index: HashMap::new(),
            tenants: BTreeMap::new(),
            live_regions: 0,
            pinned_limit,
            quota: None,
            quota_disabled: false,
            pending: BTreeSet::new(),
            pressure_unpins: 0,
            notifier_events: 0,
            notifier_region_unpins: 0,
            notifier_index_candidates: 0,
            notifier_deferred: 0,
            notifier_cancelled: 0,
            notifier_drain_batches: 0,
            evict_lru_pops: 0,
        }
    }

    /// Install (or clear) the per-tenant pin quota.
    pub fn set_quota(&mut self, quota: Option<PinQuota>) {
        self.quota = quota;
    }

    /// The installed per-tenant quota (what the invariant oracle checks).
    pub fn quota(&self) -> Option<PinQuota> {
        self.quota
    }

    /// The quota the engine must *enforce* — `None` while the
    /// fault-injection hook has enforcement disabled.
    pub fn enforced_quota(&self) -> Option<PinQuota> {
        if self.quota_disabled {
            None
        } else {
            self.quota
        }
    }

    /// Fault injection: keep the quota installed (so oracles still know
    /// the cap) but hide it from enforcement. Mutation self-tests use
    /// this to prove the `QuotaExceeded` oracle catches a broken check.
    pub fn disable_quota_enforcement_for_test(&mut self) {
        self.quota_disabled = true;
    }

    /// Declare a region (the only time segments cross the syscall
    /// boundary). Never pins. A region with zero total length — user
    /// space can hand the driver anything — is rejected, not a panic.
    /// Attribution falls to the single default tenant `ProcId(0)`; the
    /// engine uses [`Driver::declare_owned`].
    pub fn declare(&mut self, space: AsId, segments: &[Segment]) -> Result<RegionId, DeclareError> {
        self.declare_owned(space, ProcId(0), segments)
    }

    /// Declare a region owned by `owner`: every page later pinned through
    /// [`Driver::pin_chunk`] is attributed to that tenant, and the region
    /// files into that tenant's eviction heap when idle.
    pub fn declare_owned(
        &mut self,
        space: AsId,
        owner: ProcId,
        segments: &[Segment],
    ) -> Result<RegionId, DeclareError> {
        let mut region = DriverRegion::try_new(space, segments)?;
        region.owner = owner;
        self.tenants.entry(owner).or_default();
        self.live_regions += 1;
        let id = if let Some(Reverse(idx)) = self.free_slots.pop() {
            self.regions[idx as usize] = Some(region);
            RegionId(idx)
        } else {
            self.regions.push(Some(region));
            RegionId(self.regions.len() as u32 - 1)
        };
        let region = self.regions[id.0 as usize].as_ref().expect("just stored");
        let idx = self.index.entry(region.space).or_default();
        for seg in region.layout.segments() {
            let r = seg.page_range();
            idx.insert(r.start.0, r.end.0, id.0);
        }
        Ok(id)
    }

    /// Undeclare, releasing any pins. Returns pages released.
    ///
    /// # Panics
    /// Panics with the `unknown region` message on any id that does not
    /// name a declared region — including ids beyond the table (a hostile
    /// or buggy caller must not be able to trigger a raw index
    /// out-of-bounds), and if the region is still in use by a
    /// communication.
    pub fn undeclare(&mut self, mem: &mut Memory, id: RegionId) -> u64 {
        let mut region = self
            .regions
            .get_mut(id.0 as usize)
            .and_then(Option::take)
            .unwrap_or_else(|| panic!("undeclare of unknown region {id:?}"));
        assert_eq!(region.use_count, 0, "undeclare of in-use region {id:?}");
        if let Some(idx) = self.index.get_mut(&region.space) {
            for seg in region.layout.segments() {
                idx.remove(seg.page_range().start.0, id.0);
            }
        }
        // A pending deferred unpin dies with the region: unpin_all below
        // releases the stale suffix along with everything else, and the
        // slot may be recycled before the next drain runs.
        self.pending.remove(&id.0);
        self.free_slots.push(Reverse(id.0));
        self.live_regions -= 1;
        let pages = region.unpin_all(mem);
        self.debit(region.owner, pages);
        pages
    }

    /// Reap every trace of a dead tenant after a process crash: undeclare
    /// all regions it owns (a crashed process has no communications worth
    /// honoring, so non-zero use counts do not block the sweep), drop
    /// their deferred-unpin queue entries and interval-index spans, and
    /// remove the tenant's quota/accounting row. Each region's pages are
    /// unpinned in one batch and debited against the tenant before the
    /// row is dropped, so the pin ledger (`pin == unpin + pressure +
    /// still-pinned`) stays exact across the crash. Returns total pages
    /// unpinned.
    pub fn teardown_proc(&mut self, mem: &mut Memory, proc: ProcId) -> u64 {
        let dead: Vec<u32> = self
            .regions
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.as_ref().filter(|r| r.owner == proc).map(|_| i as u32))
            .collect();
        let mut total = 0u64;
        for id in dead {
            let mut region = self.regions[id as usize].take().expect("listed above");
            if let Some(idx) = self.index.get_mut(&region.space) {
                for seg in region.layout.segments() {
                    idx.remove(seg.page_range().start.0, id);
                }
            }
            self.pending.remove(&id);
            self.free_slots.push(Reverse(id));
            self.live_regions -= 1;
            let pages = region.unpin_all(mem);
            self.debit(proc, pages);
            total += pages;
        }
        self.tenants.remove(&proc);
        total
    }

    /// Borrow a declared region.
    ///
    /// # Panics
    /// Panics with the `unknown region` message on undeclared *and*
    /// never-allocated ids alike; use [`Driver::try_region`] to probe.
    pub fn region(&self, id: RegionId) -> &DriverRegion {
        self.try_region(id)
            .unwrap_or_else(|| panic!("unknown region {id:?}"))
    }

    /// Mutably borrow a declared region.
    ///
    /// # Panics
    /// Panics with the `unknown region` message on undeclared *and*
    /// never-allocated ids alike; use [`Driver::try_region_mut`] to probe.
    pub fn region_mut(&mut self, id: RegionId) -> &mut DriverRegion {
        self.try_region_mut(id)
            .unwrap_or_else(|| panic!("unknown region {id:?}"))
    }

    /// Borrow a region if `id` names a declared one.
    pub fn try_region(&self, id: RegionId) -> Option<&DriverRegion> {
        self.regions.get(id.0 as usize).and_then(Option::as_ref)
    }

    /// Mutably borrow a region if `id` names a declared one.
    pub fn try_region_mut(&mut self, id: RegionId) -> Option<&mut DriverRegion> {
        self.regions.get_mut(id.0 as usize).and_then(Option::as_mut)
    }

    /// True if `id` names a declared region.
    pub fn is_declared(&self, id: RegionId) -> bool {
        self.regions.get(id.0 as usize).is_some_and(Option::is_some)
    }

    /// Every declared region with its id, in id order (invariant oracles).
    pub fn iter_regions(&self) -> impl Iterator<Item = (RegionId, &DriverRegion)> {
        self.regions
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.as_ref().map(|r| (RegionId(i as u32), r)))
    }

    /// Sum of pinned pages across every declared region. With all pinning
    /// flowing through regions this must equal the frame pool's
    /// `pinned_pages()` at every event boundary — the harness's pin
    /// accounting invariant.
    pub fn pinned_pages_total(&self) -> u64 {
        self.iter_regions().map(|(_, r)| r.pinned_pages()).sum()
    }

    /// Pages currently pinned and attributed to `proc`. Only pins taken
    /// through the attributed entry points ([`Driver::pin_chunk`] /
    /// [`Driver::unpin_region`], i.e. everything the engine does) are
    /// counted; tests poking regions directly bypass attribution.
    pub fn pinned_pages_of(&self, proc: ProcId) -> u64 {
        self.tenants.get(&proc).map_or(0, |t| t.pinned)
    }

    /// Per-tenant accounting snapshot, ascending by `ProcId`.
    pub fn tenant_stats(&self) -> Vec<(ProcId, TenantStats)> {
        self.tenants
            .iter()
            .map(|(&p, t)| {
                (
                    p,
                    TenantStats {
                        pinned_pages: t.pinned,
                        peak_pinned_pages: t.peak,
                        quota_denials: t.denials,
                        evictions_inflicted_on_others: t.inflicted,
                        evictions_suffered_from_others: t.suffered,
                    },
                )
            })
            .collect()
    }

    /// Record a pin pass denied against `proc` for lack of hard-cap
    /// headroom (the engine calls this on the `PinDenied` path).
    pub fn note_quota_denial(&mut self, proc: ProcId) {
        self.tenants.entry(proc).or_default().denials += 1;
    }

    /// Total entries across every tenant's LRU heap, stale included —
    /// bounded to `2 * live_regions + 8` by the rebuild in
    /// [`Driver::note_region_idle`]; the churn test asserts it.
    pub fn lru_len(&self) -> usize {
        self.tenants.values().map(|t| t.lru.len()).sum()
    }

    fn credit(&mut self, owner: ProcId, pages: u64) {
        let t = self.tenants.entry(owner).or_default();
        t.pinned += pages;
        t.peak = t.peak.max(t.pinned);
    }

    /// Saturating on purpose: regions pinned *around* the attributed
    /// entry points (benches and tests calling `region_mut` directly)
    /// were never credited, so their release must not underflow the
    /// tenant that happens to own the slot.
    fn debit(&mut self, owner: ProcId, pages: u64) {
        let t = self.tenants.entry(owner).or_default();
        t.pinned = t.pinned.saturating_sub(pages);
    }

    /// Pin the next chunk of `id` — the engine's pin entry point —
    /// attributing the net change in attached pages to the region's
    /// owner. Charging the signed delta (not the chunk size) makes the
    /// attribution robust to `release_stale` running inside the call and
    /// to the rollback a partial-pin failure performs: whatever the
    /// region ends up holding is exactly what its owner is charged for,
    /// so a failed pass can never leak budget headroom.
    pub fn pin_chunk(
        &mut self,
        mem: &mut Memory,
        id: RegionId,
        max_pages: u64,
        per_page: bool,
    ) -> Result<PinProgress, MemError> {
        let region = self.region_mut(id);
        let owner = region.owner;
        let before = region.pinned_pages();
        let result = if per_page {
            region.pin_next_chunk_per_page(mem, max_pages)
        } else {
            region.pin_next_chunk(mem, max_pages)
        };
        let after = self.region(id).pinned_pages();
        if after >= before {
            self.credit(owner, after - before);
        } else {
            self.debit(owner, before - after);
        }
        result
    }

    /// Unpin everything `id` holds, attributed to its owner — the
    /// engine's release path. Returns the pages released.
    pub fn unpin_region(&mut self, mem: &mut Memory, id: RegionId) -> u64 {
        let region = self.region_mut(id);
        let owner = region.owner;
        let pages = region.unpin_all(mem);
        self.debit(owner, pages);
        pages
    }

    /// Regions of `space` whose layout intersects `range`, ascending by
    /// id, answered from the interval index: one bounded `BTreeMap` range
    /// scan plus an exact `layout.intersects` confirmation per candidate.
    pub fn regions_intersecting(&self, space: AsId, range: &VpnRange) -> Vec<RegionId> {
        let Some(idx) = self.index.get(&space) else {
            return Vec::new();
        };
        let mut ids = BTreeSet::new();
        idx.intersecting(range, &mut ids);
        ids.into_iter()
            .map(RegionId)
            .filter(|&id| {
                self.try_region(id)
                    .is_some_and(|r| r.space == space && r.layout.intersects(range))
            })
            .collect()
    }

    /// The full-table-scan answer to [`Driver::regions_intersecting`].
    /// Kept as the differential oracle (simtest cross-checks the index
    /// against it on every notifier event) and as the `pinscale` baseline.
    pub fn regions_intersecting_naive(&self, space: AsId, range: &VpnRange) -> Vec<RegionId> {
        self.iter_regions()
            .filter(|(_, r)| r.space == space && r.layout.intersects(range))
            .map(|(id, _)| id)
            .collect()
    }

    /// MMU-notifier callback with deferred, coalesced unpinning: every
    /// intersecting region has the invalidated pages marked stale (the
    /// frames stay attached, invisible to the protocol) and joins the
    /// deferred-unpin queue; its generation is bumped so an in-flight pin
    /// pass restarts instead of resurrecting the old mapping. The actual
    /// frame release happens in one batch at [`Driver::drain_deferred`] —
    /// epoch close or pin-budget pressure — and a region re-pinned before
    /// then cancels its pending unpin (malloc-trim churn becomes a no-op).
    ///
    /// `Release` events (address-space teardown) still unpin eagerly:
    /// there is no "next use" to defer for, and a dead space must not hold
    /// pins for even one epoch.
    ///
    /// Returns the affected region ids and how many pages each *newly*
    /// marked stale (or, for `Release`, released).
    pub fn handle_invalidate(
        &mut self,
        mem: &mut Memory,
        event: &NotifierEvent,
    ) -> Vec<(RegionId, u64)> {
        self.notifier_events += 1;
        if event.cause == InvalidateCause::Release {
            return self.invalidate_eagerly(mem, event);
        }
        let candidates = self.regions_intersecting(event.space, &event.range);
        self.notifier_index_candidates += candidates.len() as u64;
        let mut hit = Vec::new();
        for id in candidates {
            let region = self
                .regions
                .get_mut(id.0 as usize)
                .and_then(Option::as_mut)
                .expect("indexed region exists");
            if region.unpinned() && !region.pinning_in_progress {
                continue;
            }
            let staled = region.mark_stale(&*mem, &event.range);
            if staled == 0 {
                // Every page in range still maps to this region's own
                // pinned frames (a COW break performed *by* this pin) or
                // lies beyond the cursor — nothing to invalidate, so no
                // generation bump and no queue entry. Bumping here would
                // restart the region's own pin pass on its own events.
                continue;
            }
            region.generation += 1;
            self.pending.insert(id.0);
            self.notifier_deferred += 1;
            hit.push((id, staled));
        }
        hit
    }

    /// The old eager notifier path: unpin every intersecting region in
    /// full, immediately, inside the event. Kept as the differential
    /// oracle for the deferred path (the churnstorm bench's baseline and
    /// the randomized cross-check in this module's tests) and as the
    /// teardown path for `Release` events. Returns the affected region ids
    /// and how many pages each released.
    pub fn handle_invalidate_eager(
        &mut self,
        mem: &mut Memory,
        event: &NotifierEvent,
    ) -> Vec<(RegionId, u64)> {
        self.notifier_events += 1;
        self.invalidate_eagerly(mem, event)
    }

    fn invalidate_eagerly(
        &mut self,
        mem: &mut Memory,
        event: &NotifierEvent,
    ) -> Vec<(RegionId, u64)> {
        let candidates = self.regions_intersecting(event.space, &event.range);
        self.notifier_index_candidates += candidates.len() as u64;
        let mut hit = Vec::new();
        for id in candidates {
            let region = self
                .regions
                .get_mut(id.0 as usize)
                .and_then(Option::as_mut)
                .expect("indexed region exists");
            if region.unpinned() && !region.pinning_in_progress {
                continue;
            }
            region.generation += 1;
            let owner = region.owner;
            let pages = region.unpin_all(mem);
            self.pending.remove(&id.0);
            self.notifier_region_unpins += 1;
            self.debit(owner, pages);
            hit.push((id, pages));
        }
        hit
    }

    /// True when regions are waiting for a deferred-unpin drain.
    pub fn has_deferred(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Drain the deferred-unpin queue in one batch: every pending region
    /// releases its stale suffix with a single batched `Memory` call. A
    /// region that was re-pinned (or fully unpinned) since the event has
    /// nothing stale left — its unpin is *cancelled*, the trim-storm
    /// no-op this design exists for. Returns `(released, cancelled)`:
    /// regions with the pages they released, and regions whose pending
    /// unpin dissolved.
    pub fn drain_deferred(&mut self, mem: &mut Memory) -> (Vec<(RegionId, u64)>, Vec<RegionId>) {
        let mut released = Vec::new();
        let mut cancelled = Vec::new();
        if self.pending.is_empty() {
            return (released, cancelled);
        }
        self.notifier_drain_batches += 1;
        for idx in std::mem::take(&mut self.pending) {
            let Some(region) = self.regions.get_mut(idx as usize).and_then(Option::as_mut) else {
                continue;
            };
            let owner = region.owner;
            let pages = region.release_stale(mem);
            if pages == 0 {
                self.notifier_cancelled += 1;
                cancelled.push(RegionId(idx));
            } else {
                self.notifier_region_unpins += 1;
                self.debit(owner, pages);
                released.push((RegionId(idx), pages));
            }
        }
        (released, cancelled)
    }

    /// Tell the LRU that `id` just became (or stays) an eviction
    /// candidate — idle, pinned, no pin pass running. The engine calls
    /// this whenever a communication releases a region or a pin pass
    /// finishes on an idle region; stale entries are harmless (they are
    /// validated on pop), missing entries are repaired by the one
    /// fallback rebuild [`Driver::pressure_evict`] allows itself.
    pub fn note_region_idle(&mut self, id: RegionId) {
        if let Some(r) = self.try_region(id) {
            if r.use_count == 0 && !r.unpinned() && !r.pinning_in_progress {
                let entry = Reverse((r.last_use, id.0));
                let owner = r.owner;
                self.tenants.entry(owner).or_default().lru.push(entry);
                // Bound stale-entry growth: declare/undeclare churn leaves
                // dead `(last_use, id)` stamps for recycled slots, and the
                // one-rebuild-per-call fallback in `pressure_evict` never
                // amortizes them away. Once more than half the entries
                // could be dead (heap > 2x live regions, plus slack so
                // tiny tables never rebuild), rescan into fresh heaps.
                if self.lru_len() > 2 * self.live_regions + 8 {
                    self.rebuild_heaps();
                }
            }
        }
    }

    /// Rescan the region table into fresh per-tenant heaps, dropping
    /// every stale entry.
    fn rebuild_heaps(&mut self) {
        for t in self.tenants.values_mut() {
            t.lru.clear();
        }
        for (i, r) in self.regions.iter().enumerate() {
            if let Some(r) = r {
                if r.use_count == 0 && !r.unpinned() && !r.pinning_in_progress {
                    self.tenants
                        .entry(r.owner)
                        .or_default()
                        .lru
                        .push(Reverse((r.last_use, i as u32)));
                }
            }
        }
    }

    /// Pop one entry off `owner`'s heap and validate it against the live
    /// region table. `Err(())` when the heap is empty; `Ok(Some(idx))`
    /// for a live victim; `Ok(None)` when the entry was lazily
    /// invalidated — dead slot, busy region, moved stamp, or a recycled
    /// id surfacing in the wrong tenant's heap (re-filed where it
    /// belongs) — and the caller should keep looking.
    fn pop_one(&mut self, owner: ProcId) -> Result<Option<u32>, ()> {
        let Some(Reverse((stamp, idx))) = self.tenants.get_mut(&owner).and_then(|t| t.lru.pop())
        else {
            return Err(());
        };
        self.evict_lru_pops += 1;
        let Some(r) = self.regions.get(idx as usize).and_then(Option::as_ref) else {
            return Ok(None);
        };
        // A region whose pin pass is currently running is not idle:
        // evicting it would race the repin it is in the middle of (the
        // cursor grows right back, and the eviction bought nothing).
        if r.use_count != 0 || r.unpinned() || r.pinning_in_progress {
            return Ok(None);
        }
        let (real_owner, last_use) = (r.owner, r.last_use);
        if real_owner != owner || last_use != stamp {
            self.tenants
                .entry(real_owner)
                .or_default()
                .lru
                .push(Reverse((last_use, idx)));
            return Ok(None);
        }
        Ok(Some(idx))
    }

    /// The globally least-recently-used idle victim across every tenant
    /// heap. Exactly one entry is popped and validated per iteration —
    /// min-over-tops selection makes the pop sequence identical to the
    /// single global heap this replaces, so single-tenant eviction order
    /// (and every figure built on it) is unchanged.
    fn pop_victim_global(&mut self) -> Option<u32> {
        loop {
            let owner = self
                .tenants
                .iter()
                .filter_map(|(&p, t)| t.lru.peek().map(|&Reverse(top)| (top, p)))
                .min()
                .map(|(_, p)| p)?;
            match self.pop_one(owner) {
                Ok(Some(idx)) => return Some(idx),
                Ok(None) => continue,
                Err(()) => unreachable!("peeked heap is non-empty"),
            }
        }
    }

    /// `owner`'s least-recently-used idle victim, or `None` when its
    /// heap holds nothing live.
    fn pop_victim_of(&mut self, owner: ProcId) -> Option<u32> {
        loop {
            match self.pop_one(owner) {
                Ok(Some(idx)) => return Some(idx),
                Ok(None) => continue,
                Err(()) => return None,
            }
        }
    }

    /// Weighted-fair victim selection: tenants pinned past their soft
    /// share pay first — largest deficit first, lower `ProcId` on ties —
    /// so the noisiest tenant's own working set absorbs the pressure it
    /// creates. Only when no over-share tenant has an evictable region
    /// does selection fall back to the global LRU order.
    fn pop_victim_weighted(&mut self, q: PinQuota) -> Option<u32> {
        let mut over: Vec<(u64, ProcId)> = self
            .tenants
            .iter()
            .filter(|(_, t)| t.pinned > q.soft_share)
            .map(|(&p, t)| (t.pinned - q.soft_share, p))
            .collect();
        over.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        for (_, p) in over {
            if let Some(idx) = self.pop_victim_of(p) {
                return Some(idx);
            }
        }
        self.pop_victim_global()
    }

    /// Before pinning `needed` more pages, enforce the pinned-page ceiling
    /// by unpinning idle (use_count == 0) regions, least recently used
    /// first ("if there are too many pinned pages … it may also request
    /// some unpinning", §3.1). With a quota installed, victim selection is
    /// weighted-fair ([`Driver::pop_victim_weighted`]); otherwise it is
    /// the plain global LRU order. `requester` is the tenant whose pin
    /// pass triggered the pressure — evictions that land on *other*
    /// tenants are booked to its `inflicted` counter (and the victims'
    /// `suffered`). Returns the regions it unpinned.
    ///
    /// Victims come off the per-tenant LRU heaps in O(log n): popped
    /// entries are validated against the live region (still declared,
    /// idle, pinned, stamp current, owner current) and discarded or
    /// re-filed otherwise. If the heaps run dry while still over the
    /// limit — regions mutated behind the driver's back, e.g. by tests
    /// poking `last_use` — one full-scan rebuild per call restores them.
    pub fn pressure_evict(
        &mut self,
        mem: &mut Memory,
        needed: u64,
        _now: SimTime,
        requester: Option<ProcId>,
    ) -> Vec<(RegionId, u64)> {
        let Some(limit) = self.pinned_limit else {
            return Vec::new();
        };
        let mut evicted = Vec::new();
        let mut rebuilt = false;
        while mem.frames().pinned_pages() as u64 + needed > limit as u64 {
            let mut victim = match self.enforced_quota() {
                Some(q) => self.pop_victim_weighted(q),
                None => self.pop_victim_global(),
            };
            if victim.is_none() && !rebuilt {
                rebuilt = true;
                self.rebuild_heaps();
                victim = match self.enforced_quota() {
                    Some(q) => self.pop_victim_weighted(q),
                    None => self.pop_victim_global(),
                };
            }
            let Some(idx) = victim else { break };
            let pages = self.evict_region(mem, idx);
            let owner = self.regions[idx as usize].as_ref().expect("victim").owner;
            if let Some(req) = requester {
                if req != owner {
                    self.tenants.entry(req).or_default().inflicted += pages;
                    self.tenants.entry(owner).or_default().suffered += pages;
                }
            }
            evicted.push((RegionId(idx), pages));
        }
        evicted
    }

    /// Evict `owner`'s own idle regions, oldest first, until its
    /// attributed pinned count is at or below `max_pinned` (or no idle
    /// victim of its remains). Runs regardless of the global
    /// `pinned_limit` — this is the self-eviction a tenant performs to
    /// reclaim hard-cap headroom before a pin pass is denied, and it
    /// never touches another tenant's working set.
    pub fn pressure_evict_tenant(
        &mut self,
        mem: &mut Memory,
        owner: ProcId,
        max_pinned: u64,
    ) -> Vec<(RegionId, u64)> {
        let mut evicted = Vec::new();
        let mut rebuilt = false;
        while self.pinned_pages_of(owner) > max_pinned {
            let mut victim = self.pop_victim_of(owner);
            if victim.is_none() && !rebuilt {
                rebuilt = true;
                self.rebuild_heaps();
                victim = self.pop_victim_of(owner);
            }
            let Some(idx) = victim else { break };
            let pages = self.evict_region(mem, idx);
            evicted.push((RegionId(idx), pages));
        }
        evicted
    }

    /// Unpin one pressure victim, attributed. Settling the deferred-unpin
    /// queue entry first is load-bearing: `unpin_all` releases the stale
    /// suffix along with everything else, so a victim parked in the queue
    /// that kept its entry would be double-booked at the next drain — the
    /// drain finds nothing stale and records a spurious *cancelled*
    /// unpin, corrupting the coalescing stats the churnstorm gates ride
    /// on.
    fn evict_region(&mut self, mem: &mut Memory, idx: u32) -> u64 {
        self.pending.remove(&idx);
        let region = self.regions[idx as usize].as_mut().expect("victim exists");
        let owner = region.owner;
        let pages = region.unpin_all(mem);
        self.pressure_unpins += pages;
        self.debit(owner, pages);
        pages
    }

    /// Pressure/notifier counters.
    pub fn stats(&self) -> DriverStats {
        DriverStats {
            pressure_unpinned_pages: self.pressure_unpins,
            notifier_events: self.notifier_events,
            notifier_region_unpins: self.notifier_region_unpins,
            notifier_index_candidates: self.notifier_index_candidates,
            notifier_deferred: self.notifier_deferred,
            notifier_cancelled: self.notifier_cancelled,
            notifier_drain_batches: self.notifier_drain_batches,
            evict_lru_pops: self.evict_lru_pops,
        }
    }

    /// Number of declared regions.
    pub fn declared_count(&self) -> usize {
        self.regions.iter().filter(|r| r.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simmem::{Prot, VirtAddr, Vpn, PAGE_SIZE};

    fn setup() -> (Memory, simmem::AsId, VirtAddr) {
        let mut mem = Memory::new(1024, 0);
        let space = mem.create_space();
        mem.register_notifier(space).unwrap();
        let addr = mem.mmap(space, 32 * PAGE_SIZE, Prot::ReadWrite).unwrap();
        (mem, space, addr)
    }

    #[test]
    fn declare_ids_are_reused() {
        let (mut mem, space, addr) = setup();
        let mut d = Driver::new(None);
        let a = d
            .declare(
                space,
                &[Segment {
                    addr,
                    len: PAGE_SIZE,
                }],
            )
            .unwrap();
        let b = d
            .declare(
                space,
                &[Segment {
                    addr: addr.add(PAGE_SIZE),
                    len: PAGE_SIZE,
                }],
            )
            .unwrap();
        assert_ne!(a, b);
        d.undeclare(&mut mem, a);
        let c = d
            .declare(
                space,
                &[Segment {
                    addr,
                    len: PAGE_SIZE,
                }],
            )
            .unwrap();
        assert_eq!(a, c);
        assert_eq!(d.declared_count(), 2);
    }

    #[test]
    fn freed_ids_are_reused_lowest_first() {
        let (mut mem, space, addr) = setup();
        let mut d = Driver::new(None);
        let ids: Vec<RegionId> = (0..4)
            .map(|i| {
                d.declare(
                    space,
                    &[Segment {
                        addr: addr.add(i * PAGE_SIZE),
                        len: PAGE_SIZE,
                    }],
                )
                .unwrap()
            })
            .collect();
        // Free out of order; redeclares must fill lowest holes first, the
        // same order the old table scan produced.
        d.undeclare(&mut mem, ids[2]);
        d.undeclare(&mut mem, ids[0]);
        d.undeclare(&mut mem, ids[3]);
        let s = [Segment {
            addr,
            len: PAGE_SIZE,
        }];
        assert_eq!(d.declare(space, &s).unwrap(), ids[0]);
        assert_eq!(d.declare(space, &s).unwrap(), ids[2]);
        assert_eq!(d.declare(space, &s).unwrap(), ids[3]);
    }

    #[test]
    fn declare_of_zero_length_region_is_rejected_not_a_panic() {
        // Regression: user space declaring only zero-length segments used
        // to trip the "empty region" assert inside the "kernel".
        let (mut mem, space, addr) = setup();
        let mut d = Driver::new(None);
        assert_eq!(d.declare(space, &[]), Err(DeclareError::EmptyRegion));
        assert_eq!(
            d.declare(space, &[Segment { addr, len: 0 }]),
            Err(DeclareError::EmptyRegion)
        );
        assert_eq!(d.declared_count(), 0);
        // The driver is fully usable afterwards and ids start from 0 —
        // the failed declares leaked no slots.
        let r = d
            .declare(
                space,
                &[Segment {
                    addr,
                    len: PAGE_SIZE,
                }],
            )
            .unwrap();
        assert_eq!(r, RegionId(0));
        d.region_mut(r).pin_next_chunk(&mut mem, 100).unwrap();
        assert_eq!(d.undeclare(&mut mem, r), 1);
    }

    #[test]
    fn invalidate_defers_unpin_of_intersecting_regions_only() {
        let (mut mem, space, addr) = setup();
        let mut d = Driver::new(None);
        let r1 = d
            .declare(
                space,
                &[Segment {
                    addr,
                    len: 4 * PAGE_SIZE,
                }],
            )
            .unwrap();
        let r2 = d
            .declare(
                space,
                &[Segment {
                    addr: addr.add(8 * PAGE_SIZE),
                    len: 4 * PAGE_SIZE,
                }],
            )
            .unwrap();
        d.region_mut(r1).pin_next_chunk(&mut mem, 100).unwrap();
        d.region_mut(r2).pin_next_chunk(&mut mem, 100).unwrap();
        assert_eq!(mem.frames().pinned_pages(), 8);

        // munmap of the first buffer fires a notifier covering r1 only.
        // The unpin is deferred: r1's pages go protocol-invisible at once,
        // but the frames stay attached until the batched drain.
        let events = mem.munmap(space, addr, 4 * PAGE_SIZE).unwrap();
        assert_eq!(events.len(), 1);
        let hit = d.handle_invalidate(&mut mem, &events[0]);
        assert_eq!(hit, vec![(r1, 4)]);
        assert!(d.has_deferred());
        assert_eq!(mem.frames().pinned_pages(), 8, "release is deferred");
        assert_eq!(d.region(r1).valid_pages(), 0);
        assert_eq!(d.region(r1).stale_pages(), 4);
        assert_eq!(d.region(r1).generation, 1);
        assert!(d.region(r2).fully_pinned());
        assert_eq!(d.region(r2).generation, 0);

        // The drain releases exactly r1's stale suffix, in one batch.
        let (released, cancelled) = d.drain_deferred(&mut mem);
        assert_eq!(released, vec![(r1, 4)]);
        assert!(cancelled.is_empty());
        assert!(!d.has_deferred());
        assert_eq!(mem.frames().pinned_pages(), 4);
        assert!(d.region(r1).unpinned());
        assert!(d.region(r2).fully_pinned());
        // r1 stays *declared* — it may repin later (after a remap).
        assert!(d.is_declared(r1));
        let s = d.stats();
        assert_eq!(s.notifier_events, 1);
        assert_eq!(s.notifier_deferred, 1);
        assert_eq!(s.notifier_region_unpins, 1);
        assert_eq!(s.notifier_cancelled, 0);
        assert_eq!(s.notifier_drain_batches, 1);
    }

    #[test]
    fn eager_path_still_unpins_inside_the_event() {
        // The differential baseline keeps the old semantics exactly.
        let (mut mem, space, addr) = setup();
        let mut d = Driver::new(None);
        let r1 = d
            .declare(
                space,
                &[Segment {
                    addr,
                    len: 4 * PAGE_SIZE,
                }],
            )
            .unwrap();
        d.region_mut(r1).pin_next_chunk(&mut mem, 100).unwrap();
        let events = mem.munmap(space, addr, 4 * PAGE_SIZE).unwrap();
        let hit = d.handle_invalidate_eager(&mut mem, &events[0]);
        assert_eq!(hit, vec![(r1, 4)]);
        assert_eq!(mem.frames().pinned_pages(), 0);
        assert!(d.region(r1).unpinned());
        assert!(!d.has_deferred());
        assert_eq!(d.stats().notifier_region_unpins, 1);
        assert_eq!(d.stats().notifier_deferred, 0);
    }

    #[test]
    fn partial_invalidation_unpins_only_the_invalidated_tail() {
        // Regression for the tentpole bug: the eager path used to
        // unpin_all the whole region on a partial-range hit. Through the
        // deferred path, a 2-page trim of a 16-page region costs exactly
        // those 2 pages at drain time.
        let (mut mem, space, addr) = setup();
        let mut d = Driver::new(None);
        let r = d
            .declare(
                space,
                &[Segment {
                    addr,
                    len: 16 * PAGE_SIZE,
                }],
            )
            .unwrap();
        d.region_mut(r).pin_next_chunk(&mut mem, 100).unwrap();
        assert_eq!(mem.frames().pinned_pages(), 16);

        let events = mem
            .munmap(space, addr.add(14 * PAGE_SIZE), 2 * PAGE_SIZE)
            .unwrap();
        let hit = d.handle_invalidate(&mut mem, &events[0]);
        assert_eq!(hit, vec![(r, 2)]);
        let (released, cancelled) = d.drain_deferred(&mut mem);
        assert_eq!(released, vec![(r, 2)]);
        assert!(cancelled.is_empty());
        assert_eq!(mem.frames().pinned_pages(), 14, "14 of 16 stay pinned");
        assert_eq!(d.region(r).pinned_pages(), 14);
        assert_eq!(d.pinned_pages_total(), 14);
    }

    #[test]
    fn repin_before_drain_cancels_the_deferred_unpin() {
        // The malloc-trim/realloc no-op: trim the tail, remap, repin — by
        // drain time there is nothing left to unpin and the entry
        // dissolves as cancelled.
        let (mut mem, space, addr) = setup();
        let mut d = Driver::new(None);
        let r = d
            .declare(
                space,
                &[Segment {
                    addr,
                    len: 8 * PAGE_SIZE,
                }],
            )
            .unwrap();
        d.region_mut(r).pin_next_chunk(&mut mem, 100).unwrap();
        let events = mem
            .munmap(space, addr.add(6 * PAGE_SIZE), 2 * PAGE_SIZE)
            .unwrap();
        d.handle_invalidate(&mut mem, &events[0]);
        assert!(d.has_deferred());
        mem.mmap_at(
            space,
            addr.add(6 * PAGE_SIZE),
            2 * PAGE_SIZE,
            Prot::ReadWrite,
        )
        .unwrap();
        d.region_mut(r).pin_next_chunk(&mut mem, 100).unwrap();
        assert!(d.region(r).fully_pinned());

        let (released, cancelled) = d.drain_deferred(&mut mem);
        assert!(released.is_empty());
        assert_eq!(cancelled, vec![r]);
        assert_eq!(d.stats().notifier_cancelled, 1);
        assert_eq!(d.stats().notifier_region_unpins, 0);
        assert!(d.region(r).fully_pinned());
        assert_eq!(mem.frames().pinned_pages(), 8);
    }

    #[test]
    fn back_to_back_trim_events_coalesce_into_one_pending_entry() {
        let (mut mem, space, addr) = setup();
        let mut d = Driver::new(None);
        let r = d
            .declare(
                space,
                &[Segment {
                    addr,
                    len: 16 * PAGE_SIZE,
                }],
            )
            .unwrap();
        d.region_mut(r).pin_next_chunk(&mut mem, 100).unwrap();
        // Three trims within one epoch: overlapping + adjacent ranges all
        // merge into the region's single stale watermark. The second and
        // third ranges overlap already-unmapped pages — simmem emits one
        // event per still-mapped subrange, like the kernel would.
        for (off, len) in [(14u64, 2u64), (12, 3), (10, 3)] {
            let events = mem
                .munmap(space, addr.add(off * PAGE_SIZE), len * PAGE_SIZE)
                .unwrap();
            for ev in &events {
                d.handle_invalidate(&mut mem, ev);
            }
        }
        assert_eq!(d.stats().notifier_deferred, 3, "three event hits");
        assert_eq!(d.region(r).stale_pages(), 6, "coalesced to pages 10..16");
        let (released, _) = d.drain_deferred(&mut mem);
        assert_eq!(released, vec![(r, 6)], "one region, one batch");
        assert_eq!(d.stats().notifier_drain_batches, 1);
        assert_eq!(mem.frames().pinned_pages(), 10);
    }

    #[test]
    fn release_cause_unpins_eagerly_through_the_deferred_path() {
        // Address-space teardown must not leave pins parked in the
        // deferred queue: the space is gone, there is no next use.
        let (mut mem, space, addr) = setup();
        let mut d = Driver::new(None);
        let r = d
            .declare(
                space,
                &[Segment {
                    addr,
                    len: 4 * PAGE_SIZE,
                }],
            )
            .unwrap();
        d.region_mut(r).pin_next_chunk(&mut mem, 100).unwrap();
        let events = mem.destroy_space(space).unwrap();
        assert!(events
            .iter()
            .any(|e| e.cause == simmem::InvalidateCause::Release));
        for ev in &events {
            d.handle_invalidate(&mut mem, ev);
        }
        assert_eq!(mem.frames().pinned_pages(), 0, "no deferral on release");
        assert!(d.region(r).unpinned());
        assert!(!d.has_deferred());
    }

    #[test]
    fn repin_after_invalidate_sees_new_mapping() {
        let (mut mem, space, addr) = setup();
        let mut d = Driver::new(None);
        let r = d
            .declare(
                space,
                &[Segment {
                    addr,
                    len: 2 * PAGE_SIZE,
                }],
            )
            .unwrap();
        mem.write(space, addr, b"first").unwrap();
        d.region_mut(r).pin_next_chunk(&mut mem, 100).unwrap();

        // free + malloc-again at the same VA (same size reuses the range).
        let events = mem.munmap(space, addr, 2 * PAGE_SIZE).unwrap();
        for ev in &events {
            d.handle_invalidate(&mut mem, ev);
        }
        // Deferred: the stale pages must already be invisible, or a read
        // here would see the *old* frames ("first").
        let mut buf = [0u8; 6];
        assert!(d.region(r).read(&mem, 0, &mut buf).is_err());
        let again = mem.mmap(space, 2 * PAGE_SIZE, Prot::ReadWrite).unwrap();
        assert_eq!(again, addr);
        mem.write(space, addr, b"second").unwrap();

        // The driver repins on next use and reads the *new* data.
        d.region_mut(r).pin_next_chunk(&mut mem, 100).unwrap();
        d.region(r).read(&mem, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"second");
        // The repin beat the drain: the pending unpin dissolves.
        let (released, cancelled) = d.drain_deferred(&mut mem);
        assert!(released.is_empty());
        assert_eq!(cancelled, vec![r]);
        d.region_mut(r).unpin_all(&mut mem);
    }

    #[test]
    fn interval_index_agrees_with_naive_scan() {
        // Differential: for a soup of declared/undeclared vectorial
        // regions, the index must answer every query exactly like the
        // full-table scan, in the same (ascending id) order.
        let mut mem = Memory::new(4096, 0);
        let space = mem.create_space();
        let other = mem.create_space();
        let addr = mem.mmap(space, 256 * PAGE_SIZE, Prot::ReadWrite).unwrap();
        mem.mmap(other, 256 * PAGE_SIZE, Prot::ReadWrite).unwrap();
        let mut d = Driver::new(None);
        let mut state = 0xdead_beef_cafe_f00du64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut live = Vec::new();
        for round in 0..200u32 {
            let roll = rng() % 10;
            if roll < 6 || live.len() < 4 {
                let s = if rng() % 4 == 0 { other } else { space };
                let nsegs = 1 + rng() % 3;
                let segs: Vec<Segment> = (0..nsegs)
                    .map(|_| Segment {
                        addr: addr.add((rng() % 240) * PAGE_SIZE + rng() % 64),
                        len: (1 + rng() % 8) * PAGE_SIZE,
                    })
                    .collect();
                live.push(d.declare(s, &segs).unwrap());
            } else {
                let victim = live.swap_remove((rng() % live.len() as u64) as usize);
                d.undeclare(&mut mem, victim);
            }
            // Query a few random windows every round, in both spaces.
            for _ in 0..4 {
                let base = addr.vpn().0 + rng() % 250;
                let range = VpnRange::new(Vpn(base), Vpn(base + 1 + rng() % 12));
                for s in [space, other] {
                    assert_eq!(
                        d.regions_intersecting(s, &range),
                        d.regions_intersecting_naive(s, &range),
                        "index diverged at round {round} range {range:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn pressure_evicts_idle_lru_regions() {
        let (mut mem, space, addr) = setup();
        let mut d = Driver::new(Some(8));
        let r1 = d
            .declare(
                space,
                &[Segment {
                    addr,
                    len: 4 * PAGE_SIZE,
                }],
            )
            .unwrap();
        let r2 = d
            .declare(
                space,
                &[Segment {
                    addr: addr.add(4 * PAGE_SIZE),
                    len: 4 * PAGE_SIZE,
                }],
            )
            .unwrap();
        d.region_mut(r1).pin_next_chunk(&mut mem, 100).unwrap();
        d.region_mut(r1).last_use = SimTime::from_nanos(10);
        d.region_mut(r2).pin_next_chunk(&mut mem, 100).unwrap();
        d.region_mut(r2).last_use = SimTime::from_nanos(20);
        assert_eq!(mem.frames().pinned_pages(), 8);

        // Need 4 more pages: r1 (older) must go.
        let evicted = d.pressure_evict(&mut mem, 4, SimTime::from_nanos(30), None);
        assert_eq!(evicted, vec![(r1, 4)]);
        assert_eq!(mem.frames().pinned_pages(), 4);

        // In-use regions are never victims.
        d.region_mut(r2).use_count = 1;
        let evicted = d.pressure_evict(&mut mem, 100, SimTime::from_nanos(40), None);
        assert!(evicted.is_empty());
        assert_eq!(d.stats().pressure_unpinned_pages, 4);
    }

    #[test]
    fn lru_heap_tracks_stale_stamps_and_warm_entries() {
        // A warm heap (note_region_idle called as the engine would) with
        // stamps that have since moved must still evict in exact
        // oldest-first order.
        let (mut mem, space, addr) = setup();
        let mut d = Driver::new(Some(0));
        let mut ids = Vec::new();
        for i in 0..4u64 {
            let r = d
                .declare(
                    space,
                    &[Segment {
                        addr: addr.add(i * PAGE_SIZE),
                        len: PAGE_SIZE,
                    }],
                )
                .unwrap();
            d.region_mut(r).pin_next_chunk(&mut mem, 100).unwrap();
            d.region_mut(r).last_use = SimTime::from_nanos(100 + i);
            d.note_region_idle(r);
            ids.push(r);
        }
        // Move region 0 *forward* after its heap entry was pushed (a
        // touch whose note_region_idle got lost): the stale stamp is
        // detected on pop and re-filed at its current position, so the
        // eviction order is still exactly oldest-first.
        d.region_mut(ids[0]).last_use = SimTime::from_nanos(200);
        let evicted = d.pressure_evict(&mut mem, 0, SimTime::from_nanos(300), None);
        assert_eq!(
            evicted,
            vec![(ids[1], 1), (ids[2], 1), (ids[3], 1), (ids[0], 1)]
        );
        assert_eq!(mem.frames().pinned_pages(), 0);
        // The heap saw real work (pops), not a silent fallback scan.
        assert!(d.stats().evict_lru_pops >= 4);
    }

    #[test]
    fn garbage_ids_probe_gracefully() {
        // A never-allocated id (way beyond the table) must hit the same
        // `unknown region` path as an undeclared one — never a raw index
        // out-of-bounds panic.
        let (_, space, addr) = setup();
        let mut d = Driver::new(None);
        let bogus = RegionId(9999);
        assert!(!d.is_declared(bogus));
        assert!(d.try_region(bogus).is_none());
        assert!(d.try_region_mut(bogus).is_none());
        let r = d
            .declare(
                space,
                &[Segment {
                    addr,
                    len: PAGE_SIZE,
                }],
            )
            .unwrap();
        assert!(d.try_region(r).is_some());
        assert_eq!(d.iter_regions().count(), 1);
    }

    #[test]
    #[should_panic(expected = "unknown region RegionId(9999)")]
    fn region_of_garbage_id_panics_with_unknown_region() {
        let d = Driver::new(None);
        d.region(RegionId(9999));
    }

    #[test]
    #[should_panic(expected = "unknown region RegionId(9999)")]
    fn region_mut_of_garbage_id_panics_with_unknown_region() {
        let mut d = Driver::new(None);
        d.region_mut(RegionId(9999));
    }

    #[test]
    #[should_panic(expected = "undeclare of unknown region RegionId(9999)")]
    fn undeclare_of_garbage_id_panics_with_unknown_region() {
        let (mut mem, _, _) = setup();
        let mut d = Driver::new(None);
        d.undeclare(&mut mem, RegionId(9999));
    }

    #[test]
    fn invalidate_during_pin_in_progress_bumps_generation() {
        // An unmap can land while a region's pin pass is queued on a core
        // but before any page is pinned. The region is "unpinned", yet the
        // invalidation must still be surfaced — and the generation bump is
        // what makes the in-flight pass restart instead of resurrecting
        // just-invalidated pages.
        let (mut mem, space, addr) = setup();
        let mut d = Driver::new(None);
        let r = d
            .declare(
                space,
                &[Segment {
                    addr,
                    len: 2 * PAGE_SIZE,
                }],
            )
            .unwrap();
        d.region_mut(r).pinning_in_progress = true;
        let events = mem.munmap(space, addr, 2 * PAGE_SIZE).unwrap();
        let hit = d.handle_invalidate(&mut mem, &events[0]);
        // Nothing is behind the cursor yet, so there is nothing the pass
        // could resurrect: the queued pin executes against the *current*
        // (post-unmap) page tables anyway. No hit, no generation bump —
        // a bump here would be a spurious pass restart.
        assert!(hit.is_empty());
        assert_eq!(d.region(r).generation, 0, "no stale pages, no restart");
        assert!(
            d.region(r).pinning_in_progress,
            "the pass flag stays with the engine's restart logic"
        );
        // The real race: pages already behind the cursor when the unmap
        // lands. They go stale at once, the generation bump restarts the
        // in-flight pass, and the frames come off at the drain.
        let again = mem.mmap(space, 2 * PAGE_SIZE, Prot::ReadWrite).unwrap();
        assert_eq!(again, addr);
        d.region_mut(r).pin_next_chunk(&mut mem, 1).unwrap();
        let events = mem.munmap(space, addr, 2 * PAGE_SIZE).unwrap();
        let hit = d.handle_invalidate(&mut mem, &events[0]);
        assert_eq!(hit, vec![(r, 1)]);
        assert_eq!(d.region(r).generation, 1, "pass must observe the bump");
        assert_eq!(d.region(r).valid_pages(), 0);
        let (released, _) = d.drain_deferred(&mut mem);
        assert_eq!(released, vec![(r, 1)]);
        assert_eq!(mem.frames().pinned_pages(), 0);
    }

    #[test]
    fn invalidation_range_is_filtered_by_address_space() {
        // Two spaces map the same virtual range (VAs are per-space), each
        // with a declared, pinned region over it. A notifier event names a
        // space; only that space's region may be invalidated even though
        // the other region's layout intersects the range numerically.
        let mut mem = Memory::new(1024, 0);
        let s1 = mem.create_space();
        let s2 = mem.create_space();
        mem.register_notifier(s1).unwrap();
        mem.register_notifier(s2).unwrap();
        let a1 = mem.mmap(s1, 4 * PAGE_SIZE, Prot::ReadWrite).unwrap();
        let a2 = mem.mmap(s2, 4 * PAGE_SIZE, Prot::ReadWrite).unwrap();
        assert_eq!(a1, a2, "fresh spaces hand out the same base address");
        let mut d = Driver::new(None);
        let r1 = d
            .declare(
                s1,
                &[Segment {
                    addr: a1,
                    len: 4 * PAGE_SIZE,
                }],
            )
            .unwrap();
        let r2 = d
            .declare(
                s2,
                &[Segment {
                    addr: a2,
                    len: 4 * PAGE_SIZE,
                }],
            )
            .unwrap();
        d.region_mut(r1).pin_next_chunk(&mut mem, 100).unwrap();
        d.region_mut(r2).pin_next_chunk(&mut mem, 100).unwrap();
        assert_eq!(mem.frames().pinned_pages(), 8);

        // s1's unmap straddles both regions' numeric ranges.
        let events = mem.munmap(s1, a1, 4 * PAGE_SIZE).unwrap();
        let hit = d.handle_invalidate(&mut mem, &events[0]);
        assert_eq!(hit, vec![(r1, 4)]);
        let (released, _) = d.drain_deferred(&mut mem);
        assert_eq!(released, vec![(r1, 4)]);
        assert!(d.region(r1).unpinned());
        assert!(d.region(r2).fully_pinned(), "other space untouched");
        assert_eq!(mem.frames().pinned_pages(), 4);
    }

    #[test]
    fn pressure_eviction_skips_region_mid_repin() {
        // A repin racing memory pressure: the older region is mid-pin
        // (in_progress), so eviction must take the younger idle one — and
        // give up entirely when only in-progress regions remain, rather
        // than unpinning pages the racing pin pass immediately re-pins.
        let (mut mem, space, addr) = setup();
        let mut d = Driver::new(Some(6));
        let r1 = d
            .declare(
                space,
                &[Segment {
                    addr,
                    len: 4 * PAGE_SIZE,
                }],
            )
            .unwrap();
        let r2 = d
            .declare(
                space,
                &[Segment {
                    addr: addr.add(4 * PAGE_SIZE),
                    len: 4 * PAGE_SIZE,
                }],
            )
            .unwrap();
        d.region_mut(r1).pin_next_chunk(&mut mem, 100).unwrap();
        d.region_mut(r1).last_use = SimTime::from_nanos(10);
        d.region_mut(r1).pinning_in_progress = true;
        d.region_mut(r2).pin_next_chunk(&mut mem, 100).unwrap();
        d.region_mut(r2).last_use = SimTime::from_nanos(20);

        // r1 is older but repinning: r2 must be the victim.
        let evicted = d.pressure_evict(&mut mem, 4, SimTime::from_nanos(30), None);
        assert_eq!(evicted, vec![(r2, 4)]);
        assert!(d.region(r1).fully_pinned());

        // Only the in-progress region is left: no victim, no livelock.
        let evicted = d.pressure_evict(&mut mem, 100, SimTime::from_nanos(40), None);
        assert!(evicted.is_empty());
        assert_eq!(mem.frames().pinned_pages(), 4);
    }

    /// Randomized differential oracle (same shape as the
    /// `interval_index_agrees_with_naive_scan` cross-check): twin worlds
    /// run the same mapping/churn schedule, one routing notifier events
    /// through the deferred-drain path, the other through the old eager
    /// path. The deferred world must (a) keep pin accounting exact at
    /// every step, (b) never expose a valid page whose PTE disagrees with
    /// the attached frame — the invariant the eager path enforces
    /// trivially by unpinning inside the event — and (c) read exactly the
    /// bytes the application sees wherever the eager world can read.
    #[test]
    fn deferred_drain_agrees_with_eager_oracle_under_random_churn() {
        const PAGES: u64 = 16;
        const REGIONS: u64 = 3;
        let build = || {
            let mut mem = Memory::new(256, 0);
            let space = mem.create_space();
            mem.register_notifier(space).unwrap();
            let addr = mem
                .mmap(space, REGIONS * PAGES * PAGE_SIZE, Prot::ReadWrite)
                .unwrap();
            let mut d = Driver::new(None);
            let ids: Vec<RegionId> = (0..REGIONS)
                .map(|i| {
                    d.declare(
                        space,
                        &[Segment {
                            addr: addr.add(i * PAGES * PAGE_SIZE),
                            len: PAGES * PAGE_SIZE,
                        }],
                    )
                    .unwrap()
                })
                .collect();
            (mem, space, addr, d, ids)
        };
        let (mut mem_a, space_a, addr_a, mut da, ids_a) = build();
        let (mut mem_b, space_b, addr_b, mut db, ids_b) = build();
        assert_eq!(addr_a, addr_b);

        let mut state = 0x5eed_cafe_0000_0042u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let check = |da: &Driver, db: &Driver, mem_a: &Memory, mem_b: &Memory, round: u32| {
            assert_eq!(
                da.pinned_pages_total(),
                mem_a.frames().pinned_pages() as u64,
                "deferred world accounting drifted at round {round}"
            );
            assert_eq!(
                db.pinned_pages_total(),
                mem_b.frames().pinned_pages() as u64,
                "eager world accounting drifted at round {round}"
            );
            for (id, r) in da.iter_regions() {
                for idx in 0..r.valid_pages() {
                    let vpn = r.layout.vpn_of_page(idx);
                    assert_eq!(
                        mem_a.resident_pfn(r.space, vpn),
                        Some(r.pinned_pfns()[idx as usize]),
                        "deferred {id:?} exposes page {idx} whose PTE moved (round {round})"
                    );
                }
                let eager = db.region(id);
                assert!(
                    eager.valid_pages() <= r.valid_pages(),
                    "eager kept more than deferred at round {round}"
                );
            }
        };

        for round in 0..150u32 {
            let i = (rng() % REGIONS) as usize;
            match rng() % 4 {
                // Trim a random tail of region i, feed each world its own
                // events, then remap + rewrite the hole identically.
                0 | 1 => {
                    let s = 1 + rng() % (PAGES - 1);
                    let off = (i as u64 * PAGES + s) * PAGE_SIZE;
                    let len = (PAGES - s) * PAGE_SIZE;
                    for ev in mem_a.munmap(space_a, addr_a.add(off), len).unwrap() {
                        da.handle_invalidate(&mut mem_a, &ev);
                    }
                    for ev in mem_b.munmap(space_b, addr_b.add(off), len).unwrap() {
                        db.handle_invalidate_eager(&mut mem_b, &ev);
                    }
                    mem_a
                        .mmap_at(space_a, addr_a.add(off), len, Prot::ReadWrite)
                        .unwrap();
                    mem_b
                        .mmap_at(space_b, addr_b.add(off), len, Prot::ReadWrite)
                        .unwrap();
                    let fill: Vec<u8> = (0..len).map(|j| (rng() ^ j) as u8).collect();
                    mem_a.write(space_a, addr_a.add(off), &fill).unwrap();
                    mem_b.write(space_b, addr_b.add(off), &fill).unwrap();
                }
                // Repin region i to full in both worlds and compare what
                // the driver reads against the application bytes.
                2 => {
                    loop {
                        if da
                            .region_mut(ids_a[i])
                            .pin_next_chunk(&mut mem_a, 4)
                            .unwrap()
                            .complete
                        {
                            break;
                        }
                    }
                    loop {
                        if db
                            .region_mut(ids_b[i])
                            .pin_next_chunk(&mut mem_b, 4)
                            .unwrap()
                            .complete
                        {
                            break;
                        }
                    }
                    let mut via_a = vec![0u8; (PAGES * PAGE_SIZE) as usize];
                    let mut via_b = vec![0u8; (PAGES * PAGE_SIZE) as usize];
                    da.region(ids_a[i]).read(&mem_a, 0, &mut via_a).unwrap();
                    db.region(ids_b[i]).read(&mem_b, 0, &mut via_b).unwrap();
                    assert_eq!(via_a, via_b, "driver reads diverged at round {round}");
                }
                // Epoch close in the deferred world.
                _ => {
                    da.drain_deferred(&mut mem_a);
                }
            }
            check(&da, &db, &mem_a, &mem_b, round);
        }
        // Final drain: both worlds settle to the same protocol state.
        da.drain_deferred(&mut mem_a);
        for (id, r) in da.iter_regions() {
            assert_eq!(r.stale_pages(), 0);
            assert!(r.generation >= db.region(id).generation);
        }
        check(&da, &db, &mem_a, &mem_b, 999);
    }

    #[test]
    fn pressure_eviction_settles_pending_deferred_unpin() {
        // Satellite regression (counter signature): a victim parked in
        // the deferred-unpin queue must leave the queue with its
        // eviction. Before the fix the entry stayed behind: the next
        // drain found the stale suffix already gone and booked a spurious
        // *cancelled* unpin — double-booking pages the churnstorm cancel
        // ratio is built on.
        let (mut mem, space, addr) = setup();
        let mut d = Driver::new(Some(4));
        let r = d
            .declare(
                space,
                &[Segment {
                    addr,
                    len: 8 * PAGE_SIZE,
                }],
            )
            .unwrap();
        d.region_mut(r).pin_next_chunk(&mut mem, 100).unwrap();
        let events = mem
            .munmap(space, addr.add(6 * PAGE_SIZE), 2 * PAGE_SIZE)
            .unwrap();
        d.handle_invalidate(&mut mem, &events[0]);
        assert!(d.has_deferred());
        assert_eq!(d.region(r).stale_pages(), 2);
        d.note_region_idle(r);

        let evicted = d.pressure_evict(&mut mem, 0, SimTime::from_nanos(10), None);
        assert_eq!(evicted, vec![(r, 8)], "stale suffix goes with the victim");
        assert!(!d.has_deferred(), "pending drain settled, not orphaned");
        let (released, cancelled) = d.drain_deferred(&mut mem);
        assert!(released.is_empty());
        assert!(cancelled.is_empty());
        let s = d.stats();
        assert_eq!(s.pressure_unpinned_pages, 8);
        assert_eq!(s.notifier_cancelled, 0, "no spurious cancelled unpin");
        assert_eq!(s.notifier_drain_batches, 0, "nothing was left to drain");
    }

    #[test]
    fn declare_undeclare_churn_keeps_eviction_heap_bounded() {
        // Satellite regression: recycled slots leave one dead
        // `(last_use, id)` stamp per round, and the one-rebuild-per-call
        // fallback in pressure_evict never amortizes them. The rebuild
        // bound in note_region_idle must keep the heap O(live regions).
        let (mut mem, space, addr) = setup();
        let mut d = Driver::new(None);
        for round in 0..1000u64 {
            let r = d
                .declare(
                    space,
                    &[Segment {
                        addr,
                        len: PAGE_SIZE,
                    }],
                )
                .unwrap();
            assert_eq!(r, RegionId(0), "slot is recycled every round");
            d.region_mut(r).pin_next_chunk(&mut mem, 100).unwrap();
            d.region_mut(r).last_use = SimTime::from_nanos(round);
            d.note_region_idle(r);
            assert!(
                d.lru_len() <= 2 * d.declared_count() + 8,
                "heap grew unbounded: {} entries at round {round}",
                d.lru_len()
            );
            d.undeclare(&mut mem, r);
        }
    }

    #[test]
    fn failed_partial_pin_rolls_back_attribution() {
        // Satellite regression: a pin pass dying mid-run (frame pool
        // exhausted) rolls its pages back via PartialPin — the tenant's
        // attributed count must roll back with them, or every failed
        // pass permanently leaks budget headroom.
        let mut mem = Memory::new(3, 0);
        let space = mem.create_space();
        mem.register_notifier(space).unwrap();
        let addr = mem.mmap(space, 8 * PAGE_SIZE, Prot::ReadWrite).unwrap();
        let mut d = Driver::new(None);
        let r = d
            .declare_owned(
                space,
                ProcId(7),
                &[Segment {
                    addr,
                    len: 8 * PAGE_SIZE,
                }],
            )
            .unwrap();
        assert!(d.pin_chunk(&mut mem, r, 100, false).is_err());
        assert_eq!(d.pinned_pages_of(ProcId(7)), 0, "attribution rolled back");
        assert_eq!(d.pinned_pages_total(), 0);
        assert_eq!(mem.frames().pinned_pages(), 0);
    }

    #[test]
    fn attributed_pins_follow_the_owner_through_release() {
        let (mut mem, space, addr) = setup();
        let mut d = Driver::new(None);
        let a = d
            .declare_owned(
                space,
                ProcId(1),
                &[Segment {
                    addr,
                    len: 4 * PAGE_SIZE,
                }],
            )
            .unwrap();
        let b = d
            .declare_owned(
                space,
                ProcId(2),
                &[Segment {
                    addr: addr.add(4 * PAGE_SIZE),
                    len: 2 * PAGE_SIZE,
                }],
            )
            .unwrap();
        d.pin_chunk(&mut mem, a, 100, false).unwrap();
        d.pin_chunk(&mut mem, b, 100, false).unwrap();
        assert_eq!(d.pinned_pages_of(ProcId(1)), 4);
        assert_eq!(d.pinned_pages_of(ProcId(2)), 2);
        let total: u64 = d.tenant_stats().iter().map(|(_, t)| t.pinned_pages).sum();
        assert_eq!(total, d.pinned_pages_total(), "Σ per-tenant == global");

        // Deferred invalidation keeps the frames attributed until the
        // drain actually releases them.
        let events = mem
            .munmap(space, addr.add(2 * PAGE_SIZE), 2 * PAGE_SIZE)
            .unwrap();
        d.handle_invalidate(&mut mem, &events[0]);
        assert_eq!(d.pinned_pages_of(ProcId(1)), 4, "stale still attached");
        d.drain_deferred(&mut mem);
        assert_eq!(d.pinned_pages_of(ProcId(1)), 2);

        assert_eq!(d.unpin_region(&mut mem, b), 2);
        assert_eq!(d.pinned_pages_of(ProcId(2)), 0);
        assert_eq!(d.undeclare(&mut mem, a), 2);
        assert_eq!(d.pinned_pages_of(ProcId(1)), 0);
        let stats = d.tenant_stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].1.peak_pinned_pages, 4);
        assert_eq!(stats[1].1.peak_pinned_pages, 2);
    }

    #[test]
    fn weighted_eviction_charges_the_over_share_tenant_first() {
        // Aggressor (ProcId 1) pinned past its soft share; victim
        // (ProcId 2) under it but holding the *older* region. Quota-aware
        // pressure must evict the aggressor's region even though plain
        // LRU would take the victim's — and the fairness counters must
        // say nobody else paid.
        let (mut mem, space, addr) = setup();
        let mut d = Driver::new(Some(8));
        d.set_quota(Some(PinQuota {
            soft_share: 4,
            hard_cap: 16,
        }));
        let v = d
            .declare_owned(
                space,
                ProcId(2),
                &[Segment {
                    addr,
                    len: 4 * PAGE_SIZE,
                }],
            )
            .unwrap();
        let a = d
            .declare_owned(
                space,
                ProcId(1),
                &[Segment {
                    addr: addr.add(4 * PAGE_SIZE),
                    len: 8 * PAGE_SIZE,
                }],
            )
            .unwrap();
        d.pin_chunk(&mut mem, v, 100, false).unwrap();
        d.region_mut(v).last_use = SimTime::from_nanos(10);
        d.note_region_idle(v);
        d.pin_chunk(&mut mem, a, 100, false).unwrap();
        d.region_mut(a).last_use = SimTime::from_nanos(20);
        d.note_region_idle(a);

        let evicted = d.pressure_evict(&mut mem, 4, SimTime::from_nanos(30), Some(ProcId(1)));
        assert_eq!(evicted, vec![(a, 8)], "the over-share tenant pays");
        assert_eq!(d.pinned_pages_of(ProcId(1)), 0);
        assert_eq!(d.pinned_pages_of(ProcId(2)), 4, "victim untouched");
        for (p, t) in d.tenant_stats() {
            assert_eq!(
                t.evictions_suffered_from_others, 0,
                "tenant {p:?} suffered cross-tenant eviction"
            );
            assert_eq!(t.evictions_inflicted_on_others, 0);
        }

        // Without a quota the same layout evicts strictly by age: the
        // victim's older region goes first.
        let mut d2 = Driver::new(Some(8));
        let v2 = d2
            .declare_owned(
                space,
                ProcId(2),
                &[Segment {
                    addr,
                    len: 4 * PAGE_SIZE,
                }],
            )
            .unwrap();
        let a2 = d2
            .declare_owned(
                space,
                ProcId(1),
                &[Segment {
                    addr: addr.add(4 * PAGE_SIZE),
                    len: 8 * PAGE_SIZE,
                }],
            )
            .unwrap();
        d2.pin_chunk(&mut mem, v2, 100, false).unwrap();
        d2.region_mut(v2).last_use = SimTime::from_nanos(10);
        d2.note_region_idle(v2);
        d2.pin_chunk(&mut mem, a2, 100, false).unwrap();
        d2.region_mut(a2).last_use = SimTime::from_nanos(20);
        d2.note_region_idle(a2);
        let evicted = d2.pressure_evict(&mut mem, 4, SimTime::from_nanos(30), Some(ProcId(1)));
        assert_eq!(evicted[0].0, v2, "LRU order without quota");
        let suffered: u64 = d2
            .tenant_stats()
            .iter()
            .map(|(_, t)| t.evictions_suffered_from_others)
            .sum();
        assert_eq!(suffered, 4, "cross-tenant eviction is booked");
        assert_eq!(
            d2.tenant_stats()
                .iter()
                .find(|(p, _)| *p == ProcId(1))
                .unwrap()
                .1
                .evictions_inflicted_on_others,
            4
        );
    }

    #[test]
    fn tenant_self_eviction_never_touches_other_tenants() {
        let (mut mem, space, addr) = setup();
        let mut d = Driver::new(None);
        let a1 = d
            .declare_owned(
                space,
                ProcId(1),
                &[Segment {
                    addr,
                    len: 4 * PAGE_SIZE,
                }],
            )
            .unwrap();
        let a2 = d
            .declare_owned(
                space,
                ProcId(1),
                &[Segment {
                    addr: addr.add(4 * PAGE_SIZE),
                    len: 4 * PAGE_SIZE,
                }],
            )
            .unwrap();
        let b = d
            .declare_owned(
                space,
                ProcId(2),
                &[Segment {
                    addr: addr.add(8 * PAGE_SIZE),
                    len: 4 * PAGE_SIZE,
                }],
            )
            .unwrap();
        for (r, t) in [(a1, 10u64), (a2, 20), (b, 5)] {
            d.pin_chunk(&mut mem, r, 100, false).unwrap();
            d.region_mut(r).last_use = SimTime::from_nanos(t);
            d.note_region_idle(r);
        }
        // Tenant 1 must get down to 4 pages: its own *older* region goes;
        // tenant 2's region is older than both but is not a candidate.
        let evicted = d.pressure_evict_tenant(&mut mem, ProcId(1), 4);
        assert_eq!(evicted, vec![(a1, 4)]);
        assert_eq!(d.pinned_pages_of(ProcId(1)), 4);
        assert_eq!(d.pinned_pages_of(ProcId(2)), 4, "other tenant untouched");
        // Already at target: nothing more to do.
        assert!(d.pressure_evict_tenant(&mut mem, ProcId(1), 4).is_empty());
        // Unreachable target with nothing idle left evictable: the in-use
        // region is skipped and the loop gives up rather than livelocking.
        d.region_mut(a2).use_count = 1;
        assert!(d.pressure_evict_tenant(&mut mem, ProcId(1), 0).is_empty());
    }

    #[test]
    fn quota_enforcement_toggle_hides_quota_from_enforcement_only() {
        let mut d = Driver::new(None);
        let q = PinQuota {
            soft_share: 8,
            hard_cap: 16,
        };
        d.set_quota(Some(q));
        assert_eq!(d.quota(), Some(q));
        assert_eq!(d.enforced_quota(), Some(q));
        d.disable_quota_enforcement_for_test();
        assert_eq!(d.quota(), Some(q), "oracle still sees the quota");
        assert_eq!(d.enforced_quota(), None, "enforcement does not");
    }

    #[test]
    #[should_panic(expected = "in-use region")]
    fn undeclare_in_use_panics() {
        let (mut mem, space, addr) = setup();
        let mut d = Driver::new(None);
        let r = d
            .declare(
                space,
                &[Segment {
                    addr,
                    len: PAGE_SIZE,
                }],
            )
            .unwrap();
        d.region_mut(r).use_count = 1;
        d.undeclare(&mut mem, r);
    }
}
